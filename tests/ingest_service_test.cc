// IngestService: registry-driven bit-identity (a mid-stream snapshot
// answers exactly like a one-shot Engine::Build over the same row
// prefix with the same seed -- the determinism contract in
// ingest/ingest.h), snapshot cadence, Create error paths, snapshot
// persistence, and a build-while-serve stress run under the CI tsan job.

#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "serve/pod.h"
#include "sketch/builtin_algorithms.h"
#include "sketch/streaming.h"
#include "util/random.h"

namespace ifsketch::ingest {
namespace {

constexpr std::size_t kColumns = 24;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

IngestOptions Options(const std::string& algorithm,
                      std::size_t rows_per_snapshot) {
  IngestOptions options;
  options.algorithm = algorithm;
  options.params = Params();
  options.d = kColumns;
  options.seed = 17;
  options.rows_per_snapshot = rows_per_snapshot;
  options.ring_capacity = 64;  // small: exercise the full-ring spin path
  return options;
}

/// Every registered algorithm that implements the streaming mixin --
/// the set the ingest subsystem accepts, discovered the same way
/// IngestService::Create does.
std::vector<std::string> StreamingAlgorithms() {
  std::vector<std::string> names;
  for (const auto& name : Engine::KnownAlgorithms()) {
    const auto algorithm = sketch::BuiltinRegistry().Create(name);
    if (dynamic_cast<const sketch::StreamingSketch*>(algorithm.get()) !=
        nullptr) {
      names.push_back(name);
    }
  }
  return names;
}

std::vector<core::Itemset> MakeQueries() {
  util::Rng rng(404);
  std::vector<core::Itemset> queries;
  for (std::size_t size = 1; size <= 2; ++size) {
    for (std::size_t i = 0; i < 40; ++i) {
      core::Itemset t(kColumns);
      while (t.size() < size) {
        t.Add(static_cast<std::size_t>(rng.UniformInt(kColumns)));
      }
      queries.push_back(std::move(t));
    }
  }
  return queries;
}

TEST(IngestServiceTest, RegistryExposesAllThreeStreamingAlgorithms) {
  const auto streaming = StreamingAlgorithms();
  for (const char* expect :
       {"STREAM-SUBSAMPLE", "STREAM-STRATIFIED", "STREAM-IMPORTANCE"}) {
    bool found = false;
    for (const auto& name : streaming) found |= (name == expect);
    EXPECT_TRUE(found) << expect << " not registered as streaming";
  }
  // And the plain one-shot algorithms are NOT accepted as streaming.
  for (const auto& name : streaming) {
    EXPECT_NE(name, "SUBSAMPLE");
  }
}

// The acceptance gate: for EVERY registered streaming algorithm, every
// periodic snapshot must agree bit-for-bit with a one-shot build over
// the same prefix -- estimate_many, are_frequent, and mine.
TEST(IngestServiceTest, SnapshotsAreBitIdenticalToOneShotBuilds) {
  constexpr std::size_t kRows = 5000;
  constexpr std::size_t kEvery = 1000;
  util::Rng data_rng(99);
  const core::Database db = data::UniformRandom(kRows, kColumns, 0.3, data_rng);
  const std::vector<core::Itemset> queries = MakeQueries();

  const auto streaming = StreamingAlgorithms();
  ASSERT_FALSE(streaming.empty());
  for (const auto& algorithm : streaming) {
    SCOPED_TRACE(algorithm);
    std::vector<std::pair<std::shared_ptr<const Engine>, std::uint64_t>>
        snapshots;
    {
      auto service = IngestService::Create(
          Options(algorithm, kEvery),
          [&](std::shared_ptr<const Engine> engine, std::uint64_t rows) {
            snapshots.emplace_back(std::move(engine), rows);
          });
      ASSERT_NE(service, nullptr);
      for (std::size_t i = 0; i < db.num_rows(); ++i) {
        service->Push(db.Row(i));
      }
      service->Finish();
      EXPECT_EQ(service->rows_ingested(), kRows);
      EXPECT_EQ(service->snapshots_published(), kRows / kEvery);
    }
    ASSERT_EQ(snapshots.size(), kRows / kEvery);

    for (const auto& [snapshot, rows] : snapshots) {
      SCOPED_TRACE(rows);
      ASSERT_NE(snapshot, nullptr);
      EXPECT_EQ(snapshot->algorithm(), algorithm);
      EXPECT_EQ(snapshot->n(), rows);

      core::Database prefix(0, kColumns);
      for (std::uint64_t i = 0; i < rows; ++i) prefix.AppendRow(db.Row(i));
      util::Rng build_rng(Options(algorithm, kEvery).seed);
      const auto direct = Engine::Build(prefix, algorithm, Params(), build_rng);
      ASSERT_TRUE(direct.has_value());

      std::vector<double> snapshot_f, direct_f;
      snapshot->estimate_many(queries, &snapshot_f);
      direct->estimate_many(queries, &direct_f);
      EXPECT_EQ(snapshot_f, direct_f);  // bitwise: no tolerance

      std::vector<bool> snapshot_b, direct_b;
      snapshot->are_frequent(queries, &snapshot_b);
      direct->are_frequent(queries, &direct_b);
      EXPECT_EQ(snapshot_b, direct_b);

      if (snapshot->supports_query_size(1) &&
          snapshot->supports_query_size(2)) {
        mining::AprioriOptions opt;
        opt.min_frequency = 0.2;
        opt.max_size = 2;
        const auto snapshot_mined = snapshot->mine(opt);
        const auto direct_mined = direct->mine(opt);
        ASSERT_EQ(snapshot_mined.size(), direct_mined.size());
        for (std::size_t i = 0; i < snapshot_mined.size(); ++i) {
          EXPECT_TRUE(snapshot_mined[i].itemset == direct_mined[i].itemset);
          EXPECT_EQ(snapshot_mined[i].frequency, direct_mined[i].frequency);
        }
      }
    }
  }
}

TEST(IngestServiceTest, FinishPublishesAFinalPartialSnapshot) {
  std::vector<std::uint64_t> published;
  auto service = IngestService::Create(
      Options("STREAM-SUBSAMPLE", 1000),
      [&](std::shared_ptr<const Engine> engine, std::uint64_t rows) {
        ASSERT_NE(engine, nullptr);
        published.push_back(rows);
      });
  ASSERT_NE(service, nullptr);
  util::Rng rng(5);
  const core::Database db = data::UniformRandom(2500, kColumns, 0.3, rng);
  for (std::size_t i = 0; i < db.num_rows(); ++i) service->Push(db.Row(i));
  service->Finish();
  // Two periodic snapshots plus the 2500-row tail.
  EXPECT_EQ(published, (std::vector<std::uint64_t>{1000, 2000, 2500}));
  EXPECT_EQ(service->snapshots_published(), 3u);
  service->Finish();  // idempotent
  EXPECT_EQ(service->snapshots_published(), 3u);
}

TEST(IngestServiceTest, NoDuplicateSnapshotOnExactBoundary) {
  std::vector<std::uint64_t> published;
  auto service = IngestService::Create(
      Options("STREAM-SUBSAMPLE", 1000),
      [&](std::shared_ptr<const Engine>, std::uint64_t rows) {
        published.push_back(rows);
      });
  ASSERT_NE(service, nullptr);
  util::Rng rng(6);
  const core::Database db = data::UniformRandom(2000, kColumns, 0.3, rng);
  for (std::size_t i = 0; i < db.num_rows(); ++i) service->Push(db.Row(i));
  service->Finish();
  // The 2000-row snapshot already covered everything: no extra publish.
  EXPECT_EQ(published, (std::vector<std::uint64_t>{1000, 2000}));
}

TEST(IngestServiceTest, EmptyStreamPublishesNothing) {
  auto service = IngestService::Create(
      Options("STREAM-SUBSAMPLE", 1000),
      [](std::shared_ptr<const Engine>, std::uint64_t) {
        FAIL() << "published with no rows";
      });
  ASSERT_NE(service, nullptr);
  service->Finish();
  EXPECT_EQ(service->rows_ingested(), 0u);
  EXPECT_EQ(service->snapshots_published(), 0u);
}

TEST(IngestServiceTest, CreateRejectsBadOptions) {
  const auto publish = [](std::shared_ptr<const Engine>, std::uint64_t) {};
  std::string error;

  error.clear();
  EXPECT_EQ(IngestService::Create(Options("NO-SUCH-ALGO", 10), publish,
                                  &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  // Registered, but a one-shot algorithm without the streaming mixin.
  error.clear();
  EXPECT_EQ(IngestService::Create(Options("SUBSAMPLE", 10), publish, &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  IngestOptions no_width = Options("STREAM-SUBSAMPLE", 10);
  no_width.d = 0;
  error.clear();
  EXPECT_EQ(IngestService::Create(no_width, publish, &error), nullptr);
  EXPECT_FALSE(error.empty());

  IngestOptions no_cadence = Options("STREAM-SUBSAMPLE", 10);
  no_cadence.rows_per_snapshot = 0;
  error.clear();
  EXPECT_EQ(IngestService::Create(no_cadence, publish, &error), nullptr);
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_EQ(IngestService::Create(Options("STREAM-SUBSAMPLE", 10), nullptr,
                                  &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// A published snapshot is a full IFSK citizen: Save it, reopen it both
// mapped (arena v2 zero-copy) and copied, and get identical answers.
TEST(IngestServiceTest, SnapshotsSurviveSaveAndReopen) {
  std::shared_ptr<const Engine> snapshot;
  {
    auto service = IngestService::Create(
        Options("STREAM-STRATIFIED", 1500),
        [&](std::shared_ptr<const Engine> engine, std::uint64_t rows) {
          if (rows == 1500) snapshot = std::move(engine);
        });
    ASSERT_NE(service, nullptr);
    util::Rng rng(7);
    const core::Database db = data::UniformRandom(1500, kColumns, 0.3, rng);
    for (std::size_t i = 0; i < db.num_rows(); ++i) service->Push(db.Row(i));
    service->Finish();
  }
  ASSERT_NE(snapshot, nullptr);

  const std::string path = testing::TempDir() + "/ingest_snapshot.ifsk";
  ASSERT_TRUE(snapshot->Save(path));
  const std::vector<core::Itemset> queries = MakeQueries();
  std::vector<double> expect;
  snapshot->estimate_many(queries, &expect);

  for (const auto mode :
       {Engine::LoadMode::kMapped, Engine::LoadMode::kCopied}) {
    const auto reopened = Engine::Open(path, mode);
    ASSERT_TRUE(reopened.has_value());
    EXPECT_EQ(reopened->algorithm(), "STREAM-STRATIFIED");
    EXPECT_EQ(reopened->n(), 1500u);
    std::vector<double> answers;
    reopened->estimate_many(queries, &answers);
    EXPECT_EQ(answers, expect);
  }
}

// Build-while-serve under TSan: queries hammer the pod's live snapshot
// while the ingest thread publishes replacements into it. Correctness
// here is "every acquired snapshot answers like a private engine built
// over the prefix it declares"; the tsan job additionally proves the
// swap is race-free.
TEST(IngestServiceTest, ConcurrentQueriesDuringIngestAreSafe) {
  constexpr std::size_t kRows = 6000;
  constexpr std::size_t kEvery = 500;
  util::Rng data_rng(123);
  const core::Database db = data::UniformRandom(kRows, kColumns, 0.3, data_rng);
  const std::vector<core::Itemset> queries = MakeQueries();

  serve::SketchPod pod;
  ASSERT_TRUE(pod.AddStream("live"));
  auto service = IngestService::Create(
      Options("STREAM-SUBSAMPLE", kEvery),
      [&](std::shared_ptr<const Engine> engine, std::uint64_t rows) {
        pod.Publish("live", std::move(engine), rows);
      });
  ASSERT_NE(service, nullptr);

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<double> answers;
      while (!done.load(std::memory_order_acquire) &&
             !failed.load(std::memory_order_acquire)) {
        const auto engine = pod.Acquire("live");
        if (engine == nullptr) continue;  // nothing published yet
        engine->estimate_many(queries, &answers);
        // Sanity on every answer: frequencies are probabilities.
        for (const double f : answers) {
          if (!(f >= 0.0 && f <= 1.0)) {
            failed.store(true, std::memory_order_release);
            break;
          }
        }
      }
    });
  }
  for (std::size_t i = 0; i < db.num_rows(); ++i) service->Push(db.Row(i));
  service->Finish();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  // Every epoch made it into the pod, and the last one is resident.
  const auto state = pod.SnapshotOf("live");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->epoch, kRows / kEvery);
  EXPECT_EQ(state->rows_seen, kRows);
  const auto last = pod.Acquire("live");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->n(), kRows);
}

}  // namespace
}  // namespace ifsketch::ingest
