// The epoll reactor (serve/reactor.h) against the pipelining contract
// in serve/protocol.h:
//
//   - K request frames written back-to-back before any reply is read
//     come back as exactly K replies, in request order, bit-identical
//     (for deterministic opcodes) to the same frames served one at a
//     time by the blocking ServeConnection loop -- every opcode
//     including HEALTH and STATS, and mixed-opcode interleavings with a
//     refused (unknown-sketch) request in the middle.
//   - A heavy first request never lets the cheap requests behind it
//     overtake: replies are strictly ordered even when execution is not.
//   - A slow client delivering the same pipeline one byte per write
//     gets the same replies; a half-close (shutdown of the write side)
//     after the pipeline still yields every reply and then a clean EOF;
//     a mid-frame disconnect closes the connection without taking the
//     server down.
//   - The first malformed frame yields replies for the requests already
//     read, then exactly one kError frame, then EOF.
//   - A client that posts requests but never reads replies is hung up
//     once queued replies cross max_outbound_bytes
//     (serve_backpressure_hangups_total), the per-loop outbound gauge
//     drains back to zero, and the server keeps serving new
//     connections.
//   - max_connections rejects at accept (counted, connection slots
//     freed on close), instead of any exit-after-C behavior.
//   - An idle-churn wave of ~1k concurrent connections (clamped to
//     RLIMIT_NOFILE) is accepted, served, and drained. The whole file
//     runs under the CI TSan job.

#include "serve/reactor.h"

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/random.h"

namespace ifsketch::serve {
namespace {

core::SketchParams EstimatorParams() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// Spins until `done` holds or ~5 s pass -- for the cross-thread edges
/// (connection teardown, gauge drain) the reactor completes
/// asynchronously.
bool PollUntil(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// A router over one pod with a PRIVATE metrics registry (counters start
/// at zero), serving a file-backed sketch "s" and a stream name "live"
/// with one published snapshot -- every request opcode has a target.
struct Rig {
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::shared_ptr<Router> router;
  std::shared_ptr<Engine> direct;
};

Rig MakeRig(const std::string& stem, std::uint64_t seed) {
  Rig rig;
  rig.registry = std::make_unique<obs::MetricsRegistry>();
  util::Rng rng(seed);
  const core::Database db =
      data::PowerLawBaskets(600, 12, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, "SUBSAMPLE", EstimatorParams(), rng);
  EXPECT_TRUE(built.has_value());
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(built->Save(path));
  RouterOptions options;
  options.registry = rig.registry.get();
  rig.router = std::make_shared<Router>(
      std::vector<std::shared_ptr<SketchPod>>{std::make_shared<SketchPod>()},
      options);
  EXPECT_TRUE(rig.router->AddSketch("s", path));
  EXPECT_TRUE(rig.router->AddStream("live"));
  rig.direct = std::make_shared<Engine>(*std::move(built));
  rig.router->Publish("live", rig.direct, 600);
  return rig;
}

std::vector<std::vector<std::uint32_t>> SomeQueries(const Engine& engine,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> queries;
  const std::size_t d = engine.d();
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(d);
    while (t.size() < 2) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(d)));
    }
    std::vector<std::uint32_t> attrs;
    for (std::size_t a : t.Attributes()) {
      attrs.push_back(static_cast<std::uint32_t>(a));
    }
    queries.push_back(std::move(attrs));
  }
  return queries;
}

/// One request frame plus how its reply is checked: HEALTH and STATS
/// replies carry racy live values (inflight counts, wall-clock
/// histograms), so they compare structurally; everything else must match
/// the serial reference byte for byte.
struct Step {
  std::string frame;        ///< complete encoded request frame
  Opcode reply = Opcode::kError;  ///< expected reply opcode
  bool byte_exact = true;
};

std::string FrameOf(Opcode opcode, const std::string& body) {
  std::string out;
  EXPECT_TRUE(EncodeFrame(opcode, 0, body, &out));
  return out;
}

Step EstimateStep(const std::string& sketch,
                  const std::vector<std::vector<std::uint32_t>>& queries,
                  Opcode reply = Opcode::kEstimateReply) {
  std::string body;
  EXPECT_TRUE(EncodeQueryRequest({sketch, queries}, &body));
  return Step{FrameOf(Opcode::kEstimate, body), reply};
}

/// Every-opcode pipeline: queries, info, stream refresh/subscribe,
/// health, stats, and a refused unknown-sketch request in the middle.
std::vector<Step> FullPipeline(const Engine& engine) {
  std::vector<Step> steps;
  const auto queries = SomeQueries(engine, 40, 77);
  steps.push_back(EstimateStep("s", queries));
  {
    std::string body;
    EXPECT_TRUE(EncodeQueryRequest({"s", queries}, &body));
    steps.push_back(
        Step{FrameOf(Opcode::kAreFrequent, body), Opcode::kAreFrequentReply});
  }
  {
    std::string body;
    EXPECT_TRUE(EncodeInfoRequest("s", &body));
    steps.push_back(Step{FrameOf(Opcode::kInfo, body), Opcode::kInfoReply});
  }
  // Refused mid-pipeline: well-framed but unknown sketch. The server
  // answers kError and keeps going -- a refusal is not a framing loss.
  steps.push_back(
      EstimateStep("no_such_sketch", queries, Opcode::kError));
  {
    std::string body;
    EXPECT_TRUE(EncodeRefreshRequest("live", &body));
    steps.push_back(
        Step{FrameOf(Opcode::kRefresh, body), Opcode::kRefreshReply});
  }
  {
    // Epoch 1 already published: min_epoch 0 is satisfied immediately.
    std::string body;
    EXPECT_TRUE(EncodeSubscribeRequest({"live", 0, 1000}, &body));
    steps.push_back(
        Step{FrameOf(Opcode::kSubscribe, body), Opcode::kSubscribeReply});
  }
  steps.push_back(
      Step{FrameOf(Opcode::kHealth, ""), Opcode::kHealthReply, false});
  steps.push_back(
      Step{FrameOf(Opcode::kStats, ""), Opcode::kStatsReply, false});
  steps.push_back(EstimateStep("s", SomeQueries(engine, 7, 78)));
  return steps;
}

/// Serial reference: the same frames through the blocking
/// ServeConnection loop, one round trip at a time.
std::vector<Frame> SerialReplies(Router& router,
                                 const std::vector<Step>& steps) {
  auto [client_end, server_end] = LoopbackTransport::CreatePair();
  std::thread server([&router, t = std::move(server_end)]() mutable {
    ServeConnection(router, *t);
  });
  std::vector<Frame> replies;
  for (const Step& step : steps) {
    EXPECT_TRUE(client_end->WriteAll(step.frame.data(), step.frame.size()));
    Frame reply;
    EXPECT_EQ(ReadFrame(*client_end, &reply), ReadResult::kFrame);
    replies.push_back(std::move(reply));
  }
  client_end.reset();
  server.join();
  return replies;
}

/// Reads one reply per step off `transport` and checks each against the
/// serial reference.
void ExpectReplies(Transport& transport, const std::vector<Step>& steps,
                   const std::vector<Frame>& reference) {
  ASSERT_EQ(steps.size(), reference.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    Frame reply;
    ASSERT_EQ(ReadFrame(transport, &reply), ReadResult::kFrame)
        << "reply " << i;
    EXPECT_EQ(reply.header.opcode, steps[i].reply) << "reply " << i;
    EXPECT_EQ(reply.header.opcode, reference[i].header.opcode)
        << "reply " << i;
    EXPECT_EQ(reply.header.status, reference[i].header.status)
        << "reply " << i;
    if (steps[i].byte_exact) {
      EXPECT_EQ(reply.body, reference[i].body) << "reply " << i;
    } else if (steps[i].reply == Opcode::kHealthReply) {
      // Live load values race; the pod roster and health states do not.
      const auto got = DecodeHealthReply(reply.body);
      const auto want = DecodeHealthReply(reference[i].body);
      ASSERT_TRUE(got.has_value());
      ASSERT_TRUE(want.has_value());
      ASSERT_EQ(got->size(), want->size());
      for (std::size_t p = 0; p < got->size(); ++p) {
        EXPECT_EQ((*got)[p].health, (*want)[p].health);
      }
    } else if (steps[i].reply == Opcode::kStatsReply) {
      // Wall-clock histograms can never be byte-stable; the snapshot
      // must decode and carry the serving counters.
      const auto got = DecodeStatsReply(reply.body);
      ASSERT_TRUE(got.has_value());
      bool saw_requests = false;
      for (const StatsCounter& c : got->counters) {
        if (c.name.rfind("serve_requests_total", 0) == 0) {
          saw_requests = true;
        }
      }
      EXPECT_TRUE(saw_requests);
    }
  }
}

TEST(ServeReactorTest, PipelinedRepliesAreOrderedAndMatchSerialLoopback) {
  Rig rig = MakeRig("reactor_pipe", 11);
  const std::vector<Step> steps = FullPipeline(*rig.direct);
  const std::vector<Frame> reference = SerialReplies(*rig.router, steps);

  ReactorOptions options;
  options.loop_threads = 2;
  options.dispatch_threads = 4;
  ReactorServer reactor(*rig.router, options);
  ASSERT_TRUE(reactor.Listen(0));

  auto transport = TcpConnect(reactor.port());
  ASSERT_NE(transport, nullptr);
  // The whole pipeline in one write, before reading anything.
  std::string wire;
  for (const Step& step : steps) wire += step.frame;
  ASSERT_TRUE(transport->WriteAll(wire.data(), wire.size()));
  ExpectReplies(*transport, steps, reference);
}

TEST(ServeReactorTest, HeavyFirstRequestNeverReordersReplies) {
  Rig rig = MakeRig("reactor_heavy", 12);
  std::vector<Step> steps;
  // A 20k-query batch followed by 16 trivial info requests: the cheap
  // ones finish on the dispatch pool long before the heavy one, and
  // must still wait their turn on the wire.
  steps.push_back(EstimateStep("s", SomeQueries(*rig.direct, 20000, 90)));
  std::string info_body;
  ASSERT_TRUE(EncodeInfoRequest("s", &info_body));
  for (int i = 0; i < 16; ++i) {
    steps.push_back(
        Step{FrameOf(Opcode::kInfo, info_body), Opcode::kInfoReply});
  }
  const std::vector<Frame> reference = SerialReplies(*rig.router, steps);

  ReactorOptions options;
  options.dispatch_threads = 4;
  ReactorServer reactor(*rig.router, options);
  ASSERT_TRUE(reactor.Listen(0));
  auto transport = TcpConnect(reactor.port());
  ASSERT_NE(transport, nullptr);
  std::string wire;
  for (const Step& step : steps) wire += step.frame;
  ASSERT_TRUE(transport->WriteAll(wire.data(), wire.size()));
  ExpectReplies(*transport, steps, reference);
}

TEST(ServeReactorTest, ByteAtATimeClientGetsIdenticalReplies) {
  Rig rig = MakeRig("reactor_slow", 13);
  std::vector<Step> steps;
  steps.push_back(EstimateStep("s", SomeQueries(*rig.direct, 5, 91)));
  std::string info_body;
  ASSERT_TRUE(EncodeInfoRequest("s", &info_body));
  steps.push_back(
      Step{FrameOf(Opcode::kInfo, info_body), Opcode::kInfoReply});
  steps.push_back(
      Step{FrameOf(Opcode::kHealth, ""), Opcode::kHealthReply, false});
  const std::vector<Frame> reference = SerialReplies(*rig.router, steps);

  ReactorServer reactor(*rig.router);
  ASSERT_TRUE(reactor.Listen(0));
  auto transport = TcpConnect(reactor.port());
  ASSERT_NE(transport, nullptr);
  std::string wire;
  for (const Step& step : steps) wire += step.frame;
  // One byte per write: the incremental decoder sees every possible
  // partial-header and partial-body state.
  for (char byte : wire) {
    ASSERT_TRUE(transport->WriteAll(&byte, 1));
  }
  ExpectReplies(*transport, steps, reference);
}

TEST(ServeReactorTest, HalfCloseStillDeliversEveryReplyThenEof) {
  Rig rig = MakeRig("reactor_halfclose", 14);
  const std::vector<Step> steps = FullPipeline(*rig.direct);
  const std::vector<Frame> reference = SerialReplies(*rig.router, steps);

  ReactorServer reactor(*rig.router);
  ASSERT_TRUE(reactor.Listen(0));
  auto transport = TcpConnect(reactor.port());
  ASSERT_NE(transport, nullptr);
  std::string wire;
  for (const Step& step : steps) wire += step.frame;
  ASSERT_TRUE(transport->WriteAll(wire.data(), wire.size()));
  // Half-close before reading anything: the server must answer every
  // request already on the wire, then close its side.
  transport->CloseWrite();
  ExpectReplies(*transport, steps, reference);
  Frame extra;
  EXPECT_EQ(ReadFrame(*transport, &extra), ReadResult::kEof);
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 0; }));
}

TEST(ServeReactorTest, MidFrameDisconnectLeavesServerServing) {
  Rig rig = MakeRig("reactor_midframe", 15);
  ReactorServer reactor(*rig.router);
  ASSERT_TRUE(reactor.Listen(0));

  {
    auto transport = TcpConnect(reactor.port());
    ASSERT_NE(transport, nullptr);
    // A valid header promising 100 body bytes, then only 10, then a
    // hard disconnect.
    char header[kFrameHeaderBytes];
    ASSERT_TRUE(EncodeFrameHeader(Opcode::kInfo, 0, 100, header));
    ASSERT_TRUE(transport->WriteAll(header, sizeof(header)));
    ASSERT_TRUE(transport->WriteAll("0123456789", 10));
  }  // transport destructor closes the socket mid-frame
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 0; }));

  // And a partial HEADER disconnect for the other decoder state.
  {
    auto transport = TcpConnect(reactor.port());
    ASSERT_NE(transport, nullptr);
    ASSERT_TRUE(transport->WriteAll("IFSP", 4));
  }
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 0; }));

  // The server is still fully serviceable.
  SketchClient client(TcpConnect(reactor.port()));
  const auto info = client.Info("s");
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_EQ(info->d, rig.direct->d());
}

TEST(ServeReactorTest, MalformedMidPipelineAnswersPrefixThenOneError) {
  Rig rig = MakeRig("reactor_malformed", 16);
  std::vector<Step> steps;
  steps.push_back(EstimateStep("s", SomeQueries(*rig.direct, 5, 92)));
  std::string info_body;
  ASSERT_TRUE(EncodeInfoRequest("s", &info_body));
  steps.push_back(
      Step{FrameOf(Opcode::kInfo, info_body), Opcode::kInfoReply});
  const std::vector<Frame> reference = SerialReplies(*rig.router, steps);

  ReactorServer reactor(*rig.router);
  ASSERT_TRUE(reactor.Listen(0));
  auto transport = TcpConnect(reactor.port());
  ASSERT_NE(transport, nullptr);
  std::string wire;
  for (const Step& step : steps) wire += step.frame;
  wire += "GARBAGE-NOT-A-FRAME";  // framing lost from here on
  ASSERT_TRUE(transport->WriteAll(wire.data(), wire.size()));

  // The two valid requests are answered normally...
  ExpectReplies(*transport, steps, reference);
  // ...then exactly one kError frame, then EOF.
  Frame error;
  ASSERT_EQ(ReadFrame(*transport, &error), ReadResult::kFrame);
  EXPECT_EQ(error.header.opcode, Opcode::kError);
  EXPECT_EQ(error.header.status,
            static_cast<std::uint8_t>(Status::kBadRequest));
  Frame extra;
  EXPECT_EQ(ReadFrame(*transport, &extra), ReadResult::kEof);
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 0; }));
}

TEST(ServeReactorTest, NonReadingClientIsHungUpAtTheOutboundCap) {
  Rig rig = MakeRig("reactor_backpressure", 17);
  ReactorOptions options;
  options.loop_threads = 1;
  options.pause_outbound_bytes = 64u << 10;
  options.max_outbound_bytes = 256u << 10;  // the bound under test
  ReactorServer reactor(*rig.router, options);
  ASSERT_TRUE(reactor.Listen(0));

  obs::Counter* hangups =
      rig.registry->GetCounter("serve_backpressure_hangups_total");
  obs::Gauge* outbound = rig.registry->GetGauge(
      obs::LabeledName("serve_loop_outbound_bytes", "loop", "0"));

  {
    auto transport = TcpConnect(reactor.port());
    ASSERT_NE(transport, nullptr);
    // One request whose reply (240k answers x 8 bytes ~ 1.9 MB) blows
    // straight past max_outbound_bytes while the client reads nothing.
    std::vector<std::vector<std::uint32_t>> queries(
        240000, std::vector<std::uint32_t>{0, 1});
    std::string body;
    ASSERT_TRUE(EncodeQueryRequest({"s", queries}, &body));
    std::string frame;
    ASSERT_TRUE(EncodeFrame(Opcode::kEstimate, 0, body, &frame));
    ASSERT_TRUE(transport->WriteAll(frame.data(), frame.size()));
    // Never read: the server must hang up on its own.
    EXPECT_TRUE(PollUntil([&] { return hangups->Value() >= 1; }));
  }
  // Queued-reply accounting drains with the connection: bounded server
  // memory, not a leaked balance.
  EXPECT_TRUE(PollUntil([&] { return outbound->Value() == 0; }));
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 0; }));

  // The loop thread survived; a well-behaved client is unaffected.
  SketchClient client(TcpConnect(reactor.port()));
  const auto queries = SomeQueries(*rig.direct, 3, 93);
  const auto answers = client.EstimateMany("s", queries);
  ASSERT_TRUE(answers.has_value()) << client.last_error();
}

TEST(ServeReactorTest, MaxConnectionsRejectsAtAcceptAndFreesOnClose) {
  Rig rig = MakeRig("reactor_maxconns", 18);
  ReactorOptions options;
  options.loop_threads = 1;
  options.max_connections = 2;
  ReactorServer reactor(*rig.router, options);
  ASSERT_TRUE(reactor.Listen(0));

  // Two connections fill the cap; prove both are live with a round trip.
  auto first = std::make_unique<SketchClient>(TcpConnect(reactor.port()));
  auto second = std::make_unique<SketchClient>(TcpConnect(reactor.port()));
  ASSERT_TRUE(first->Info("s").has_value());
  ASSERT_TRUE(second->Info("s").has_value());

  // The third is accepted and immediately closed: its request is never
  // answered, and the rejection is counted.
  {
    auto transport = TcpConnect(reactor.port());
    ASSERT_NE(transport, nullptr);
    std::string body;
    ASSERT_TRUE(EncodeInfoRequest("s", &body));
    WriteFrame(*transport, Opcode::kInfo, 0, body);  // may race the close
    Frame reply;
    EXPECT_NE(ReadFrame(*transport, &reply), ReadResult::kFrame);
  }
  EXPECT_TRUE(PollUntil([&] { return reactor.rejected_total() >= 1; }));
  EXPECT_GE(
      rig.registry->GetCounter("serve_conns_rejected_total")->Value(), 1u);
  // Rejection never exits the server or disturbs standing connections.
  ASSERT_TRUE(first->Info("s").has_value());

  // Closing one connection frees its slot for a new client.
  first.reset();
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 1; }));
  SketchClient third(TcpConnect(reactor.port()));
  ASSERT_TRUE(third.Info("s").has_value()) << third.last_error();
}

TEST(ServeReactorTest, PipelinedClientMatchesSingleFrameBatch) {
  Rig rig = MakeRig("reactor_client_pipe", 19);
  ReactorServer reactor(*rig.router);
  ASSERT_TRUE(reactor.Listen(0));

  const auto queries = SomeQueries(*rig.direct, 257, 94);
  SketchClient single(TcpConnect(reactor.port()));
  const auto one_frame = single.EstimateMany("s", queries);
  ASSERT_TRUE(one_frame.has_value()) << single.last_error();

  SketchClient piped(TcpConnect(reactor.port()));
  const auto many_frames = piped.EstimateManyPipelined("s", queries, 8);
  ASSERT_TRUE(many_frames.has_value()) << piped.last_error();
  EXPECT_EQ(*many_frames, *one_frame);

  // A refused chunk fails the call but leaves the connection usable.
  const auto refused =
      piped.EstimateManyPipelined("no_such_sketch", queries, 4);
  EXPECT_FALSE(refused.has_value());
  EXPECT_EQ(piped.last_failure(), FailureKind::kRequest);
  const auto after = piped.EstimateManyPipelined("s", queries, 8);
  ASSERT_TRUE(after.has_value()) << piped.last_error();
  EXPECT_EQ(*after, *one_frame);
}

TEST(ServeReactorTest, IdleChurnAcceptsAndDrainsAThousandConnections) {
  // Each loopback connection costs two fds in this process; clamp the
  // wave to what RLIMIT_NOFILE leaves room for.
  std::size_t target = 1000;
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0) {
    const std::size_t budget =
        rl.rlim_cur > 128 ? (static_cast<std::size_t>(rl.rlim_cur) - 128) / 2
                          : 8;
    target = std::min(target, budget);
  }
  ASSERT_GE(target, 64u) << "fd limit too low to exercise connection scale";

  Rig rig = MakeRig("reactor_churn", 20);
  ReactorOptions options;
  options.loop_threads = 2;  // exercise round-robin assignment
  ReactorServer reactor(*rig.router, options);
  ASSERT_TRUE(reactor.Listen(0));

  std::vector<std::unique_ptr<SketchClient>> wave;
  wave.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    auto transport = TcpConnect(reactor.port());
    ASSERT_NE(transport, nullptr) << "connection " << i;
    wave.push_back(std::make_unique<SketchClient>(std::move(transport)));
  }
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == target; }));
  EXPECT_EQ(reactor.accepted_total(), target);

  // A sample of the held connections proves they are all being served,
  // not just counted.
  for (std::size_t i = 0; i < target; i += 97) {
    ASSERT_TRUE(wave[i]->Info("s").has_value()) << "connection " << i;
  }
  ASSERT_TRUE(wave.back()->Info("s").has_value());

  wave.clear();  // the whole wave hangs up at once
  EXPECT_TRUE(PollUntil([&] { return reactor.open_connections() == 0; }));

  // Both loops carried connections (round-robin, two loops, >= 64
  // connections).
  const std::uint64_t wakeups0 =
      rig.registry
          ->GetCounter(
              obs::LabeledName("serve_loop_wakeups_total", "loop", "0"))
          ->Value();
  const std::uint64_t wakeups1 =
      rig.registry
          ->GetCounter(
              obs::LabeledName("serve_loop_wakeups_total", "loop", "1"))
          ->Value();
  EXPECT_GT(wakeups0, 0u);
  EXPECT_GT(wakeups1, 0u);
}

TEST(ServeReactorTest, StopAcceptingDrainsAndWaitDrainedReturns) {
  Rig rig = MakeRig("reactor_drain", 21);
  ReactorServer reactor(*rig.router);
  ASSERT_TRUE(reactor.Listen(0));

  auto client =
      std::make_unique<SketchClient>(TcpConnect(reactor.port()));
  ASSERT_TRUE(client->Info("s").has_value());

  reactor.StopAccepting();
  // Standing connections keep working after the listener stops.
  ASSERT_TRUE(client->Info("s").has_value());

  std::thread closer([&client] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    client.reset();
  });
  reactor.WaitDrained();  // returns only once the connection is gone
  closer.join();
  EXPECT_EQ(reactor.open_connections(), 0u);
}

}  // namespace
}  // namespace ifsketch::serve
