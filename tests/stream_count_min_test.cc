#include "stream/count_min.h"

#include <gtest/gtest.h>

namespace ifsketch::stream {
namespace {

TEST(CountMinTest, NeverUndercounts) {
  util::Rng rng(1);
  CountMin cm(64, 4, rng);
  std::uint64_t truth[50] = {};
  util::Rng stream(2);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t item = stream.UniformInt(50);
    cm.Observe(item);
    ++truth[item];
  }
  for (std::uint64_t item = 0; item < 50; ++item) {
    EXPECT_GE(cm.Estimate(item), truth[item]) << item;
  }
}

TEST(CountMinTest, OvercountBounded) {
  util::Rng rng(3);
  const std::size_t w = 256;
  CountMin cm(w, 5, rng);
  std::uint64_t truth[100] = {};
  util::Rng stream(4);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t item = stream.UniformInt(100);
    cm.Observe(item);
    ++truth[item];
  }
  // Expected per-row collision mass ~ N/w; with depth 5 the min is very
  // likely within a few times that.
  const std::uint64_t slack = 8 * kN / w;
  for (std::uint64_t item = 0; item < 100; ++item) {
    EXPECT_LE(cm.Estimate(item), truth[item] + slack) << item;
  }
}

TEST(CountMinTest, WeightedUpdates) {
  util::Rng rng(5);
  CountMin cm(128, 4, rng);
  cm.Observe(7, 100);
  cm.Observe(9, 3);
  EXPECT_GE(cm.Estimate(7), 100u);
  EXPECT_EQ(cm.items_seen(), 103u);
}

TEST(CountMinTest, UnseenItemUsuallyZeroInSparseSketch) {
  util::Rng rng(6);
  CountMin cm(1024, 4, rng);
  for (std::uint64_t i = 0; i < 10; ++i) cm.Observe(i, 5);
  // With 10 occupied cells in 1024-wide rows, an unseen item collides in
  // all 4 rows with tiny probability.
  int zero = 0;
  for (std::uint64_t probe = 1000; probe < 1100; ++probe) {
    if (cm.Estimate(probe) == 0) ++zero;
  }
  EXPECT_GE(zero, 90);
}

TEST(CountMinTest, SizeIndependentOfUniverse) {
  util::Rng rng(7);
  CountMin a(128, 4, rng);
  CountMin b(128, 4, rng);
  a.Observe(3);
  b.Observe(0xffffffffffffffffULL);
  EXPECT_EQ(a.SizeBits(), b.SizeBits());
}

TEST(CountMinTest, DeterministicGivenSeeds) {
  util::Rng r1(8), r2(8);
  CountMin a(64, 3, r1);
  CountMin b(64, 3, r2);
  for (std::uint64_t i = 0; i < 100; ++i) {
    a.Observe(i * 17);
    b.Observe(i * 17);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Estimate(i * 17), b.Estimate(i * 17));
  }
}

}  // namespace
}  // namespace ifsketch::stream
