// util::MappedFile: identical bytes and alignment on the mmap and
// read-whole-file paths, RAII release, and error reporting.

#include "util/mapped_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace ifsketch::util {
namespace {

std::string WriteTempFile(const std::string& stem,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + stem;
  std::ofstream out(path, std::ios::binary);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.close();
  return path;
}

TEST(MappedFileTest, MappedAndBufferedSeeIdenticalBytes) {
  std::string contents;
  for (int i = 0; i < 10000; ++i) {
    contents.push_back(static_cast<char>(i * 31 + 7));
  }
  const std::string path = WriteTempFile("mapped_file_bytes.bin", contents);

  const auto mapped = MappedFile::Open(path);
  ASSERT_NE(mapped, nullptr);
  const auto buffered = MappedFile::OpenBuffered(path);
  ASSERT_NE(buffered, nullptr);
  EXPECT_FALSE(buffered->is_mapped());

  ASSERT_EQ(mapped->size(), contents.size());
  ASSERT_EQ(buffered->size(), contents.size());
  EXPECT_EQ(0, std::memcmp(mapped->data(), contents.data(), contents.size()));
  EXPECT_EQ(0,
            std::memcmp(buffered->data(), contents.data(), contents.size()));
}

TEST(MappedFileTest, DataIsCacheLineAlignedOnBothPaths) {
  const std::string path =
      WriteTempFile("mapped_file_align.bin", std::string(512, 'x'));
  for (const auto& file :
       {MappedFile::Open(path), MappedFile::OpenBuffered(path)}) {
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(file->data()) % 64, 0u);
  }
}

TEST(MappedFileTest, EmptyFileYieldsEmptyImage) {
  const std::string path = WriteTempFile("mapped_file_empty.bin", "");
  for (const auto& file :
       {MappedFile::Open(path), MappedFile::OpenBuffered(path)}) {
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->size(), 0u);
  }
}

TEST(MappedFileTest, MissingFileReportsError) {
  std::string error;
  EXPECT_EQ(MappedFile::Open(testing::TempDir() + "/no_such_file.bin",
                             &error),
            nullptr);
  EXPECT_NE(error.find("no_such_file.bin"), std::string::npos);
  error.clear();
  EXPECT_EQ(MappedFile::OpenBuffered(
                testing::TempDir() + "/no_such_file.bin", &error),
            nullptr);
  EXPECT_NE(error.find("no_such_file.bin"), std::string::npos);
}

}  // namespace
}  // namespace ifsketch::util
