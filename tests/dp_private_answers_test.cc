#include "dp/private_answers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "util/combinatorics.h"
#include "util/stats.h"

namespace ifsketch::dp {
namespace {

TEST(LaplaceTest, MomentsMatch) {
  util::Rng rng(1);
  const double scale = 0.7;
  util::RunningStat stat;
  for (int i = 0; i < 60000; ++i) stat.Add(SampleLaplace(scale, rng));
  EXPECT_NEAR(stat.Mean(), 0.0, 0.02);
  // Var(Laplace(b)) = 2 b^2.
  EXPECT_NEAR(stat.Variance(), 2.0 * scale * scale, 0.05);
}

TEST(LaplaceTest, AbsMeanIsScale) {
  util::Rng rng(2);
  const double scale = 0.3;
  util::RunningStat stat;
  for (int i = 0; i < 60000; ++i) {
    stat.Add(std::fabs(SampleLaplace(scale, rng)));
  }
  EXPECT_NEAR(stat.Mean(), scale, 0.01);
}

TEST(PrivateAnswersTest, NoiseScaleFormula) {
  util::Rng rng(3);
  const core::Database db = data::UniformRandom(10000, 10, 0.4, rng);
  PrivateAnswers priv(db, 2, 1.0, rng);
  // b = C(10,2) / (n * eps_dp) = 45 / 10000.
  EXPECT_NEAR(priv.NoiseScale(), 45.0 / 10000.0, 1e-12);
}

TEST(PrivateAnswersTest, AccuracyTracksScale) {
  util::Rng rng(4);
  const core::Database db = data::UniformRandom(20000, 8, 0.5, rng);
  PrivateAnswers priv(db, 2, 1.0, rng);
  util::RunningStat err;
  for (const auto& attrs : util::AllSubsets(8, 2)) {
    const core::Itemset t(8, attrs);
    err.Add(std::fabs(priv.EstimateFrequency(t) - db.Frequency(t)));
  }
  // Mean |Laplace(b)| = b (modulo clamping, negligible here).
  EXPECT_LT(err.Mean(), 4.0 * priv.NoiseScale());
}

TEST(PrivateAnswersTest, MoreRowsMeansLessNoise) {
  util::Rng rng(5);
  const core::Database small = data::UniformRandom(500, 8, 0.5, rng);
  const core::Database big = data::UniformRandom(50000, 8, 0.5, rng);
  PrivateAnswers ps(small, 2, 1.0, rng);
  PrivateAnswers pb(big, 2, 1.0, rng);
  EXPECT_GT(ps.NoiseScale(), pb.NoiseScale());
  EXPECT_NEAR(ps.NoiseScale() / pb.NoiseScale(), 100.0, 1e-9);
}

TEST(PrivateAnswersTest, EstimatesClampedToUnitInterval) {
  util::Rng rng(6);
  // Tiny database + strict privacy -> huge noise; clamping must hold.
  const core::Database db = data::UniformRandom(10, 6, 0.5, rng);
  PrivateAnswers priv(db, 2, 0.1, rng);
  for (const auto& attrs : util::AllSubsets(6, 2)) {
    const double f = priv.EstimateFrequency(core::Itemset(6, attrs));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

// The footnote's qualitative content: at fixed privacy budget, accuracy
// improves ~ linearly with n, so for n large the private answers become
// a valid (non-private-grade) estimator sketch.
TEST(PrivateAnswersTest, LargeNGivesValidEstimator) {
  util::Rng rng(7);
  const core::Database db = data::UniformRandom(100000, 8, 0.4, rng);
  PrivateAnswers priv(db, 2, 1.0, rng);
  double max_err = 0.0;
  for (const auto& attrs : util::AllSubsets(8, 2)) {
    const core::Itemset t(8, attrs);
    max_err = std::max(
        max_err, std::fabs(priv.EstimateFrequency(t) - db.Frequency(t)));
  }
  EXPECT_LT(max_err, 0.01);
}

}  // namespace
}  // namespace ifsketch::dp
