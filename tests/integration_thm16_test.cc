// End-to-end Theorem 16: reconstruction through REAL estimator sketches
// (SUBSAMPLE and median-boosted SUBSAMPLE), not synthetic noise -- the
// lower bound's encoding argument exercised against the very algorithm
// it proves optimal.

#include <gtest/gtest.h>

#include "lowerbound/estimator_lb.h"
#include "sketch/median_boost.h"
#include "sketch/subsample.h"
#include "util/random.h"

namespace ifsketch {
namespace {

TEST(Thm16EndToEndTest, KrsuThroughRealSubsampleSketch) {
  util::Rng rng(42);
  const std::size_t n = 20;
  const lowerbound::KrsuInstance inst(8, 3, n, rng);  // 64 queries
  const util::BitVector y = rng.RandomBits(n);
  const core::Database db = inst.BuildDatabase(y);

  // A For-All estimator sketch accurate enough relative to 1/n.
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.01;  // eps < 1/(2n) so rounding the decoded reals works
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);
  const auto est =
      algo.LoadEstimator(summary, p, db.num_columns(), db.num_rows());

  linalg::Vector answers(inst.NumQueries());
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    answers[r] = est->EstimateFrequency(inst.QueryItemset(r));
  }
  const util::BitVector recovered = inst.ReconstructL1(answers);
  EXPECT_LE(recovered.HammingDistance(y), n / 10)
      << "L1 reconstruction through a real sketch should recover nearly "
         "all secret bits";
}

TEST(Thm16EndToEndTest, AmplifiedThroughRealSketch) {
  util::Rng rng(43);
  const lowerbound::Thm16Amplified amp(8, 5, 3, 5, 8, rng);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);

  core::SketchParams p;
  p.k = 5;
  p.eps = 0.004;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);
  const auto est =
      algo.LoadEstimator(summary, p, db.num_columns(), db.num_rows());

  const util::BitVector recovered =
      amp.ReconstructPayload(*est, 40, rng);
  EXPECT_LE(recovered.HammingDistance(payload), amp.PayloadBits() / 4)
      << recovered.HammingDistance(payload) << "/" << amp.PayloadBits();
}

TEST(Thm16EndToEndTest, KrsuThroughBoostedSketch) {
  util::Rng rng(44);
  const std::size_t n = 16;
  const lowerbound::KrsuInstance inst(8, 3, n, rng);
  const util::BitVector y = rng.RandomBits(n);
  const core::Database db = inst.BuildDatabase(y);

  auto boosted = std::make_shared<sketch::MedianBoostSketch>(
      std::make_shared<sketch::SubsampleSketch>(), 0.05);
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.012;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  const auto summary = boosted->Build(db, p, rng);
  const auto est =
      boosted->LoadEstimator(summary, p, db.num_columns(), db.num_rows());

  linalg::Vector answers(inst.NumQueries());
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    answers[r] = est->EstimateFrequency(inst.QueryItemset(r));
  }
  const util::BitVector recovered = inst.ReconstructL1(answers);
  EXPECT_LE(recovered.HammingDistance(y), n / 8);
}

}  // namespace
}  // namespace ifsketch
