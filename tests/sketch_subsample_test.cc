#include "sketch/subsample.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/validate.h"
#include "data/generators.h"
#include "util/stats.h"

namespace ifsketch::sketch {
namespace {

core::SketchParams Params(core::Scope scope, core::Answer answer, double eps,
                          double delta, std::size_t k) {
  core::SketchParams p;
  p.k = k;
  p.eps = eps;
  p.delta = delta;
  p.scope = scope;
  p.answer = answer;
  return p;
}

TEST(SubsampleTest, SampleCountFollowsLemma9) {
  const std::size_t d = 20;
  const auto fe_ind = Params(core::Scope::kForEach, core::Answer::kIndicator,
                             0.1, 0.05, 2);
  const auto fe_est = Params(core::Scope::kForEach, core::Answer::kEstimator,
                             0.1, 0.05, 2);
  const auto fa_ind = Params(core::Scope::kForAll, core::Answer::kIndicator,
                             0.1, 0.05, 2);
  const auto fa_est = Params(core::Scope::kForAll, core::Answer::kEstimator,
                             0.1, 0.05, 2);
  EXPECT_EQ(SubsampleSketch::SampleCount(fe_ind, d),
            util::IndicatorSampleCount(0.1, 0.05));
  EXPECT_EQ(SubsampleSketch::SampleCount(fe_est, d),
            util::EstimatorSampleCount(0.1, 0.05));
  EXPECT_EQ(SubsampleSketch::SampleCount(fa_ind, d),
            util::ForAllIndicatorSampleCount(0.1, 0.05, d, 2));
  EXPECT_EQ(SubsampleSketch::SampleCount(fa_est, d),
            util::ForAllEstimatorSampleCount(0.1, 0.05, d, 2));
}

TEST(SubsampleTest, SummarySizeIsSampleRowsTimesD) {
  util::Rng rng(7);
  const core::Database db = data::UniformRandom(500, 12, 0.3, rng);
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForEach, core::Answer::kEstimator,
                        0.1, 0.05, 2);
  const auto summary = algo.Build(db, p, rng);
  EXPECT_EQ(summary.size(), SubsampleSketch::SampleCount(p, 12) * 12);
  EXPECT_EQ(summary.size(), algo.PredictedSizeBits(500, 12, p));
}

TEST(SubsampleTest, SizeIndependentOfN) {
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForAll, core::Answer::kEstimator,
                        0.05, 0.05, 3);
  EXPECT_EQ(algo.PredictedSizeBits(100, 16, p),
            algo.PredictedSizeBits(10000000, 16, p));
}

TEST(SubsampleTest, DecodeSampleShape) {
  util::Rng rng(8);
  const core::Database db = data::UniformRandom(200, 10, 0.5, rng);
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForEach, core::Answer::kIndicator,
                        0.2, 0.1, 2);
  const auto summary = algo.Build(db, p, rng);
  const core::Database sample = SubsampleSketch::DecodeSample(summary, 10);
  EXPECT_EQ(sample.num_columns(), 10u);
  EXPECT_EQ(sample.num_rows(), SubsampleSketch::SampleCount(p, 10));
}

TEST(SubsampleTest, SampledRowsComeFromDatabase) {
  // A database with a single distinct row: every sample must equal it.
  core::Database db(50, 8);
  for (std::size_t i = 0; i < 50; ++i) {
    db.Set(i, 1, true);
    db.Set(i, 6, true);
  }
  util::Rng rng(9);
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForEach, core::Answer::kEstimator,
                        0.2, 0.1, 2);
  const core::Database sample =
      SubsampleSketch::DecodeSample(algo.Build(db, p, rng), 8);
  for (std::size_t i = 0; i < sample.num_rows(); ++i) {
    EXPECT_EQ(sample.Row(i), db.Row(0));
  }
}

TEST(SubsampleTest, ForEachEstimatorAccuracyEmpirical) {
  // Measure the per-query failure rate over many independent sketches;
  // it must be below delta.
  util::Rng rng(10);
  const core::Database db = data::UniformRandom(400, 10, 0.4, rng);
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForEach, core::Answer::kEstimator,
                        0.1, 0.1, 2);
  const core::Itemset t(10, {2, 7});
  const double truth = db.Frequency(t);
  int failures = 0;
  constexpr int kTrials = 150;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto summary = algo.Build(db, p, rng);
    const auto est = algo.LoadEstimator(summary, p, 10, 400);
    if (std::fabs(est->EstimateFrequency(t) - truth) > p.eps) ++failures;
  }
  EXPECT_LE(failures, static_cast<int>(kTrials * p.delta));
}

TEST(SubsampleTest, ForAllEstimatorValidWithHighProbability) {
  util::Rng rng(11);
  const core::Database db = data::UniformRandom(300, 9, 0.4, rng);
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForAll, core::Answer::kEstimator,
                        0.1, 0.05, 2);
  int invalid = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto summary = algo.Build(db, p, rng);
    const auto est = algo.LoadEstimator(summary, p, 9, 300);
    const auto report =
        core::ValidateEstimatorExhaustive(db, *est, 2, p.eps);
    if (!report.valid()) ++invalid;
  }
  // delta = 5%; allow slack for only 30 trials.
  EXPECT_LE(invalid, 4);
}

TEST(SubsampleTest, ForAllIndicatorValidWithHighProbability) {
  util::Rng rng(12);
  const core::Database db = data::PlantedItemsets(
      400, 8, {{{1, 3}, 0.5}, {{2, 5}, 0.02}}, 0.05, rng);
  SubsampleSketch algo;
  const auto p = Params(core::Scope::kForAll, core::Answer::kIndicator,
                        0.2, 0.05, 2);
  int invalid = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto summary = algo.Build(db, p, rng);
    const auto ind = algo.LoadIndicator(summary, p, 8, 400);
    if (!core::ValidateIndicatorExhaustive(db, *ind, 2, p.eps).valid()) {
      ++invalid;
    }
  }
  EXPECT_LE(invalid, 4);
}

TEST(SubsampleTest, EstimatorNeedsQuadraticallyMoreSamplesThanIndicator) {
  const auto ind = Params(core::Scope::kForEach, core::Answer::kIndicator,
                          0.001, 0.05, 2);
  const auto est = Params(core::Scope::kForEach, core::Answer::kEstimator,
                          0.001, 0.05, 2);
  const double ratio =
      static_cast<double>(SubsampleSketch::SampleCount(est, 16)) /
      static_cast<double>(SubsampleSketch::SampleCount(ind, 16));
  // eps^-2 / eps^-1 = 1000; the Chernoff constants (16 vs 1/2) divide
  // that by 32, still leaving a wide gap.
  EXPECT_GT(ratio, 10.0);
}

}  // namespace
}  // namespace ifsketch::sketch
