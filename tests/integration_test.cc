// Cross-module integration tests: full pipelines from the paper, end to
// end, with every substrate involved.

#include <gtest/gtest.h>

#include <cmath>

#include "core/validate.h"
#include "data/generators.h"
#include "ecc/concatenated.h"
#include "lowerbound/index_protocol.h"
#include "lowerbound/thm13.h"
#include "lowerbound/thm15.h"
#include "mining/apriori.h"
#include "sketch/envelope.h"
#include "sketch/median_boost.h"
#include "sketch/reservoir.h"
#include "sketch/subsample.h"
#include "util/random.h"

namespace ifsketch {
namespace {

// Pipeline 1: stream -> reservoir -> summary -> mining, checked against
// batch SUBSAMPLE -> mining and exact mining.
TEST(IntegrationTest, StreamingSketchMiningPipeline) {
  util::Rng rng(100);
  const std::size_t d = 16;
  const core::Database db = data::PlantedItemsets(
      20000, d, {{{2, 7}, 0.35}, {{4, 9, 12}, 0.2}}, 0.06, rng);

  core::SketchParams p;
  p.k = 3;
  p.eps = 0.02;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;

  sketch::ReservoirBuilder builder(d, p, rng);
  for (std::size_t i = 0; i < db.num_rows(); ++i) builder.Observe(db.Row(i));

  sketch::SubsampleSketch algo;
  const auto streamed = builder.Finish();
  const auto est = algo.LoadEstimator(streamed, p, d, db.num_rows());

  mining::AprioriOptions opt;
  opt.min_frequency = 0.1;
  opt.max_size = 3;
  const auto exact = mining::MineDatabase(db, opt);
  const auto from_stream = mining::MineWithEstimator(*est, d, opt);
  const auto q = mining::CompareMinedSets(exact, from_stream);
  EXPECT_GT(q.Recall(), 0.9);
  EXPECT_GT(q.Precision(), 0.9);
}

// Pipeline 2: the full Theorem 15 encoding argument with a real sketch:
// message -> ECC -> payload -> database -> SUBSAMPLE summary ->
// indicator -> consistency decode -> ECC decode -> message.
TEST(IntegrationTest, Thm15FullEncodingArgumentThroughRealSketch) {
  util::Rng rng(101);
  const lowerbound::Thm15Instance inst(256, 3);
  const ecc::ConcatenatedCode code = ecc::ConcatenatedCode::Small();
  const std::size_t capacity = code.CapacityForBudget(inst.PayloadBits());
  const util::BitVector message = rng.RandomBits(capacity);
  const util::BitVector codeword = code.Encode(message);
  util::BitVector payload(inst.PayloadBits());
  for (std::size_t i = 0; i < codeword.size(); ++i) {
    payload.Set(i, codeword.Get(i));
  }
  const core::Database db = inst.BuildDatabase(payload);

  core::SketchParams p;
  p.k = 3;
  p.eps = lowerbound::Thm15Instance::kEps;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kIndicator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);
  const auto ind =
      algo.LoadIndicator(summary, p, db.num_columns(), db.num_rows());

  lowerbound::ConsistencyDecoderOptions options;
  const util::BitVector recovered =
      inst.ReconstructPayload(*ind, options, rng);
  const auto decoded =
      code.Decode(recovered.Slice(0, codeword.size()), capacity);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

// Pipeline 3: the Theorem 14 reduction through the median-boosted
// estimator (estimator -> indicator adapter -> INDEX game).
TEST(IntegrationTest, IndexGameThroughBoostedEstimator) {
  util::Rng rng(102);
  auto boosted = std::make_shared<sketch::MedianBoostSketch>(
      std::make_shared<sketch::SubsampleSketch>(), 0.1);
  lowerbound::SketchIndexProtocol protocol(boosted, 8, 2, 4);
  const comm::IndexGameResult r = comm::PlayIndexGame(protocol, 40, rng);
  EXPECT_GT(r.SuccessRate(), 2.0 / 3.0);
}

// Pipeline 4: envelope-selected algorithm is always valid on its shape.
TEST(IntegrationTest, EnvelopeSelectionProducesValidSketches) {
  util::Rng rng(103);
  struct Shape {
    std::size_t n, d;
    double eps;
  };
  for (const auto& shape :
       std::vector<Shape>{{30, 18, 0.05}, {5000, 10, 0.2}, {800, 14, 0.1}}) {
    const core::Database db =
        data::UniformRandom(shape.n, shape.d, 0.45, rng);
    core::SketchParams p;
    p.k = 2;
    p.eps = shape.eps;
    p.delta = 0.05;
    p.scope = core::Scope::kForAll;
    p.answer = core::Answer::kEstimator;
    const auto algo = sketch::BestNaiveAlgorithm(shape.n, shape.d, p);
    const auto summary = algo->Build(db, p, rng);
    EXPECT_EQ(summary.size(),
              algo->PredictedSizeBits(shape.n, shape.d, p));
    const auto est = algo->LoadEstimator(summary, p, shape.d, shape.n);
    const auto report =
        core::ValidateEstimatorExhaustive(db, *est, 2, p.eps);
    // Randomized algorithms may fail with probability delta; retry once.
    if (!report.valid()) {
      const auto summary2 = algo->Build(db, p, rng);
      const auto est2 = algo->LoadEstimator(summary2, p, shape.d, shape.n);
      EXPECT_TRUE(
          core::ValidateEstimatorExhaustive(db, *est2, 2, p.eps).valid())
          << algo->name() << " n=" << shape.n;
    }
  }
}

// Pipeline 5: Theorem 13 duplication to large n: the bound's statement
// "for n >= 1/eps" realized with n = 40/eps.
TEST(IntegrationTest, Thm13WithLargeN) {
  util::Rng rng(104);
  const lowerbound::Thm13Instance inst(16, 2, 8);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload, 40);  // n = 320
  EXPECT_EQ(db.num_rows(), 320u);

  core::SketchParams p;
  p.k = 2;
  p.eps = inst.SketchEps();
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kIndicator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);
  const auto ind = algo.LoadIndicator(summary, p, 16, 320);
  const util::BitVector rec = inst.ReconstructPayload(*ind);
  EXPECT_LE(rec.HammingDistance(payload), inst.PayloadBits() / 20);
}

// Pipeline 6: a census release serves marginal queries through a sketch
// whose size is a vanishing fraction of the data, with bounded error.
TEST(IntegrationTest, CensusMarginalRelease) {
  util::Rng rng(105);
  const core::Database db =
      data::CensusLike(50000, {{4, {}}, {3, {0.6, 0.3, 0.1}}, {2, {}}}, rng);
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.02;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);
  EXPECT_LT(summary.size(), db.PayloadBits() / 4);
  const auto est =
      algo.LoadEstimator(summary, p, db.num_columns(), db.num_rows());
  // Every cell of the (attr0 x attr1 x attr2) marginal.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      for (std::size_t c = 0; c < 2; ++c) {
        const core::Itemset cell(db.num_columns(), {a, 4 + b, 7 + c});
        EXPECT_NEAR(est->EstimateFrequency(cell), db.Frequency(cell),
                    p.eps);
      }
    }
  }
}

}  // namespace
}  // namespace ifsketch
