#include "core/database.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ifsketch::core {
namespace {

using util::BitVector;

Database MakeDb(const std::vector<std::string>& rows) {
  std::vector<BitVector> bits;
  for (const auto& r : rows) bits.push_back(BitVector::FromString(r));
  return Database::FromRows(std::move(bits));
}

TEST(DatabaseTest, EmptyDatabase) {
  Database db;
  EXPECT_EQ(db.num_rows(), 0u);
  EXPECT_EQ(db.num_columns(), 0u);
  EXPECT_EQ(db.Frequency(Itemset(0)), 0.0);
}

TEST(DatabaseTest, ZeroInitialized) {
  Database db(3, 5);
  EXPECT_EQ(db.num_rows(), 3u);
  EXPECT_EQ(db.num_columns(), 5u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(db.Row(i).Count(), 0u);
  }
}

TEST(DatabaseTest, SetAndGet) {
  Database db(2, 4);
  db.Set(1, 2, true);
  EXPECT_TRUE(db.Get(1, 2));
  EXPECT_FALSE(db.Get(0, 2));
  db.Set(1, 2, false);
  EXPECT_FALSE(db.Get(1, 2));
}

TEST(DatabaseTest, FrequencyExamplesFromDefinition) {
  // Rows containing T = {0, 2}: rows 0 and 2 -> f = 2/4.
  const Database db = MakeDb({"101", "100", "111", "010"});
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset(3, {0, 2})), 0.5);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset(3, {0})), 0.75);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset(3, {1})), 0.5);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset(3, {0, 1, 2})), 0.25);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset(3)), 1.0);  // empty itemset
}

TEST(DatabaseTest, SupportCount) {
  const Database db = MakeDb({"11", "10", "11", "00"});
  EXPECT_EQ(db.SupportCount(Itemset(2, {0, 1})), 2u);
  EXPECT_EQ(db.SupportCount(Itemset(2, {0})), 3u);
}

TEST(DatabaseTest, AppendRowSetsWidth) {
  Database db;
  db.AppendRow(BitVector::FromString("1010"));
  EXPECT_EQ(db.num_columns(), 4u);
  EXPECT_EQ(db.num_rows(), 1u);
  db.AppendRow(BitVector::FromString("0101"));
  EXPECT_EQ(db.num_rows(), 2u);
}

TEST(DatabaseTest, ColumnExtraction) {
  const Database db = MakeDb({"10", "11", "01"});
  EXPECT_EQ(db.Column(0).ToString(), "110");
  EXPECT_EQ(db.Column(1).ToString(), "011");
}

TEST(DatabaseTest, SetColumnRoundTrip) {
  Database db(3, 2);
  db.SetColumn(1, BitVector::FromString("101"));
  EXPECT_EQ(db.Column(1).ToString(), "101");
  EXPECT_EQ(db.Column(0).ToString(), "000");
}

TEST(DatabaseTest, HStackGluesColumns) {
  const Database left = MakeDb({"10", "01"});
  const Database right = MakeDb({"111", "000"});
  const Database joined = Database::HStack(left, right);
  EXPECT_EQ(joined.num_rows(), 2u);
  EXPECT_EQ(joined.num_columns(), 5u);
  EXPECT_EQ(joined.Row(0).ToString(), "10111");
  EXPECT_EQ(joined.Row(1).ToString(), "01000");
}

TEST(DatabaseTest, VStackGluesRows) {
  const Database top = MakeDb({"10"});
  const Database bottom = MakeDb({"01", "11"});
  const Database joined = Database::VStack(top, bottom);
  EXPECT_EQ(joined.num_rows(), 3u);
  EXPECT_EQ(joined.Row(2).ToString(), "11");
}

TEST(DatabaseTest, DuplicateRowsPreservesFrequencies) {
  const Database db = MakeDb({"10", "11", "00"});
  const Database dup = db.DuplicateRows(5);
  EXPECT_EQ(dup.num_rows(), 15u);
  for (const auto& t :
       {Itemset(2, {0}), Itemset(2, {1}), Itemset(2, {0, 1})}) {
    EXPECT_DOUBLE_EQ(dup.Frequency(t), db.Frequency(t));
  }
}

TEST(DatabaseTest, SliceColumnsKeepsRange) {
  const Database db = MakeDb({"110101", "001011"});
  const Database mid = db.SliceColumns(2, 3);
  EXPECT_EQ(mid.num_columns(), 3u);
  EXPECT_EQ(mid.Row(0).ToString(), "010");
  EXPECT_EQ(mid.Row(1).ToString(), "101");
}

TEST(DatabaseTest, PayloadBits) {
  EXPECT_EQ(Database(7, 11).PayloadBits(), 77u);
}

TEST(DatabaseTest, EqualityIsContentBased) {
  EXPECT_EQ(MakeDb({"10", "01"}), MakeDb({"10", "01"}));
  EXPECT_FALSE(MakeDb({"10"}) == MakeDb({"01"}));
  EXPECT_FALSE(MakeDb({"10"}) == MakeDb({"10", "10"}));
}

// Property: frequency is monotone non-increasing under itemset growth.
TEST(DatabaseTest, FrequencyMonotoneInItemset) {
  util::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Database db(30, 12);
    for (std::size_t i = 0; i < 30; ++i) {
      for (std::size_t j = 0; j < 12; ++j) {
        if (rng.Bernoulli(0.5)) db.Set(i, j, true);
      }
    }
    Itemset t(12);
    double prev = db.Frequency(t);
    for (std::size_t a : rng.SampleWithoutReplacement(12, 5)) {
      t.Add(a);
      const double cur = db.Frequency(t);
      EXPECT_LE(cur, prev + 1e-12);
      prev = cur;
    }
  }
}

// Property: HStack frequencies multiply for independent halves when the
// itemset splits across them... (not true in general; instead check that
// an itemset confined to one half has the same frequency as in that half).
TEST(DatabaseTest, HStackPreservesHalfFrequencies) {
  util::Rng rng(22);
  Database left(20, 6);
  Database right(20, 5);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (rng.Bernoulli(0.4)) left.Set(i, j, true);
    }
    for (std::size_t j = 0; j < 5; ++j) {
      if (rng.Bernoulli(0.4)) right.Set(i, j, true);
    }
  }
  const Database joined = Database::HStack(left, right);
  const Itemset tl(6, {1, 4});
  EXPECT_DOUBLE_EQ(joined.Frequency(tl.ShiftInto(11, 0)),
                   left.Frequency(tl));
  const Itemset tr(5, {0, 3});
  EXPECT_DOUBLE_EQ(joined.Frequency(tr.ShiftInto(11, 6)),
                   right.Frequency(tr));
}

}  // namespace
}  // namespace ifsketch::core
