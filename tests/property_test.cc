// Parameterized property sweeps (TEST_P) over the library's invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/validate.h"
#include "data/generators.h"
#include "ecc/concatenated.h"
#include "lowerbound/thm13.h"
#include "lowerbound/thm15.h"
#include "sketch/release_answers.h"
#include "sketch/release_db.h"
#include "sketch/subsample.h"
#include "util/combinatorics.h"
#include "util/random.h"

namespace ifsketch {
namespace {

// ---------------------------------------------------------------------
// Property: for every algorithm and every (scope, answer) combination,
// Build() emits exactly PredictedSizeBits() bits and the loaded view is
// valid on a random database (retrying once for the randomized ones).

using AlgoParams =
    std::tuple<int /*algo*/, core::Scope, core::Answer, double /*eps*/>;

class SketchContractTest : public ::testing::TestWithParam<AlgoParams> {
 protected:
  static std::unique_ptr<core::SketchAlgorithm> MakeAlgo(int id) {
    switch (id) {
      case 0:
        return std::make_unique<sketch::ReleaseDbSketch>();
      case 1:
        return std::make_unique<sketch::ReleaseAnswersSketch>();
      default:
        return std::make_unique<sketch::SubsampleSketch>();
    }
  }
};

TEST_P(SketchContractTest, SizeAndValidity) {
  const auto [algo_id, scope, answer, eps] = GetParam();
  util::Rng rng(7000 + algo_id);
  const std::size_t n = 400, d = 9, k = 2;
  const core::Database db = data::UniformRandom(n, d, 0.4, rng);
  const auto algo = MakeAlgo(algo_id);
  core::SketchParams p;
  p.k = k;
  p.eps = eps;
  p.delta = 0.05;
  p.scope = scope;
  p.answer = answer;

  const auto summary = algo->Build(db, p, rng);
  EXPECT_EQ(summary.size(), algo->PredictedSizeBits(n, d, p))
      << algo->name();

  int failures = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto fresh = algo->Build(db, p, rng);
    bool ok;
    if (answer == core::Answer::kEstimator) {
      const auto est = algo->LoadEstimator(fresh, p, d, n);
      ok = core::ValidateEstimatorExhaustive(db, *est, k, eps).valid();
    } else {
      const auto ind = algo->LoadIndicator(fresh, p, d, n);
      ok = core::ValidateIndicatorExhaustive(db, *ind, k, eps).valid();
    }
    if (ok) break;
    ++failures;
  }
  EXPECT_LT(failures, 2) << algo->name() << " repeatedly invalid";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllSemantics, SketchContractTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(core::Scope::kForAll,
                                         core::Scope::kForEach),
                       ::testing::Values(core::Answer::kIndicator,
                                         core::Answer::kEstimator),
                       ::testing::Values(0.1, 0.25)));

// ---------------------------------------------------------------------
// Property: the ECC corrects every error weight up to its radius on a
// sweep of message lengths (single and multi block).

class EccRadiusTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(EccRadiusTest, DecodesAtErrorRate) {
  const auto [message_bits, rate] = GetParam();
  util::Rng rng(8000 + message_bits);
  const ecc::ConcatenatedCode code = ecc::ConcatenatedCode::Small();
  for (int trial = 0; trial < 3; ++trial) {
    const util::BitVector msg = rng.RandomBits(message_bits);
    util::BitVector cw = code.Encode(msg);
    const auto flips =
        static_cast<std::size_t>(rate * static_cast<double>(cw.size()));
    for (std::size_t pos : rng.SampleWithoutReplacement(cw.size(), flips)) {
      cw.Flip(pos);
    }
    const auto decoded = code.Decode(cw, message_bits);
    ASSERT_TRUE(decoded.has_value())
        << "bits=" << message_bits << " rate=" << rate;
    EXPECT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadiusSweep, EccRadiusTest,
    ::testing::Combine(::testing::Values(1, 100, 160, 320, 500),
                       ::testing::Values(0.0, 0.01, 0.02, 0.04)));

// ---------------------------------------------------------------------
// Property: Theorem 13 reconstruction through RELEASE-DB is exact for
// every regime-legal (d, k, R) combination.

class Thm13SweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(Thm13SweepTest, LosslessSketchDecodesPayload) {
  const auto [d, k, rows] = GetParam();
  if (rows > util::Binomial(d / 2, k - 1)) {
    GTEST_SKIP() << "outside the 1/eps <= C(d/2, k-1) regime";
  }
  util::Rng rng(9000 + d * 31 + k * 7 + rows);
  const lowerbound::Thm13Instance inst(d, k, rows);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  sketch::ReleaseDbSketch algo;
  core::SketchParams p;
  p.k = k;
  p.eps = inst.SketchEps();
  p.answer = core::Answer::kIndicator;
  const auto summary = algo.Build(db, p, rng);
  const auto ind = algo.LoadIndicator(summary, p, d, db.num_rows());
  EXPECT_EQ(inst.ReconstructPayload(*ind), payload);
}

INSTANTIATE_TEST_SUITE_P(
    RegimeSweep, Thm13SweepTest,
    ::testing::Combine(::testing::Values(8, 12, 16, 24),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(2, 6, 15)));

// ---------------------------------------------------------------------
// Property: Theorem 15 constant-eps reconstruction is exact through an
// exact-threshold oracle for every shape in the small-v regime.

class Thm15SweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(Thm15SweepTest, ExactOracleDecodesPayload) {
  const auto [d, k] = GetParam();
  util::Rng rng(9500 + d * 13 + k);
  const lowerbound::Thm15Instance inst(d, k);
  ASSERT_LT(inst.v(), 50u);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  class Oracle : public core::FrequencyIndicator {
   public:
    Oracle(const core::Database* db, double eps) : db_(db), eps_(eps) {}
    bool IsFrequent(const core::Itemset& t) const override {
      return db_->Frequency(t) > eps_;
    }

   private:
    const core::Database* db_;
    double eps_;
  } oracle(&db, lowerbound::Thm15Instance::kEps);
  lowerbound::ConsistencyDecoderOptions options;
  EXPECT_EQ(inst.ReconstructPayload(oracle, options, rng), payload);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, Thm15SweepTest,
    ::testing::Combine(::testing::Values(8, 16, 32, 64, 128),
                       ::testing::Values(2, 3, 4)));

// ---------------------------------------------------------------------
// Property: subset rank/unrank is a bijection for larger shapes too
// (spot-checked by random ranks rather than exhaustion).

class RankSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RankSweepTest, RandomRanksRoundTrip) {
  const auto [n, k] = GetParam();
  util::Rng rng(9900 + n + k);
  const std::uint64_t total = util::Binomial(n, k);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t rank =
        rng.UniformInt(total < util::kBinomialInf ? total : (1ull << 40));
    const auto subset = util::UnrankSubset(rank, n, k);
    EXPECT_EQ(util::RankSubset(subset, n), rank);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LargeShapes, RankSweepTest,
    ::testing::Combine(::testing::Values(32, 64, 100),
                       ::testing::Values(2, 5, 8)));

}  // namespace
}  // namespace ifsketch
