#include "lowerbound/thm13.h"

#include <gtest/gtest.h>

#include "sketch/release_db.h"
#include "sketch/subsample.h"
#include "util/combinatorics.h"
#include "util/bitio.h"
#include "util/random.h"

namespace ifsketch::lowerbound {
namespace {

TEST(Thm13Test, ShapeAndCapacity) {
  const Thm13Instance inst(16, 3, 20);  // C(8,2)=28 >= 20 rows
  EXPECT_EQ(inst.PayloadBits(), 8u * 20u);
  EXPECT_NEAR(inst.RowFrequency(), 0.05, 1e-12);
  EXPECT_LT(inst.SketchEps(), inst.RowFrequency());
}

TEST(Thm13Test, DatabaseStructure) {
  util::Rng rng(1);
  const Thm13Instance inst(12, 2, 6);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  EXPECT_EQ(db.num_rows(), 6u);
  EXPECT_EQ(db.num_columns(), 12u);
  // First half of row i: exactly k-1 = 1 ones (a unique singleton).
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(db.Row(i).Slice(0, 6).Count(), 1u);
  }
  // Free half matches the payload.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(db.Get(i, 6 + j), payload.Get(inst.PayloadIndex(i, j)));
    }
  }
}

TEST(Thm13Test, RowPrefixesAreDistinct) {
  util::Rng rng(2);
  const Thm13Instance inst(16, 4, util::Binomial(8, 3));  // all 56 subsets
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    EXPECT_EQ(db.Row(i).Slice(0, 8).Count(), 3u);
    for (std::size_t i2 = i + 1; i2 < db.num_rows(); ++i2) {
      EXPECT_NE(db.Row(i).Slice(0, 8), db.Row(i2).Slice(0, 8));
    }
  }
}

TEST(Thm13Test, ProbeFrequencyEncodesPayloadBit) {
  util::Rng rng(3);
  const Thm13Instance inst(16, 3, 15);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  for (std::size_t i = 0; i < inst.num_rows(); ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double f = db.Frequency(inst.ProbeItemset(i, j));
      if (payload.Get(inst.PayloadIndex(i, j))) {
        EXPECT_DOUBLE_EQ(f, inst.RowFrequency());
      } else {
        EXPECT_DOUBLE_EQ(f, 0.0);
      }
    }
  }
}

TEST(Thm13Test, ProbeItemsetsHaveSizeK) {
  const Thm13Instance inst(20, 5, 30);
  for (std::size_t i = 0; i < 30; i += 7) {
    for (std::size_t j = 0; j < 10; j += 3) {
      EXPECT_EQ(inst.ProbeItemset(i, j).size(), 5u);
    }
  }
}

TEST(Thm13Test, DuplicationPreservesFrequencies) {
  util::Rng rng(4);
  const Thm13Instance inst(16, 2, 8);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database base = inst.BuildDatabase(payload, 1);
  const core::Database dup = inst.BuildDatabase(payload, 7);
  EXPECT_EQ(dup.num_rows(), 56u);
  for (std::size_t i = 0; i < 8; i += 3) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(dup.Frequency(inst.ProbeItemset(i, j)),
                       base.Frequency(inst.ProbeItemset(i, j)));
    }
  }
}

// The encoding argument end-to-end: a lossless sketch (RELEASE-DB)
// recovers every payload bit; this is the decoder the proof describes.
TEST(Thm13Test, ReconstructionThroughReleaseDb) {
  util::Rng rng(5);
  const Thm13Instance inst(16, 3, 25);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  sketch::ReleaseDbSketch algo;
  core::SketchParams params;
  params.k = 3;
  params.eps = inst.SketchEps();
  params.answer = core::Answer::kIndicator;
  const auto summary = algo.Build(db, params, rng);
  const auto indicator =
      algo.LoadIndicator(summary, params, 16, db.num_rows());
  EXPECT_EQ(inst.ReconstructPayload(*indicator), payload);
}

// A correctly-sized SUBSAMPLE sketch also supports reconstruction with
// high per-bit success -- sampling *can* carry the information, it just
// cannot be smaller than Omega(d/eps) bits (that's the theorem).
TEST(Thm13Test, ReconstructionThroughSubsampleMostBitsCorrect) {
  util::Rng rng(6);
  const Thm13Instance inst(20, 2, 10);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  sketch::SubsampleSketch algo;
  core::SketchParams params;
  params.k = 2;
  params.eps = inst.SketchEps();
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kIndicator;
  const auto summary = algo.Build(db, params, rng);
  const auto indicator =
      algo.LoadIndicator(summary, params, 20, db.num_rows());
  const util::BitVector recovered = inst.ReconstructPayload(*indicator);
  const std::size_t errors = recovered.HammingDistance(payload);
  // For-All validity with delta=5% means usually zero errors.
  EXPECT_LE(errors, inst.PayloadBits() / 20);
}

// The information-theoretic cliff: a *truncated* sample (fewer rows than
// Lemma 9 requires, i.e. a sketch below the lower bound's size) loses
// payload bits.
TEST(Thm13Test, TruncatedSketchLosesInformation) {
  util::Rng rng(7);
  const Thm13Instance inst(24, 2, 12);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  core::SketchParams params;
  params.k = 2;
  params.eps = inst.SketchEps();
  params.answer = core::Answer::kIndicator;
  // Keep only 4 sampled rows: far fewer than the 12 distinct rows, so
  // at least 8 rows' payloads are simply absent from the summary.
  sketch::SubsampleSketch algo;
  util::BitWriter w;
  for (int s = 0; s < 4; ++s) {
    w.WriteBits(db.Row(rng.UniformInt(db.num_rows())));
  }
  const auto indicator =
      algo.LoadIndicator(w.Finish(), params, 24, db.num_rows());
  const util::BitVector recovered = inst.ReconstructPayload(*indicator);
  const std::size_t errors = recovered.HammingDistance(payload);
  // Payload bits are random; missing rows decode to 0, wrong half the
  // time. Expect a substantial error mass.
  EXPECT_GT(errors, inst.PayloadBits() / 8);
}

TEST(Thm13Test, RegimeConditionEnforced) {
  // num_rows <= C(d/2, k-1) is required; the boundary works.
  const Thm13Instance boundary(12, 3, util::Binomial(6, 2));
  EXPECT_EQ(boundary.num_rows(), 15u);
  EXPECT_DEATH(Thm13Instance(12, 3, 16), "");
}

}  // namespace
}  // namespace ifsketch::lowerbound
