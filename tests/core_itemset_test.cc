#include "core/itemset.h"

#include <gtest/gtest.h>

namespace ifsketch::core {
namespace {

using util::BitVector;

TEST(ItemsetTest, EmptySetContainedInEverything) {
  const Itemset empty(5);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.ContainedIn(BitVector::FromString("00000")));
  EXPECT_TRUE(empty.ContainedIn(BitVector::FromString("11111")));
}

TEST(ItemsetTest, ConstructionFromAttributes) {
  const Itemset t(6, {1, 3, 5});
  EXPECT_EQ(t.universe(), 6u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Has(1));
  EXPECT_TRUE(t.Has(3));
  EXPECT_TRUE(t.Has(5));
  EXPECT_FALSE(t.Has(0));
  EXPECT_EQ(t.Attributes(), (std::vector<std::size_t>{1, 3, 5}));
}

TEST(ItemsetTest, FromIndicatorRoundTrip) {
  const BitVector ind = BitVector::FromString("010110");
  const Itemset t = Itemset::FromIndicator(ind);
  EXPECT_EQ(t.indicator(), ind);
  EXPECT_EQ(t.size(), 3u);
}

TEST(ItemsetTest, ContainmentSemantics) {
  const Itemset t(5, {0, 2});
  EXPECT_TRUE(t.ContainedIn(BitVector::FromString("10100")));
  EXPECT_TRUE(t.ContainedIn(BitVector::FromString("11111")));
  EXPECT_FALSE(t.ContainedIn(BitVector::FromString("10010")));
  EXPECT_FALSE(t.ContainedIn(BitVector::FromString("01100")));
}

TEST(ItemsetTest, UnionMergesAttributes) {
  const Itemset a(6, {0, 1});
  const Itemset b(6, {1, 4});
  const Itemset u = a.Union(b);
  EXPECT_EQ(u.Attributes(), (std::vector<std::size_t>{0, 1, 4}));
}

TEST(ItemsetTest, AddGrowsSet) {
  Itemset t(4);
  t.Add(2);
  t.Add(0);
  EXPECT_EQ(t.Attributes(), (std::vector<std::size_t>{0, 2}));
}

TEST(ItemsetTest, ShiftIntoRelocatesAttributes) {
  const Itemset t(4, {0, 3});
  const Itemset shifted = t.ShiftInto(10, 5);
  EXPECT_EQ(shifted.universe(), 10u);
  EXPECT_EQ(shifted.Attributes(), (std::vector<std::size_t>{5, 8}));
}

TEST(ItemsetTest, ShiftIntoZeroOffsetWidens) {
  const Itemset t(3, {1});
  const Itemset wide = t.ShiftInto(8, 0);
  EXPECT_EQ(wide.universe(), 8u);
  EXPECT_EQ(wide.Attributes(), (std::vector<std::size_t>{1}));
}

TEST(ItemsetTest, EqualityIsStructural) {
  EXPECT_EQ(Itemset(4, {1, 2}), Itemset(4, {2, 1}));
  EXPECT_FALSE(Itemset(4, {1}) == Itemset(4, {2}));
  EXPECT_FALSE(Itemset(4, {1}) == Itemset(5, {1}));
}

TEST(ItemsetTest, ToStringFormat) {
  EXPECT_EQ(Itemset(8, {2, 5}).ToString(), "{2,5}/d=8");
  EXPECT_EQ(Itemset(3).ToString(), "{}/d=3");
}

}  // namespace
}  // namespace ifsketch::core
