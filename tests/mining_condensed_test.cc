#include "mining/condensed.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "data/generators.h"
#include "util/bitvector.h"

namespace ifsketch::mining {
namespace {

core::Database MakeDb(const std::vector<std::string>& rows) {
  std::vector<util::BitVector> bits;
  for (const auto& r : rows) bits.push_back(util::BitVector::FromString(r));
  return core::Database::FromRows(std::move(bits));
}

std::vector<FrequentItemset> Mine(const core::Database& db, double minf,
                                  std::size_t max_size) {
  AprioriOptions opt;
  opt.min_frequency = minf;
  opt.max_size = max_size;
  return MineDatabase(db, opt);
}

TEST(CondensedTest, MaximalOfChain) {
  // All rows identical "1110": frequent sets are all subsets of {0,1,2};
  // the single maximal one is {0,1,2}.
  const core::Database db = MakeDb({"1110", "1110", "1110"});
  const auto frequent = Mine(db, 0.5, 4);
  EXPECT_EQ(frequent.size(), 7u);  // 2^3 - 1
  const auto maximal = MaximalItemsets(frequent);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].itemset, core::Itemset(4, {0, 1, 2}));
}

TEST(CondensedTest, ClosedKeepsFrequencyInformation) {
  // {0} appears in 3 rows, {0,1} in 2: both closed. {1} also appears in
  // exactly the rows of {0,1} -> {1} is NOT closed ({0,1} has the same
  // frequency).
  const core::Database db = MakeDb({"10", "11", "11", "00"});
  const auto frequent = Mine(db, 0.25, 2);
  const auto closed = ClosedItemsets(frequent);
  bool has_0 = false, has_01 = false, has_1 = false;
  for (const auto& c : closed) {
    if (c.itemset == core::Itemset(2, {0})) has_0 = true;
    if (c.itemset == core::Itemset(2, {1})) has_1 = true;
    if (c.itemset == core::Itemset(2, {0, 1})) has_01 = true;
  }
  EXPECT_TRUE(has_0);
  EXPECT_TRUE(has_01);
  EXPECT_FALSE(has_1);
}

TEST(CondensedTest, MaximalSubsetOfClosed) {
  // Every maximal itemset is closed (standard containment).
  util::Rng rng(1);
  const core::Database db =
      data::PowerLawBaskets(400, 12, 0.9, 0.5, 3, 3, 0.3, rng);
  const auto frequent = Mine(db, 0.1, 4);
  const auto maximal = MaximalItemsets(frequent);
  const auto closed = ClosedItemsets(frequent);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), frequent.size());
  for (const auto& m : maximal) {
    bool found = false;
    for (const auto& c : closed) {
      if (c.itemset == m.itemset) found = true;
    }
    EXPECT_TRUE(found) << m.itemset.ToString();
  }
}

TEST(CondensedTest, ExpandMaximalRecoversAllFrequent) {
  util::Rng rng(2);
  const core::Database db = data::PlantedItemsets(
      500, 10, {{{1, 3, 5, 7}, 0.4}, {{0, 2}, 0.3}}, 0.05, rng);
  const auto frequent = Mine(db, 0.15, 5);
  const auto maximal = MaximalItemsets(frequent);
  const auto expanded = ExpandMaximal(maximal);
  EXPECT_EQ(expanded.size(), frequent.size());
  // Every frequent itemset appears in the expansion.
  for (const auto& f : frequent) {
    bool found = false;
    for (const auto& e : expanded) {
      if (e == f.itemset) found = true;
    }
    EXPECT_TRUE(found) << f.itemset.ToString();
  }
}

TEST(CondensedTest, ExponentialBlowupExample) {
  // The paper's §1.1.1 observation: one frequent itemset of cardinality
  // c makes 2^c - 1 itemsets frequent, while the maximal family is tiny.
  const std::size_t c = 10;
  core::Database db(4, 12);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < c; ++j) db.Set(i, j, true);
  }
  const auto frequent = Mine(db, 0.5, c);
  EXPECT_EQ(frequent.size(), (std::size_t{1} << c) - 1);
  EXPECT_EQ(MaximalItemsets(frequent).size(), 1u);
  EXPECT_EQ(ClosedItemsets(frequent).size(), 1u);
}

TEST(ClosureTest, ClosureOfClosedIsIdentity) {
  const core::Database db = MakeDb({"110", "110", "011"});
  const core::Itemset t(3, {0, 1});
  EXPECT_EQ(Closure(db, t), t);
}

TEST(ClosureTest, ClosureAddsImpliedAttributes) {
  // {1} appears only in rows that also have 0 -> closure({1}) = {0,1}.
  const core::Database db = MakeDb({"110", "110", "001"});
  EXPECT_EQ(Closure(db, core::Itemset(3, {1})), core::Itemset(3, {0, 1}));
}

TEST(ClosureTest, ClosureIsIdempotentRandom) {
  util::Rng rng(3);
  const core::Database db = data::UniformRandom(60, 8, 0.5, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const core::Itemset t = core::RandomItemset(8, 2, rng);
    if (db.SupportCount(t) == 0) continue;
    const core::Itemset c1 = Closure(db, t);
    EXPECT_TRUE(c1.indicator().Contains(t.indicator()));
    EXPECT_EQ(Closure(db, c1), c1);
    // Closure preserves frequency.
    EXPECT_DOUBLE_EQ(db.Frequency(c1), db.Frequency(t));
  }
}

}  // namespace
}  // namespace ifsketch::mining
