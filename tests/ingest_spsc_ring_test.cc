// SpscRing: capacity rounding, FIFO order, full/empty edges, and a
// cross-thread producer/consumer stress (run under -fsanitize=thread by
// the CI tsan job -- a missing release/acquire pairing shows up there,
// not here).

#include "ingest/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace ifsketch::ingest {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, PopsInPushOrder) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPush(i + 100));
  }
  EXPECT_FALSE(ring.Empty());
  int value = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&value));
    EXPECT_EQ(value, i + 100);
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.TryPop(&value));
}

TEST(SpscRingTest, RejectsPushWhenFullAndRecovers) {
  SpscRing<int> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(int{i}));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  int value = -1;
  ASSERT_TRUE(ring.TryPop(&value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(ring.TryPush(99));  // one slot freed
  // Drain: 1, 2, 3, 99.
  for (const int expect : {1, 2, 3, 99}) {
    ASSERT_TRUE(ring.TryPop(&value));
    EXPECT_EQ(value, expect);
  }
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_pop = 0;
  std::uint64_t occupancy = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(std::uint64_t{i}));
    ++occupancy;
    // Drain down to one element whenever the ring fills, so the indices
    // wrap hundreds of times at varying occupancy.
    if (occupancy == ring.capacity()) {
      std::uint64_t value = 0;
      while (occupancy > 1) {
        ASSERT_TRUE(ring.TryPop(&value));
        EXPECT_EQ(value, next_pop++);
        --occupancy;
      }
    }
  }
  std::uint64_t value = 0;
  while (ring.TryPop(&value)) {
    EXPECT_EQ(value, next_pop++);
  }
  EXPECT_EQ(next_pop, 1000u);
}

TEST(SpscRingTest, MovesNonCopyableElements) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

// Producer and consumer on separate threads, ring much smaller than the
// item count so both the full and empty paths (and the cached-index
// refresh) are exercised constantly. Every value must arrive exactly
// once, in order -- and TSan must see no race on the slots.
TEST(SpscRingTest, CrossThreadStressPreservesOrder) {
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::vector<std::uint64_t> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (received.size() < kItems) {
      if (ring.TryPop(&value)) {
        received.push_back(value);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!ring.TryPush(std::uint64_t{i})) {
      std::this_thread::yield();
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i) << "out of order at " << i;
  }
  EXPECT_TRUE(ring.Empty());
}

}  // namespace
}  // namespace ifsketch::ingest
