#include "core/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>

#include "data/generators.h"
#include "sketch/builtin_algorithms.h"
#include "sketch/sketch_file.h"
#include "util/random.h"

namespace ifsketch {
namespace {

core::SketchParams SmallParams() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.2;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

TEST(SketchRegistryTest, BuiltinsAreRegistered) {
  core::SketchRegistry& registry = sketch::BuiltinRegistry();
  for (const char* name :
       {"RELEASE-DB", "RELEASE-ANSWERS", "SUBSAMPLE", "SUBSAMPLE-WOR",
        "IMPORTANCE-SAMPLE", "MEDIAN-BOOST(SUBSAMPLE)"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    const auto algo = registry.Create(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name(), name);
  }
}

TEST(SketchRegistryTest, UnknownNamesResolveToNull) {
  core::SketchRegistry& registry = sketch::BuiltinRegistry();
  for (const char* name :
       {"", "NO-SUCH-ALGORITHM", "subsample", "MEDIAN-BOOST",
        "MEDIAN-BOOST()", "MEDIAN-BOOST(NO-SUCH)", "NO-SUCH(SUBSAMPLE)",
        "MEDIAN-BOOST(SUBSAMPLE"}) {
    EXPECT_EQ(registry.Create(name), nullptr) << name;
    EXPECT_FALSE(registry.Contains(name)) << name;
  }
}

TEST(SketchRegistryTest, NestedCompositeResolves) {
  const auto algo = sketch::BuiltinRegistry().Create(
      "MEDIAN-BOOST(MEDIAN-BOOST(SUBSAMPLE))");
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->name(), "MEDIAN-BOOST(MEDIAN-BOOST(SUBSAMPLE))");
}

TEST(SketchRegistryTest, NamesListsPlainAndCombinatorEntries) {
  const auto names = sketch::BuiltinRegistry().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "SUBSAMPLE"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "MEDIAN-BOOST(...)"),
            names.end());
}

TEST(SketchRegistryTest, CustomRegistrationAndOverride) {
  core::SketchRegistry registry;
  sketch::RegisterBuiltinAlgorithms(registry);
  ASSERT_TRUE(registry.Contains("SUBSAMPLE"));
  // Re-registration replaces: point SUBSAMPLE at RELEASE-DB's factory.
  registry.Register("SUBSAMPLE", [] {
    return sketch::BuiltinRegistry().Create("RELEASE-DB");
  });
  EXPECT_EQ(registry.Create("SUBSAMPLE")->name(), "RELEASE-DB");
}

// The registry's whole purpose: every registered algorithm round-trips
// through the file format and resolves back to a queryable estimator
// whose summary is exactly PredictedSizeBits long.
class RegistryRoundTripTest : public testing::TestWithParam<const char*> {};

TEST_P(RegistryRoundTripTest, BuildWriteReadResolveLoad) {
  const std::string name = GetParam();
  util::Rng rng(20160625);
  const std::size_t n = 400, d = 10;
  const core::Database db = data::UniformRandom(n, d, 0.4, rng);
  const core::SketchParams params = SmallParams();

  const auto algo = sketch::BuiltinRegistry().Create(name);
  ASSERT_NE(algo, nullptr);

  sketch::SketchFile file;
  file.algorithm = algo->name();
  file.params = params;
  file.n = n;
  file.d = d;
  file.summary = algo->Build(db, params, rng);
  EXPECT_EQ(file.summary.size(), algo->PredictedSizeBits(n, d, params))
      << name << " emitted a different size than it predicts";

  std::stringstream stream;
  ASSERT_TRUE(sketch::WriteSketch(stream, file));
  const auto back = sketch::ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->algorithm, name);
  EXPECT_EQ(back->summary, file.summary);

  // Resolution recovers the producer from the name alone.
  const auto resolved = sketch::ResolveAlgorithm(*back);
  ASSERT_NE(resolved, nullptr) << name;
  EXPECT_EQ(resolved->name(), name);
  EXPECT_EQ(back->summary.size(),
            resolved->PredictedSizeBits(back->n, back->d, back->params));

  const auto estimator = sketch::LoadEstimator(*back);
  ASSERT_NE(estimator, nullptr);
  // The reloaded estimator answers sensibly (within the trivial bounds;
  // accuracy itself is each algorithm's own test suite's job).
  const core::Itemset t(d, {1, 4});
  const double f = estimator->EstimateFrequency(t);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  EXPECT_NEAR(f, db.Frequency(t), 3 * params.eps);
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, RegistryRoundTripTest,
                         testing::Values("RELEASE-DB", "RELEASE-ANSWERS",
                                         "SUBSAMPLE", "SUBSAMPLE-WOR",
                                         "IMPORTANCE-SAMPLE",
                                         "MEDIAN-BOOST(SUBSAMPLE)"),
                         [](const auto& info) {
                           std::string safe = info.param;
                           for (char& c : safe) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return safe;
                         });

}  // namespace
}  // namespace ifsketch
