#include "sketch/sketch_file.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generators.h"
#include "sketch/subsample.h"

namespace ifsketch::sketch {
namespace {

SketchFile MakeFile(util::Rng& rng) {
  const core::Database db = data::UniformRandom(200, 14, 0.4, rng);
  SubsampleSketch algo;
  SketchFile file;
  file.algorithm = algo.name();
  file.params.k = 3;
  file.params.eps = 0.07;
  file.params.delta = 0.02;
  file.params.scope = core::Scope::kForEach;
  file.params.answer = core::Answer::kEstimator;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo.Build(db, file.params, rng);
  return file;
}

TEST(SketchFileTest, StreamRoundTrip) {
  util::Rng rng(1);
  const SketchFile file = MakeFile(rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  const auto back = ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->algorithm, file.algorithm);
  EXPECT_EQ(back->params.k, file.params.k);
  EXPECT_DOUBLE_EQ(back->params.eps, file.params.eps);
  EXPECT_DOUBLE_EQ(back->params.delta, file.params.delta);
  EXPECT_EQ(back->params.scope, file.params.scope);
  EXPECT_EQ(back->params.answer, file.params.answer);
  EXPECT_EQ(back->n, file.n);
  EXPECT_EQ(back->d, file.d);
  EXPECT_EQ(back->summary, file.summary);
}

TEST(SketchFileTest, ReloadedSummaryIsQueryable) {
  util::Rng rng(2);
  const core::Database db = data::UniformRandom(300, 10, 0.5, rng);
  SubsampleSketch algo;
  SketchFile file;
  file.algorithm = algo.name();
  file.params.k = 2;
  file.params.eps = 0.1;
  file.params.scope = core::Scope::kForEach;
  file.params.answer = core::Answer::kEstimator;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo.Build(db, file.params, rng);

  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  const auto back = ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  const auto est =
      algo.LoadEstimator(back->summary, back->params, back->d, back->n);
  const core::Itemset t(10, {1, 7});
  EXPECT_NEAR(est->EstimateFrequency(t), db.Frequency(t), 0.15);
}

TEST(SketchFileTest, RejectsBadMagic) {
  std::stringstream stream("NOPExxxxxxxxxxxxxxxxx");
  EXPECT_FALSE(ReadSketch(stream).has_value());
}

TEST(SketchFileTest, RejectsTruncatedPayload) {
  util::Rng rng(3);
  const SketchFile file = MakeFile(rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_FALSE(ReadSketch(half).has_value());
}

TEST(SketchFileTest, FileRoundTrip) {
  util::Rng rng(4);
  const SketchFile file = MakeFile(rng);
  const std::string path = testing::TempDir() + "/ifsketch_sketch_test.bin";
  ASSERT_TRUE(SaveSketchFile(path, file));
  const auto back = LoadSketchFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->summary, file.summary);
}

TEST(SketchFileTest, ZeroBitSummary) {
  SketchFile file;
  file.algorithm = "EMPTY";
  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  const auto back = ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->summary.size(), 0u);
}

}  // namespace
}  // namespace ifsketch::sketch
