#include "sketch/sketch_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "data/generators.h"
#include "sketch/subsample.h"

namespace ifsketch::sketch {
namespace {

SketchFile MakeFile(util::Rng& rng) {
  const core::Database db = data::UniformRandom(200, 14, 0.4, rng);
  SubsampleSketch algo;
  SketchFile file;
  file.algorithm = algo.name();
  file.params.k = 3;
  file.params.eps = 0.07;
  file.params.delta = 0.02;
  file.params.scope = core::Scope::kForEach;
  file.params.answer = core::Answer::kEstimator;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo.Build(db, file.params, rng);
  return file;
}

TEST(SketchFileTest, StreamRoundTrip) {
  util::Rng rng(1);
  const SketchFile file = MakeFile(rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  const auto back = ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->algorithm, file.algorithm);
  EXPECT_EQ(back->params.k, file.params.k);
  EXPECT_DOUBLE_EQ(back->params.eps, file.params.eps);
  EXPECT_DOUBLE_EQ(back->params.delta, file.params.delta);
  EXPECT_EQ(back->params.scope, file.params.scope);
  EXPECT_EQ(back->params.answer, file.params.answer);
  EXPECT_EQ(back->n, file.n);
  EXPECT_EQ(back->d, file.d);
  EXPECT_EQ(back->summary, file.summary);
}

TEST(SketchFileTest, ReloadedSummaryIsQueryable) {
  util::Rng rng(2);
  const core::Database db = data::UniformRandom(300, 10, 0.5, rng);
  SubsampleSketch algo;
  SketchFile file;
  file.algorithm = algo.name();
  file.params.k = 2;
  file.params.eps = 0.1;
  file.params.scope = core::Scope::kForEach;
  file.params.answer = core::Answer::kEstimator;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo.Build(db, file.params, rng);

  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  const auto back = ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  const auto est =
      algo.LoadEstimator(back->summary, back->params, back->d, back->n);
  const core::Itemset t(10, {1, 7});
  EXPECT_NEAR(est->EstimateFrequency(t), db.Frequency(t), 0.15);
}

TEST(SketchFileTest, RejectsBadMagic) {
  std::stringstream stream("NOPExxxxxxxxxxxxxxxxx");
  EXPECT_FALSE(ReadSketch(stream).has_value());
}

TEST(SketchFileTest, RejectsTruncatedPayload) {
  util::Rng rng(3);
  const SketchFile file = MakeFile(rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_FALSE(ReadSketch(half).has_value());
}

TEST(SketchFileTest, FileRoundTrip) {
  util::Rng rng(4);
  const SketchFile file = MakeFile(rng);
  const std::string path = testing::TempDir() + "/ifsketch_sketch_test.bin";
  ASSERT_TRUE(SaveSketchFile(path, file));
  const auto back = LoadSketchFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->summary, file.summary);
}

// Header layout (see sketch_file.cc): magic 4, version 2, name-length 2,
// name L, k 4, eps 8, delta 8, scope 1, answer 1, n 8, d 8, bits 8.
// For algorithm "SUBSAMPLE" (L=9): k@17, eps@21, scope@37, answer@38,
// bits@55.
std::string SerializedFile(util::Rng& rng) {
  const SketchFile file = MakeFile(rng);
  EXPECT_EQ(file.algorithm.size(), 9u);
  std::stringstream stream;
  EXPECT_TRUE(WriteSketch(stream, file));
  return stream.str();
}

TEST(SketchFileTest, RejectsOutOfRangeScopeByte) {
  util::Rng rng(5);
  std::string data = SerializedFile(rng);
  ASSERT_EQ(static_cast<unsigned char>(data[37]) & 0xfe, 0);  // sanity
  for (const unsigned char bad : {2, 7, 255}) {
    data[37] = static_cast<char>(bad);
    std::stringstream corrupt(data);
    EXPECT_FALSE(ReadSketch(corrupt).has_value()) << int{bad};
  }
}

TEST(SketchFileTest, RejectsOutOfRangeAnswerByte) {
  util::Rng rng(6);
  std::string data = SerializedFile(rng);
  for (const unsigned char bad : {2, 128}) {
    data[38] = static_cast<char>(bad);
    std::stringstream corrupt(data);
    EXPECT_FALSE(ReadSketch(corrupt).has_value()) << int{bad};
  }
}

TEST(SketchFileTest, RejectsZeroK) {
  util::Rng rng(7);
  std::string data = SerializedFile(rng);
  data[17] = data[18] = data[19] = data[20] = 0;
  std::stringstream corrupt(data);
  EXPECT_FALSE(ReadSketch(corrupt).has_value());
}

TEST(SketchFileTest, RejectsNonFiniteOrOutOfRangeEps) {
  util::Rng rng(8);
  const std::string data = SerializedFile(rng);
  const auto with_eps = [&data](double eps) {
    std::string patched = data;
    std::memcpy(&patched[21], &eps, sizeof(eps));
    return patched;
  };
  for (const double bad :
       {std::nan(""), std::numeric_limits<double>::infinity(), -0.5, 0.0,
        1.5}) {
    std::stringstream corrupt(with_eps(bad));
    EXPECT_FALSE(ReadSketch(corrupt).has_value()) << bad;
  }
  std::stringstream fine(with_eps(0.25));
  EXPECT_TRUE(ReadSketch(fine).has_value());
}

TEST(SketchFileTest, RejectsAbsurdBitCountWithoutAllocating) {
  util::Rng rng(9);
  std::string data = SerializedFile(rng);
  // Claim ~2^60 payload bits with only a few real payload bytes behind
  // them: must fail cleanly (and not try a 2^57-byte allocation). The
  // all-ones count additionally probes the (bits + 7) / 8 overflow.
  for (const std::uint64_t huge :
       {std::uint64_t{1} << 60, ~std::uint64_t{0}, ~std::uint64_t{0} - 6}) {
    std::string patched = data;
    std::memcpy(&patched[55], &huge, sizeof(huge));
    std::stringstream corrupt(patched);
    EXPECT_FALSE(ReadSketch(corrupt).has_value()) << huge;
  }
}

TEST(SketchFileTest, WriteRefusesOversizedAlgorithmName) {
  util::Rng rng(11);
  SketchFile file = MakeFile(rng);
  file.algorithm.assign(70000, 'x');  // would truncate the u16 length
  std::stringstream stream;
  EXPECT_FALSE(WriteSketch(stream, file));
}

TEST(SketchFileTest, WriteRefusesParamsReadWouldReject) {
  util::Rng rng(10);
  SketchFile file = MakeFile(rng);
  file.params.k = 0;
  std::stringstream stream;
  EXPECT_FALSE(WriteSketch(stream, file));
  file.params.k = 2;
  file.params.eps = 0.0;
  std::stringstream stream2;
  EXPECT_FALSE(WriteSketch(stream2, file));
}

// A sink that accepts only `capacity` bytes and then fails -- a tiny
// full disk observed at write time.
class BoundedSink : public std::streambuf {
 public:
  explicit BoundedSink(std::streamsize capacity) : capacity_(capacity) {}

 protected:
  int_type overflow(int_type ch) override {
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    const std::streamsize take = std::min(n, capacity_ - written_);
    written_ += take;
    return take;
  }

 private:
  std::streamsize capacity_;
  std::streamsize written_ = 0;
};

// A sink that swallows every byte but rejects the final flush -- a full
// disk that only surfaces when the buffer is pushed through (the
// classic ofstream failure mode WriteSketch must not miss).
class FailOnSyncSink : public std::streambuf {
 protected:
  int_type overflow(int_type ch) override { return ch; }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    return n;
  }
  int sync() override { return -1; }
};

TEST(SketchFileTest, WriteReportsShortWrite) {
  util::Rng rng(11);
  const SketchFile file = MakeFile(rng);
  for (const std::streamsize capacity : {0, 3, 20, 60}) {
    BoundedSink sink(capacity);
    std::ostream out(&sink);
    EXPECT_FALSE(WriteSketch(out, file)) << capacity;
  }
}

TEST(SketchFileTest, WriteReportsFailureAtFinalFlush) {
  util::Rng rng(12);
  const SketchFile file = MakeFile(rng);
  FailOnSyncSink sink;
  std::ostream out(&sink);
  EXPECT_FALSE(WriteSketch(out, file));
}

TEST(SketchFileTest, ZeroBitSummary) {
  SketchFile file;
  file.algorithm = "EMPTY";
  std::stringstream stream;
  ASSERT_TRUE(WriteSketch(stream, file));
  const auto back = ReadSketch(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->summary.size(), 0u);
}

}  // namespace
}  // namespace ifsketch::sketch
