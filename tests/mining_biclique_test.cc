#include "mining/biclique.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "data/generators.h"
#include "util/bitvector.h"
#include "util/combinatorics.h"

namespace ifsketch::mining {
namespace {

core::Database MakeDb(const std::vector<std::string>& rows) {
  std::vector<util::BitVector> bits;
  for (const auto& r : rows) bits.push_back(util::BitVector::FromString(r));
  return core::Database::FromRows(std::move(bits));
}

TEST(BicliqueTest, FromItemsetCollectsSupport) {
  const core::Database db = MakeDb({"110", "111", "011", "100"});
  const Biclique b = BicliqueFromItemset(db, core::Itemset(3, {0, 1}));
  EXPECT_EQ(b.attributes, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(b.rows, (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(IsBiclique(db, b));
}

TEST(BicliqueTest, InducedSubgraphIsAlwaysComplete) {
  // The paper's forward direction: itemset -> complete bipartite
  // subgraph, for random databases and random itemsets.
  util::Rng rng(1);
  const core::Database db = data::UniformRandom(40, 10, 0.5, rng);
  for (int trial = 0; trial < 30; ++trial) {
    const core::Itemset t = core::RandomItemset(10, 3, rng);
    EXPECT_TRUE(IsBiclique(db, BicliqueFromItemset(db, t)));
  }
}

TEST(BicliqueTest, IsBicliqueDetectsMissingEdge) {
  const core::Database db = MakeDb({"10", "01"});
  Biclique b;
  b.rows = {0, 1};
  b.attributes = {0};
  EXPECT_FALSE(IsBiclique(db, b));  // row 1 lacks attribute 0
}

TEST(BicliqueTest, ExactSearchFindsPlantedBalancedBiclique) {
  // Plant a 4x4 all-ones block in an otherwise sparse database.
  util::Rng rng(2);
  core::Database db = data::UniformRandom(16, 10, 0.1, rng);
  for (std::size_t i = 3; i < 7; ++i) {
    for (std::size_t j = 2; j < 6; ++j) db.Set(i, j, true);
  }
  const Biclique best = MaxBalancedBicliqueExact(db);
  EXPECT_GE(best.BalancedSize(), 4u);
  EXPECT_TRUE(IsBiclique(db, best));
}

TEST(BicliqueTest, BalancedSizeMatchesFrequentItemsetView) {
  // The paper's equivalence: a balanced biclique with s rows per side
  // exists iff some itemset of cardinality s has support count >= s.
  util::Rng rng(3);
  const core::Database db = data::UniformRandom(20, 8, 0.45, rng);
  const Biclique best = MaxBalancedBicliqueExact(db);
  const std::size_t s = best.BalancedSize();
  // Forward: best's attribute set (restricted to s attributes) is an
  // itemset with support >= s.
  core::Itemset witness(8);
  for (std::size_t i = 0; i < s; ++i) witness.Add(best.attributes[i]);
  EXPECT_GE(db.SupportCount(witness), s);
  // Converse: no itemset of cardinality s+1 has support >= s+1 (else the
  // search would have found a bigger balanced biclique).
  for (const auto& attrs : util::AllSubsets(8, s + 1)) {
    EXPECT_LT(db.SupportCount(core::Itemset(8, attrs)), s + 1);
  }
}

TEST(BicliqueTest, EmptyDatabaseGivesEmptyBiclique) {
  const core::Database db(4, 3);  // all zeros
  const Biclique best = MaxBalancedBicliqueExact(db);
  EXPECT_EQ(best.BalancedSize(), 0u);
}

}  // namespace
}  // namespace ifsketch::mining
