// The full serving stack over the loopback transport: for EVERY
// registered algorithm, answers served through
// protocol -> ServeConnection -> Router -> SketchPod -> Engine are
// bit-identical to direct Engine queries on the same file; malformed
// frames (truncated header, oversized declared length, unknown opcode,
// version mismatch) are rejected without crashing the server and without
// reading past the declared frame length.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "serve/client.h"
#include "util/random.h"

namespace ifsketch::serve {
namespace {

core::SketchParams EstimatorParams() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// Router serving one sketch name from one saved file, plus the direct
/// engine for reference answers.
struct Rig {
  std::shared_ptr<Router> router;
  Engine direct;
};

Rig MakeRig(const std::string& algorithm, const std::string& stem,
            std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db = data::PowerLawBaskets(600, 12, 1.0, 0.5, 4, 3,
                                                  0.2, rng);
  auto built = Engine::Build(db, algorithm, EstimatorParams(), rng);
  EXPECT_TRUE(built.has_value()) << algorithm;
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(built->Save(path));
  auto router = std::make_shared<Router>(
      std::vector<std::shared_ptr<SketchPod>>{
          std::make_shared<SketchPod>()});
  EXPECT_TRUE(router->AddSketch("s", path));
  return Rig{std::move(router), *std::move(built)};
}

/// Runs ServeConnection on a loopback peer; joins on destruction.
class LoopbackServer {
 public:
  explicit LoopbackServer(std::shared_ptr<Router> router) {
    auto [client_end, server_end] = LoopbackTransport::CreatePair();
    client_end_ = std::move(client_end);
    thread_ = std::thread(
        [router = std::move(router), t = std::move(server_end)]() mutable {
          ServeConnection(*router, *t);
        });
  }
  ~LoopbackServer() {
    client_end_.reset();  // hang up so the server loop sees EOF
    thread_.join();
  }

  std::unique_ptr<Transport> TakeClientEnd() {
    return std::move(client_end_);
  }
  Transport& client_end() { return *client_end_; }

 private:
  std::unique_ptr<Transport> client_end_;
  std::thread thread_;
};

/// Queries of every size the sketch supports (RELEASE-ANSWERS answers
/// only |T| = k; sample-backed algorithms answer all sizes).
std::vector<std::vector<std::uint32_t>> SupportedQueries(
    const Engine& engine, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> queries;
  const std::size_t d = engine.d();
  for (std::size_t size = 1; size <= 4; ++size) {
    if (!engine.supports_query_size(size)) continue;
    for (int i = 0; i < 25; ++i) {
      core::Itemset t(d);
      while (t.size() < size) {
        t.Add(static_cast<std::size_t>(rng.UniformInt(d)));
      }
      std::vector<std::uint32_t> attrs;
      for (std::size_t a : t.Attributes()) {
        attrs.push_back(static_cast<std::uint32_t>(a));
      }
      queries.push_back(std::move(attrs));
    }
  }
  return queries;
}

std::vector<core::Itemset> AsItemsets(
    const std::vector<std::vector<std::uint32_t>>& queries, std::size_t d) {
  std::vector<core::Itemset> ts;
  for (const auto& attrs : queries) {
    core::Itemset t(d);
    for (std::uint32_t a : attrs) t.Add(a);
    ts.push_back(std::move(t));
  }
  return ts;
}

// ---------------------------------------- registry-driven equivalence

class ServedEquivalenceTest : public testing::TestWithParam<std::string> {};

TEST_P(ServedEquivalenceTest, ServedAnswersAreBitIdenticalToDirect) {
  std::string stem = "srv_eq_" + GetParam();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  Rig rig = MakeRig(GetParam(), stem, 31);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());

  const auto queries = SupportedQueries(rig.direct, 32);
  ASSERT_FALSE(queries.empty());
  const auto ts = AsItemsets(queries, rig.direct.d());

  const auto info = client.Info("s");
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_EQ(info->algorithm, rig.direct.algorithm());
  EXPECT_EQ(info->d, rig.direct.d());
  EXPECT_EQ(info->summary_bits, rig.direct.summary_bits());

  const auto served = client.EstimateMany("s", queries);
  ASSERT_TRUE(served.has_value()) << client.last_error();
  std::vector<double> direct;
  rig.direct.estimate_many(ts, &direct);
  // Bit-identical: doubles crossed the wire as raw 8-byte values and the
  // serving layer added no arithmetic.
  ASSERT_EQ(*served, direct) << GetParam();

  const auto served_bits = client.AreFrequent("s", queries);
  ASSERT_TRUE(served_bits.has_value()) << client.last_error();
  std::vector<bool> direct_bits;
  rig.direct.are_frequent(ts, &direct_bits);
  ASSERT_EQ(*served_bits, direct_bits) << GetParam();
}

/// Every registered name, with combinator listings ("MEDIAN-BOOST(...)")
/// instantiated over SUBSAMPLE -- new algorithms added to the registry
/// are picked up (and served) automatically.
std::vector<std::string> RegisteredAlgorithms() {
  std::vector<std::string> names;
  for (std::string name : Engine::KnownAlgorithms()) {
    const std::size_t paren = name.find("(...)");
    if (paren != std::string::npos) {
      name = name.substr(0, paren) + "(SUBSAMPLE)";
    }
    names.push_back(std::move(name));
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredAlgorithms, ServedEquivalenceTest,
                         testing::ValuesIn(RegisteredAlgorithms()),
                         [](const auto& info) {
                           std::string safe = info.param;
                           for (char& c : safe) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return safe;
                         });

// ------------------------------------------------ protocol error paths

TEST(ServeServerTest, UnknownSketchGetsErrorNotCrash) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_unknown", 33);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  EXPECT_FALSE(client.Info("nope").has_value());
  EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
  EXPECT_FALSE(client.EstimateMany("nope", {{0}}).has_value());
  EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
  // The connection survives request-level errors.
  EXPECT_TRUE(client.Info("s").has_value());
}

TEST(ServeServerTest, OutOfRangeAttributeGetsUnsupportedQuery) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_range", 34);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  EXPECT_FALSE(client.EstimateMany("s", {{0, 99}}).has_value());
  EXPECT_EQ(client.last_status(), Status::kUnsupportedQuery);
  EXPECT_TRUE(client.Info("s").has_value());
}

TEST(ServeServerTest, UnsupportedQuerySizeGetsUnsupportedQuery) {
  // RELEASE-ANSWERS answers only |T| = k (= 3 here).
  Rig rig = MakeRig("RELEASE-ANSWERS", "srv_size", 35);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  EXPECT_FALSE(client.EstimateMany("s", {{0, 1}}).has_value());
  EXPECT_EQ(client.last_status(), Status::kUnsupportedQuery);
  EXPECT_TRUE(client.EstimateMany("s", {{0, 1, 2}}).has_value())
      << client.last_error();
}

// ------------------------------------------------- malformed framing

/// Reads one reply frame directly off the transport (bypassing
/// SketchClient) so malformed-input tests can watch raw server behavior.
ReadResult ReadReply(Transport& transport, Frame* frame) {
  return ReadFrame(transport, frame);
}

TEST(ServeServerTest, TruncatedHeaderClosesConnectionCleanly) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_trunc", 36);
  LoopbackServer server(rig.router);
  Transport& wire = server.client_end();
  // 5 bytes of a 12-byte header, then hang up.
  ASSERT_TRUE(wire.WriteAll("IFSP\x01", 5));
  wire.CloseWrite();
  Frame reply;
  // The server saw EOF mid-header: it answers with a kError frame (best
  // effort) and closes -- it must NOT block waiting for the rest.
  const ReadResult result = ReadReply(wire, &reply);
  if (result == ReadResult::kFrame) {
    EXPECT_EQ(reply.header.opcode, Opcode::kError);
    EXPECT_EQ(reply.header.status,
              static_cast<std::uint8_t>(Status::kBadRequest));
    EXPECT_EQ(ReadReply(wire, &reply), ReadResult::kEof);
  } else {
    EXPECT_EQ(result, ReadResult::kEof);
  }
}

TEST(ServeServerTest, OversizedDeclaredLengthIsRejected) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_big", 37);
  LoopbackServer server(rig.router);
  Transport& wire = server.client_end();
  // Hand-build a header declaring a body over the cap. The server must
  // reject from the header alone -- were it to allocate/read the claimed
  // 16 MiB+ body of which nothing arrives, it would hang, not answer.
  std::string header;
  header.append(kFrameMagic, 4);
  const std::uint16_t version = kProtocolVersion;
  header.append(reinterpret_cast<const char*>(&version), 2);
  header.push_back(static_cast<char>(Opcode::kInfo));
  header.push_back('\0');
  const std::uint32_t huge = kMaxBodyBytes + 1;
  header.append(reinterpret_cast<const char*>(&huge), 4);
  ASSERT_TRUE(wire.WriteAll(header.data(), header.size()));
  Frame reply;
  ASSERT_EQ(ReadReply(wire, &reply), ReadResult::kFrame);
  EXPECT_EQ(reply.header.opcode, Opcode::kError);
  EXPECT_EQ(reply.header.status,
            static_cast<std::uint8_t>(Status::kBadRequest));
  EXPECT_EQ(ReadReply(wire, &reply), ReadResult::kEof);  // hung up
}

TEST(ServeServerTest, UnknownOpcodeIsRejected) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_opcode", 38);
  LoopbackServer server(rig.router);
  Transport& wire = server.client_end();
  std::string header;
  header.append(kFrameMagic, 4);
  const std::uint16_t version = kProtocolVersion;
  header.append(reinterpret_cast<const char*>(&version), 2);
  header.push_back('\x42');  // not an opcode
  header.push_back('\0');
  const std::uint32_t zero = 0;
  header.append(reinterpret_cast<const char*>(&zero), 4);
  ASSERT_TRUE(wire.WriteAll(header.data(), header.size()));
  Frame reply;
  ASSERT_EQ(ReadReply(wire, &reply), ReadResult::kFrame);
  EXPECT_EQ(reply.header.opcode, Opcode::kError);
  EXPECT_EQ(ReadReply(wire, &reply), ReadResult::kEof);
}

TEST(ServeServerTest, VersionMismatchIsRejected) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_version", 39);
  LoopbackServer server(rig.router);
  Transport& wire = server.client_end();
  std::string body;
  ASSERT_TRUE(EncodeInfoRequest("s", &body));
  std::string frame;
  ASSERT_TRUE(EncodeFrame(Opcode::kInfo, 0, body, &frame));
  const std::uint16_t wrong = kProtocolVersion + 7;
  std::memcpy(frame.data() + 4, &wrong, sizeof(wrong));
  ASSERT_TRUE(wire.WriteAll(frame.data(), frame.size()));
  Frame reply;
  ASSERT_EQ(ReadReply(wire, &reply), ReadResult::kFrame);
  EXPECT_EQ(reply.header.opcode, Opcode::kError);
  EXPECT_EQ(reply.header.status,
            static_cast<std::uint8_t>(Status::kBadRequest));
  EXPECT_EQ(ReadReply(wire, &reply), ReadResult::kEof);
}

TEST(ServeServerTest, ServerNeverReadsPastDeclaredFrameLength) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_exact", 40);
  LoopbackServer server(rig.router);
  Transport& wire = server.client_end();
  // A valid info request followed IMMEDIATELY by a second valid request
  // in the same write: if the server over-read frame 1, frame 2's bytes
  // would be consumed and its reply never arrive.
  std::string body;
  ASSERT_TRUE(EncodeInfoRequest("s", &body));
  std::string two_frames;
  ASSERT_TRUE(EncodeFrame(Opcode::kInfo, 0, body, &two_frames));
  ASSERT_TRUE(EncodeFrame(Opcode::kInfo, 0, body, &two_frames));
  ASSERT_TRUE(wire.WriteAll(two_frames.data(), two_frames.size()));
  for (int i = 0; i < 2; ++i) {
    Frame reply;
    ASSERT_EQ(ReadReply(wire, &reply), ReadResult::kFrame) << i;
    EXPECT_EQ(reply.header.opcode, Opcode::kInfoReply) << i;
  }
}

TEST(ServeServerTest, UndecodableBodyKeepsConnectionAlive) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_body", 41);
  LoopbackServer server(rig.router);
  Transport& wire = server.client_end();
  // Well-formed frame, garbage body: frame sync is intact, so the server
  // answers kError and keeps serving.
  ASSERT_TRUE(WriteFrame(wire, Opcode::kEstimate, 0, "garbage"));
  Frame reply;
  ASSERT_EQ(ReadReply(wire, &reply), ReadResult::kFrame);
  EXPECT_EQ(reply.header.opcode, Opcode::kError);
  EXPECT_EQ(reply.header.status,
            static_cast<std::uint8_t>(Status::kBadRequest));
  std::string body;
  ASSERT_TRUE(EncodeInfoRequest("s", &body));
  ASSERT_TRUE(WriteFrame(wire, Opcode::kInfo, 0, body));
  ASSERT_EQ(ReadReply(wire, &reply), ReadResult::kFrame);
  EXPECT_EQ(reply.header.opcode, Opcode::kInfoReply);
}

// ------------------------------------------- refresh/subscribe opcodes

/// An in-memory snapshot to publish through the router.
std::shared_ptr<const Engine> MakeSnapshot(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db = data::UniformRandom(n, 12, 0.3, rng);
  auto engine = Engine::Build(db, "SUBSAMPLE", EstimatorParams(), rng);
  EXPECT_TRUE(engine.has_value());
  return std::make_shared<const Engine>(std::move(*engine));
}

TEST(ServeServerTest, RefreshReportsPublishedEpochs) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_refresh", 50);
  ASSERT_TRUE(rig.router->AddStream("live"));
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());

  // Registered, nothing published: epoch 0.
  auto info = client.Refresh("live");
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_EQ(info->epoch, 0u);
  EXPECT_EQ(info->rows_seen, 0u);

  rig.router->Publish("live", MakeSnapshot(300, 51), 300);
  info = client.Refresh("live");
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->rows_seen, 300u);

  // Unknown names error without killing the connection.
  EXPECT_FALSE(client.Refresh("nope").has_value());
  EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
  EXPECT_TRUE(client.Refresh("live").has_value());
}

TEST(ServeServerTest, SubscribeReturnsImmediatelyWhenSatisfied) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_sub_now", 52);
  rig.router->Publish("live", MakeSnapshot(200, 53), 200);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  // epoch 1 > min_epoch 0 already: no waiting, even with a long timeout.
  const auto info = client.Subscribe("live", 0, 60000);
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->rows_seen, 200u);
}

TEST(ServeServerTest, SubscribeTimesOutWithFinalState) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_sub_to", 54);
  rig.router->Publish("live", MakeSnapshot(200, 55), 200);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  // Nothing will publish epoch 2: the reply still arrives, carrying the
  // unchanged state -- the client tells timeout from satisfied by
  // comparing epoch with min_epoch.
  const auto info = client.Subscribe("live", 1, 50);
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_LE(info->epoch, 1u);
}

TEST(ServeServerTest, SubscribeWakesOnPublishFromAnotherThread) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_sub_wake", 56);
  ASSERT_TRUE(rig.router->AddStream("live"));
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());

  std::thread publisher([&rig] {
    // Give the subscribe a moment to park on the condition variable.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    rig.router->Publish("live", MakeSnapshot(400, 57), 400);
  });
  const auto info = client.Subscribe("live", 0, 60000);
  publisher.join();
  ASSERT_TRUE(info.has_value()) << client.last_error();
  EXPECT_EQ(info->epoch, 1u);  // woken, not timed out
  EXPECT_EQ(info->rows_seen, 400u);

  // And the published snapshot actually serves queries on this same
  // connection.
  const auto served = client.EstimateMany("live", {{1, 3}});
  ASSERT_TRUE(served.has_value()) << client.last_error();
  ASSERT_EQ(served->size(), 1u);
}

TEST(ServeServerTest, SubscribeUnknownNameGetsError) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_sub_unknown", 58);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  EXPECT_FALSE(client.Subscribe("nope", 0, 100).has_value());
  EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
  EXPECT_TRUE(client.Info("s").has_value());  // connection survives
}

// --------------------------------------------------- TCP end to end

TEST(ServeServerTest, TcpRoundTripMatchesDirect) {
  Rig rig = MakeRig("SUBSAMPLE", "srv_tcp", 42);
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0));  // ephemeral port
  std::thread server([&] {
    auto transport = listener.Accept();
    ASSERT_NE(transport, nullptr);
    ServeConnection(*rig.router, *transport);
  });
  auto transport = TcpConnect(listener.port());
  ASSERT_NE(transport, nullptr);
  SketchClient client(std::move(transport));
  const auto queries = SupportedQueries(rig.direct, 43);
  const auto served = client.EstimateMany("s", queries);
  ASSERT_TRUE(served.has_value()) << client.last_error();
  std::vector<double> direct;
  rig.direct.estimate_many(AsItemsets(queries, rig.direct.d()), &direct);
  EXPECT_EQ(*served, direct);
  client = SketchClient(std::unique_ptr<Transport>());  // hang up -> EOF
  server.join();
}

}  // namespace
}  // namespace ifsketch::serve
