#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ifsketch::linalg {
namespace {

TEST(MatrixTest, ConstructionZeroed) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, IdentityProperties) {
  const Matrix id = Matrix::Identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = -2;
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 0), 5.0);
  EXPECT_EQ(t(1, 1), -2.0);
  EXPECT_EQ(t.Transpose().MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Matrix a(3, 3);
  a(0, 1) = 2.5;
  a(2, 0) = -1;
  EXPECT_EQ(a.Multiply(Matrix::Identity(3)).MaxAbsDiff(a), 0.0);
  EXPECT_EQ(Matrix::Identity(3).Multiply(a).MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, MultiplyVec) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector v = {1, 0, -1};
  const Vector out = a.MultiplyVec(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], -2.0);
  EXPECT_EQ(out[1], -2.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_NEAR(a.FrobeniusNorm(), 5.0, 1e-12);
}

TEST(VectorOpsTest, Norms) {
  const Vector v = {3, -4};
  EXPECT_NEAR(Norm2(v), 5.0, 1e-12);
  EXPECT_NEAR(Norm1(v), 7.0, 1e-12);
}

TEST(VectorOpsTest, Dot) {
  EXPECT_EQ(Dot({1, 2, 3}, {4, -5, 6}), 12.0);
  EXPECT_EQ(Dot({}, {}), 0.0);
}

}  // namespace
}  // namespace ifsketch::linalg
