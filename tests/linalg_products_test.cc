#include "linalg/products.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/svd.h"

namespace ifsketch::linalg {
namespace {

TEST(HadamardProductTest, SingleFactorIsIdentityOperation) {
  Matrix a(3, 4);
  a(0, 0) = 1;
  a(2, 3) = 1;
  const Matrix p = HadamardProduct({a});
  EXPECT_EQ(p.rows(), 3u);
  EXPECT_EQ(p.cols(), 4u);
  EXPECT_EQ(p.MaxAbsDiff(a), 0.0);
}

TEST(HadamardProductTest, TwoFactorEntries) {
  // Definition 22: A[(i1,i2), h] = A1[i1,h] * A2[i2,h].
  Matrix a1(2, 3), a2(2, 3);
  a1(0, 0) = 1;
  a1(0, 2) = 1;
  a1(1, 1) = 1;
  a2(0, 0) = 1;
  a2(1, 2) = 1;
  const Matrix p = HadamardProduct({a1, a2});
  ASSERT_EQ(p.rows(), 4u);
  ASSERT_EQ(p.cols(), 3u);
  for (std::size_t i1 = 0; i1 < 2; ++i1) {
    for (std::size_t i2 = 0; i2 < 2; ++i2) {
      for (std::size_t h = 0; h < 3; ++h) {
        EXPECT_EQ(p(i1 * 2 + i2, h), a1(i1, h) * a2(i2, h));
      }
    }
  }
}

TEST(HadamardProductTest, ThreeFactorShape) {
  Matrix a(2, 5), b(3, 5), c(4, 5);
  const Matrix p = HadamardProduct({a, b, c});
  EXPECT_EQ(p.rows(), 24u);
  EXPECT_EQ(p.cols(), 5u);
}

TEST(HadamardProductTest, AllOnesFactors) {
  Matrix ones(3, 4);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) ones(r, c) = 1.0;
  }
  const Matrix p = HadamardProduct({ones, ones});
  for (std::size_t r = 0; r < p.rows(); ++r) {
    for (std::size_t c = 0; c < p.cols(); ++c) EXPECT_EQ(p(r, c), 1.0);
  }
}

TEST(RandomBinaryMatrixTest, EntriesAreBits) {
  util::Rng rng(1);
  const Matrix m = RandomBinaryMatrix(10, 12, rng);
  double sum = 0;
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      EXPECT_TRUE(m(r, c) == 0.0 || m(r, c) == 1.0);
      sum += m(r, c);
    }
  }
  EXPECT_NEAR(sum / 120.0, 0.5, 0.2);
}

// Lemma 26 (Rudelson), measured: sigma_min of the Hadamard product of
// k-1 random binary d0 x n matrices scales like sqrt(d0^(k-1)) once
// d0^(k-1) is comfortably above n.
TEST(HadamardProductTest, SmallestSingularValueScalesLikeSqrtRows) {
  util::Rng rng(2);
  const std::size_t n = 12;
  double prev_ratio = 0.0;
  for (const std::size_t d0 : {8u, 16u, 24u}) {
    double min_sigma_avg = 0.0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      const Matrix a1 = RandomBinaryMatrix(d0, n, rng);
      const Matrix a2 = RandomBinaryMatrix(d0, n, rng);
      min_sigma_avg += SmallestSingularValue(HadamardProduct({a1, a2}));
    }
    min_sigma_avg /= kTrials;
    const double rows = static_cast<double>(d0 * d0);
    const double ratio = min_sigma_avg / std::sqrt(rows);
    // The normalized ratio should be bounded away from zero and not
    // collapsing as d0 grows.
    EXPECT_GT(ratio, 0.05) << d0;
    if (prev_ratio > 0.0) {
      EXPECT_GT(ratio, prev_ratio * 0.5) << d0;
    }
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace ifsketch::linalg
