#include "core/sketch.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "sketch/subsample.h"

namespace ifsketch::core {
namespace {

TEST(SketchEnumsTest, ToStringValues) {
  EXPECT_STREQ(ToString(Scope::kForAll), "for-all");
  EXPECT_STREQ(ToString(Scope::kForEach), "for-each");
  EXPECT_STREQ(ToString(Answer::kIndicator), "indicator");
  EXPECT_STREQ(ToString(Answer::kEstimator), "estimator");
}

TEST(SketchParamsTest, Defaults) {
  const SketchParams p;
  EXPECT_EQ(p.k, 1u);
  EXPECT_GT(p.eps, 0.0);
  EXPECT_GT(p.delta, 0.0);
  EXPECT_LT(p.delta, 1.0);
}

class FixedEstimator : public FrequencyEstimator {
 public:
  explicit FixedEstimator(double f) : f_(f) {}
  double EstimateFrequency(const Itemset&) const override { return f_; }

 private:
  double f_;
};

TEST(ThresholdIndicatorTest, ThresholdsAtGivenCut) {
  ThresholdIndicator above(std::make_unique<FixedEstimator>(0.8), 0.75);
  ThresholdIndicator below(std::make_unique<FixedEstimator>(0.7), 0.75);
  ThresholdIndicator at(std::make_unique<FixedEstimator>(0.75), 0.75);
  const Itemset t(4, {0});
  EXPECT_TRUE(above.IsFrequent(t));
  EXPECT_FALSE(below.IsFrequent(t));
  EXPECT_TRUE(at.IsFrequent(t));  // >= semantics
}

TEST(DefaultLoadIndicatorTest, ThresholdsEstimatorAtThreeQuartersEps) {
  // The base-class LoadIndicator wraps the estimator at 0.75*eps; verify
  // through a real algorithm whose estimator we can control indirectly.
  util::Rng rng(1);
  core::Database db(100, 6);
  // Attribute 0 has frequency 0.5; attribute 1 has frequency 0.0.
  for (std::size_t i = 0; i < 50; ++i) db.Set(i, 0, true);
  sketch::SubsampleSketch algo;
  SketchParams p;
  p.k = 1;
  p.eps = 0.2;
  p.delta = 0.01;
  p.scope = Scope::kForAll;
  p.answer = Answer::kIndicator;
  const auto summary = algo.Build(db, p, rng);
  const auto ind = algo.LoadIndicator(summary, p, 6, 100);
  EXPECT_TRUE(ind->IsFrequent(Itemset(6, {0})));   // f=0.5 > eps
  EXPECT_FALSE(ind->IsFrequent(Itemset(6, {1})));  // f=0.0 < eps/2
}

}  // namespace
}  // namespace ifsketch::core
