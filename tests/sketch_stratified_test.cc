#include "sketch/stratified_sample.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "util/stats.h"

namespace ifsketch::sketch {
namespace {

TEST(StratifiedTest, RoundTripAndRange) {
  util::Rng rng(1);
  const core::Database db = data::UniformRandom(1000, 12, 0.4, rng);
  StratifiedSampler sampler(4);
  const auto summary = sampler.Build(db, 400, rng);
  const auto est = sampler.Load(summary, 12);
  for (int trial = 0; trial < 20; ++trial) {
    const double f = est->EstimateFrequency(
        core::Itemset(12, {rng.UniformInt(12)}));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(StratifiedTest, UnbiasedOnAverage) {
  util::Rng rng(2);
  const core::Database db =
      data::PowerLawBaskets(3000, 14, 1.0, 0.4, 2, 3, 0.2, rng);
  StratifiedSampler sampler(4);
  const core::Itemset t(14, {0, 1});
  const double truth = db.Frequency(t);
  util::RunningStat estimates;
  for (int trial = 0; trial < 50; ++trial) {
    const auto summary = sampler.Build(db, 500, rng);
    estimates.Add(sampler.Load(summary, 14)->EstimateFrequency(t));
  }
  EXPECT_NEAR(estimates.Mean(), truth, 0.02);
}

TEST(StratifiedTest, SingleStratumMatchesUniformBehavior) {
  util::Rng rng(3);
  const core::Database db =
      data::PlantedItemsets(2000, 10, {{{2, 5}, 0.3}}, 0.1, rng);
  StratifiedSampler sampler(1);
  const core::Itemset t(10, {2, 5});
  util::RunningStat err;
  for (int trial = 0; trial < 30; ++trial) {
    const auto summary = sampler.Build(db, 600, rng);
    err.Add(std::fabs(sampler.Load(summary, 10)->EstimateFrequency(t) -
                      db.Frequency(t)));
  }
  EXPECT_LT(err.Mean(), 0.05);
}

TEST(StratifiedTest, HelpsOnHeterogeneousRows) {
  // Database with two very different row populations: mostly-empty rows
  // and dense rows carrying the queried itemset. Stratification pins the
  // rare dense stratum's weight exactly, shrinking variance.
  util::Rng rng(4);
  core::Database db(5000, 16);
  for (std::size_t i = 0; i < 5000; ++i) {
    if (i % 50 == 0) {
      for (std::size_t j = 0; j < 12; ++j) db.Set(i, j, true);
    } else if (rng.Bernoulli(0.3)) {
      db.Set(i, rng.UniformInt(16), true);
    }
  }
  const core::Itemset t(16, {0, 1, 2, 3});
  const double truth = db.Frequency(t);
  StratifiedSampler stratified(8);
  StratifiedSampler uniform(1);
  util::RunningStat err_strat, err_unif;
  for (int trial = 0; trial < 60; ++trial) {
    {
      const auto s = stratified.Build(db, 300, rng);
      err_strat.Add(
          std::fabs(stratified.Load(s, 16)->EstimateFrequency(t) - truth));
    }
    {
      const auto s = uniform.Build(db, 300, rng);
      err_unif.Add(
          std::fabs(uniform.Load(s, 16)->EstimateFrequency(t) - truth));
    }
  }
  EXPECT_LT(err_strat.Mean(), err_unif.Mean());
}

TEST(StratifiedTest, EveryNonEmptyStratumRepresented) {
  // Two clearly separated popcount populations; both must appear in the
  // summary even with a tiny budget.
  util::Rng rng(5);
  core::Database db(100, 8);
  for (std::size_t i = 0; i < 100; ++i) {
    if (i < 50) {
      db.Set(i, 0, true);  // popcount 1
    } else {
      for (std::size_t j = 0; j < 8; ++j) db.Set(i, j, true);  // popcount 8
    }
  }
  StratifiedSampler sampler(2);
  const auto summary = sampler.Build(db, 4, rng);
  const auto est = sampler.Load(summary, 8);
  // The dense stratum has weight 0.5 and all its rows contain {0..7}.
  EXPECT_NEAR(est->EstimateFrequency(core::Itemset(8, {0, 1, 2, 3, 4, 5, 6, 7})),
              0.5, 1e-6);
}

}  // namespace
}  // namespace ifsketch::sketch
