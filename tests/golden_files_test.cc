// Golden-file pinning: the checked-in .ifsk sketches under tests/data/
// must reopen through Engine::Open and reproduce their recorded answers
// exactly, byte for byte on the doubles.
//
// What this protects: the serialized IFSK format, the algorithm loaders,
// and every kernel/batching layer underneath estimate_many. A format
// change, a dispatch-tier divergence, or a batching rewrite that shifts
// any answer bit fails here -- silent drift of serialized results is the
// one failure mode the live round-trip tests cannot catch.
//
// The files are produced by tools/make_golden.cc (build target
// `make_golden`); the pinned constants, query set and file naming live
// in tests/golden_spec.h, shared by both sides. Regenerate the goldens
// ONLY when a PR deliberately changes the format or an algorithm's
// sampling, and say so in the PR: a kernel or performance change must
// never need new goldens.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine.h"
#include "golden_spec.h"
#include "sketch/sketch_file.h"
#include "util/random.h"

namespace ifsketch {
namespace {

struct GoldenLine {
  std::string key;   // "a,b,c" ascending attribute list
  double estimate;
  bool frequent;
};

std::vector<GoldenLine> LoadAnswers(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<GoldenLine> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    GoldenLine g;
    std::string hex;
    int bit = 0;
    fields >> g.key >> hex >> bit;
    EXPECT_FALSE(fields.fail()) << path << ": bad line: " << line;
    // strtod parses hexfloat ("%a" output) exactly -- no rounding between
    // the recorded bits and the comparison below.
    g.estimate = std::strtod(hex.c_str(), nullptr);
    g.frequent = bit != 0;
    lines.push_back(g);
  }
  return lines;
}

std::string AttrKey(const core::Itemset& t) {
  std::string key;
  for (std::size_t a : t.Attributes()) {
    if (!key.empty()) key.push_back(',');
    key += std::to_string(a);
  }
  return key;
}

class GoldenFilesTest : public testing::TestWithParam<const char*> {};

TEST_P(GoldenFilesTest, OpenReproducesRecordedAnswers) {
  const std::string slug = golden::Slug(GetParam());
  const std::string dir = IFSKETCH_TEST_DATA_DIR;
  auto engine = Engine::Open(dir + "/" + slug + ".ifsk");
  ASSERT_TRUE(engine.has_value())
      << "cannot open golden sketch for " << GetParam()
      << " (regenerate with the make_golden tool ONLY for a deliberate "
         "format change)";
  EXPECT_EQ(engine->algorithm(), GetParam());

  const auto queries = golden::PinnedQueries();
  const auto golden_lines = LoadAnswers(dir + "/" + slug + ".answers.txt");
  ASSERT_EQ(golden_lines.size(), queries.size());

  std::vector<double> estimates;
  engine->estimate_many(queries, &estimates);
  std::vector<bool> bits;
  engine->are_frequent(queries, &bits);
  ASSERT_EQ(estimates.size(), queries.size());

  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(golden_lines[i].key, AttrKey(queries[i]))
        << "query set drifted from the recorded one at line " << i;
    // Exact double equality: the recorded hexfloat must be reproduced
    // bit for bit, across kernel dispatch tiers and thread counts.
    ASSERT_EQ(golden_lines[i].estimate, estimates[i])
        << GetParam() << " estimate drifted on query "
        << golden_lines[i].key;
    ASSERT_EQ(golden_lines[i].frequent, bits[i])
        << GetParam() << " indicator drifted on query "
        << golden_lines[i].key;
  }

  // The scalar entry point must agree with the recorded batch too.
  ASSERT_EQ(golden_lines[0].estimate, engine->estimate(queries[0]));
}

// The arena (v2) golden -- the same RELEASE-DB summary as
// release_db.ifsk, framed with aligned word sections -- must decode to
// the SAME recorded answers through BOTH load paths: the zero-copy
// mapped path (views straight over the file image, columns adopted from
// the column section) and the copying stream parser. This pins the v2
// serialization and the mapped/copied equivalence to the checked-in
// bytes; the v1 goldens above keep pinning the legacy path.
TEST(GoldenFilesTest, ArenaGoldenBitIdenticalOnBothLoadPaths) {
  const std::string dir = IFSKETCH_TEST_DATA_DIR;
  const auto queries = golden::PinnedQueries();
  const auto golden_lines = LoadAnswers(dir + "/release_db.answers.txt");
  ASSERT_EQ(golden_lines.size(), queries.size());

  for (const Engine::LoadMode mode :
       {Engine::LoadMode::kMapped, Engine::LoadMode::kCopied}) {
    std::string error;
    auto engine = Engine::Open(dir + "/release_db_v2.ifsk", mode, &error);
    ASSERT_TRUE(engine.has_value()) << error;
    EXPECT_EQ(engine->algorithm(), "RELEASE-DB");
    EXPECT_EQ(engine->format_version(), sketch::arena::kVersionArena);
    EXPECT_EQ(engine->load_path(), mode == Engine::LoadMode::kMapped
                                       ? Engine::LoadPath::kMapped
                                       : Engine::LoadPath::kCopied);

    std::vector<double> estimates;
    engine->estimate_many(queries, &estimates);
    std::vector<bool> bits;
    engine->are_frequent(queries, &bits);
    ASSERT_EQ(estimates.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(golden_lines[i].estimate, estimates[i])
          << "v2 estimate drifted from the v1 recording on query "
          << golden_lines[i].key;
      ASSERT_EQ(golden_lines[i].frequent, bits[i])
          << "v2 indicator drifted from the v1 recording on query "
          << golden_lines[i].key;
    }
    ASSERT_EQ(golden_lines[0].estimate, engine->estimate(queries[0]));
  }
}

// The checksummed arena golden -- release_db_v2.ifsk plus the CRC32C
// integrity trailer (PR 10) -- must be exactly the trailer-extended v2
// bytes and answer identically to the recorded answers through both
// load paths, pinning trailer validation to checked-in bytes.
TEST(GoldenFilesTest, ChecksummedArenaGoldenMatchesRecordedAnswers) {
  const std::string dir = IFSKETCH_TEST_DATA_DIR;
  const auto read = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string plain = read(dir + "/release_db_v2.ifsk");
  const std::string checked = read(dir + "/release_db_v2_crc.ifsk");
  ASSERT_FALSE(plain.empty());
  ASSERT_EQ(checked.size(), plain.size() + sketch::arena::kTrailerBytes);
  EXPECT_EQ(checked.compare(0, plain.size(), plain), 0)
      << "trailer golden diverged from the trailer-less v2 golden";

  const auto queries = golden::PinnedQueries();
  const auto golden_lines = LoadAnswers(dir + "/release_db.answers.txt");
  ASSERT_EQ(golden_lines.size(), queries.size());
  for (const Engine::LoadMode mode :
       {Engine::LoadMode::kMapped, Engine::LoadMode::kCopied}) {
    std::string error;
    auto engine =
        Engine::Open(dir + "/release_db_v2_crc.ifsk", mode, &error);
    ASSERT_TRUE(engine.has_value()) << error;
    std::vector<double> estimates;
    engine->estimate_many(queries, &estimates);
    std::vector<bool> bits;
    engine->are_frequent(queries, &bits);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(golden_lines[i].estimate, estimates[i]);
      ASSERT_EQ(golden_lines[i].frequent, bits[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GoldenFilesTest,
                         testing::ValuesIn(golden::kAlgorithms),
                         [](const auto& info) {
                           std::string safe = info.param;
                           for (char& c : safe) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return safe;
                         });

}  // namespace
}  // namespace ifsketch
