#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ifsketch::lp {
namespace {

LpProblem Make(std::size_t m, std::size_t n) {
  LpProblem p;
  p.a = linalg::Matrix(m, n);
  p.b.assign(m, 0.0);
  p.c.assign(n, 0.0);
  return p;
}

TEST(SimplexTest, TrivialEquality) {
  // min x0 s.t. x0 + x1 = 2, x >= 0  -> x0 = 0, x1 = 2.
  LpProblem p = Make(1, 2);
  p.a(0, 0) = 1;
  p.a(0, 1) = 1;
  p.b[0] = 2;
  p.c = {1, 0};
  const auto sol = SolveStandardForm(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig example)
  // -> x=2, y=6, objective 36. Standard form with slacks.
  LpProblem p = Make(3, 5);
  p.a(0, 0) = 1;
  p.a(0, 2) = 1;
  p.b[0] = 4;
  p.a(1, 1) = 2;
  p.a(1, 3) = 1;
  p.b[1] = 12;
  p.a(2, 0) = 3;
  p.a(2, 1) = 2;
  p.a(2, 4) = 1;
  p.b[2] = 18;
  p.c = {-3, -5, 0, 0, 0};  // minimize the negation
  const auto sol = SolveStandardForm(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x0 = -1 with x0 >= 0 is infeasible.
  LpProblem p = Make(1, 1);
  p.a(0, 0) = 1;
  p.b[0] = -1;
  p.c = {0};
  EXPECT_EQ(SolveStandardForm(p).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, ContradictoryEqualitiesInfeasible) {
  // x0 + x1 = 1 and x0 + x1 = 3.
  LpProblem p = Make(2, 2);
  p.a(0, 0) = 1;
  p.a(0, 1) = 1;
  p.b[0] = 1;
  p.a(1, 0) = 1;
  p.a(1, 1) = 1;
  p.b[1] = 3;
  p.c = {1, 1};
  EXPECT_EQ(SolveStandardForm(p).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x0 s.t. x0 - x1 = 0: x0 = x1 can grow forever.
  LpProblem p = Make(1, 2);
  p.a(0, 0) = 1;
  p.a(0, 1) = -1;
  p.b[0] = 0;
  p.c = {-1, 0};
  EXPECT_EQ(SolveStandardForm(p).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsHandledByRowNegation) {
  // -x0 = -5 -> x0 = 5.
  LpProblem p = Make(1, 1);
  p.a(0, 0) = -1;
  p.b[0] = -5;
  p.c = {1};
  const auto sol = SolveStandardForm(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 5.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints (degeneracy stresses Bland's rule).
  LpProblem p = Make(3, 2);
  for (int r = 0; r < 3; ++r) {
    p.a(r, 0) = 1;
    p.a(r, 1) = 1;
    p.b[r] = 1;
  }
  p.c = {1, 2};
  const auto sol = SolveStandardForm(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);  // x0=1, x1=0
}

TEST(SimplexTest, SolutionSatisfiesConstraints) {
  // Random feasible problems: check Ax = b and x >= 0 at the optimum.
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 3, n = 7;
    LpProblem p = Make(m, n);
    linalg::Vector x_feasible(n);
    for (auto& v : x_feasible) v = rng.UniformDouble();
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        p.a(r, c) = rng.Gaussian();
      }
    }
    p.b = p.a.MultiplyVec(x_feasible);  // feasible by construction
    for (auto& c : p.c) c = rng.Gaussian();
    const auto sol = SolveStandardForm(p);
    if (sol.status == LpStatus::kUnbounded) continue;  // possible
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    const linalg::Vector ax = p.a.MultiplyVec(sol.x);
    for (std::size_t r = 0; r < m; ++r) EXPECT_NEAR(ax[r], p.b[r], 1e-6);
    for (double xi : sol.x) EXPECT_GE(xi, -1e-9);
    // Optimal is at least as good as our known feasible point.
    double feasible_obj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      feasible_obj += p.c[i] * x_feasible[i];
    }
    EXPECT_LE(sol.objective, feasible_obj + 1e-6);
  }
}

TEST(SimplexTest, StatusToString) {
  EXPECT_STREQ(ToString(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(ToString(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(ToString(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(ToString(LpStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace ifsketch::lp
