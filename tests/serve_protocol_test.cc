// The wire codec under the ReadSketch validate-everything discipline:
// round trips for every frame kind, and rejection of every malformed
// shape -- truncated header, oversized declared length, unknown opcode,
// version mismatch, trailing body bytes (mirrors sketch_file_test's
// malformed-header cases).

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ifsketch::serve {
namespace {

std::string EncodedHeader(Opcode opcode, std::uint32_t body_length) {
  std::string frame;
  EXPECT_TRUE(EncodeFrame(opcode, 0, std::string(), &frame));
  // Patch the body length afterwards: EncodeFrame would (correctly)
  // refuse to declare a length it is not writing.
  std::memcpy(frame.data() + 8, &body_length, sizeof(body_length));
  return frame;
}

TEST(ServeProtocolTest, FrameHeaderRoundTrip) {
  std::string frame;
  ASSERT_TRUE(EncodeFrame(Opcode::kEstimate, 0, "abc", &frame));
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  const auto header = DecodeFrameHeader(frame.data(), kFrameHeaderBytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->opcode, Opcode::kEstimate);
  EXPECT_EQ(header->status, 0);
  EXPECT_EQ(header->body_length, 3u);
}

TEST(ServeProtocolTest, HeaderRejectsTruncation) {
  const std::string frame = EncodedHeader(Opcode::kInfo, 0);
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_FALSE(DecodeFrameHeader(frame.data(), len).has_value()) << len;
  }
}

TEST(ServeProtocolTest, HeaderRejectsBadMagic) {
  std::string frame = EncodedHeader(Opcode::kInfo, 0);
  frame[0] = 'X';
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), kFrameHeaderBytes)
                   .has_value());
}

TEST(ServeProtocolTest, HeaderRejectsVersionMismatch) {
  std::string frame = EncodedHeader(Opcode::kInfo, 0);
  const std::uint16_t bad_version = kProtocolVersion + 1;
  std::memcpy(frame.data() + 4, &bad_version, sizeof(bad_version));
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), kFrameHeaderBytes)
                   .has_value());
}

TEST(ServeProtocolTest, HeaderRejectsUnknownOpcode) {
  std::string frame = EncodedHeader(Opcode::kInfo, 0);
  for (const unsigned char bad : {0x00, 0x08, 0x7f, 0x88, 0xfe}) {
    frame[6] = static_cast<char>(bad);
    EXPECT_FALSE(DecodeFrameHeader(frame.data(), kFrameHeaderBytes)
                     .has_value())
        << int{bad};
  }
  // 0x06/0x86 are the HEALTH pair (PR 7) and 0x07/0x87 the STATS pair
  // (PR 8), no longer free.
  for (const unsigned char taken : {0x06, 0x86, 0x07, 0x87}) {
    frame[6] = static_cast<char>(taken);
    EXPECT_TRUE(DecodeFrameHeader(frame.data(), kFrameHeaderBytes)
                    .has_value())
        << int{taken};
  }
}

TEST(ServeProtocolTest, HeaderRejectsOversizedDeclaredLength) {
  const std::string frame =
      EncodedHeader(Opcode::kEstimate, kMaxBodyBytes + 1);
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), kFrameHeaderBytes)
                   .has_value());
  // The cap itself is fine -- the limit, not one past it.
  const std::string at_cap = EncodedHeader(Opcode::kEstimate, kMaxBodyBytes);
  EXPECT_TRUE(DecodeFrameHeader(at_cap.data(), kFrameHeaderBytes)
                  .has_value());
}

TEST(ServeProtocolTest, QueryRequestRoundTrip) {
  QueryRequest request;
  request.sketch = "baskets";
  request.queries = {{0, 3, 7}, {}, {41}};
  std::string body;
  ASSERT_TRUE(EncodeQueryRequest(request, &body));
  const auto back = DecodeQueryRequest(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sketch, request.sketch);
  EXPECT_EQ(back->queries, request.queries);
}

TEST(ServeProtocolTest, QueryRequestRejectsTruncationAtEveryLength) {
  QueryRequest request;
  request.sketch = "s";
  request.queries = {{1, 2}, {3}};
  std::string body;
  ASSERT_TRUE(EncodeQueryRequest(request, &body));
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeQueryRequest(body.substr(0, len)).has_value())
        << len;
  }
}

TEST(ServeProtocolTest, QueryRequestRejectsTrailingBytes) {
  QueryRequest request;
  request.sketch = "s";
  request.queries = {{1}};
  std::string body;
  ASSERT_TRUE(EncodeQueryRequest(request, &body));
  body.push_back('\0');
  EXPECT_FALSE(DecodeQueryRequest(body).has_value());
}

TEST(ServeProtocolTest, QueryRequestRejectsOverlongBatch) {
  // A declared count over the cap must be rejected from the count field
  // alone, before any allocation proportional to it.
  std::string body;
  const std::uint16_t name_len = 1;
  body.append(reinterpret_cast<const char*>(&name_len), 2);
  body.push_back('s');
  const std::uint32_t count = kMaxQueriesPerRequest + 1;
  body.append(reinterpret_cast<const char*>(&count), 4);
  EXPECT_FALSE(DecodeQueryRequest(body).has_value());
}

TEST(ServeProtocolTest, DeclaredCountsAreBoundedByActualBodyBytes) {
  // A few-byte body declaring a huge element count must be rejected
  // from the count field alone -- decoders size allocations from it.
  const std::uint32_t big = kMaxQueriesPerRequest;
  std::string body(reinterpret_cast<const char*>(&big), 4);
  EXPECT_FALSE(DecodeEstimateReply(body).has_value());
  EXPECT_FALSE(DecodeAreFrequentReply(body).has_value());
  std::string request;
  const std::uint16_t name_len = 1;
  request.append(reinterpret_cast<const char*>(&name_len), 2);
  request.push_back('s');
  request.append(reinterpret_cast<const char*>(&big), 4);
  request.push_back('\0');  // one spare byte, nowhere near `big` queries
  EXPECT_FALSE(DecodeQueryRequest(request).has_value());
}

TEST(ServeProtocolTest, EstimateReplyRoundTrip) {
  const std::vector<double> answers = {0.0, 0.25, 1.0, 3.14159e-7};
  std::string body;
  EncodeEstimateReply(answers, &body);
  const auto back = DecodeEstimateReply(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, answers);
}

TEST(ServeProtocolTest, AreFrequentReplyRoundTripAllWidths) {
  // Bit packing boundaries: 0..17 answers cover empty, sub-byte, exact
  // byte and byte+1 widths.
  for (std::size_t count = 0; count <= 17; ++count) {
    std::vector<bool> answers(count);
    for (std::size_t i = 0; i < count; ++i) answers[i] = (i % 3) == 0;
    std::string body;
    EncodeAreFrequentReply(answers, &body);
    const auto back = DecodeAreFrequentReply(body);
    ASSERT_TRUE(back.has_value()) << count;
    EXPECT_EQ(*back, answers) << count;
  }
}

TEST(ServeProtocolTest, InfoReplyRoundTrip) {
  SketchInfo info;
  info.algorithm = "MEDIAN-BOOST(SUBSAMPLE)";
  info.k = 3;
  info.eps = 0.05;
  info.delta = 0.01;
  info.scope = 1;
  info.answer = 1;
  info.n = 100000;
  info.d = 64;
  info.summary_bits = 123456;
  std::string body;
  EncodeInfoReply(info, &body);
  const auto back = DecodeInfoReply(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->algorithm, info.algorithm);
  EXPECT_EQ(back->k, info.k);
  EXPECT_DOUBLE_EQ(back->eps, info.eps);
  EXPECT_DOUBLE_EQ(back->delta, info.delta);
  EXPECT_EQ(back->scope, info.scope);
  EXPECT_EQ(back->answer, info.answer);
  EXPECT_EQ(back->n, info.n);
  EXPECT_EQ(back->d, info.d);
  EXPECT_EQ(back->summary_bits, info.summary_bits);
}

TEST(ServeProtocolTest, InfoReplyRejectsBadEnumBytes) {
  SketchInfo info;
  info.algorithm = "SUBSAMPLE";
  std::string body;
  EncodeInfoReply(info, &body);
  // scope byte sits right after the name (2 + 9), k (4), eps (8),
  // delta (8).
  const std::size_t scope_at = 2 + 9 + 4 + 8 + 8;
  std::string bad = body;
  bad[scope_at] = 2;
  EXPECT_FALSE(DecodeInfoReply(bad).has_value());
  bad = body;
  bad[scope_at + 1] = 7;  // answer byte
  EXPECT_FALSE(DecodeInfoReply(bad).has_value());
}

TEST(ServeProtocolTest, RefreshRequestRoundTrip) {
  std::string body;
  ASSERT_TRUE(EncodeRefreshRequest("stream", &body));
  const auto back = DecodeRefreshRequest(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "stream");
}

TEST(ServeProtocolTest, RefreshRequestRejectsTruncationAndTrailing) {
  std::string body;
  ASSERT_TRUE(EncodeRefreshRequest("stream", &body));
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeRefreshRequest(body.substr(0, len)).has_value())
        << len;
  }
  body.push_back('\0');
  EXPECT_FALSE(DecodeRefreshRequest(body).has_value());
}

TEST(ServeProtocolTest, SubscribeRequestRoundTrip) {
  SubscribeRequest request;
  request.sketch = "stream";
  request.min_epoch = 41;
  request.timeout_ms = 2500;
  std::string body;
  ASSERT_TRUE(EncodeSubscribeRequest(request, &body));
  const auto back = DecodeSubscribeRequest(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sketch, request.sketch);
  EXPECT_EQ(back->min_epoch, request.min_epoch);
  EXPECT_EQ(back->timeout_ms, request.timeout_ms);
}

TEST(ServeProtocolTest, SubscribeRequestRejectsTruncationAtEveryLength) {
  SubscribeRequest request;
  request.sketch = "s";
  request.min_epoch = 1;
  request.timeout_ms = 10;
  std::string body;
  ASSERT_TRUE(EncodeSubscribeRequest(request, &body));
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeSubscribeRequest(body.substr(0, len)).has_value())
        << len;
  }
  body.push_back('\0');
  EXPECT_FALSE(DecodeSubscribeRequest(body).has_value());
}

TEST(ServeProtocolTest, SubscribeRequestRejectsOversizedTimeout) {
  SubscribeRequest request;
  request.sketch = "s";
  request.timeout_ms = kMaxSubscribeTimeoutMs + 1;
  std::string body;
  // The encoder refuses the oversized timeout outright...
  EXPECT_FALSE(EncodeSubscribeRequest(request, &body));
  // ...and the decoder rejects a hand-built frame declaring one (a
  // malicious client must not park a server connection thread).
  request.timeout_ms = kMaxSubscribeTimeoutMs;
  body.clear();
  ASSERT_TRUE(EncodeSubscribeRequest(request, &body));
  const std::uint32_t oversized = kMaxSubscribeTimeoutMs + 1;
  std::memcpy(body.data() + body.size() - sizeof(oversized), &oversized,
              sizeof(oversized));
  EXPECT_FALSE(DecodeSubscribeRequest(body).has_value());
  // The cap itself is fine.
  const std::uint32_t at_cap = kMaxSubscribeTimeoutMs;
  std::memcpy(body.data() + body.size() - sizeof(at_cap), &at_cap,
              sizeof(at_cap));
  EXPECT_TRUE(DecodeSubscribeRequest(body).has_value());
}

TEST(ServeProtocolTest, SnapshotReplyRoundTrip) {
  SnapshotInfo info;
  info.epoch = 12;
  info.rows_seen = 120000;
  std::string body;
  EncodeSnapshotReply(info, &body);
  const auto back = DecodeSnapshotReply(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, info.epoch);
  EXPECT_EQ(back->rows_seen, info.rows_seen);
}

TEST(ServeProtocolTest, SnapshotReplyRejectsTruncationAndTrailing) {
  SnapshotInfo info;
  info.epoch = 1;
  info.rows_seen = 2;
  std::string body;
  EncodeSnapshotReply(info, &body);
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeSnapshotReply(body.substr(0, len)).has_value())
        << len;
  }
  body.push_back('\0');
  EXPECT_FALSE(DecodeSnapshotReply(body).has_value());
}

TEST(ServeProtocolTest, ErrorRoundTrip) {
  std::string wire;
  EncodeError(Status::kUnknownSketch, "no such sketch", &wire);
  const auto header = DecodeFrameHeader(wire.data(), kFrameHeaderBytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->opcode, Opcode::kError);
  EXPECT_EQ(header->status,
            static_cast<std::uint8_t>(Status::kUnknownSketch));
  const auto message =
      DecodeErrorMessage(wire.substr(kFrameHeaderBytes));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, "no such sketch");
}

TEST(ServeProtocolTest, HealthReplyRoundTrip) {
  std::vector<PodHealthInfo> pods(3);
  pods[0].health = 0;
  pods[0].inflight = 2;
  pods[0].resident_bytes = 1 << 20;
  pods[1].health = 1;
  pods[1].consecutive_failures = 2;
  pods[2].health = 2;
  pods[2].consecutive_failures = 7;
  std::string body;
  ASSERT_TRUE(EncodeHealthReply(pods, &body));
  const auto back = DecodeHealthReply(body);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), pods.size());
  for (std::size_t i = 0; i < pods.size(); ++i) {
    EXPECT_EQ((*back)[i].health, pods[i].health) << i;
    EXPECT_EQ((*back)[i].consecutive_failures,
              pods[i].consecutive_failures)
        << i;
    EXPECT_EQ((*back)[i].inflight, pods[i].inflight) << i;
    EXPECT_EQ((*back)[i].resident_bytes, pods[i].resident_bytes) << i;
  }
  // An empty pod list is a valid (degenerate) reply.
  std::string empty_body;
  ASSERT_TRUE(EncodeHealthReply({}, &empty_body));
  const auto empty = DecodeHealthReply(empty_body);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(ServeProtocolTest, HealthReplyRejectsMalformedBodies) {
  std::vector<PodHealthInfo> pods(2);
  pods[1].health = 2;
  std::string body;
  ASSERT_TRUE(EncodeHealthReply(pods, &body));
  // Truncation at every prefix length, and one trailing byte.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeHealthReply(body.substr(0, len)).has_value())
        << len;
  }
  std::string trailing = body;
  trailing.push_back('\0');
  EXPECT_FALSE(DecodeHealthReply(trailing).has_value());
  // A health byte outside {0,1,2} is rejected.
  std::string bad = body;
  bad[4] = 3;  // first pod's health byte, after the u32 count
  EXPECT_FALSE(DecodeHealthReply(bad).has_value());
  // A count over the cap is rejected outright.
  std::string huge;
  const std::uint32_t count = kMaxPodsPerReply + 1;
  huge.append(reinterpret_cast<const char*>(&count), sizeof(count));
  EXPECT_FALSE(DecodeHealthReply(huge).has_value());
}

StatsReply SampleStatsReply() {
  StatsReply reply;
  reply.counters.push_back({"serve_requests_total{op=\"estimate\"}", 42});
  reply.counters.push_back({"ingest_rows_total", 0});
  reply.gauges.push_back({"serve_pod_inflight{pod=\"0\"}", -3});
  StatsHistogram h;
  h.name = "serve_request_ns{op=\"estimate\"}";
  h.count = 5;
  h.sum = 1234;
  h.max = 900;
  h.buckets = {0, 2, 0, 3};
  reply.histograms.push_back(std::move(h));
  reply.histograms.push_back({"ingest_publish_ns", 0, 0, 0, {}});
  return reply;
}

TEST(ServeProtocolTest, StatsReplyRoundTrip) {
  const StatsReply reply = SampleStatsReply();
  std::string body;
  ASSERT_TRUE(EncodeStatsReply(reply, &body));
  const auto back = DecodeStatsReply(body);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->counters.size(), reply.counters.size());
  for (std::size_t i = 0; i < reply.counters.size(); ++i) {
    EXPECT_EQ(back->counters[i].name, reply.counters[i].name) << i;
    EXPECT_EQ(back->counters[i].value, reply.counters[i].value) << i;
  }
  ASSERT_EQ(back->gauges.size(), reply.gauges.size());
  EXPECT_EQ(back->gauges[0].name, reply.gauges[0].name);
  EXPECT_EQ(back->gauges[0].value, reply.gauges[0].value);
  ASSERT_EQ(back->histograms.size(), reply.histograms.size());
  EXPECT_EQ(back->histograms[0].name, reply.histograms[0].name);
  EXPECT_EQ(back->histograms[0].count, reply.histograms[0].count);
  EXPECT_EQ(back->histograms[0].sum, reply.histograms[0].sum);
  EXPECT_EQ(back->histograms[0].max, reply.histograms[0].max);
  EXPECT_EQ(back->histograms[0].buckets, reply.histograms[0].buckets);
  EXPECT_TRUE(back->histograms[1].buckets.empty());

  // The empty reply is valid (a server with nothing recorded yet).
  std::string empty_body;
  ASSERT_TRUE(EncodeStatsReply(StatsReply{}, &empty_body));
  const auto empty = DecodeStatsReply(empty_body);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->counters.empty());
  EXPECT_TRUE(empty->gauges.empty());
  EXPECT_TRUE(empty->histograms.empty());
}

TEST(ServeProtocolTest, StatsReplyRejectsMalformedBodies) {
  std::string body;
  ASSERT_TRUE(EncodeStatsReply(SampleStatsReply(), &body));
  // Truncation at every prefix length, and one trailing byte.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeStatsReply(body.substr(0, len)).has_value()) << len;
  }
  std::string trailing = body;
  trailing.push_back('\0');
  EXPECT_FALSE(DecodeStatsReply(trailing).has_value());
  // A section count over the cap is rejected before any allocation.
  std::string huge;
  const std::uint32_t count = kMaxMetricsPerReply + 1;
  huge.append(reinterpret_cast<const char*>(&count), sizeof(count));
  EXPECT_FALSE(DecodeStatsReply(huge).has_value());
  // A declared count the remaining bytes cannot possibly hold.
  std::string lying;
  const std::uint32_t many = 1000;
  lying.append(reinterpret_cast<const char*>(&many), sizeof(many));
  lying.append(8, '\0');  // far fewer bytes than 1000 counter rows
  EXPECT_FALSE(DecodeStatsReply(lying).has_value());
}

TEST(ServeProtocolTest, StatsReplyRejectsOversizedHistogram) {
  StatsReply reply;
  StatsHistogram h;
  h.name = "too_wide";
  h.buckets.assign(kMaxHistogramBuckets + 1, 1);
  reply.histograms.push_back(std::move(h));
  std::string body;
  EXPECT_FALSE(EncodeStatsReply(reply, &body));
  // At the cap it encodes and round-trips.
  reply.histograms[0].buckets.assign(kMaxHistogramBuckets, 1);
  reply.histograms[0].count = kMaxHistogramBuckets;
  body.clear();
  ASSERT_TRUE(EncodeStatsReply(reply, &body));
  const auto back = DecodeStatsReply(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->histograms[0].buckets.size(), kMaxHistogramBuckets);
}

TEST(ServeProtocolTest, EncodeFrameRefusesOverlongBody) {
  std::string frame;
  const std::string body(kMaxBodyBytes + 1, 'x');
  EXPECT_FALSE(EncodeFrame(Opcode::kEstimate, 0, body, &frame));
  EXPECT_TRUE(frame.empty());
}

}  // namespace
}  // namespace ifsketch::serve
