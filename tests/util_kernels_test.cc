// Differential kernel-conformance harness.
//
// The SIMD dispatch tiers (util/kernels.h) are only admissible if they
// are bit-identical to the portable scalar reference on every input.
// This suite enforces that two ways:
//
//   1. Word-stream conformance: for every tier compiled into this binary
//      and supported by the running CPU, run randomized and adversarial
//      word streams of every length 0..257 (covering the 4-word AVX2
//      vector, the 8-word AVX-512 vector, the 16-vector Harley-Seal
//      block, and every tail residue) through each BitKernels entry
//      point and require exact equality with ScalarKernels().
//
//   2. End-to-end bit-identity: for every registered algorithm, the
//      engine's estimate_many / are_frequent / mine answers must be
//      bit-identical under every dispatch tier (the IFSKETCH_KERNEL
//      contract; CI additionally runs the whole suite once with
//      IFSKETCH_KERNEL=scalar).
//
// On hardware without AVX2/AVX-512 the per-tier loops degenerate to the
// scalar tier only -- the suite still passes, it just proves less; the
// CI x86 runners exercise the vector tiers.

#include "util/kernels.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "sketch/sketch_file.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ifsketch::util {
namespace {

// Word streams that historically break vector popcount kernels: carry
// chains in the CSA tree (all-ones), sign/lane edges, and single bits at
// word boundaries.
std::vector<std::vector<std::uint64_t>> PatternStreams(std::size_t n,
                                                       Rng& rng) {
  std::vector<std::vector<std::uint64_t>> streams;
  streams.emplace_back(n, std::uint64_t{0});                       // empty
  streams.emplace_back(n, ~std::uint64_t{0});                      // full
  streams.emplace_back(n, std::uint64_t{0xAAAAAAAAAAAAAAAA});      // stripes
  streams.emplace_back(n, std::uint64_t{0x8000000000000001});      // edges
  {
    std::vector<std::uint64_t> sparse(n, 0);
    for (std::size_t i = 0; i < n; i += 3) {
      sparse[i] = std::uint64_t{1} << (i % 64);
    }
    streams.push_back(std::move(sparse));
  }
  {
    std::vector<std::uint64_t> dense(n, ~std::uint64_t{0});
    for (std::size_t i = 0; i < n; i += 5) {
      dense[i] &= ~(std::uint64_t{1} << ((7 * i) % 64));
    }
    streams.push_back(std::move(dense));
  }
  for (int r = 0; r < 2; ++r) {
    std::vector<std::uint64_t> random(n);
    for (auto& w : random) w = rng.Next();
    streams.push_back(std::move(random));
  }
  return streams;
}

class KernelTierTest : public testing::TestWithParam<KernelTier> {
 protected:
  void SetUp() override {
    kernels_ = KernelsForTier(GetParam());
    if (kernels_ == nullptr) {
      GTEST_SKIP() << KernelTierName(GetParam())
                   << " tier not usable on this build/CPU";
    }
  }
  const BitKernels* kernels_ = nullptr;
};

TEST_P(KernelTierTest, PopcountWordsMatchesScalarOnAllLengthsAndPatterns) {
  const BitKernels& scalar = ScalarKernels();
  Rng rng(101);
  for (std::size_t n = 0; n <= 257; ++n) {
    for (const auto& stream : PatternStreams(n, rng)) {
      ASSERT_EQ(kernels_->popcount_words(stream.data(), n),
                scalar.popcount_words(stream.data(), n))
          << KernelTierName(GetParam()) << " diverged at n=" << n;
    }
  }
}

TEST_P(KernelTierTest, AndCountMatchesScalarOnAllLengthsAndPatterns) {
  const BitKernels& scalar = ScalarKernels();
  Rng rng(102);
  for (std::size_t n = 0; n <= 257; ++n) {
    const auto streams = PatternStreams(n, rng);
    for (std::size_t i = 0; i + 1 < streams.size(); ++i) {
      const auto& a = streams[i];
      const auto& b = streams[i + 1];
      ASSERT_EQ(kernels_->and_count(a.data(), b.data(), n),
                scalar.and_count(a.data(), b.data(), n))
          << KernelTierName(GetParam()) << " diverged at n=" << n
          << " pair=" << i;
    }
  }
}

TEST_P(KernelTierTest, AndCountManyMatchesScalarForEveryOperandCount) {
  const BitKernels& scalar = ScalarKernels();
  Rng rng(103);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                        31u, 32u, 63u, 64u, 65u, 127u, 128u, 129u, 255u,
                        256u, 257u}) {
    const auto streams = PatternStreams(n, rng);
    std::vector<const std::uint64_t*> ops;
    for (const auto& s : streams) ops.push_back(s.data());
    for (std::size_t count = 1; count <= ops.size(); ++count) {
      ASSERT_EQ(kernels_->and_count_many(ops.data(), count, n),
                scalar.and_count_many(ops.data(), count, n))
          << KernelTierName(GetParam()) << " diverged at n=" << n
          << " count=" << count;
    }
  }
}

TEST_P(KernelTierTest, AndIntoMatchesScalarWordForWord) {
  const BitKernels& scalar = ScalarKernels();
  Rng rng(104);
  for (std::size_t n = 0; n <= 257; ++n) {
    const auto streams = PatternStreams(n, rng);
    for (std::size_t i = 0; i + 1 < streams.size(); ++i) {
      std::vector<std::uint64_t> tiered = streams[i];
      std::vector<std::uint64_t> reference = streams[i];
      kernels_->and_into(tiered.data(), streams[i + 1].data(), n);
      scalar.and_into(reference.data(), streams[i + 1].data(), n);
      ASSERT_EQ(tiered, reference)
          << KernelTierName(GetParam()) << " diverged at n=" << n
          << " pair=" << i;
    }
  }
}

// Zero-length streams must not touch the pointers at all: exercised here
// with nulls, which any dereference (or nullptr arithmetic UB caught by
// -fsanitize=undefined) would turn into a crash.
TEST_P(KernelTierTest, ZeroWordsNeverTouchPointers) {
  EXPECT_EQ(kernels_->popcount_words(nullptr, 0), 0u);
  EXPECT_EQ(kernels_->and_count(nullptr, nullptr, 0), 0u);
  const std::uint64_t* ops[1] = {nullptr};
  EXPECT_EQ(kernels_->and_count_many(ops, 1, 0), 0u);
  kernels_->and_into(nullptr, nullptr, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelTierTest,
                         testing::Values(KernelTier::kScalar,
                                         KernelTier::kAvx2,
                                         KernelTier::kAvx512),
                         [](const auto& info) {
                           return std::string(KernelTierName(info.param));
                         });

// ----------------------------------------------------- BitVector seams

// Restores the tier that was active at entry (NOT the best supported
// one: under the CI IFSKETCH_KERNEL=scalar run the entry tier is the
// scalar pin, and every test after this suite must stay pinned).
class KernelDispatchTest : public testing::Test {
 protected:
  void SetUp() override { entry_tier_ = ActiveKernelTier(); }
  void TearDown() override {
    ASSERT_TRUE(SetKernelTier(entry_tier_));
    util::ThreadPool::SetDefaultThreadCount(0);
  }
  KernelTier entry_tier_ = KernelTier::kScalar;
};

TEST_F(KernelDispatchTest, SupportedTiersAlwaysIncludeScalar) {
  const auto tiers = SupportedKernelTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), KernelTier::kScalar);
  for (KernelTier tier : tiers) {
    EXPECT_NE(KernelsForTier(tier), nullptr);
    EXPECT_TRUE(SetKernelTier(tier));
    EXPECT_EQ(ActiveKernelTier(), tier);
    EXPECT_STREQ(ActiveKernels().name, KernelTierName(tier));
  }
}

TEST_F(KernelDispatchTest, SetKernelTierRejectsUnknownNames) {
  EXPECT_TRUE(SetKernelTier("scalar"));
  EXPECT_FALSE(SetKernelTier("sse9"));
  EXPECT_FALSE(SetKernelTier(""));
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
}

TEST_F(KernelDispatchTest, BitVectorOpsIdenticalUnderEveryTier) {
  Rng rng(7001);
  for (std::size_t bits : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u, 255u,
                           256u, 257u, 1000u, 16384u, 16411u}) {
    const BitVector a = rng.RandomBits(bits);
    const BitVector b = rng.RandomBits(bits);
    const BitVector c = rng.RandomBits(bits);
    ASSERT_TRUE(SetKernelTier(KernelTier::kScalar));
    const std::size_t count = a.Count();
    const std::size_t and_count = a.AndCount(b);
    const std::size_t and_many =
        BitVector::AndCountMany({&a, &b, &c});
    BitVector and_into = a;
    and_into &= b;
    for (KernelTier tier : SupportedKernelTiers()) {
      ASSERT_TRUE(SetKernelTier(tier));
      ASSERT_EQ(a.Count(), count) << KernelTierName(tier) << " " << bits;
      ASSERT_EQ(a.AndCount(b), and_count)
          << KernelTierName(tier) << " " << bits;
      ASSERT_EQ(BitVector::AndCountMany({&a, &b, &c}), and_many)
          << KernelTierName(tier) << " " << bits;
      BitVector tiered = a;
      tiered &= b;
      ASSERT_EQ(tiered, and_into) << KernelTierName(tier) << " " << bits;
    }
  }
}

// Satellite regression: zero-word (0-bit) operands are valid everywhere
// and count as zero; an empty operand *list* stays a contract violation.
TEST_F(KernelDispatchTest, ZeroBitVectorsAreValidOperands) {
  for (KernelTier tier : SupportedKernelTiers()) {
    ASSERT_TRUE(SetKernelTier(tier));
    const BitVector empty_a(0);
    const BitVector empty_b(0);
    EXPECT_EQ(empty_a.Count(), 0u);
    EXPECT_EQ(empty_a.AndCount(empty_b), 0u);
    EXPECT_EQ(BitVector::AndCountMany({&empty_a, &empty_b}), 0u);
    BitVector acc = empty_a;
    acc &= empty_b;
    EXPECT_EQ(acc, empty_a);
  }
}

TEST(KernelContractDeathTest, EmptyOperandListAborts) {
  const std::vector<const BitVector*> none;
  EXPECT_DEATH(BitVector::AndCountMany(none), "");
}

// -------------------------------------- registry-driven query identity

core::SketchParams EstimatorParams() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

class KernelEquivalenceTest : public testing::TestWithParam<const char*> {
 protected:
  // Same entry-tier restore discipline as KernelDispatchTest: an
  // IFSKETCH_KERNEL pin must survive this suite.
  void SetUp() override { entry_tier_ = ActiveKernelTier(); }
  void TearDown() override {
    ASSERT_TRUE(SetKernelTier(entry_tier_));
    util::ThreadPool::SetDefaultThreadCount(0);
  }
  KernelTier entry_tier_ = KernelTier::kScalar;
};

TEST_P(KernelEquivalenceTest, QueriesBitIdenticalAcrossDispatchTiers) {
  util::Rng rng(5001);
  const std::size_t d = 12;
  const core::Database db =
      data::PowerLawBaskets(900, d, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built =
      ifsketch::Engine::Build(db, GetParam(), EstimatorParams(), rng);
  ASSERT_TRUE(built.has_value());
  const ifsketch::Engine& engine = *built;

  std::vector<core::Itemset> queries;
  queries.emplace_back(d);
  for (int i = 0; i < 200; ++i) {
    core::Itemset t(d);
    const std::size_t size = 1 + rng.UniformInt(4);
    while (t.size() < size) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(d)));
    }
    queries.push_back(std::move(t));
  }
  mining::AprioriOptions opt;
  opt.min_frequency = 0.08;
  opt.max_size = 4;

  ASSERT_TRUE(SetKernelTier(KernelTier::kScalar));
  std::vector<double> scalar_est;
  engine.estimate_many(queries, &scalar_est);
  std::vector<bool> scalar_bits;
  engine.are_frequent(queries, &scalar_bits);
  const auto scalar_mined = engine.mine(opt);

  for (KernelTier tier : SupportedKernelTiers()) {
    ASSERT_TRUE(SetKernelTier(tier));
    std::vector<double> est;
    engine.estimate_many(queries, &est);
    ASSERT_EQ(est.size(), scalar_est.size());
    for (std::size_t i = 0; i < est.size(); ++i) {
      // Exact double equality: the tiers share one arithmetic pipeline
      // and may only differ in how words are counted.
      ASSERT_EQ(est[i], scalar_est[i])
          << GetParam() << " estimate diverged under "
          << KernelTierName(tier) << " on query " << i;
    }
    std::vector<bool> bits;
    engine.are_frequent(queries, &bits);
    ASSERT_EQ(bits, scalar_bits)
        << GetParam() << " indicator diverged under "
        << KernelTierName(tier);
    const auto mined = engine.mine(opt);
    ASSERT_EQ(mined.size(), scalar_mined.size())
        << GetParam() << " mine diverged under " << KernelTierName(tier);
    for (std::size_t i = 0; i < mined.size(); ++i) {
      ASSERT_EQ(mined[i].itemset, scalar_mined[i].itemset) << i;
      ASSERT_EQ(mined[i].frequency, scalar_mined[i].frequency) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, KernelEquivalenceTest,
                         testing::Values("SUBSAMPLE", "SUBSAMPLE-WOR",
                                         "RELEASE-DB", "IMPORTANCE-SAMPLE",
                                         "MEDIAN-BOOST(SUBSAMPLE)"),
                         [](const auto& info) {
                           std::string safe = info.param;
                           for (char& c : safe) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return safe;
                         });

}  // namespace
}  // namespace ifsketch::util
