#include "sketch/envelope.h"

#include <gtest/gtest.h>

#include "util/combinatorics.h"

namespace ifsketch::sketch {
namespace {

core::SketchParams Params(std::size_t k, double eps,
                          core::Answer answer = core::Answer::kEstimator) {
  core::SketchParams p;
  p.k = k;
  p.eps = eps;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = answer;
  return p;
}

TEST(EnvelopeTest, WinnerBitsIsMinimum) {
  const auto r = NaiveEnvelope(1000, 30, Params(3, 0.05));
  EXPECT_EQ(r.winner_bits,
            std::min({r.release_db_bits, r.release_answers_bits,
                      r.subsample_bits}));
}

TEST(EnvelopeTest, TinyNFavorsReleaseDb) {
  // n = 3 rows: nd is unbeatable.
  const auto r = NaiveEnvelope(3, 20, Params(3, 0.01));
  EXPECT_EQ(r.winner, "RELEASE-DB");
}

TEST(EnvelopeTest, SmallItemsetSpaceFavorsReleaseAnswers) {
  // d=10, k=1 -> C(10,1)=10 answers; with coarse eps that's tiny.
  const auto r =
      NaiveEnvelope(1000000, 10, Params(1, 0.25, core::Answer::kIndicator));
  EXPECT_EQ(r.winner, "RELEASE-ANSWERS");
  EXPECT_EQ(r.release_answers_bits, util::Binomial(10, 1));
}

TEST(EnvelopeTest, LargeNModerateEpsFavorsSubsample) {
  // Huge n, many itemsets, moderate eps: sampling wins.
  const auto r = NaiveEnvelope(100000000, 100, Params(4, 0.05));
  EXPECT_EQ(r.winner, "SUBSAMPLE");
}

TEST(EnvelopeTest, PaperCrossoverReleaseAnswersVsSubsample) {
  // Theorem 13 discussion: for k=O(1), RELEASE-ANSWERS becomes optimal
  // once 1/eps >= C(d/2, k-1). Check the envelope crosses over as eps
  // shrinks with d, k fixed and n huge.
  const std::size_t n = std::size_t{1} << 30;
  const std::size_t d = 100;
  const std::size_t k = 4;
  const auto coarse =
      NaiveEnvelope(n, d, Params(k, 0.05, core::Answer::kIndicator));
  const auto fine =
      NaiveEnvelope(n, d, Params(k, 1e-4, core::Answer::kIndicator));
  EXPECT_EQ(coarse.winner, "SUBSAMPLE");
  EXPECT_EQ(fine.winner, "RELEASE-ANSWERS");
}

TEST(EnvelopeTest, BestNaiveAlgorithmMatchesWinner) {
  for (const auto& [n, d] : std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 20}, {1u << 30, 10}, {100000000, 100}}) {
    const auto p = Params(2, 0.05);
    const auto r = NaiveEnvelope(n, d, p);
    EXPECT_EQ(BestNaiveAlgorithm(n, d, p)->name(), r.winner);
  }
}

TEST(EnvelopeTest, EstimatorEnvelopeAtLeastIndicator) {
  // Estimators cost at least as much on every branch once eps is small
  // enough for the eps^-2 term to dominate the Chernoff constants.
  const auto ind = NaiveEnvelope(10000, 24,
                                 Params(3, 0.005, core::Answer::kIndicator));
  const auto est = NaiveEnvelope(10000, 24,
                                 Params(3, 0.005, core::Answer::kEstimator));
  EXPECT_GE(est.release_answers_bits, ind.release_answers_bits);
  EXPECT_GE(est.subsample_bits, ind.subsample_bits);
  EXPECT_EQ(est.release_db_bits, ind.release_db_bits);
}

}  // namespace
}  // namespace ifsketch::sketch
