#include "mining/fpgrowth.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "data/generators.h"
#include "util/bitvector.h"

namespace ifsketch::mining {
namespace {

core::Database MakeDb(const std::vector<std::string>& rows) {
  std::vector<util::BitVector> bits;
  for (const auto& r : rows) bits.push_back(util::BitVector::FromString(r));
  return core::Database::FromRows(std::move(bits));
}

std::set<std::string> Keys(const std::vector<FrequentItemset>& v) {
  std::set<std::string> out;
  for (const auto& fi : v) out.insert(fi.itemset.indicator().ToString());
  return out;
}

TEST(FpGrowthTest, HandComputedExample) {
  const core::Database db = MakeDb({"1101", "1100", "1010", "1101"});
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 3;
  const auto mined = FpGrowth(db, opt);
  EXPECT_EQ(mined.size(), 7u);
  for (const auto& fi : mined) {
    EXPECT_GE(fi.frequency, 0.5);
    EXPECT_DOUBLE_EQ(fi.frequency, db.Frequency(fi.itemset));
  }
}

TEST(FpGrowthTest, AgreesWithAprioriOnRandomData) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const core::Database db = data::UniformRandom(150, 10, 0.5, rng);
    AprioriOptions opt;
    // Off-grid thresholds (0.205*150 = 30.75, never an exact count) so
    // float rounding at the boundary cannot make the two miners differ.
    opt.min_frequency = 0.205 + 0.05 * trial;
    opt.max_size = 4;
    const auto apriori = MineDatabase(db, opt);
    const auto fp = FpGrowth(db, opt);
    EXPECT_EQ(Keys(apriori), Keys(fp)) << "trial " << trial;
    // Frequencies agree too.
    for (const auto& fi : fp) {
      EXPECT_DOUBLE_EQ(fi.frequency, db.Frequency(fi.itemset));
    }
  }
}

TEST(FpGrowthTest, AgreesWithAprioriOnBasketData) {
  util::Rng rng(2);
  const core::Database db =
      data::PowerLawBaskets(800, 20, 1.0, 0.5, 4, 3, 0.25, rng);
  AprioriOptions opt;
  opt.min_frequency = 0.1;
  opt.max_size = 4;
  EXPECT_EQ(Keys(MineDatabase(db, opt)), Keys(FpGrowth(db, opt)));
}

TEST(FpGrowthTest, MaxSizeRespected) {
  const core::Database db = MakeDb({"11111", "11111", "11111"});
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 2;
  for (const auto& fi : FpGrowth(db, opt)) {
    EXPECT_LE(fi.itemset.size(), 2u);
  }
}

TEST(FpGrowthTest, EmptyDatabase) {
  core::Database db(0, 5);
  AprioriOptions opt;
  EXPECT_TRUE(FpGrowth(db, opt).empty());
}

TEST(FpGrowthTest, ThresholdBoundaryInclusive) {
  // Exactly at the threshold must be included (same rule as Apriori).
  const core::Database db = MakeDb({"10", "10", "01", "01"});
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 1;
  const auto mined = FpGrowth(db, opt);
  EXPECT_EQ(mined.size(), 2u);
}

TEST(FpGrowthTest, SingleItemDominates) {
  // One very frequent item, everything else rare: conditional trees are
  // trivial and the recursion must not blow up.
  util::Rng rng(3);
  core::Database db(1000, 16);
  for (std::size_t i = 0; i < 1000; ++i) {
    db.Set(i, 0, true);
    if (rng.Bernoulli(0.02)) db.Set(i, 1 + rng.UniformInt(15), true);
  }
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 5;
  const auto mined = FpGrowth(db, opt);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].itemset, core::Itemset(16, {0}));
}

TEST(FpGrowthTest, DeterministicOutputOrder) {
  util::Rng rng(4);
  const core::Database db = data::UniformRandom(200, 8, 0.6, rng);
  AprioriOptions opt;
  opt.min_frequency = 0.3;
  opt.max_size = 3;
  const auto a = FpGrowth(db, opt);
  const auto b = FpGrowth(db, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].itemset, b[i].itemset);
  }
}

}  // namespace
}  // namespace ifsketch::mining
