#include "sketch/release_answers.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "data/generators.h"
#include "util/combinatorics.h"

namespace ifsketch::sketch {
namespace {

class ReleaseAnswersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(66);
    db_ = data::UniformRandom(50, 9, 0.45, rng);
    params_.k = 3;
    params_.eps = 0.05;
    params_.delta = 0.05;
  }
  core::Database db_;
  core::SketchParams params_;
  ReleaseAnswersSketch algo_;
  util::Rng build_rng_{88};
};

TEST_F(ReleaseAnswersTest, IndicatorSummaryIsOneBitPerItemset) {
  core::SketchParams p = params_;
  p.answer = core::Answer::kIndicator;
  const auto summary = algo_.Build(db_, p, build_rng_);
  EXPECT_EQ(summary.size(), util::Binomial(9, 3));
  EXPECT_EQ(summary.size(), algo_.PredictedSizeBits(50, 9, p));
}

TEST_F(ReleaseAnswersTest, EstimatorSummaryHasLogEpsFactor) {
  core::SketchParams p = params_;
  p.answer = core::Answer::kEstimator;
  const auto summary = algo_.Build(db_, p, build_rng_);
  const int fbits = ReleaseAnswersSketch::FrequencyBits(p.eps);
  EXPECT_EQ(summary.size(), util::Binomial(9, 3) * fbits);
  EXPECT_EQ(summary.size(), algo_.PredictedSizeBits(50, 9, p));
}

TEST_F(ReleaseAnswersTest, FrequencyBitsCoversEps) {
  // Quantization with FrequencyBits(eps) bits has resolution < eps.
  for (const double eps : {0.5, 0.1, 0.01, 0.001}) {
    const int bits = ReleaseAnswersSketch::FrequencyBits(eps);
    EXPECT_LT(1.0 / ((1ull << bits) - 1), eps) << eps;
  }
}

TEST_F(ReleaseAnswersTest, EstimatorValid) {
  core::SketchParams p = params_;
  p.answer = core::Answer::kEstimator;
  const auto summary = algo_.Build(db_, p, build_rng_);
  const auto est = algo_.LoadEstimator(summary, p, 9, 50);
  const auto report =
      core::ValidateEstimatorExhaustive(db_, *est, 3, p.eps);
  EXPECT_TRUE(report.valid());
  // Quantization error only: at most eps/2.
  EXPECT_LE(report.max_abs_error, p.eps / 2 + 1e-9);
}

TEST_F(ReleaseAnswersTest, IndicatorValid) {
  core::SketchParams p = params_;
  p.answer = core::Answer::kIndicator;
  p.eps = 0.3;
  const auto summary = algo_.Build(db_, p, build_rng_);
  const auto ind = algo_.LoadIndicator(summary, p, 9, 50);
  const auto report = core::ValidateIndicatorExhaustive(db_, *ind, 3, p.eps);
  EXPECT_TRUE(report.valid());
}

TEST_F(ReleaseAnswersTest, LookupMatchesTrueFrequencyWithinQuantization) {
  core::SketchParams p = params_;
  p.answer = core::Answer::kEstimator;
  const auto summary = algo_.Build(db_, p, build_rng_);
  const auto est = algo_.LoadEstimator(summary, p, 9, 50);
  const int fbits = ReleaseAnswersSketch::FrequencyBits(p.eps);
  const double resolution = 1.0 / ((1ull << fbits) - 1);
  for (const auto& attrs : util::AllSubsets(9, 3)) {
    const core::Itemset t(9, attrs);
    EXPECT_NEAR(est->EstimateFrequency(t), db_.Frequency(t), resolution);
  }
}

TEST_F(ReleaseAnswersTest, SizeIndependentOfN) {
  core::SketchParams p = params_;
  EXPECT_EQ(algo_.PredictedSizeBits(10, 9, p),
            algo_.PredictedSizeBits(1000000, 9, p));
}

TEST_F(ReleaseAnswersTest, DeterministicBuild) {
  util::Rng r1(4), r2(400);
  EXPECT_EQ(algo_.Build(db_, params_, r1), algo_.Build(db_, params_, r2));
}

TEST(ReleaseAnswersEdgeTest, K1StoresPerAttributeFrequencies) {
  core::Database db(4, 3);
  db.Set(0, 0, true);
  db.Set(1, 0, true);
  db.Set(2, 1, true);
  ReleaseAnswersSketch algo;
  core::SketchParams p;
  p.k = 1;
  p.eps = 0.01;
  p.answer = core::Answer::kEstimator;
  util::Rng rng(5);
  const auto summary = algo.Build(db, p, rng);
  const auto est = algo.LoadEstimator(summary, p, 3, 4);
  EXPECT_NEAR(est->EstimateFrequency(core::Itemset(3, {0})), 0.5, 0.005);
  EXPECT_NEAR(est->EstimateFrequency(core::Itemset(3, {1})), 0.25, 0.005);
  EXPECT_NEAR(est->EstimateFrequency(core::Itemset(3, {2})), 0.0, 0.005);
}

}  // namespace
}  // namespace ifsketch::sketch
