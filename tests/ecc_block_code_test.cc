#include "ecc/block_code.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>

#include "util/random.h"

namespace ifsketch::ecc {
namespace {

TEST(InnerCodeTest, MinDistanceAtLeastSix) {
  const InnerCode& code = InnerCode::Instance();
  EXPECT_GE(code.MeasuredMinDistance(), InnerCode::kMinDistance);
  // Exhaustive pairwise verification over all 256 codewords.
  std::size_t min_dist = 24;
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = a + 1; b < 256; ++b) {
      const int dist = std::popcount(code.Encode(a) ^ code.Encode(b));
      min_dist = std::min<std::size_t>(min_dist, dist);
    }
  }
  EXPECT_EQ(min_dist, code.MeasuredMinDistance());
  EXPECT_GE(min_dist, 6u);
}

TEST(InnerCodeTest, CodewordsFitIn24Bits) {
  const InnerCode& code = InnerCode::Instance();
  for (unsigned m = 0; m < 256; ++m) {
    EXPECT_EQ(code.Encode(m) >> 24, 0u);
  }
}

TEST(InnerCodeTest, CodewordsDistinct) {
  const InnerCode& code = InnerCode::Instance();
  std::set<std::uint32_t> seen;
  for (unsigned m = 0; m < 256; ++m) seen.insert(code.Encode(m));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(InnerCodeTest, SystematicDataByte) {
  // Generator is [I | A]: the low 8 bits of the codeword are the data.
  const InnerCode& code = InnerCode::Instance();
  for (unsigned m = 0; m < 256; ++m) {
    EXPECT_EQ(code.Encode(m) & 0xff, m);
  }
}

TEST(InnerCodeTest, Linear) {
  // Encode(a ^ b) == Encode(a) ^ Encode(b) (it's a linear code).
  const InnerCode& code = InnerCode::Instance();
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(rng.UniformInt(256));
    EXPECT_EQ(code.Encode(a ^ b), code.Encode(a) ^ code.Encode(b));
  }
}

TEST(InnerCodeTest, DecodesCleanCodewords) {
  const InnerCode& code = InnerCode::Instance();
  for (unsigned m = 0; m < 256; ++m) {
    EXPECT_EQ(code.Decode(code.Encode(m)), m);
  }
}

TEST(InnerCodeTest, CorrectsOneAndTwoErrorsExhaustively) {
  const InnerCode& code = InnerCode::Instance();
  for (unsigned m = 0; m < 256; m += 7) {
    const std::uint32_t cw = code.Encode(m);
    for (int b1 = 0; b1 < 24; ++b1) {
      EXPECT_EQ(code.Decode(cw ^ (1u << b1)), m);
      for (int b2 = b1 + 1; b2 < 24; ++b2) {
        EXPECT_EQ(code.Decode(cw ^ (1u << b1) ^ (1u << b2)), m)
            << m << " " << b1 << " " << b2;
      }
    }
  }
}

TEST(InnerCodeTest, ThreeErrorsMayFailButStayClose) {
  // With distance >= 6 and nearest-codeword decoding, 3 flips either come
  // back correct or land on a codeword within 3 of the received word.
  const InnerCode& code = InnerCode::Instance();
  util::Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const auto m = static_cast<std::uint8_t>(rng.UniformInt(256));
    std::uint32_t received = code.Encode(m);
    for (std::size_t pos : rng.SampleWithoutReplacement(24, 3)) {
      received ^= 1u << pos;
    }
    const std::uint8_t decoded = code.Decode(received);
    const int dist = std::popcount(code.Encode(decoded) ^ received);
    EXPECT_LE(dist, 3);
  }
}

}  // namespace
}  // namespace ifsketch::ecc
