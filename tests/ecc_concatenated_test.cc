#include "ecc/concatenated.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ifsketch::ecc {
namespace {

TEST(ConcatenatedTest, RateAndRadius) {
  const ConcatenatedCode code = ConcatenatedCode::Default();
  EXPECT_NEAR(code.Rate(), 1.0 / 9.0, 1e-12);
  EXPECT_GT(code.DecodingRadius(), 0.04);  // clears the paper's 4%
  const ConcatenatedCode small = ConcatenatedCode::Small();
  EXPECT_NEAR(small.Rate(), 1.0 / 9.0, 1e-12);
  EXPECT_GT(small.DecodingRadius(), 0.04);
}

TEST(ConcatenatedTest, EncodedBitsBlocks) {
  const ConcatenatedCode code = ConcatenatedCode::Small();
  EXPECT_EQ(code.EncodedBits(1), code.CodeBitsPerBlock());
  EXPECT_EQ(code.EncodedBits(code.DataBitsPerBlock()),
            code.CodeBitsPerBlock());
  EXPECT_EQ(code.EncodedBits(code.DataBitsPerBlock() + 1),
            2 * code.CodeBitsPerBlock());
}

TEST(ConcatenatedTest, CapacityForBudget) {
  const ConcatenatedCode code = ConcatenatedCode::Small();
  EXPECT_EQ(code.CapacityForBudget(code.CodeBitsPerBlock() - 1), 0u);
  EXPECT_EQ(code.CapacityForBudget(code.CodeBitsPerBlock()),
            code.DataBitsPerBlock());
  EXPECT_EQ(code.CapacityForBudget(5 * code.CodeBitsPerBlock() + 3),
            5 * code.DataBitsPerBlock());
}

TEST(ConcatenatedTest, CleanRoundTripSingleBlock) {
  util::Rng rng(1);
  const ConcatenatedCode code = ConcatenatedCode::Small();
  const util::BitVector msg = rng.RandomBits(100);
  const auto decoded = code.Decode(code.Encode(msg), 100);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ConcatenatedTest, CleanRoundTripMultiBlock) {
  util::Rng rng(2);
  const ConcatenatedCode code = ConcatenatedCode::Small();
  const std::size_t bits = 3 * code.DataBitsPerBlock() + 17;
  const util::BitVector msg = rng.RandomBits(bits);
  const auto decoded = code.Decode(code.Encode(msg), bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ConcatenatedTest, RandomErrorsWithinRadius) {
  util::Rng rng(3);
  const ConcatenatedCode code = ConcatenatedCode::Small();
  const std::size_t bits = 2 * code.DataBitsPerBlock();
  for (int trial = 0; trial < 10; ++trial) {
    const util::BitVector msg = rng.RandomBits(bits);
    util::BitVector cw = code.Encode(msg);
    const auto flips = static_cast<std::size_t>(0.04 * cw.size());
    for (std::size_t pos : rng.SampleWithoutReplacement(cw.size(), flips)) {
      cw.Flip(pos);
    }
    const auto decoded = code.Decode(cw, bits);
    ASSERT_TRUE(decoded.has_value()) << trial;
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(ConcatenatedTest, AdversarialWorstCasePattern) {
  // Concentrate 3-bit hits on distinct inner symbols (each ruins one RS
  // symbol) up to just below the outer correction limit.
  util::Rng rng(4);
  const ConcatenatedCode code = ConcatenatedCode::Small();  // RS(60,20)
  const std::size_t bits = code.DataBitsPerBlock();
  const util::BitVector msg = rng.RandomBits(bits);
  util::BitVector cw = code.Encode(msg);
  // 20 symbols correctable; ruin exactly 20 symbols with 3 flips each.
  for (std::size_t sym = 0; sym < 20; ++sym) {
    for (std::size_t b = 0; b < 3; ++b) {
      cw.Flip(sym * 24 + b * 7);
    }
  }
  const auto decoded = code.Decode(cw, bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ConcatenatedTest, BurstErrorSpreadByInterleaving) {
  // A contiguous burst of 4% of the codeword, multi-block: round-robin
  // symbol striping keeps each RS block within its budget.
  util::Rng rng(5);
  const ConcatenatedCode code = ConcatenatedCode::Small();
  const std::size_t bits = 4 * code.DataBitsPerBlock();
  const util::BitVector msg = rng.RandomBits(bits);
  util::BitVector cw = code.Encode(msg);
  const auto burst = static_cast<std::size_t>(0.04 * cw.size());
  const std::size_t start = rng.UniformInt(cw.size() - burst);
  for (std::size_t i = 0; i < burst; ++i) cw.Flip(start + i);
  const auto decoded = code.Decode(cw, bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ConcatenatedTest, HeavyCorruptionDetectedOrCorrected) {
  // At 3x the radius the decoder usually reports failure; it must never
  // quietly return the wrong message *and* claim success on light
  // corruption. (We only assert no crash and correct behavior at the
  // radius; heavy corruption may legitimately fail.)
  util::Rng rng(6);
  const ConcatenatedCode code = ConcatenatedCode::Small();
  const std::size_t bits = code.DataBitsPerBlock();
  const util::BitVector msg = rng.RandomBits(bits);
  util::BitVector cw = code.Encode(msg);
  const auto flips = static_cast<std::size_t>(0.12 * cw.size());
  for (std::size_t pos : rng.SampleWithoutReplacement(cw.size(), flips)) {
    cw.Flip(pos);
  }
  const auto decoded = code.Decode(cw, bits);
  if (decoded.has_value()) {
    SUCCEED();  // decoding beyond the radius is best-effort
  }
}

TEST(ConcatenatedTest, ZeroLengthMessage) {
  const ConcatenatedCode code = ConcatenatedCode::Small();
  const util::BitVector empty(0);
  const auto decoded = code.Decode(code.Encode(empty), 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 0u);
}

TEST(ConcatenatedTest, DefaultPaperScaleRoundTripWithErrors) {
  util::Rng rng(7);
  const ConcatenatedCode code = ConcatenatedCode::Default();
  const std::size_t bits = code.DataBitsPerBlock();  // 680
  const util::BitVector msg = rng.RandomBits(bits);
  util::BitVector cw = code.Encode(msg);  // 6120 bits
  const auto flips = static_cast<std::size_t>(0.04 * cw.size());
  for (std::size_t pos : rng.SampleWithoutReplacement(cw.size(), flips)) {
    cw.Flip(pos);
  }
  const auto decoded = code.Decode(cw, bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

}  // namespace
}  // namespace ifsketch::ecc
