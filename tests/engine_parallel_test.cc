// The parallel batched query path: answers must be bit-identical to the
// serial scalar loop at every thread count, for every registered
// algorithm, and one Engine must be safe to query from many threads at
// once (the lazy view materialization is std::call_once-guarded; run
// this under -fsanitize=thread to validate the whole chain).

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "mining/apriori.h"
#include "sketch/sketch_file.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ifsketch {
namespace {

core::SketchParams EstimatorParams() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

// Randomized batch of 1..4-attribute queries plus an Apriori-level-shaped
// run of prefix siblings (so the prefix-sharing kernel engages) and the
// empty itemset.
std::vector<core::Itemset> RandomBatch(std::size_t d, util::Rng& rng) {
  std::vector<core::Itemset> queries;
  queries.emplace_back(d);
  for (int i = 0; i < 150; ++i) {
    core::Itemset t(d);
    const std::size_t size = 1 + rng.UniformInt(4);
    while (t.size() < size) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(d)));
    }
    queries.push_back(std::move(t));
  }
  // Sibling runs: {0,1,x} for ascending x, then {2,3,x}.
  for (std::size_t x = 2; x < d; ++x) {
    queries.emplace_back(d, std::vector<std::size_t>{0, 1, x});
  }
  for (std::size_t x = 4; x < d; ++x) {
    queries.emplace_back(d, std::vector<std::size_t>{2, 3, x});
  }
  return queries;
}

class ParallelEquivalenceTest : public testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { util::ThreadPool::SetDefaultThreadCount(0); }
};

TEST_P(ParallelEquivalenceTest, BatchedMatchesScalarAtEveryThreadCount) {
  util::Rng rng(41);
  const std::size_t d = 12;
  const core::Database db =
      data::PowerLawBaskets(800, d, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, GetParam(), EstimatorParams(), rng);
  ASSERT_TRUE(built.has_value());
  const Engine& engine = *built;
  const auto queries = RandomBatch(d, rng);

  // Scalar reference, computed on a single thread.
  util::ThreadPool::SetDefaultThreadCount(1);
  std::vector<double> scalar(queries.size());
  std::vector<bool> scalar_bits(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    scalar[i] = engine.estimate(queries[i]);
    scalar_bits[i] = engine.is_frequent(queries[i]);
  }

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool::SetDefaultThreadCount(threads);
    std::vector<double> batched;
    engine.estimate_many(queries, &batched);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(scalar[i], batched[i])
          << GetParam() << " diverged on query " << i << " at " << threads
          << " threads (" << queries[i].ToString() << ")";
    }
    std::vector<bool> bits;
    engine.are_frequent(queries, &bits);
    ASSERT_EQ(bits.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(scalar_bits[i], bits[i])
          << GetParam() << " indicator diverged on query " << i << " at "
          << threads << " threads";
    }
  }
}

TEST_P(ParallelEquivalenceTest, MineMatchesScalarAtEveryThreadCount) {
  util::Rng rng(42);
  const std::size_t d = 14;
  const core::Database db =
      data::PowerLawBaskets(1000, d, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, GetParam(), EstimatorParams(), rng);
  ASSERT_TRUE(built.has_value());

  mining::AprioriOptions opt;
  opt.min_frequency = 0.08;
  opt.max_size = 4;
  const auto estimator = sketch::LoadEstimator(built->file());
  ASSERT_NE(estimator, nullptr);
  const auto scalar = mining::MineWithEstimator(*estimator, d, opt);

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool::SetDefaultThreadCount(threads);
    const auto mined = built->mine(opt);
    ASSERT_EQ(scalar.size(), mined.size()) << threads << " threads";
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i].itemset, mined[i].itemset) << i;
      ASSERT_EQ(scalar[i].frequency, mined[i].frequency) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ParallelEquivalenceTest,
                         testing::Values("SUBSAMPLE", "SUBSAMPLE-WOR",
                                         "RELEASE-DB", "IMPORTANCE-SAMPLE",
                                         "MEDIAN-BOOST(SUBSAMPLE)"),
                         [](const auto& info) {
                           std::string safe = info.param;
                           for (char& c : safe) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return safe;
                         });

// Many threads hammer one freshly-built Engine whose views are not yet
// materialized: the std::call_once guards must serialize the first load
// and every thread must read the same answers.
TEST(ConcurrentEngineTest, ConcurrentQueriesOnOneEngine) {
  util::Rng rng(43);
  const std::size_t d = 10;
  const core::Database db =
      data::PowerLawBaskets(600, d, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, "SUBSAMPLE", EstimatorParams(), rng);
  ASSERT_TRUE(built.has_value());
  const Engine& engine = *built;  // views NOT materialized yet
  const auto queries = RandomBatch(d, rng);

  util::ThreadPool::SetDefaultThreadCount(4);
  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<double>> estimates(kThreads);
  std::vector<std::vector<bool>> bits(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix batched and scalar entry points; the first calls race on the
      // call_once view materialization by design.
      engine.estimate_many(queries, &estimates[t]);
      engine.are_frequent(queries, &bits[t]);
      estimates[t][0] = engine.estimate(queries[0]);
    });
  }
  for (auto& th : threads) th.join();

  std::vector<double> expected;
  engine.estimate_many(queries, &expected);
  expected[0] = engine.estimate(queries[0]);
  std::vector<bool> expected_bits;
  engine.are_frequent(queries, &expected_bits);
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(estimates[t], expected) << "thread " << t;
    ASSERT_EQ(bits[t], expected_bits) << "thread " << t;
  }
  util::ThreadPool::SetDefaultThreadCount(0);
}

}  // namespace
}  // namespace ifsketch
