#include "core/validate.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace ifsketch::core {
namespace {

/// Estimator with a programmable constant bias.
class BiasedEstimator : public FrequencyEstimator {
 public:
  BiasedEstimator(const Database* db, double bias) : db_(db), bias_(bias) {}
  double EstimateFrequency(const Itemset& t) const override {
    const double f = db_->Frequency(t) + bias_;
    return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
  }

 private:
  const Database* db_;
  double bias_;
};

/// Indicator thresholding exact frequencies at the given cut.
class CutIndicator : public FrequencyIndicator {
 public:
  CutIndicator(const Database* db, double cut) : db_(db), cut_(cut) {}
  bool IsFrequent(const Itemset& t) const override {
    return db_->Frequency(t) >= cut_;
  }

 private:
  const Database* db_;
  double cut_;
};

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(33);
    db_ = data::UniformRandom(64, 8, 0.5, rng);
  }
  Database db_;
};

TEST_F(ValidateTest, ExactEstimatorIsValid) {
  BiasedEstimator exact(&db_, 0.0);
  const auto report = ValidateEstimatorExhaustive(db_, exact, 2, 0.05);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.itemsets_checked, 28u);  // C(8,2)
  EXPECT_EQ(report.max_abs_error, 0.0);
}

TEST_F(ValidateTest, SmallBiasWithinEpsIsValid) {
  BiasedEstimator biased(&db_, 0.03);
  const auto report = ValidateEstimatorExhaustive(db_, biased, 2, 0.05);
  EXPECT_TRUE(report.valid());
  EXPECT_NEAR(report.max_abs_error, 0.03, 1e-9);
}

TEST_F(ValidateTest, LargeBiasViolates) {
  BiasedEstimator biased(&db_, 0.2);
  const auto report = ValidateEstimatorExhaustive(db_, biased, 2, 0.05);
  EXPECT_FALSE(report.valid());
  EXPECT_GT(report.violations, 0u);
}

TEST_F(ValidateTest, MidThresholdIndicatorIsValid) {
  // Thresholding exact frequencies anywhere inside (eps/2, eps] is valid.
  CutIndicator ind(&db_, 0.15);
  const auto report = ValidateIndicatorExhaustive(db_, ind, 2, 0.2);
  EXPECT_TRUE(report.valid());
}

TEST_F(ValidateTest, AlwaysFrequentIndicatorViolates) {
  CutIndicator always(&db_, -1.0);  // answers 1 for everything
  // With eps large, many itemsets have f < eps/2 and must answer 0.
  const auto report = ValidateIndicatorExhaustive(db_, always, 3, 0.9);
  EXPECT_FALSE(report.valid());
}

TEST_F(ValidateTest, NeverFrequentIndicatorViolates) {
  CutIndicator never(&db_, 2.0);  // answers 0 for everything
  const auto report = ValidateIndicatorExhaustive(db_, never, 1, 0.2);
  // Single attributes have frequency ~0.5 > eps: must answer 1.
  EXPECT_FALSE(report.valid());
}

TEST_F(ValidateTest, SampledMatchesExhaustiveForExactOracle) {
  util::Rng rng(44);
  BiasedEstimator exact(&db_, 0.0);
  const auto report =
      ValidateEstimatorSampled(db_, exact, 3, 0.05, 200, rng);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.itemsets_checked, 200u);
}

TEST_F(ValidateTest, SampledCatchesGrossViolations) {
  util::Rng rng(45);
  CutIndicator always(&db_, -1.0);
  const auto report =
      ValidateIndicatorSampled(db_, always, 3, 0.9, 200, rng);
  EXPECT_FALSE(report.valid());
}

TEST(RandomItemsetTest, SizeAndUniverse) {
  util::Rng rng(46);
  for (int trial = 0; trial < 30; ++trial) {
    const Itemset t = RandomItemset(12, 4, rng);
    EXPECT_EQ(t.universe(), 12u);
    EXPECT_EQ(t.size(), 4u);
  }
}

TEST(RandomItemsetTest, CoversUniverse) {
  util::Rng rng(47);
  std::vector<int> seen(10, 0);
  for (int trial = 0; trial < 300; ++trial) {
    for (std::size_t a : RandomItemset(10, 2, rng).Attributes()) {
      ++seen[a];
    }
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST_F(ValidateTest, MeanAbsErrorComputed) {
  BiasedEstimator biased(&db_, 0.02);
  const auto report = ValidateEstimatorExhaustive(db_, biased, 2, 0.1);
  EXPECT_NEAR(report.mean_abs_error, 0.02, 1e-9);
}

}  // namespace
}  // namespace ifsketch::core
