#include "lp/l1fit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/inequality.h"
#include "util/random.h"

namespace ifsketch::lp {
namespace {

TEST(L1FitTest, ExactSystemZeroResidual) {
  linalg::Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 1) = 1;
  a(2, 0) = 1;
  a(2, 1) = 1;
  const linalg::Vector x_true = {0.3, 0.6};
  const linalg::Vector b = a.MultiplyVec(x_true);
  const auto fit = L1RegressionBox(a, b, 0.0, 1.0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->residual_l1, 0.0, 1e-8);
  EXPECT_NEAR(fit->x[0], 0.3, 1e-8);
  EXPECT_NEAR(fit->x[1], 0.6, 1e-8);
}

TEST(L1FitTest, MedianPropertyOfL1) {
  // Fitting a constant to {0, 0, 10} under L1 gives the median 0 (the L2
  // answer would be the mean 10/3) -- robustness to one outlier.
  linalg::Matrix a(3, 1);
  a(0, 0) = 1;
  a(1, 0) = 1;
  a(2, 0) = 1;
  const linalg::Vector b = {0.0, 0.0, 10.0};
  const auto fit = L1RegressionBox(a, b, 0.0, 20.0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->x[0], 0.0, 1e-8);
  EXPECT_NEAR(fit->residual_l1, 10.0, 1e-8);
}

TEST(L1FitTest, BoxBindsSolution) {
  // Unconstrained optimum would be x = 2; the box caps it at 1.
  linalg::Matrix a(1, 1);
  a(0, 0) = 1;
  const auto fit = L1RegressionBox(a, {2.0}, 0.0, 1.0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->x[0], 1.0, 1e-8);
  EXPECT_NEAR(fit->residual_l1, 1.0, 1e-8);
}

TEST(L1FitTest, NegativeLowBound) {
  linalg::Matrix a(2, 1);
  a(0, 0) = 1;
  a(1, 0) = 1;
  const auto fit = L1RegressionBox(a, {-0.5, -0.5}, -1.0, 1.0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->x[0], -0.5, 1e-8);
}

TEST(L1FitTest, RobustToMinorityCorruption) {
  // y = A x_true with 20% of entries corrupted by large noise: L1 still
  // recovers x_true (this is exactly why De's reconstruction uses L1).
  util::Rng rng(9);
  const std::size_t m = 40, n = 5;
  linalg::Matrix a(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    }
  }
  linalg::Vector x_true(n);
  for (auto& v : x_true) v = rng.UniformDouble();
  linalg::Vector b = a.MultiplyVec(x_true);
  for (std::size_t r = 0; r < m / 5; ++r) {
    b[rng.UniformInt(m)] += (rng.Bernoulli(0.5) ? 5.0 : -5.0);
  }
  const auto fit = L1RegressionBox(a, b, 0.0, 1.0);
  ASSERT_TRUE(fit.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fit->x[i], x_true[i], 0.05) << i;
  }
}

TEST(InequalityTest, SimpleBoxFeasibility) {
  // min x s.t. x >= 0.3 (as -x <= -0.3), 0 <= x <= 1.
  linalg::Matrix g(1, 1);
  g(0, 0) = -1;
  const auto sol = SolveInequalityBox(g, {-0.3}, {1.0}, 0.0, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR((*sol)[0], 0.3, 1e-8);
}

TEST(InequalityTest, InfeasibleBox) {
  // x <= -0.5 with x in [0, 1].
  linalg::Matrix g(1, 1);
  g(0, 0) = 1;
  EXPECT_FALSE(SolveInequalityBox(g, {-0.5}, {0.0}, 0.0, 1.0).has_value());
}

TEST(InequalityTest, MultipleConstraintsPolytopeVertex) {
  // min -(x+y) s.t. x + 2y <= 2, 2x + y <= 2, box [0,1]^2
  // -> optimum at x = y = 2/3.
  linalg::Matrix g(2, 2);
  g(0, 0) = 1;
  g(0, 1) = 2;
  g(1, 0) = 2;
  g(1, 1) = 1;
  const auto sol =
      SolveInequalityBox(g, {2.0, 2.0}, {-1.0, -1.0}, 0.0, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR((*sol)[0], 2.0 / 3.0, 1e-8);
  EXPECT_NEAR((*sol)[1], 2.0 / 3.0, 1e-8);
}

TEST(InequalityTest, SolutionRespectsAllConstraints) {
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 8, n = 4;
    linalg::Matrix g(m, n);
    linalg::Vector interior(n, 0.5);
    linalg::Vector h(m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.Gaussian();
    }
    // Make the midpoint feasible with slack.
    const linalg::Vector gmid = g.MultiplyVec(interior);
    for (std::size_t r = 0; r < m; ++r) h[r] = gmid[r] + 0.1;
    linalg::Vector c(n);
    for (auto& ci : c) ci = rng.Gaussian();
    const auto sol = SolveInequalityBox(g, h, c, 0.0, 1.0);
    ASSERT_TRUE(sol.has_value());
    const linalg::Vector gx = g.MultiplyVec(*sol);
    for (std::size_t r = 0; r < m; ++r) EXPECT_LE(gx[r], h[r] + 1e-6);
    for (double xi : *sol) {
      EXPECT_GE(xi, -1e-9);
      EXPECT_LE(xi, 1.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace ifsketch::lp
