#include "linalg/euclidean.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/products.h"

namespace ifsketch::linalg {
namespace {

TEST(EuclideanTest, RatiosAtMostOne) {
  util::Rng rng(1);
  const Matrix a = RandomBinaryMatrix(20, 6, rng);
  const SectionEstimate est = EstimateSectionRatio(a, 200, rng);
  EXPECT_LE(est.min_ratio, 1.0 + 1e-9);
  EXPECT_LE(est.mean_ratio, 1.0 + 1e-9);
  EXPECT_GE(est.min_ratio, 0.0);
  EXPECT_LE(est.min_ratio, est.mean_ratio + 1e-9);
}

TEST(EuclideanTest, IdentityRangeIsWeakSection) {
  // Range of I_z is all of R^z; the min over random Gaussians is still
  // bounded below (Gaussian vectors have ||x||_1 ~ sqrt(2/pi) sqrt(z)
  // ||x||_2), so the sampled min is comfortably positive.
  util::Rng rng(2);
  const SectionEstimate est =
      EstimateSectionRatio(Matrix::Identity(40), 300, rng);
  EXPECT_GT(est.min_ratio, 0.4);
  EXPECT_NEAR(est.mean_ratio, std::sqrt(2.0 / 3.14159265), 0.05);
}

TEST(EuclideanTest, SpikeDirectionGivesLowRatio) {
  // A matrix whose range contains e_1 (a maximally non-flat vector):
  // ||e_1||_1 / (sqrt(z) ||e_1||_2) = 1/sqrt(z).
  const std::size_t z = 25;
  Matrix a(z, 1);
  a(0, 0) = 1.0;
  util::Rng rng(3);
  const SectionEstimate est = EstimateSectionRatio(a, 50, rng);
  EXPECT_NEAR(est.min_ratio, 1.0 / std::sqrt(static_cast<double>(z)), 1e-9);
}

// Lemma 26's second claim, measured: the range of a Hadamard product of
// random binary matrices is a good Euclidean section (delta bounded away
// from 0).
TEST(EuclideanTest, HadamardProductRangeIsGoodSection) {
  util::Rng rng(4);
  const Matrix a1 = RandomBinaryMatrix(12, 10, rng);
  const Matrix a2 = RandomBinaryMatrix(12, 10, rng);
  const Matrix prod = HadamardProduct({a1, a2});  // 144 x 10
  const SectionEstimate est = EstimateSectionRatio(prod, 400, rng);
  EXPECT_GT(est.min_ratio, 0.2);
}

TEST(EuclideanTest, SamplesRecorded) {
  util::Rng rng(5);
  const SectionEstimate est =
      EstimateSectionRatio(Matrix::Identity(4), 77, rng);
  EXPECT_EQ(est.samples, 77u);
}

}  // namespace
}  // namespace ifsketch::linalg
