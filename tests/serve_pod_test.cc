// SketchPod: open-on-demand loading, LRU + byte-budget admission, stats,
// and eviction safety while queries are in flight (run under
// -fsanitize=thread by the CI tsan job).

#include "serve/pod.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ifsketch::serve {
namespace {

core::SketchParams Params(std::size_t k = 2) {
  core::SketchParams p;
  p.k = k;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// Builds a sketch of an n x d database and saves it under TempDir.
std::string MakeSketchFile(const std::string& stem, std::size_t n,
                           std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db = data::UniformRandom(n, d, 0.4, rng);
  auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  EXPECT_TRUE(engine.has_value());
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(engine->Save(path));
  return path;
}

std::size_t ResidentBytesOf(const std::string& path) {
  const auto engine = Engine::Open(path);
  EXPECT_TRUE(engine.has_value());
  // The pod accounts what an engine actually pins: the whole mapped
  // image for mapped (arena v2) loads, owned summary bytes otherwise.
  return engine->resident_bytes();
}

const SketchStats& StatsFor(const std::vector<SketchStats>& all,
                            const std::string& name) {
  for (const auto& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no stats for " << name;
  static SketchStats none;
  return none;
}

TEST(SketchPodTest, OpensOnDemandAndCountsHits) {
  SketchPod pod;
  const std::string path = MakeSketchFile("pod_a", 300, 10, 1);
  ASSERT_TRUE(pod.AddSketch("a", path));
  EXPECT_FALSE(pod.AddSketch("a", path));  // duplicate name
  EXPECT_TRUE(pod.Knows("a"));
  EXPECT_FALSE(pod.Knows("b"));
  EXPECT_EQ(pod.resident_bytes(), 0u);  // catalog only, nothing loaded

  const auto engine = pod.Acquire("a");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->algorithm(), "SUBSAMPLE");
  EXPECT_GT(pod.resident_bytes(), 0u);
  ASSERT_NE(pod.Acquire("a"), nullptr);  // resident now

  const auto stats = pod.stats();
  const SketchStats& a = StatsFor(stats, "a");
  EXPECT_EQ(a.loads, 1u);
  EXPECT_EQ(a.hits, 1u);  // second Acquire
  EXPECT_EQ(a.evictions, 0u);
  EXPECT_TRUE(a.resident);
  EXPECT_EQ(a.resident_bytes, pod.resident_bytes());

  EXPECT_EQ(pod.Acquire("missing"), nullptr);
}

TEST(SketchPodTest, AcquireFailsOnUnreadableFile) {
  SketchPod pod;
  ASSERT_TRUE(pod.AddSketch("ghost", testing::TempDir() + "/ghost.ifsk"));
  EXPECT_EQ(pod.Acquire("ghost"), nullptr);
  EXPECT_TRUE(pod.Knows("ghost"));  // cataloged, just unloadable
  EXPECT_EQ(pod.resident_bytes(), 0u);
}

TEST(SketchPodTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const std::string pa = MakeSketchFile("pod_lru_a", 400, 10, 2);
  const std::string pb = MakeSketchFile("pod_lru_b", 400, 10, 3);
  const std::string pc = MakeSketchFile("pod_lru_c", 400, 10, 4);
  const std::size_t each = ResidentBytesOf(pa);
  ASSERT_EQ(ResidentBytesOf(pb), each);  // same shape => same size

  // Budget fits exactly two residents.
  SketchPod pod(2 * each);
  ASSERT_TRUE(pod.AddSketch("a", pa));
  ASSERT_TRUE(pod.AddSketch("b", pb));
  ASSERT_TRUE(pod.AddSketch("c", pc));

  ASSERT_NE(pod.Acquire("a"), nullptr);
  ASSERT_NE(pod.Acquire("b"), nullptr);
  EXPECT_EQ(pod.resident_bytes(), 2 * each);

  // Touch a so b is the LRU victim when c loads.
  ASSERT_NE(pod.Acquire("a"), nullptr);
  ASSERT_NE(pod.Acquire("c"), nullptr);
  EXPECT_EQ(pod.resident_bytes(), 2 * each);
  {
    const auto stats = pod.stats();
    EXPECT_TRUE(StatsFor(stats, "a").resident);
    EXPECT_FALSE(StatsFor(stats, "b").resident);
    EXPECT_TRUE(StatsFor(stats, "c").resident);
    EXPECT_EQ(StatsFor(stats, "b").evictions, 1u);
    EXPECT_EQ(StatsFor(stats, "b").resident_bytes, 0u);
  }

  // Reacquiring b reloads it (loads=2) and evicts a (LRU after c's use).
  ASSERT_NE(pod.Acquire("b"), nullptr);
  {
    const auto stats = pod.stats();
    EXPECT_FALSE(StatsFor(stats, "a").resident);
    EXPECT_EQ(StatsFor(stats, "a").evictions, 1u);
    EXPECT_EQ(StatsFor(stats, "b").loads, 2u);
    EXPECT_TRUE(StatsFor(stats, "c").resident);
  }
}

TEST(SketchPodTest, OverBudgetSketchIsAdmittedAlone) {
  const std::string pa = MakeSketchFile("pod_big_a", 300, 10, 5);
  const std::string pb = MakeSketchFile("pod_big_b", 300, 10, 6);
  const std::size_t each = ResidentBytesOf(pa);

  // Budget smaller than one sketch: each load evicts the other, but the
  // name still serves.
  SketchPod pod(each / 2);
  ASSERT_TRUE(pod.AddSketch("a", pa));
  ASSERT_TRUE(pod.AddSketch("b", pb));
  ASSERT_NE(pod.Acquire("a"), nullptr);
  EXPECT_EQ(pod.resident_bytes(), each);  // over budget, admitted alone
  ASSERT_NE(pod.Acquire("b"), nullptr);
  const auto stats = pod.stats();
  EXPECT_FALSE(StatsFor(stats, "a").resident);
  EXPECT_TRUE(StatsFor(stats, "b").resident);
}

TEST(SketchPodTest, SetByteBudgetEvictsImmediately) {
  const std::string pa = MakeSketchFile("pod_reb_a", 300, 10, 7);
  const std::string pb = MakeSketchFile("pod_reb_b", 300, 10, 8);
  SketchPod pod;  // unlimited
  ASSERT_TRUE(pod.AddSketch("a", pa));
  ASSERT_TRUE(pod.AddSketch("b", pb));
  ASSERT_NE(pod.Acquire("a"), nullptr);
  ASSERT_NE(pod.Acquire("b"), nullptr);
  const std::size_t each = ResidentBytesOf(pa);
  EXPECT_EQ(pod.resident_bytes(), 2 * each);

  pod.SetByteBudget(each);
  EXPECT_EQ(pod.resident_bytes(), each);
  const auto stats = pod.stats();
  EXPECT_FALSE(StatsFor(stats, "a").resident);  // a was LRU
  EXPECT_TRUE(StatsFor(stats, "b").resident);
}

TEST(SketchPodTest, CountQueriesAccumulates) {
  SketchPod pod;
  ASSERT_TRUE(pod.AddSketch("a", MakeSketchFile("pod_q", 200, 8, 9)));
  pod.CountQueries("a", 5);
  pod.CountQueries("a", 7);
  pod.CountQueries("nobody", 100);  // silently ignored
  EXPECT_EQ(StatsFor(pod.stats(), "a").queries, 12u);
}

// Queries keep answering correctly while the budget thrashes engines in
// and out under them: an acquired shared_ptr outlives its eviction, and
// answers from a reloaded engine are bit-identical (same file).
TEST(SketchPodTest, EvictionWhileQueriesInFlightIsSafe) {
  const std::string pa = MakeSketchFile("pod_flight_a", 500, 10, 10);
  const std::string pb = MakeSketchFile("pod_flight_b", 500, 10, 11);
  const std::size_t each = ResidentBytesOf(pa);
  SketchPod pod(each);  // exactly one resident: every swap evicts
  ASSERT_TRUE(pod.AddSketch("a", pa));
  ASSERT_TRUE(pod.AddSketch("b", pb));

  // Reference answers, computed on private engines.
  const core::Itemset t(10, {1, 3});
  const double expect_a = Engine::Open(pa)->estimate(t);
  const double expect_b = Engine::Open(pb)->estimate(t);

  util::ThreadPool::SetDefaultThreadCount(2);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      const std::string name = (i % 2 == 0) ? "a" : "b";
      const double expected = (i % 2 == 0) ? expect_a : expect_b;
      for (int round = 0; round < 25 && !failed.load(); ++round) {
        const auto engine = pod.Acquire(name);
        if (engine == nullptr || engine->estimate(t) != expected) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  const auto stats = pod.stats();
  // The a/b ping-pong forces real evictions (budget holds only one).
  EXPECT_GT(StatsFor(stats, "a").evictions +
                StatsFor(stats, "b").evictions,
            0u);
  EXPECT_LE(pod.resident_bytes(), each);
  util::ThreadPool::SetDefaultThreadCount(0);
}

// The mapped-load variant of the in-flight eviction stress: pods now
// hold mmap-backed engines (arena v2 files open through the zero-copy
// path), so eviction drops the pod's reference to a MAPPING, and the
// munmap must be deferred by the shared_ptr hand-out until every query
// in flight on the evicted engine has finished reading the mapped words.
// Run under TSan by the CI tsan job; a use-after-munmap would crash
// outright.
TEST(SketchPodTest, MappedEvictionWhileQueriesInFlightIsSafe) {
  const std::string pa = MakeSketchFile("pod_map_a", 600, 12, 20);
  const std::string pb = MakeSketchFile("pod_map_b", 600, 12, 21);

  // Confirm the pod really serves mapped engines (the files are arena
  // v2, so Acquire's Engine::Open takes the zero-copy path).
  {
    const auto probe = Engine::Open(pa);
    ASSERT_TRUE(probe.has_value());
    ASSERT_EQ(probe->load_path(), Engine::LoadPath::kMapped);
  }

  const std::size_t each = ResidentBytesOf(pa);
  SketchPod pod(each);  // exactly one resident: every swap evicts a mapping
  ASSERT_TRUE(pod.AddSketch("a", pa));
  ASSERT_TRUE(pod.AddSketch("b", pb));

  // Reference answers on private engines, batched and scalar.
  const std::vector<core::Itemset> queries = {
      core::Itemset(12, {1, 3}), core::Itemset(12, {0, 2, 5}),
      core::Itemset(12, {4}), core::Itemset(12, {2, 3, 7})};
  std::vector<double> expect_a, expect_b;
  Engine::Open(pa)->estimate_many(queries, &expect_a);
  Engine::Open(pb)->estimate_many(queries, &expect_b);

  util::ThreadPool::SetDefaultThreadCount(2);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      const std::string name = (i % 2 == 0) ? "a" : "b";
      const std::vector<double>& expected =
          (i % 2 == 0) ? expect_a : expect_b;
      std::vector<double> answers;
      for (int round = 0; round < 25 && !failed.load(); ++round) {
        // Hold the engine across a batched query while other threads
        // force evictions; the mapping must stay valid until `engine`
        // goes out of scope.
        const auto engine = pod.Acquire(name);
        if (engine == nullptr) {
          failed.store(true);
          return;
        }
        engine->estimate_many(queries, &answers);
        if (answers != expected) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  const auto stats = pod.stats();
  EXPECT_GT(StatsFor(stats, "a").evictions +
                StatsFor(stats, "b").evictions,
            0u);
  EXPECT_LE(pod.resident_bytes(), each);
  util::ThreadPool::SetDefaultThreadCount(0);
}

/// An in-memory engine to publish (the ingest path never touches disk).
std::shared_ptr<const Engine> MakeEngine(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db = data::UniformRandom(n, 10, 0.4, rng);
  auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  EXPECT_TRUE(engine.has_value());
  return std::make_shared<const Engine>(std::move(*engine));
}

TEST(SketchPodTest, StreamSketchPublishLifecycle) {
  SketchPod pod;
  ASSERT_TRUE(pod.AddStream("live"));
  EXPECT_FALSE(pod.AddStream("live"));  // duplicate name
  EXPECT_TRUE(pod.Knows("live"));

  // Registered but nothing published: Acquire misses, epoch is 0.
  EXPECT_EQ(pod.Acquire("live"), nullptr);
  auto state = pod.SnapshotOf("live");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->epoch, 0u);
  EXPECT_FALSE(pod.SnapshotOf("nobody").has_value());

  EXPECT_EQ(pod.Publish("live", MakeEngine(200, 31), 200), 1u);
  EXPECT_EQ(pod.Publish("live", MakeEngine(450, 32), 450), 2u);
  state = pod.SnapshotOf("live");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->epoch, 2u);
  EXPECT_EQ(state->rows_seen, 450u);

  const auto engine = pod.Acquire("live");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->n(), 450u);  // the latest snapshot serves

  const auto stats = pod.stats();
  const SketchStats& live = StatsFor(stats, "live");
  EXPECT_EQ(live.publishes, 2u);
  EXPECT_TRUE(live.resident);
  EXPECT_EQ(live.loads, 0u);  // never touched a file
}

TEST(SketchPodTest, PublishAutoRegistersUnknownNames) {
  SketchPod pod;
  EXPECT_EQ(pod.Publish("implicit", MakeEngine(100, 33), 100), 1u);
  EXPECT_TRUE(pod.Knows("implicit"));
  ASSERT_NE(pod.Acquire("implicit"), nullptr);
}

TEST(SketchPodTest, WaitForEpochSemantics) {
  SketchPod pod;
  ASSERT_TRUE(pod.AddStream("live"));

  // Unknown name: the only false return.
  EXPECT_FALSE(pod.WaitForEpoch("nobody", 0, std::chrono::milliseconds(1)));

  // Timeout with nothing published: true, but epoch did not advance.
  SnapshotState state;
  EXPECT_TRUE(pod.WaitForEpoch("live", 0, std::chrono::milliseconds(10),
                               &state));
  EXPECT_EQ(state.epoch, 0u);

  // Already satisfied: returns immediately, no publish needed.
  pod.Publish("live", MakeEngine(100, 34), 100);
  EXPECT_TRUE(pod.WaitForEpoch("live", 0, std::chrono::milliseconds(60000),
                               &state));
  EXPECT_EQ(state.epoch, 1u);
  EXPECT_EQ(state.rows_seen, 100u);

  // Wake-on-publish from another thread (run under the CI tsan job).
  std::thread publisher([&pod] {
    pod.Publish("live", MakeEngine(250, 35), 250);
  });
  EXPECT_TRUE(pod.WaitForEpoch("live", 1, std::chrono::milliseconds(60000),
                               &state));
  publisher.join();
  EXPECT_EQ(state.epoch, 2u);
  EXPECT_EQ(state.rows_seen, 250u);
}

// Published snapshots are pinned: they count against the budget and
// displace file-backed residents, but are never eviction victims
// themselves (there is no file to reload them from).
TEST(SketchPodTest, PublishedSnapshotsArePinnedUnderBudgetPressure) {
  const std::string pa = MakeSketchFile("pod_pin_a", 400, 10, 40);
  const std::size_t each = ResidentBytesOf(pa);
  auto snapshot = MakeEngine(400, 41);
  const std::size_t snapshot_bytes = snapshot->resident_bytes();

  // Budget fits the snapshot plus one file-backed resident, not two.
  SketchPod pod(snapshot_bytes + each);
  ASSERT_TRUE(pod.AddSketch("a", pa));
  ASSERT_TRUE(pod.AddSketch("b", MakeSketchFile("pod_pin_b", 400, 10, 42)));
  pod.Publish("live", std::move(snapshot), 400);

  // Loading a fits; loading b must evict a, never the published live.
  ASSERT_NE(pod.Acquire("a"), nullptr);
  EXPECT_EQ(pod.resident_bytes(), snapshot_bytes + each);
  ASSERT_NE(pod.Acquire("b"), nullptr);
  {
    const auto stats = pod.stats();
    EXPECT_TRUE(StatsFor(stats, "live").resident);
    EXPECT_FALSE(StatsFor(stats, "a").resident);
    EXPECT_TRUE(StatsFor(stats, "b").resident);
    EXPECT_EQ(StatsFor(stats, "live").evictions, 0u);
  }

  // Even a budget below the snapshot itself cannot evict it -- only
  // the file-backed residents go.
  pod.SetByteBudget(1);
  const auto stats = pod.stats();
  EXPECT_TRUE(StatsFor(stats, "live").resident);
  EXPECT_FALSE(StatsFor(stats, "b").resident);
  EXPECT_EQ(StatsFor(stats, "live").evictions, 0u);
  ASSERT_NE(pod.Acquire("live"), nullptr);
}

}  // namespace
}  // namespace ifsketch::serve
