// Replication and failover: HRW placement determinism, health-state
// transitions with backoff probes, transparent failover that keeps
// answers bit-identical, load spreading across replicas, client-side
// retry over fault-injected transports, and error propagation for
// REFRESH/SUBSCRIBE on unknown names as the client observes it on the
// wire.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "serve/client.h"
#include "serve/pod.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/random.h"

namespace ifsketch::serve {
namespace {

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

std::string MakeSketchFile(const std::string& stem, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db = data::UniformRandom(400, 12, 0.4, rng);
  auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  EXPECT_TRUE(engine.has_value());
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(engine->Save(path));
  return path;
}

std::vector<core::Itemset> RandomQueries(std::size_t count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Itemset> queries;
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(12);
    const std::size_t size = 1 + rng.UniformInt(3);
    while (t.size() < size) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(12)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

std::vector<std::vector<std::uint32_t>> AsWire(
    const std::vector<core::Itemset>& queries) {
  std::vector<std::vector<std::uint32_t>> wire;
  for (const core::Itemset& t : queries) {
    std::vector<std::uint32_t> attrs;
    for (std::size_t a : t.Attributes()) {
      attrs.push_back(static_cast<std::uint32_t>(a));
    }
    wire.push_back(std::move(attrs));
  }
  return wire;
}

std::vector<std::shared_ptr<SketchPod>> MakePods(std::size_t count) {
  std::vector<std::shared_ptr<SketchPod>> pods;
  for (std::size_t i = 0; i < count; ++i) {
    pods.push_back(std::make_shared<SketchPod>());
  }
  return pods;
}

RouterOptions Replicated(std::size_t r) {
  RouterOptions options;
  options.replication = r;
  options.fail_threshold = 2;
  options.probe_backoff = std::chrono::milliseconds(30);
  options.probe_backoff_max = std::chrono::milliseconds(200);
  return options;
}

PodFault FailAcquire() {
  PodFault fault;
  fault.fail_acquire = true;
  return fault;
}

// ---------------------------------------------------------- placement

TEST(FailoverTest, ReplicaSetsAreDeterministicDistinctAndOrdered) {
  Router router(MakePods(5), Replicated(3));
  Router twin(MakePods(5), Replicated(3));
  for (int i = 0; i < 64; ++i) {
    const std::string name = "sketch-" + std::to_string(i);
    const auto replicas = router.ReplicasOf(name);
    ASSERT_EQ(replicas.size(), 3u);
    // All distinct pods, all in range.
    for (std::size_t a = 0; a < replicas.size(); ++a) {
      ASSERT_LT(replicas[a], 5u);
      for (std::size_t b = a + 1; b < replicas.size(); ++b) {
        EXPECT_NE(replicas[a], replicas[b]) << name;
      }
    }
    // Pure function of the name: an independent router (fresh process,
    // restart) computes the identical ordered set.
    EXPECT_EQ(twin.ReplicasOf(name), replicas) << name;
    // The primary is the HRW winner.
    EXPECT_EQ(router.ShardOf(name), replicas.front()) << name;
  }
}

TEST(FailoverTest, ReplicationClampsToPodCount) {
  Router router(MakePods(2), Replicated(8));
  EXPECT_EQ(router.replication(), 2u);
  EXPECT_EQ(router.ReplicasOf("x").size(), 2u);
  Router solo(MakePods(1));  // default options: R=1, old behavior
  EXPECT_EQ(solo.replication(), 1u);
  EXPECT_EQ(solo.ReplicasOf("x"), std::vector<std::size_t>{0});
}

TEST(FailoverTest, AddSketchRegistersOnEveryReplica) {
  Router router(MakePods(4), Replicated(2));
  const std::string path = MakeSketchFile("failover_reg", 31);
  ASSERT_TRUE(router.AddSketch("name", path));
  const auto replicas = router.ReplicasOf("name");
  std::size_t knowing = 0;
  for (std::size_t i = 0; i < router.pod_count(); ++i) {
    if (router.pods()[i]->Knows("name")) {
      ++knowing;
      EXPECT_TRUE(std::find(replicas.begin(), replicas.end(), i) !=
                  replicas.end())
          << i;
    }
  }
  EXPECT_EQ(knowing, 2u);
  // Registering the same name again fails on every replica.
  EXPECT_FALSE(router.AddSketch("name", path));
}

// ------------------------------------------------------------ failover

TEST(FailoverTest, FailoverKeepsAnswersBitIdentical) {
  Router router(MakePods(2), Replicated(2));
  const std::string path = MakeSketchFile("failover_bits", 32);
  ASSERT_TRUE(router.AddSketch("s", path));
  const auto queries = RandomQueries(40, 7);
  auto direct = Engine::Open(path);
  ASSERT_TRUE(direct.has_value());
  std::vector<double> expected;
  direct->estimate_many(queries, &expected);

  std::vector<double> before;
  ASSERT_EQ(router.EstimateMany("s", queries, &before), RouteStatus::kOk);
  EXPECT_EQ(before, expected);

  // Kill the primary: every request transparently fails over and the
  // answers never change by a bit.
  SketchPod& primary = *router.pods()[router.ShardOf("s")];
  primary.SetFault(FailAcquire());
  for (int i = 0; i < 5; ++i) {
    std::vector<double> answers;
    ASSERT_EQ(router.EstimateMany("s", queries, &answers),
              RouteStatus::kOk)
        << i;
    EXPECT_EQ(answers, expected) << i;
  }
  // With EVERY replica refusing, the name is known but unservable.
  for (const auto& pod : router.pods()) pod->SetFault(FailAcquire());
  std::vector<double> answers;
  EXPECT_EQ(router.EstimateMany("s", queries, &answers),
            RouteStatus::kLoadFailed);
  for (const auto& pod : router.pods()) pod->SetFault(PodFault{});
  ASSERT_EQ(router.EstimateMany("s", queries, &answers), RouteStatus::kOk);
  EXPECT_EQ(answers, expected);
}

TEST(FailoverTest, HealthWalksSuspectDownAndProbesBack) {
  Router router(MakePods(2), Replicated(2));
  const std::string path = MakeSketchFile("failover_health", 33);
  ASSERT_TRUE(router.AddSketch("s", path));
  const std::size_t primary = router.ShardOf("s");
  router.pods()[primary]->SetFault(FailAcquire());

  // First failure marks the primary suspect; the healthy replica takes
  // over and -- because suspect pods are deprioritized, not retried
  // while a healthy peer serves -- the count stays at one.
  ASSERT_NE(router.Acquire("s"), nullptr);  // failed over, still served
  EXPECT_EQ(router.pod_health()[primary].health, PodHealth::kSuspect);
  ASSERT_NE(router.Acquire("s"), nullptr);
  auto health = router.pod_health();
  EXPECT_EQ(health[primary].health, PodHealth::kSuspect);
  EXPECT_EQ(health[primary].consecutive_failures, 1u);

  // Fault the secondary too: the next requests walk healthy then
  // suspect, every attempt fails, and the primary crosses the
  // fail_threshold into kDown. A total outage is client-visible.
  const std::size_t secondary = 1 - primary;
  router.pods()[secondary]->SetFault(FailAcquire());
  EXPECT_EQ(router.Acquire("s"), nullptr);
  EXPECT_EQ(router.Acquire("s"), nullptr);
  health = router.pod_health();
  EXPECT_EQ(health[primary].health, PodHealth::kDown);
  EXPECT_GE(health[primary].consecutive_failures, 2u);
  EXPECT_EQ(health[secondary].health, PodHealth::kDown);

  // Revive the primary; once its backoff elapses the next request
  // probes it and it rejoins as healthy while the secondary stays down.
  router.pods()[primary]->SetFault(PodFault{});
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_NE(router.Acquire("s"), nullptr);
  health = router.pod_health();
  EXPECT_EQ(health[primary].health, PodHealth::kHealthy);
  EXPECT_EQ(health[primary].consecutive_failures, 0u);
  EXPECT_GE(health[primary].probes, 1u);
  EXPECT_EQ(health[secondary].health, PodHealth::kDown);
}

TEST(FailoverTest, SerialHotNameSpreadsAcrossReplicas) {
  Router router(MakePods(2), Replicated(2));
  const std::string path = MakeSketchFile("failover_spread", 34);
  ASSERT_TRUE(router.AddSketch("hot", path));
  const auto queries = RandomQueries(10, 9);
  for (int i = 0; i < 8; ++i) {
    std::vector<double> answers;
    ASSERT_EQ(router.EstimateMany("hot", queries, &answers),
              RouteStatus::kOk);
  }
  // Equal-load ties rotate, so serial traffic on one hot name lands on
  // BOTH replicas rather than pinning the first.
  for (const auto& pod : router.pods()) {
    std::uint64_t served = 0;
    for (const auto& s : pod->stats()) {
      if (s.name == "hot") served = s.queries;
    }
    EXPECT_GT(served, 0u);
  }
}

TEST(FailoverTest, EmptyPodParticipatesHarmlessly) {
  // One replica of everything lands on a pod that catalogs nothing;
  // routing must neither crash nor mark anyone unhealthy over it.
  Router router(MakePods(2), Replicated(1));
  const std::string path = MakeSketchFile("failover_empty", 35);
  std::string on_zero = "a";
  // Find a name whose single replica is pod 0, leaving pod 1 empty.
  while (router.ShardOf(on_zero) != 0) on_zero += "a";
  ASSERT_TRUE(router.AddSketch(on_zero, path));
  EXPECT_TRUE(router.pods()[1]->Names().empty());

  std::vector<double> answers;
  EXPECT_EQ(router.EstimateMany("unknown", RandomQueries(3, 1), &answers),
            RouteStatus::kUnknownSketch);
  EXPECT_EQ(router.Acquire("unknown"), nullptr);
  ASSERT_EQ(router.EstimateMany(on_zero, RandomQueries(3, 1), &answers),
            RouteStatus::kOk);
  const auto health = router.pod_health();
  EXPECT_EQ(health[0].health, PodHealth::kHealthy);
  EXPECT_EQ(health[1].health, PodHealth::kHealthy);
  EXPECT_EQ(health[1].failovers, 0u);
}

// ------------------------------------------------- fault injection

TEST(FaultyTransportTest, FailAfterBytesDeliversExactPrefixThenDies) {
  auto [a, b] = LoopbackTransport::CreatePair();
  FaultPlan plan;
  plan.fail_after_bytes = 5;
  FaultyTransport faulty(std::move(a), plan);
  const char payload[10] = "123456789";
  EXPECT_FALSE(faulty.WriteAll(payload, 10));
  EXPECT_TRUE(faulty.dead());
  char got[10] = {};
  // The peer receives exactly the 5-byte prefix, then EOF.
  EXPECT_TRUE(b->ReadAll(got, 5));
  EXPECT_EQ(std::string(got, 5), "12345");
  EXPECT_FALSE(b->ReadAll(got, 1));
  // Dead is latched: every later op fails without touching the wire.
  EXPECT_FALSE(faulty.WriteAll(payload, 1));
  EXPECT_FALSE(faulty.ReadAll(got, 1));
}

TEST(FaultyTransportTest, ScheduleIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    auto [a, b] = LoopbackTransport::CreatePair();
    FaultPlan plan;
    plan.seed = seed;
    plan.fail_write = 0.3;
    FaultyTransport faulty(std::move(a), plan);
    std::vector<bool> outcomes;
    const char byte = 'x';
    for (int i = 0; i < 64 && !faulty.dead(); ++i) {
      outcomes.push_back(faulty.WriteAll(&byte, 1));
    }
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

// --------------------------------------------------- client retry

/// Spins up ServeConnection threads on demand; each MakeTransport call
/// is one fresh "connection" to the shared router.
class LoopbackServer {
 public:
  explicit LoopbackServer(Router& router) : router_(router) {}

  ~LoopbackServer() {
    for (auto& t : threads_) t.join();
  }

  std::unique_ptr<Transport> MakeTransport() {
    auto [client_end, server_end] = LoopbackTransport::CreatePair();
    threads_.emplace_back([this, t = std::move(server_end)]() mutable {
      ServeConnection(router_, *t);
    });
    return std::move(client_end);
  }

 private:
  Router& router_;
  std::vector<std::thread> threads_;
};

TEST(ClientRetryTest, RetriesTransportFailureOnFreshConnection) {
  Router router(MakePods(1));
  const std::string path = MakeSketchFile("retry_ok", 36);
  ASSERT_TRUE(router.AddSketch("s", path));
  const auto queries = RandomQueries(8, 11);
  auto direct = Engine::Open(path);
  ASSERT_TRUE(direct.has_value());
  std::vector<double> expected;
  direct->estimate_many(queries, &expected);

  LoopbackServer server(router);
  // Connection 1 dies on its first read (reply never arrives);
  // connection 2 is clean. The call must succeed on attempt 2.
  std::atomic<int> connections{0};
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  {
    SketchClient client(
        [&]() -> std::unique_ptr<Transport> {
          auto inner = server.MakeTransport();
          if (connections++ == 0) {
            FaultPlan plan;
            plan.fail_read = 1.0;
            return std::make_unique<FaultyTransport>(std::move(inner),
                                                     plan);
          }
          return inner;
        },
        policy);
    const auto answers = client.EstimateMany("s", AsWire(queries));
    ASSERT_TRUE(answers.has_value()) << client.last_error();
    EXPECT_EQ(*answers, expected);  // bit-identical through the retry
    EXPECT_EQ(client.last_attempts(), 2);
    EXPECT_EQ(client.last_failure(), FailureKind::kNone);
    EXPECT_EQ(connections.load(), 2);
  }
}

TEST(ClientRetryTest, RequestRefusalsDoNotRetry) {
  Router router(MakePods(1));
  const std::string path = MakeSketchFile("retry_refuse", 37);
  ASSERT_TRUE(router.AddSketch("s", path));
  LoopbackServer server(router);
  std::atomic<int> connections{0};
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = std::chrono::milliseconds(1);
  {
    SketchClient client(
        [&] {
          ++connections;
          return server.MakeTransport();
        },
        policy);
    // Unknown sketch: a server verdict, not a transport failure.
    const auto answers = client.EstimateMany("nope", {{1, 2}});
    EXPECT_FALSE(answers.has_value());
    EXPECT_EQ(client.last_failure(), FailureKind::kRequest);
    EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
    EXPECT_EQ(client.last_attempts(), 1);
    EXPECT_EQ(connections.load(), 1);
    // The connection survived the refusal: the next request reuses it.
    const auto info = client.Info("s");
    EXPECT_TRUE(info.has_value()) << client.last_error();
    EXPECT_EQ(connections.load(), 1);
  }
}

TEST(ClientRetryTest, AttemptDeadlineTurnsSilenceIntoRetryableFailure) {
  // No server behind any connection: every attempt times out rather
  // than blocking forever, then the attempt budget runs out.
  std::vector<std::unique_ptr<Transport>> parked;  // keep peers alive
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout = std::chrono::milliseconds(40);
  policy.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(
      [&] {
        auto [client_end, server_end] = LoopbackTransport::CreatePair();
        parked.push_back(std::move(server_end));
        return std::move(client_end);
      },
      policy);
  const auto start = std::chrono::steady_clock::now();
  const auto answers = client.EstimateMany("s", {{1}});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(answers.has_value());
  EXPECT_EQ(client.last_failure(), FailureKind::kTransport);
  EXPECT_EQ(client.last_attempts(), 2);
  EXPECT_LT(elapsed, std::chrono::seconds(5));  // bounded, not hung
}

TEST(ClientRetryTest, OverallDeadlineCapsTheRetryLoop) {
  std::vector<std::unique_ptr<Transport>> parked;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.attempt_timeout = std::chrono::milliseconds(20);
  policy.deadline = std::chrono::milliseconds(80);
  policy.initial_backoff = std::chrono::milliseconds(5);
  SketchClient client(
      [&] {
        auto [client_end, server_end] = LoopbackTransport::CreatePair();
        parked.push_back(std::move(server_end));
        return std::move(client_end);
      },
      policy);
  const auto answers = client.EstimateMany("s", {{1}});
  EXPECT_FALSE(answers.has_value());
  EXPECT_EQ(client.last_failure(), FailureKind::kTransport);
  // Nowhere near the 100-attempt budget: the deadline cut it off.
  EXPECT_LT(client.last_attempts(), 20);
}

// ------------------------------------- wire-status error propagation

TEST(ClientWireStatusTest, RefreshAndSubscribeUnknownNames) {
  Router router(MakePods(2), Replicated(2));
  const std::string path = MakeSketchFile("wire_status", 38);
  ASSERT_TRUE(router.AddSketch("s", path));
  LoopbackServer server(router);
  SketchClient client(server.MakeTransport());

  const auto refreshed = client.Refresh("ghost");
  EXPECT_FALSE(refreshed.has_value());
  EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
  EXPECT_EQ(client.last_failure(), FailureKind::kRequest);

  const auto subscribed = client.Subscribe("ghost", 0, 50);
  EXPECT_FALSE(subscribed.has_value());
  EXPECT_EQ(client.last_status(), Status::kUnknownSketch);
  EXPECT_EQ(client.last_failure(), FailureKind::kRequest);

  // Both refusals were request-level: the connection still serves.
  const auto state = client.Refresh("s");
  ASSERT_TRUE(state.has_value()) << client.last_error();
  EXPECT_EQ(state->epoch, 0u);  // file-backed: nothing ever published
}

TEST(ClientWireStatusTest, HealthReportsEveryPod) {
  Router router(MakePods(3), Replicated(2));
  const std::string path = MakeSketchFile("wire_health", 39);
  ASSERT_TRUE(router.AddSketch("s", path));
  std::vector<double> sink;
  ASSERT_EQ(router.EstimateMany("s", RandomQueries(4, 3), &sink),
            RouteStatus::kOk);
  LoopbackServer server(router);
  SketchClient client(server.MakeTransport());
  const auto health = client.Health();
  ASSERT_TRUE(health.has_value()) << client.last_error();
  ASSERT_EQ(health->size(), 3u);
  std::uint64_t resident = 0;
  for (const PodHealthInfo& pod : *health) {
    EXPECT_EQ(pod.health, 0u);  // nothing has failed
    EXPECT_EQ(pod.consecutive_failures, 0u);
    resident += pod.resident_bytes;
  }
  EXPECT_GT(resident, 0u);  // the served sketch is resident somewhere
}

}  // namespace
}  // namespace ifsketch::serve
