// Statistical verification: distributional properties the experiment
// conclusions implicitly rely on, checked with chi-square / moment tests
// at generous thresholds (seeded, so deterministic).

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "dp/private_answers.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/stats.h"

namespace ifsketch {
namespace {

TEST(StatisticalTest, UniformIntChiSquare) {
  util::Rng rng(101);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  double counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (double c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 degrees of freedom: 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(StatisticalTest, UniformDoubleMoments) {
  util::Rng rng(102);
  util::RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.UniformDouble());
  EXPECT_NEAR(s.Mean(), 0.5, 0.005);
  EXPECT_NEAR(s.Variance(), 1.0 / 12.0, 0.002);
}

TEST(StatisticalTest, GaussianTailMass) {
  util::Rng rng(103);
  int beyond2 = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (std::fabs(rng.Gaussian()) > 2.0) ++beyond2;
  }
  // P(|N(0,1)| > 2) = 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond2) / kDraws, 0.0455, 0.004);
}

TEST(StatisticalTest, SubsampleVarianceMatchesBinomialPrediction) {
  // The Lemma 9 analysis treats the sample frequency as a binomial mean;
  // its empirical variance must match p(1-p)/s.
  util::Rng rng(104);
  const core::Database db =
      data::PlantedItemsets(5000, 10, {{{1, 4}, 0.3}}, 0.05, rng);
  const core::Itemset t(10, {1, 4});
  const double p = db.Frequency(t);
  core::SketchParams params;
  params.k = 2;
  params.eps = 0.05;
  params.delta = 0.1;
  params.scope = core::Scope::kForEach;
  params.answer = core::Answer::kEstimator;
  sketch::SubsampleSketch algo;
  const double s =
      static_cast<double>(sketch::SubsampleSketch::SampleCount(params, 10));
  util::RunningStat stat;
  for (int trial = 0; trial < 300; ++trial) {
    const auto summary = algo.Build(db, params, rng);
    const auto est = algo.LoadEstimator(summary, params, 10, 5000);
    stat.Add(est->EstimateFrequency(t));
  }
  const double predicted_var = p * (1.0 - p) / s;
  EXPECT_NEAR(stat.Mean(), p, 4.0 * std::sqrt(predicted_var / 300.0) + 1e-3);
  EXPECT_NEAR(stat.Variance(), predicted_var, 0.35 * predicted_var);
}

TEST(StatisticalTest, LaplaceQuantiles) {
  util::Rng rng(105);
  const double b = 1.0;
  std::vector<double> draws;
  draws.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    draws.push_back(dp::SampleLaplace(b, rng));
  }
  // Median 0; quartiles at +/- b*ln2.
  EXPECT_NEAR(util::Quantile(draws, 0.5), 0.0, 0.02);
  EXPECT_NEAR(util::Quantile(draws, 0.75), b * std::log(2.0), 0.03);
  EXPECT_NEAR(util::Quantile(draws, 0.25), -b * std::log(2.0), 0.03);
}

TEST(StatisticalTest, RandomBitsRunsTest) {
  // Crude runs test on the PRNG's bit stream: the number of 01/10
  // transitions in N bits is ~ N/2 +/- O(sqrt(N)).
  util::Rng rng(106);
  const util::BitVector bits = rng.RandomBits(100000);
  std::size_t runs = 0;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits.Get(i) != bits.Get(i - 1)) ++runs;
  }
  EXPECT_NEAR(static_cast<double>(runs), 50000.0, 700.0);
}

TEST(StatisticalTest, PlantedFrequencyConcentration) {
  // Generator sanity: the planted frequency concentrates around its
  // parameter across independent databases.
  util::Rng rng(107);
  util::RunningStat f;
  for (int trial = 0; trial < 40; ++trial) {
    const core::Database db =
        data::PlantedItemsets(2000, 12, {{{3, 8}, 0.25}}, 0.02, rng);
    f.Add(db.Frequency(core::Itemset(12, {3, 8})));
  }
  EXPECT_NEAR(f.Mean(), 0.25, 0.02);
  EXPECT_LT(f.StdDev(), 0.02);
}

}  // namespace
}  // namespace ifsketch
