#include "comm/one_way.h"

#include <gtest/gtest.h>

#include <memory>

#include "lowerbound/index_protocol.h"
#include "sketch/release_db.h"
#include "sketch/subsample.h"

namespace ifsketch::comm {
namespace {

/// A trivial protocol: Alice sends x verbatim. Always succeeds.
class VerbatimProtocol : public OneWayIndexProtocol {
 public:
  explicit VerbatimProtocol(std::size_t n) : n_(n) {}
  std::size_t universe() const override { return n_; }
  util::BitVector AliceMessage(const util::BitVector& x,
                               std::uint64_t) const override {
    return x;
  }
  bool BobOutput(const util::BitVector& message, std::size_t y,
                 std::uint64_t) const override {
    return message.Get(y);
  }

 private:
  std::size_t n_;
};

/// A zero-communication protocol: Bob guesses 0. Succeeds half the time.
class GuessProtocol : public OneWayIndexProtocol {
 public:
  explicit GuessProtocol(std::size_t n) : n_(n) {}
  std::size_t universe() const override { return n_; }
  util::BitVector AliceMessage(const util::BitVector&,
                               std::uint64_t) const override {
    return util::BitVector(0);
  }
  bool BobOutput(const util::BitVector&, std::size_t,
                 std::uint64_t) const override {
    return false;
  }

 private:
  std::size_t n_;
};

TEST(IndexGameTest, VerbatimProtocolAlwaysWins) {
  util::Rng rng(1);
  VerbatimProtocol protocol(64);
  const IndexGameResult r = PlayIndexGame(protocol, 100, rng);
  EXPECT_EQ(r.trials, 100u);
  EXPECT_EQ(r.successes, 100u);
  EXPECT_EQ(r.max_message_bits, 64u);
  EXPECT_DOUBLE_EQ(r.SuccessRate(), 1.0);
}

TEST(IndexGameTest, GuessProtocolWinsHalf) {
  util::Rng rng(2);
  GuessProtocol protocol(32);
  const IndexGameResult r = PlayIndexGame(protocol, 2000, rng);
  EXPECT_EQ(r.max_message_bits, 0u);
  EXPECT_NEAR(r.SuccessRate(), 0.5, 0.05);
}

// Theorem 14's reduction instantiated with a lossless sketch: success
// rate 1, message size = n*d bits.
TEST(SketchIndexProtocolTest, ReleaseDbAlwaysWins) {
  util::Rng rng(3);
  lowerbound::SketchIndexProtocol protocol(
      std::make_shared<sketch::ReleaseDbSketch>(), 8, 2, 4);
  EXPECT_EQ(protocol.universe(), 16u);  // (d/2) * R = 4 * 4
  const IndexGameResult r = PlayIndexGame(protocol, 30, rng);
  EXPECT_DOUBLE_EQ(r.SuccessRate(), 1.0);
  EXPECT_EQ(r.max_message_bits, 4u * 8u);
}

// With a correctly-sized SUBSAMPLE sketch the game succeeds with
// probability well above the 2/3 INDEX threshold.
TEST(SketchIndexProtocolTest, SubsampleBeatsIndexThreshold) {
  util::Rng rng(4);
  lowerbound::SketchIndexProtocol protocol(
      std::make_shared<sketch::SubsampleSketch>(), 12, 2, 6);
  const IndexGameResult r = PlayIndexGame(protocol, 60, rng);
  EXPECT_GT(r.SuccessRate(), 2.0 / 3.0);
  // Message carries Omega(universe) bits, as Theorem 14 predicts for
  // any protocol this accurate.
  EXPECT_GT(r.max_message_bits, protocol.universe());
}

// A starved sketch (tiny sample forced through a too-large eps... here we
// emulate by shrinking num_rows' duplication and querying a truncated
// message) cannot be reliable. Rather than truncating inside the
// protocol, verify the monotone relationship: fewer distinct rows =
// smaller universe = smaller message, success stays high; the bench
// (e4_index_game) sweeps actual truncation.
TEST(SketchIndexProtocolTest, ParamsCarriedCorrectly) {
  lowerbound::SketchIndexProtocol protocol(
      std::make_shared<sketch::SubsampleSketch>(), 12, 3, 10);
  EXPECT_EQ(protocol.params().k, 3u);
  EXPECT_EQ(protocol.params().scope, core::Scope::kForEach);
  EXPECT_EQ(protocol.params().answer, core::Answer::kIndicator);
  EXPECT_NEAR(protocol.params().eps, 0.75 / 10.0, 1e-12);
}

}  // namespace
}  // namespace ifsketch::comm
