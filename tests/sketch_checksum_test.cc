// The IFSK v2 integrity trailer and crash-safe persistence (PR 10):
// both parsers -- the copying stream reader and the zero-copy mapped
// validator -- must accept exactly the same checksummed inputs, detect
// every single-byte corruption a checksummed file can suffer, and keep
// reading trailer-less v2 and legacy v1 files forever. Plus the
// WriteFileAtomic crash matrix: a save killed at any byte leaves the
// old file or the new one, never a hybrid.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "sketch/sketch_file.h"
#include "sketch/sketch_view.h"
#include "sketch/subsample.h"
#include "util/crc32c.h"
#include "util/durable.h"
#include "util/random.h"

namespace ifsketch::sketch {
namespace {

SketchFile MakeFile(util::Rng& rng) {
  const core::Database db = data::UniformRandom(200, 14, 0.4, rng);
  SubsampleSketch algo;
  SketchFile file;
  file.algorithm = algo.name();
  file.params.k = 3;
  file.params.eps = 0.07;
  file.params.delta = 0.02;
  file.params.scope = core::Scope::kForEach;
  file.params.answer = core::Answer::kEstimator;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo.Build(db, file.params, rng);
  return file;
}

std::string Serialize(const SketchFile& file, std::uint16_t version,
                      SketchChecksum checksum) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(WriteSketch(out, file, version, checksum));
  return out.str();
}

/// Parses `bytes` through the copying stream reader.
std::optional<SketchFile> StreamParse(const std::string& bytes,
                                      SketchError* error = nullptr) {
  std::istringstream in(bytes, std::ios::binary);
  return ReadSketch(in, error);
}

/// Parses `bytes` through the zero-copy mapped validator (needs 8-byte
/// alignment, like a real mapping).
std::optional<SketchView> ImageParse(const std::string& bytes,
                                     SketchError* error = nullptr) {
  std::vector<std::uint64_t> aligned((bytes.size() + 7) / 8);
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  return ViewSketchImage(reinterpret_cast<const unsigned char*>(aligned.data()),
                         bytes.size(), error);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Crc32cTest, MatchesTheKnownAnswerAndComposes) {
  const char* kCheck = "123456789";
  EXPECT_EQ(util::Crc32c(kCheck, 9), 0xE3069283u);
  EXPECT_EQ(util::Crc32c(kCheck, 0), 0u);
  // Extending in arbitrary splits equals one pass over the whole buffer.
  for (std::size_t split = 0; split <= 9; ++split) {
    EXPECT_EQ(util::Crc32cExtend(util::Crc32cExtend(0, kCheck, split),
                                 kCheck + split, 9 - split),
              0xE3069283u)
        << split;
  }
}

TEST(SketchChecksumTest, TrailerRoundTripsThroughBothParsers) {
  util::Rng rng(1);
  const SketchFile file = MakeFile(rng);
  const std::string plain =
      Serialize(file, arena::kVersionArena, SketchChecksum::kNone);
  const std::string checked =
      Serialize(file, arena::kVersionArena, SketchChecksum::kCrc32c);
  ASSERT_EQ(checked.size(), plain.size() + arena::kTrailerBytes);
  // The trailer is an appendix: everything before it is byte-identical.
  EXPECT_EQ(checked.compare(0, plain.size(), plain), 0);
  EXPECT_EQ(checked.compare(plain.size(), 4, arena::kTrailerMagic, 4), 0);

  SketchError error;
  const auto streamed = StreamParse(checked, &error);
  ASSERT_TRUE(streamed.has_value()) << error.message;
  EXPECT_EQ(streamed->summary, file.summary);
  EXPECT_EQ(streamed->algorithm, file.algorithm);
  EXPECT_EQ(streamed->n, file.n);

  const auto viewed = ImageParse(checked, &error);
  ASSERT_TRUE(viewed.has_value()) << error.message;
  EXPECT_TRUE(viewed->file.summary == file.summary);
}

TEST(SketchChecksumTest, TrailerlessV2AndLegacyV1StayReadable) {
  util::Rng rng(2);
  const SketchFile file = MakeFile(rng);
  const std::string v2 =
      Serialize(file, arena::kVersionArena, SketchChecksum::kNone);
  EXPECT_TRUE(StreamParse(v2).has_value());
  EXPECT_TRUE(ImageParse(v2).has_value());

  const std::string v1 =
      Serialize(file, arena::kVersionLegacy, SketchChecksum::kNone);
  const auto back = StreamParse(v1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->summary, file.summary);
}

// v1 has no trailer slot: a checksum request degrades to the plain v1
// bytes instead of inventing an unreadable format.
TEST(SketchChecksumTest, ChecksumRequestAtV1IsIgnored) {
  util::Rng rng(3);
  const SketchFile file = MakeFile(rng);
  EXPECT_EQ(Serialize(file, arena::kVersionLegacy, SketchChecksum::kCrc32c),
            Serialize(file, arena::kVersionLegacy, SketchChecksum::kNone));
}

// Flip a content byte that every structural validation still accepts (a
// low mantissa bit of eps): only the checksum can catch it, and BOTH
// parsers must.
TEST(SketchChecksumTest, ContentCorruptionFailsBothParsers) {
  util::Rng rng(4);
  const SketchFile file = MakeFile(rng);
  std::string bytes =
      Serialize(file, arena::kVersionArena, SketchChecksum::kCrc32c);
  // Header layout: magic 4, version 2, name-len 2, name 9 ("SUBSAMPLE"),
  // k u32 @17, eps f64 @21.
  bytes[21] = static_cast<char>(bytes[21] ^ 0x01);

  SketchError error;
  EXPECT_FALSE(StreamParse(bytes, &error).has_value());
  EXPECT_NE(error.message.find("checksum mismatch"), std::string::npos)
      << error.message;
  EXPECT_FALSE(ImageParse(bytes, &error).has_value());
  EXPECT_NE(error.message.find("checksum mismatch"), std::string::npos)
      << error.message;

  // Without the trailer the same flip sails through structurally -- the
  // vulnerability the trailer exists to close.
  std::string unchecked =
      Serialize(file, arena::kVersionArena, SketchChecksum::kNone);
  unchecked[21] = static_cast<char>(unchecked[21] ^ 0x01);
  EXPECT_TRUE(StreamParse(unchecked).has_value());
  EXPECT_TRUE(ImageParse(unchecked).has_value());
}

TEST(SketchChecksumTest, MangledTrailerFailsBothParsersWithAReason) {
  util::Rng rng(5);
  const SketchFile file = MakeFile(rng);
  const std::string good =
      Serialize(file, arena::kVersionArena, SketchChecksum::kCrc32c);
  const std::size_t trailer_at = good.size() - arena::kTrailerBytes;

  struct Case {
    const char* name;
    std::size_t at;      // byte to overwrite
    char value;
    const char* reason;  // expected substring
  };
  const Case cases[] = {
      {"magic", trailer_at + 0, 'X', "bad integrity trailer magic"},
      {"kind", trailer_at + 4, 2, "unsupported checksum kind"},
      {"value", trailer_at + 8, 'X', "checksum mismatch"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::string bytes = good;
    ASSERT_NE(bytes[c.at], c.value);  // the overwrite really changes it
    bytes[c.at] = c.value;
    SketchError error;
    EXPECT_FALSE(StreamParse(bytes, &error).has_value());
    EXPECT_NE(error.message.find(c.reason), std::string::npos)
        << error.message;
    EXPECT_FALSE(ImageParse(bytes, &error).has_value());
    EXPECT_NE(error.message.find(c.reason), std::string::npos)
        << error.message;
  }
}

TEST(SketchChecksumTest, TruncatedOrOversizedTailIsRejected) {
  util::Rng rng(6);
  const SketchFile file = MakeFile(rng);
  const std::string checked =
      Serialize(file, arena::kVersionArena, SketchChecksum::kCrc32c);
  const std::string plain =
      Serialize(file, arena::kVersionArena, SketchChecksum::kNone);

  // A partial trailer can never validate.
  for (const std::size_t drop : {1u, 8u, 15u}) {
    std::string bytes = checked.substr(0, checked.size() - drop);
    EXPECT_FALSE(StreamParse(bytes).has_value()) << drop;
    EXPECT_FALSE(ImageParse(bytes).has_value()) << drop;
  }
  // Bytes after a valid trailer are garbage, not data.
  EXPECT_FALSE(StreamParse(checked + 'x').has_value());
  EXPECT_FALSE(ImageParse(checked + 'x').has_value());
  // So are stray bytes after a trailer-less file.
  EXPECT_FALSE(StreamParse(plain + 'x').has_value());
  EXPECT_FALSE(ImageParse(plain + 'x').has_value());
  // But shearing the trailer off entirely yields the (valid) pre-PR-10
  // framing: detection needs the trailer present or the caller tracking
  // expected sizes, exactly the documented contract.
  const std::string sheared =
      checked.substr(0, checked.size() - arena::kTrailerBytes);
  EXPECT_TRUE(StreamParse(sheared).has_value());
  EXPECT_TRUE(ImageParse(sheared).has_value());
}

// Mutant fuzz over the checksummed bytes: the two parsers must agree on
// every mutant (the shared-acceptance invariant sketch_view_test
// enforces for trailer-less files, extended to trailers) and never
// crash. Content mutations must never be accepted at full length --
// only a mutation that exactly removes the trailer can survive.
TEST(SketchChecksumTest, CheckedMutantsKeepParsersInAgreement) {
  util::Rng rng(7);
  const SketchFile file = MakeFile(rng);
  const std::string good =
      Serialize(file, arena::kVersionArena, SketchChecksum::kCrc32c);

  util::Rng fuzz(777);
  int accepted = 0;
  for (int round = 0; round < 400; ++round) {
    SCOPED_TRACE(round);
    std::string bytes = good;
    if (fuzz.UniformInt(4) == 0) {
      bytes.resize(static_cast<std::size_t>(
          fuzz.UniformInt(bytes.size() + 1)));
    } else {
      const std::size_t at =
          static_cast<std::size_t>(fuzz.UniformInt(bytes.size()));
      bytes[at] = static_cast<char>(
          bytes[at] ^ static_cast<char>(1 + fuzz.UniformInt(255)));
    }
    const bool stream_ok = StreamParse(bytes).has_value();
    const bool image_ok = ImageParse(bytes).has_value();
    EXPECT_EQ(stream_ok, image_ok) << "parsers disagree on a mutant";
    if (stream_ok) {
      ++accepted;
      EXPECT_LT(bytes.size(), good.size())
          << "a full-length corruption slipped past the checksum";
    }
  }
  // Only trailer-shearing truncations may survive; spot-check the rate
  // is tiny rather than silently vacuous.
  EXPECT_LT(accepted, 10);
}

// WriteFileAtomic crash matrix: kill the save at every byte budget; the
// target must read back as EXACTLY the old content or the new content,
// and a retry after the crash must land the new content.
TEST(SketchChecksumTest, AtomicSaveCrashLeavesOldOrNewNeverHybrid) {
  const std::string path = testing::TempDir() + "ifsketch_atomic_test.bin";
  const std::string old_content(300, 'A');
  const std::string new_content(300, 'B');

  // Baseline: how many bytes does a full save write?
  ASSERT_TRUE(util::WriteFileAtomic(path, old_content.data(),
                                    old_content.size()));
  auto probe = std::make_shared<util::CrashPlan>(1u << 20);
  ASSERT_TRUE(util::WriteFileAtomic(path, old_content.data(),
                                    old_content.size(), nullptr,
                                    util::MakeFaultyFileSinkFactory(probe)));
  const std::uint64_t total = (1u << 20) -
                              static_cast<std::uint64_t>(probe->remaining.load(
                                  std::memory_order_relaxed));
  ASSERT_GE(total, old_content.size());

  for (std::uint64_t budget = 0; budget < total; ++budget) {
    SCOPED_TRACE(budget);
    ASSERT_TRUE(
        util::WriteFileAtomic(path, old_content.data(), old_content.size()));
    auto plan = std::make_shared<util::CrashPlan>(budget);
    std::string error;
    EXPECT_FALSE(util::WriteFileAtomic(path, new_content.data(),
                                       new_content.size(), &error,
                                       util::MakeFaultyFileSinkFactory(plan)));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(ReadFileBytes(path), old_content)
        << "interrupted save corrupted the target";
    // The crashed attempt may leave a stale .tmp; the retry overwrites.
    ASSERT_TRUE(
        util::WriteFileAtomic(path, new_content.data(), new_content.size()));
    EXPECT_EQ(ReadFileBytes(path), new_content);
  }
}

TEST(SketchChecksumTest, SaveSketchFileReportsErrnoDetail) {
  util::Rng rng(8);
  const SketchFile file = MakeFile(rng);
  SketchError error;
  EXPECT_FALSE(SaveSketchFile(testing::TempDir() + "no_such_dir/x.ifsk", file,
                              arena::kVersionArena, SketchChecksum::kNone,
                              &error));
  // The whole point of the detail: the caller learns WHY (strerror).
  EXPECT_NE(error.message.find("No such file or directory"),
            std::string::npos)
      << error.message;
}

TEST(SketchChecksumTest, SaveSketchFileEmitsAVerifiableTrailer) {
  util::Rng rng(9);
  const SketchFile file = MakeFile(rng);
  const std::string plain_path = testing::TempDir() + "ifsketch_plain.ifsk";
  const std::string checked_path = testing::TempDir() + "ifsketch_crc.ifsk";
  SketchError error;
  ASSERT_TRUE(SaveSketchFile(plain_path, file, arena::kVersionArena,
                             SketchChecksum::kNone, &error))
      << error.message;
  ASSERT_TRUE(SaveSketchFile(checked_path, file, arena::kVersionArena,
                             SketchChecksum::kCrc32c, &error))
      << error.message;
  EXPECT_EQ(ReadFileBytes(checked_path).size(),
            ReadFileBytes(plain_path).size() + arena::kTrailerBytes);

  const auto loaded = LoadSketchFile(checked_path, &error);
  ASSERT_TRUE(loaded.has_value()) << error.message;
  EXPECT_EQ(loaded->summary, file.summary);
  const auto viewed = ViewSketchFile(checked_path, &error);
  ASSERT_TRUE(viewed.has_value()) << error.message;
  EXPECT_TRUE(viewed->file.summary == file.summary);
}

}  // namespace
}  // namespace ifsketch::sketch
