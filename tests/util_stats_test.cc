#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/combinatorics.h"
#include "util/random.h"

namespace ifsketch::util {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStatTest, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.Mean(), 3.5);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(Quantile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.25), 2.0, 1e-12);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_NEAR(Quantile(v, 0.3), 3.0, 1e-12);
}

TEST(SampleCountTest, IndicatorScalesInverseEps) {
  const std::size_t a = IndicatorSampleCount(0.1, 0.05);
  const std::size_t b = IndicatorSampleCount(0.05, 0.05);
  EXPECT_NEAR(static_cast<double>(b) / static_cast<double>(a), 2.0, 0.05);
}

TEST(SampleCountTest, EstimatorScalesInverseEpsSquared) {
  const std::size_t a = EstimatorSampleCount(0.1, 0.05);
  const std::size_t b = EstimatorSampleCount(0.05, 0.05);
  EXPECT_NEAR(static_cast<double>(b) / static_cast<double>(a), 4.0, 0.05);
}

TEST(SampleCountTest, EstimatorExactFormula) {
  // ceil(ln(2/delta) / (2 eps^2))
  const double expected = std::ceil(std::log(2.0 / 0.01) / (2.0 * 0.01));
  EXPECT_EQ(EstimatorSampleCount(0.1, 0.01),
            static_cast<std::size_t>(expected));
}

TEST(SampleCountTest, ForAllExceedsForEach) {
  EXPECT_GT(ForAllIndicatorSampleCount(0.1, 0.05, 100, 3),
            IndicatorSampleCount(0.1, 0.05));
  EXPECT_GT(ForAllEstimatorSampleCount(0.1, 0.05, 100, 3),
            EstimatorSampleCount(0.1, 0.05));
}

TEST(SampleCountTest, ForAllGrowsWithK) {
  // log C(d,k) grows with k (k << d/2), so the union bound needs more
  // samples.
  std::size_t prev = 0;
  for (std::size_t k = 1; k <= 6; ++k) {
    const std::size_t s = ForAllIndicatorSampleCount(0.1, 0.05, 1000, k);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(SampleCountTest, ForAllHandlesHugeBinomials) {
  // C(10^6, 20) overflows any integer type; log-space must survive.
  const std::size_t s = ForAllEstimatorSampleCount(0.01, 0.05, 1000000, 20);
  EXPECT_GT(s, EstimatorSampleCount(0.01, 0.05));
  EXPECT_LT(s, std::size_t{100000000});
}

TEST(SampleCountTest, MatchesLemma9LogFactor) {
  // For-All indicator should be ~ log(C(d,k)/delta)/log(1/delta') larger.
  const double eps = 0.05, delta = 0.05;
  const double expect_ratio =
      (std::log(2.0) + LogBinomial(200, 4) - std::log(delta)) /
      std::log(2.0 / delta);
  const double ratio =
      static_cast<double>(ForAllIndicatorSampleCount(eps, delta, 200, 4)) /
      static_cast<double>(IndicatorSampleCount(eps, delta));
  EXPECT_NEAR(ratio, expect_ratio, 0.05 * expect_ratio);
}

// Empirical check of the Chernoff-derived counts: a Bernoulli(p) mean of
// EstimatorSampleCount(eps, delta) samples misses by more than eps in
// well under a delta fraction of trials.
TEST(SampleCountTest, EstimatorCountEmpiricallySufficient) {
  Rng rng(99);
  const double eps = 0.1, delta = 0.1, p = 0.35;
  const std::size_t s = EstimatorSampleCount(eps, delta);
  int failures = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < s; ++i) {
      if (rng.Bernoulli(p)) ++hits;
    }
    const double mean = static_cast<double>(hits) / static_cast<double>(s);
    if (std::fabs(mean - p) > eps) ++failures;
  }
  EXPECT_LE(failures, static_cast<int>(kTrials * delta));
}

}  // namespace
}  // namespace ifsketch::util
