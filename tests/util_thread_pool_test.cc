// util::ThreadPool: the chunked ParallelFor must cover ranges exactly
// once with contiguous chunks, at any pool size, including concurrent
// loops issued from many caller threads at once.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace ifsketch {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const std::size_t n = 10013;  // not a multiple of any chunk size
    std::vector<std::atomic<int>> visits(n);
    pool.ParallelFor(0, n, /*grain=*/7,
                     [&](std::size_t first, std::size_t last) {
                       ASSERT_LT(first, last);
                       ASSERT_LE(last, n);
                       for (std::size_t i = first; i < last; ++i) {
                         visits[i].fetch_add(1);
                       }
                     });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  util::ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);

  std::vector<int> one(1, 0);
  pool.ParallelFor(0, 1, 64,
                   [&](std::size_t first, std::size_t last) {
                     for (std::size_t i = first; i < last; ++i) one[i] = 7;
                   });
  EXPECT_EQ(one[0], 7);
}

TEST(ThreadPoolTest, SmallRangesRunInline) {
  // A range below one grain must execute as a single chunk (on the
  // caller), regardless of pool size.
  util::ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelFor(0, 10, /*grain=*/32,
                   [&](std::size_t first, std::size_t last) {
                     EXPECT_EQ(first, 0u);
                     EXPECT_EQ(last, 10u);
                     chunks.fetch_add(1);
                   });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentLoopsFromManyCallers) {
  util::ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kN = 4096;
  std::vector<std::vector<std::size_t>> results(kCallers,
                                                std::vector<std::size_t>(kN));
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(0, kN, 16, [&, c](std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          results[c][i] = c * kN + i;
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(results[c][i], c * kN + i);
    }
  }
}

TEST(ThreadPoolTest, DefaultPoolResizes) {
  util::ThreadPool::SetDefaultThreadCount(3);
  EXPECT_EQ(util::ThreadPool::DefaultThreadCount(), 3u);
  EXPECT_EQ(util::ThreadPool::Default().thread_count(), 3u);
  util::ThreadPool::SetDefaultThreadCount(1);
  EXPECT_EQ(util::ThreadPool::Default().thread_count(), 1u);
  util::ThreadPool::SetDefaultThreadCount(0);  // back to auto
  EXPECT_GE(util::ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace ifsketch
