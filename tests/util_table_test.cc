#include "util/table.h"

#include <gtest/gtest.h>

namespace ifsketch::util {
namespace {

TEST(TableTest, RendersTitleHeaderAndRows) {
  Table t("demo", {"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  Table t("align", {"x", "y"});
  t.AddRow({"long-cell", "1"});
  const std::string out = t.Render();
  // Every rendered line between rules must have equal length.
  std::size_t expected = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::string line = out.substr(pos, nl - pos);
    if (!line.empty() && (line[0] == '|' || line[0] == '+')) {
      if (expected == 0) expected = line.size();
      EXPECT_EQ(line.size(), expected) << line;
    }
    pos = nl + 1;
  }
}

TEST(TableTest, FmtDouble) {
  EXPECT_EQ(Table::Fmt(1.5), "1.5");
  EXPECT_EQ(Table::Fmt(0.333333333, 3), "0.333");
}

TEST(TableTest, FmtIntegers) {
  EXPECT_EQ(Table::Fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::Fmt(std::int64_t{-7}), "-7");
}

}  // namespace
}  // namespace ifsketch::util
