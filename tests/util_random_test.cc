#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ifsketch::util {
namespace {

TEST(RandomTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
}

TEST(RandomTest, UniformIntCoversSupport) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, UniformIntApproximatelyUniform) {
  Rng rng(7);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 500) << b;
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, RandomBitsDensityHalf) {
  Rng rng(10);
  const BitVector v = rng.RandomBits(10000);
  EXPECT_NEAR(static_cast<double>(v.Count()), 5000.0, 300.0);
}

TEST(RandomTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RandomTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(60);
    const std::size_t k = rng.UniformInt(n + 1);
    const auto sample = rng.SampleWithoutReplacement(n, k);
    ASSERT_EQ(sample.size(), k);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      EXPECT_LT(sample[i], n);
      if (i > 0) {
        EXPECT_GT(sample[i], sample[i - 1]);
      }
    }
  }
}

TEST(RandomTest, SampleWithoutReplacementFull) {
  Rng rng(13);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RandomTest, SampleWithoutReplacementUniformMargins) {
  Rng rng(14);
  constexpr int kTrials = 20000;
  int counts[10] = {};
  for (int t = 0; t < kTrials; ++t) {
    for (std::size_t idx : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[idx];
    }
  }
  // Each element appears with probability 3/10.
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i], kTrials * 0.3, 400) << i;
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng rng(15);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.05);
}

TEST(RandomTest, ForkIndependence) {
  Rng rng(16);
  Rng child = rng.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(16);
  parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == rng.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace ifsketch::util
