#include "sketch/median_boost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/validate.h"
#include "util/bitio.h"
#include "data/generators.h"
#include "sketch/subsample.h"

namespace ifsketch::sketch {
namespace {

class MedianBoostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(99);
    db_ = data::UniformRandom(300, 8, 0.4, rng);
    params_.k = 2;
    params_.eps = 0.1;
    params_.delta = 0.05;
    params_.scope = core::Scope::kForAll;
    params_.answer = core::Answer::kEstimator;
  }
  core::Database db_;
  core::SketchParams params_;
  std::shared_ptr<core::SketchAlgorithm> inner_ =
      std::make_shared<SubsampleSketch>();
};

TEST_F(MedianBoostTest, CopyCountIsOddAndScales) {
  MedianBoostSketch boost(inner_);
  const std::size_t m = boost.CopyCount(params_, 8);
  EXPECT_EQ(m % 2, 1u);
  EXPECT_GE(m, 1u);
  // More attributes -> more itemsets -> more copies.
  EXPECT_GE(boost.CopyCount(params_, 64), m);
}

TEST_F(MedianBoostTest, SummaryIsCopiesTimesInner) {
  MedianBoostSketch boost(inner_, 0.2);  // scaled down to keep tests fast
  util::Rng rng(7);
  const auto summary = boost.Build(db_, params_, rng);
  EXPECT_EQ(summary.size(), boost.PredictedSizeBits(300, 8, params_));
  EXPECT_EQ(summary.size() % boost.CopyCount(params_, 8), 0u);
}

TEST_F(MedianBoostTest, BoostedEstimatorValidForAll) {
  MedianBoostSketch boost(inner_, 0.2);
  util::Rng rng(8);
  int invalid = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const auto summary = boost.Build(db_, params_, rng);
    const auto est = boost.LoadEstimator(summary, params_, 8, 300);
    if (!core::ValidateEstimatorExhaustive(db_, *est, 2, params_.eps)
             .valid()) {
      ++invalid;
    }
  }
  EXPECT_LE(invalid, 1);
}

TEST_F(MedianBoostTest, MedianRobustToMinorityOfBadCopies) {
  // A contrived inner algorithm: returns garbage with probability 0.3,
  // exact answers otherwise. The median over many copies is still exact.
  class FlakyInner : public core::SketchAlgorithm {
   public:
    std::string name() const override { return "FLAKY"; }
    util::BitVector Build(const core::Database& db,
                          const core::SketchParams&,
                          util::Rng& rng) const override {
      util::BitWriter w;
      const bool bad = rng.Bernoulli(0.3);
      w.WriteBit(bad);
      // Store the one frequency we will be asked about, or garbage.
      w.WriteQuantized(bad ? 1.0 : db.Frequency(core::Itemset(
                                       db.num_columns(), {0, 1})),
                       24);
      return w.Finish();
    }
    std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
        const util::BitVector& summary, const core::SketchParams&,
        std::size_t, std::size_t) const override {
      util::BitReader r(summary);
      r.ReadBit();
      const double f = r.ReadQuantized(24);
      class Fixed : public core::FrequencyEstimator {
       public:
        explicit Fixed(double f) : f_(f) {}
        double EstimateFrequency(const core::Itemset&) const override {
          return f_;
        }

       private:
        double f_;
      };
      return std::make_unique<Fixed>(f);
    }
    std::size_t PredictedSizeBits(std::size_t, std::size_t,
                                  const core::SketchParams&) const override {
      return 25;
    }
  };

  MedianBoostSketch boost(std::make_shared<FlakyInner>(), 0.3);
  util::Rng rng(9);
  const core::Itemset t(8, {0, 1});
  const double truth = db_.Frequency(t);
  int failures = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto summary = boost.Build(db_, params_, rng);
    const auto est = boost.LoadEstimator(summary, params_, 8, 300);
    if (std::fabs(est->EstimateFrequency(t) - truth) > 0.01) ++failures;
  }
  EXPECT_EQ(failures, 0);
}

TEST_F(MedianBoostTest, NameMentionsInner) {
  MedianBoostSketch boost(inner_);
  EXPECT_EQ(boost.name(), "MEDIAN-BOOST(SUBSAMPLE)");
}

}  // namespace
}  // namespace ifsketch::sketch
