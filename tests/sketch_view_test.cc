// The zero-copy mapped load path (util::MappedFile + sketch::SketchView
// + Engine::Open's LoadMode) against the copying stream parser.
//
// The contract under test is the PR's acceptance bar: for EVERY
// registered algorithm, a sketch opened through the mapped path answers
// estimate_many / are_frequent / mine bit-identically to the same file
// opened through the copying path; legacy v1 files keep loading (copied);
// and the in-place image validator rejects malformed arenas with the
// byte offset of the first bad field, never crashing on mutants.

#include "sketch/sketch_view.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "util/random.h"

namespace ifsketch {
namespace {

std::string Sanitize(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return safe;
}

core::SketchParams TestParams(core::Answer answer = core::Answer::kEstimator) {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForAll;
  p.answer = answer;
  return p;
}

constexpr std::size_t kRows = 400;
constexpr std::size_t kCols = 12;  // rows-per-column not a multiple of 64

core::Database TestDb() {
  util::Rng rng(4242);
  return data::PowerLawBaskets(kRows, kCols, 1.0, 0.5, 4, 3, 0.2, rng);
}

std::vector<core::Itemset> QueriesOfSize(std::size_t size,
                                         std::size_t count) {
  util::Rng rng(777 + size);
  std::vector<core::Itemset> queries;
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(kCols);
    while (t.size() < size) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kCols)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

/// Saves `engine` under TempDir at the current (arena) format version.
std::string SaveTemp(const Engine& engine, const std::string& stem) {
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(engine.Save(path));
  return path;
}

/// The whole file as an aligned word buffer (so ViewSketchImage can run
/// on mutated copies without a file per mutant).
std::vector<std::uint64_t> ReadAligned(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  std::vector<std::uint64_t> words((bytes.size() + 7) / 8, 0);
  std::memcpy(words.data(), bytes.data(), bytes.size());
  words.resize(words.size() + 1);  // keep size() separate from capacity
  words.back() = bytes.size();     // stash the byte size past the image
  return words;
}

const unsigned char* ImageData(const std::vector<std::uint64_t>& image) {
  return reinterpret_cast<const unsigned char*>(image.data());
}

std::size_t ImageSize(const std::vector<std::uint64_t>& image) {
  return static_cast<std::size_t>(image.back());
}

// ---------------------------------------------------------------------
// Registry-driven equivalence: mapped == copied for every algorithm.

class MappedVsCopiedTest : public testing::TestWithParam<std::string> {};

TEST_P(MappedVsCopiedTest, AnswersBitIdenticalAcrossLoadPaths) {
  // Combinator registry entries list as "NAME(...)"; instantiate them
  // over SUBSAMPLE, like the golden spec does.
  std::string name = GetParam();
  const std::size_t placeholder = name.find("(...)");
  if (placeholder != std::string::npos) {
    name = name.substr(0, placeholder) + "(SUBSAMPLE)";
  }
  const core::Database db = TestDb();
  util::Rng rng(99);
  auto built = Engine::Build(db, name, TestParams(), rng);
  ASSERT_TRUE(built.has_value());
  const std::string path =
      SaveTemp(*built, "mapped_vs_copied_" + Sanitize(GetParam()));

  std::string error;
  auto mapped = Engine::Open(path, Engine::LoadMode::kMapped, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  auto copied = Engine::Open(path, Engine::LoadMode::kCopied, &error);
  ASSERT_TRUE(copied.has_value()) << error;

  EXPECT_EQ(mapped->load_path(), Engine::LoadPath::kMapped);
  EXPECT_EQ(copied->load_path(), Engine::LoadPath::kCopied);
  EXPECT_EQ(mapped->format_version(), sketch::arena::kVersionArena);
  EXPECT_EQ(mapped->algorithm(), built->algorithm());

  // estimate_many / are_frequent at the guaranteed size k.
  const auto queries = QueriesOfSize(3, 64);
  std::vector<double> mapped_est, copied_est, built_est;
  mapped->estimate_many(queries, &mapped_est);
  copied->estimate_many(queries, &copied_est);
  built->estimate_many(queries, &built_est);
  ASSERT_EQ(mapped_est.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(mapped_est[i], copied_est[i]) << "query " << i;
    ASSERT_EQ(mapped_est[i], built_est[i]) << "query " << i;
  }

  std::vector<bool> mapped_bits, copied_bits;
  mapped->are_frequent(queries, &mapped_bits);
  copied->are_frequent(queries, &copied_bits);
  ASSERT_EQ(mapped_bits, copied_bits);

  // Scalar entry points agree with the batch (and across paths).
  ASSERT_EQ(mapped->estimate(queries[0]), copied->estimate(queries[0]));
  ASSERT_EQ(mapped->is_frequent(queries[0]), copied->is_frequent(queries[0]));

  // Full Apriori run, when the algorithm answers every level.
  bool mineable = true;
  for (std::size_t size = 1; size <= 3; ++size) {
    mineable = mineable && mapped->supports_query_size(size);
  }
  if (mineable) {
    mining::AprioriOptions options;
    options.min_frequency = 0.05;
    options.max_size = 3;
    const auto mapped_mined = mapped->mine(options);
    const auto copied_mined = copied->mine(options);
    ASSERT_EQ(mapped_mined.size(), copied_mined.size());
    for (std::size_t i = 0; i < mapped_mined.size(); ++i) {
      ASSERT_EQ(mapped_mined[i].itemset.Attributes(),
                copied_mined[i].itemset.Attributes());
      ASSERT_EQ(mapped_mined[i].frequency, copied_mined[i].frequency);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MappedVsCopiedTest,
                         testing::ValuesIn(Engine::KnownAlgorithms()),
                         [](const auto& info) { return Sanitize(info.param); });

// Indicator-flavored sketches exercise LoadIndicatorFromColumns.
TEST(MappedLoadTest, IndicatorFlavorBitIdenticalAcrossLoadPaths) {
  const core::Database db = TestDb();
  util::Rng rng(5);
  auto built = Engine::Build(db, "SUBSAMPLE",
                             TestParams(core::Answer::kIndicator), rng);
  ASSERT_TRUE(built.has_value());
  const std::string path = SaveTemp(*built, "mapped_indicator");

  auto mapped = Engine::Open(path, Engine::LoadMode::kMapped);
  auto copied = Engine::Open(path, Engine::LoadMode::kCopied);
  ASSERT_TRUE(mapped.has_value());
  ASSERT_TRUE(copied.has_value());
  const auto queries = QueriesOfSize(3, 64);
  std::vector<bool> mapped_bits, copied_bits;
  mapped->are_frequent(queries, &mapped_bits);
  copied->are_frequent(queries, &copied_bits);
  EXPECT_EQ(mapped_bits, copied_bits);
}

// ---------------------------------------------------------------------
// Load-path selection and metadata.

TEST(MappedLoadTest, AutoMapsArenaFilesAndCopiesLegacyFiles) {
  const core::Database db = TestDb();
  util::Rng rng(7);
  auto built = Engine::Build(db, "SUBSAMPLE", TestParams(), rng);
  ASSERT_TRUE(built.has_value());

  const std::string v2_path = SaveTemp(*built, "auto_v2");
  const std::string v1_path = testing::TempDir() + "/auto_v1.ifsk";
  ASSERT_TRUE(sketch::SaveSketchFile(v1_path, built->file(),
                                     sketch::arena::kVersionLegacy));

  auto v2 = Engine::Open(v2_path);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->load_path(), Engine::LoadPath::kMapped);
  EXPECT_EQ(v2->format_version(), sketch::arena::kVersionArena);
  EXPECT_TRUE(v2->file().summary.is_view());

  auto v1 = Engine::Open(v1_path);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->load_path(), Engine::LoadPath::kCopied);
  EXPECT_EQ(v1->format_version(), sketch::arena::kVersionLegacy);
  EXPECT_FALSE(v1->file().summary.is_view());

  // Same summary bits through every representation.
  EXPECT_EQ(v1->file().summary, v2->file().summary);
  EXPECT_EQ(v1->file().summary, built->file().summary);

  // Forcing kMapped on a v1 file fails with a version-shaped error.
  std::string error;
  EXPECT_FALSE(
      Engine::Open(v1_path, Engine::LoadMode::kMapped, &error).has_value());
  EXPECT_NE(error.find("v1"), std::string::npos);

  // info() names the load path and format so operators can confirm
  // zero-copy is active.
  EXPECT_NE(v2->info().find("mapped"), std::string::npos);
  EXPECT_NE(v2->info().find("v2"), std::string::npos);
  EXPECT_NE(v1->info().find("copied"), std::string::npos);
}

TEST(MappedLoadTest, ResidentBytesIsMappedImageSize) {
  const core::Database db = TestDb();
  util::Rng rng(11);
  auto built = Engine::Build(db, "RELEASE-DB", TestParams(), rng);
  ASSERT_TRUE(built.has_value());
  const std::string path = SaveTemp(*built, "resident_bytes");

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::size_t file_size = static_cast<std::size_t>(in.tellg());

  auto mapped = Engine::Open(path, Engine::LoadMode::kMapped);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->resident_bytes(), file_size);

  auto copied = Engine::Open(path, Engine::LoadMode::kCopied);
  ASSERT_TRUE(copied.has_value());
  EXPECT_EQ(copied->resident_bytes(), (copied->summary_bits() + 7) / 8);
}

// A mapped engine must stay fully usable after the optional that carried
// it is gone and after copies of it are destroyed (the mapping is
// refcounted through every copy).
TEST(MappedLoadTest, MappedEngineSurvivesCopyAndMove) {
  const core::Database db = TestDb();
  util::Rng rng(13);
  auto built = Engine::Build(db, "SUBSAMPLE", TestParams(), rng);
  ASSERT_TRUE(built.has_value());
  const std::string path = SaveTemp(*built, "mapped_copy_move");
  const auto queries = QueriesOfSize(3, 16);
  std::vector<double> expected;
  built->estimate_many(queries, &expected);

  std::vector<double> got;
  {
    auto opened = Engine::Open(path, Engine::LoadMode::kMapped);
    ASSERT_TRUE(opened.has_value());
    Engine moved = *std::move(opened);
    opened.reset();
    {
      const Engine copy = moved;  // NOLINT(performance-unnecessary-copy)
      copy.estimate_many(queries, &got);
      ASSERT_EQ(got, expected);
    }
    moved.estimate_many(queries, &got);
    ASSERT_EQ(got, expected);
  }
}

// ---------------------------------------------------------------------
// In-place validation of malformed images.

class ArenaImageTest : public testing::Test {
 protected:
  void SetUp() override {
    const core::Database db = TestDb();
    util::Rng rng(17);
    auto built = Engine::Build(db, "SUBSAMPLE", TestParams(), rng);
    ASSERT_TRUE(built.has_value());
    path_ = SaveTemp(*built, "arena_image");
    image_ = ReadAligned(path_);
    ASSERT_TRUE(
        sketch::ViewSketchImage(ImageData(image_), ImageSize(image_))
            .has_value());
  }

  unsigned char* MutableBytes() {
    return reinterpret_cast<unsigned char*>(image_.data());
  }

  std::string path_;
  std::vector<std::uint64_t> image_;
};

TEST_F(ArenaImageTest, RejectsTruncation) {
  sketch::SketchError error;
  for (const std::size_t keep : {0u, 3u, 5u, 40u, 64u, 128u}) {
    ASSERT_LT(keep, ImageSize(image_));
    EXPECT_FALSE(sketch::ViewSketchImage(ImageData(image_), keep, &error)
                     .has_value())
        << keep;
  }
}

TEST_F(ArenaImageTest, RejectsLegacyVersionWithDistinctError) {
  MutableBytes()[4] = 1;  // version u16 low byte
  sketch::SketchError error;
  EXPECT_FALSE(
      sketch::ViewSketchImage(ImageData(image_), ImageSize(image_), &error)
          .has_value());
  EXPECT_EQ(error.offset, 4u);
  EXPECT_NE(error.message.find("v1"), std::string::npos);
}

TEST_F(ArenaImageTest, RejectsUnknownVersion) {
  MutableBytes()[4] = 9;
  sketch::SketchError error;
  EXPECT_FALSE(
      sketch::ViewSketchImage(ImageData(image_), ImageSize(image_), &error)
          .has_value());
  EXPECT_EQ(error.offset, 4u);
}

TEST_F(ArenaImageTest, RejectsTrailingGarbage) {
  image_[image_.size() - 1] += 8;  // grow the recorded byte size
  // (the extra byte reads from the stashed-size word -- in bounds)
  sketch::SketchError error;
  EXPECT_FALSE(
      sketch::ViewSketchImage(ImageData(image_), ImageSize(image_), &error)
          .has_value());
  EXPECT_NE(error.message.find("section table"), std::string::npos);
}

// Regression: a bit count close enough to 2^64 that (bits+63)/64 wraps
// to a tiny word count must be rejected at the bit-count field -- not
// sail through the shape checks with a zero-word summary and crash the
// word-image code (both parsers share the guard in arena_layout.h).
TEST_F(ArenaImageTest, RejectsWordCountWrappingBitCount) {
  const std::size_t name_len = 9;  // "SUBSAMPLE"
  const std::size_t bits_at = 8 + name_len + 4 + 8 + 8 + 1 + 1 + 8 + 8;
  const std::uint64_t wrap_bits = 0xFFFFFFFFFFFFFFF7ull;  // 2^64 - 9
  std::memcpy(MutableBytes() + bits_at, &wrap_bits, sizeof(wrap_bits));
  sketch::SketchError error;
  EXPECT_FALSE(
      sketch::ViewSketchImage(ImageData(image_), ImageSize(image_), &error)
          .has_value());
  EXPECT_EQ(error.offset, bits_at);
  EXPECT_NE(error.message.find("bit count"), std::string::npos);

  std::istringstream in(std::string(
      reinterpret_cast<const char*>(ImageData(image_)), ImageSize(image_)));
  EXPECT_FALSE(sketch::ReadSketch(in).has_value());
}

TEST_F(ArenaImageTest, ReportsOffsetsForHeaderFieldErrors) {
  // scope byte lives right after name + k + eps + delta; corrupt it and
  // the error must name its exact offset.
  const std::size_t name_len = 9;  // "SUBSAMPLE"
  const std::size_t scope_at = 8 + name_len + 4 + 8 + 8;
  MutableBytes()[scope_at] = 7;
  sketch::SketchError error;
  EXPECT_FALSE(
      sketch::ViewSketchImage(ImageData(image_), ImageSize(image_), &error)
          .has_value());
  EXPECT_EQ(error.offset, scope_at);
  EXPECT_NE(error.message.find("scope"), std::string::npos);
}

// The image validator and the stream parser must accept EXACTLY the
// same v2 byte strings (a mutant both see as v2 is accepted by both,
// with the same summary, or rejected by both) -- and neither may crash
// on any mutant (the mapped-path cousin of SketchFileFuzzTest). This
// bidirectional assertion is what keeps the two independently-coded
// validators from drifting apart.
TEST_F(ArenaImageTest, MutantImagesNeverCrashAndAgreeWithStreamParser) {
  util::Rng rng(20260733);
  const std::size_t size = ImageSize(image_);
  std::size_t accepted = 0;
  constexpr std::size_t kMutants = 4000;
  for (std::size_t t = 0; t < kMutants; ++t) {
    std::vector<std::uint64_t> mutant = image_;
    auto* bytes = reinterpret_cast<unsigned char*>(mutant.data());
    const std::size_t mutations = 1 + rng.UniformInt(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (rng.UniformInt(2) == 0) {
        bytes[rng.UniformInt(size)] ^=
            static_cast<unsigned char>(1 << rng.UniformInt(8));
      } else {
        bytes[rng.UniformInt(size)] =
            static_cast<unsigned char>(rng.UniformInt(256));
      }
    }
    const std::size_t mutant_size =
        rng.UniformInt(8) == 0 ? rng.UniformInt(size + 1) : size;
    const auto view = sketch::ViewSketchImage(bytes, mutant_size);
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(bytes), mutant_size));
    const auto streamed = sketch::ReadSketch(in);
    if (!view.has_value()) {
      // A mutant that still reads as a v2 image must be rejected by the
      // stream parser too (a flipped version byte downgrades it to v1,
      // where the stream parser legitimately applies the legacy rules).
      if (sketch::PeekSketchVersion(bytes, mutant_size) ==
          sketch::arena::kVersionArena) {
        ASSERT_FALSE(streamed.has_value()) << "mutant " << t;
      }
      continue;
    }
    ++accepted;
    ASSERT_TRUE(streamed.has_value()) << "mutant " << t;
    ASSERT_EQ(streamed->summary, view->file.summary) << "mutant " << t;
    ASSERT_EQ(streamed->algorithm, view->file.algorithm) << "mutant " << t;
  }
  // Payload-bit flips are valid files, so some mutants must survive.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, kMutants);
}

}  // namespace
}  // namespace ifsketch
