// WAL durability contract (ingest/wal.h): for EVERY registered
// streaming algorithm, a process killed at ANY byte and restarted on
// the same directory continues bit-identically to an unbroken run over
// the recovered row prefix. The die-at-byte-N matrix drives the Wal
// through util::FaultyFileSink so every segment/checkpoint byte is a
// crash point without forking processes; the torn-tail fuzz mutates the
// on-disk files directly and requires recovery to either refuse cleanly
// or restore an exact prefix -- never crash, never over-replay.

#include "ingest/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sketch.h"
#include "data/generators.h"
#include "engine.h"
#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "sketch/builtin_algorithms.h"
#include "sketch/streaming.h"
#include "util/bitvector.h"
#include "util/durable.h"
#include "util/random.h"

namespace ifsketch::ingest {
namespace {

constexpr std::size_t kD = 24;
constexpr std::uint64_t kSeed = 17;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// A fresh (builder, rng) pair for one run -- the same shape
/// IngestService owns. The rng member is the one the builder draws
/// from, so Wal::Open can restore into both.
struct Stream {
  explicit Stream(const std::string& name, std::uint64_t seed = kSeed)
      : algorithm(sketch::BuiltinRegistry().Create(name)), rng(seed) {
    const auto* streaming =
        dynamic_cast<const sketch::StreamingSketch*>(algorithm.get());
    if (streaming != nullptr) {
      builder = streaming->NewBuilder(kD, Params(), rng);
    }
  }
  std::unique_ptr<core::SketchAlgorithm> algorithm;
  util::Rng rng;
  std::unique_ptr<sketch::StreamingBuilder> builder;
};

std::vector<std::string> StreamingAlgorithms() {
  std::vector<std::string> names;
  for (const auto& name : Engine::KnownAlgorithms()) {
    const auto algorithm = sketch::BuiltinRegistry().Create(name);
    if (dynamic_cast<const sketch::StreamingSketch*>(algorithm.get()) !=
        nullptr) {
      names.push_back(name);
    }
  }
  return names;
}

/// Fresh, empty directory under the test tmpdir.
std::string Dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "ifsketch_wal_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::Database MakeRows(std::size_t rows, std::uint64_t data_seed = 99) {
  util::Rng rng(data_seed);
  return data::UniformRandom(rows, kD, 0.3, rng);
}

WalOptions Options(const std::string& dir,
                   WalSyncPolicy sync = WalSyncPolicy::kEveryRecord) {
  WalOptions options;
  options.dir = dir;
  options.sync = sync;
  return options;
}

bool SameRngState(const util::Rng& a, const util::Rng& b) {
  const util::Rng::State sa = a.SaveState();
  const util::Rng::State sb = b.SaveState();
  return std::memcmp(sa.s, sb.s, sizeof(sa.s)) == 0 &&
         sa.have_cached_gaussian == sb.have_cached_gaussian &&
         sa.cached_gaussian == sb.cached_gaussian;
}

/// The canonical per-prefix states of an unbroken run: states[r] is the
/// builder SaveState after observing rows [0, r), rng_states[r]
/// likewise. Recovery at any prefix must land exactly here.
struct PrefixStates {
  std::vector<util::BitVector> builder;
  std::vector<util::Rng::State> rng;
};

PrefixStates ComputePrefixStates(const std::string& algorithm,
                                 const core::Database& db) {
  Stream s(algorithm);
  PrefixStates states;
  states.builder.push_back(s.builder->SaveState());
  states.rng.push_back(s.rng.SaveState());
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    s.builder->Observe(db.Row(i));
    states.builder.push_back(s.builder->SaveState());
    states.rng.push_back(s.rng.SaveState());
  }
  return states;
}

void ExpectAtPrefix(const Stream& s, const PrefixStates& expect,
                    std::uint64_t rows) {
  ASSERT_LT(rows, expect.builder.size());
  EXPECT_TRUE(s.builder->SaveState() == expect.builder[rows])
      << "builder state diverges from the unbroken " << rows << "-row run";
  util::Rng want(0);
  want.RestoreState(expect.rng[rows]);
  EXPECT_TRUE(SameRngState(s.rng, want))
      << "rng state diverges from the unbroken " << rows << "-row run";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalSyncPolicyTest, NamesRoundTripThroughParse) {
  for (const auto policy :
       {WalSyncPolicy::kEveryRecord, WalSyncPolicy::kEveryN,
        WalSyncPolicy::kOnSnapshot}) {
    WalSyncPolicy parsed;
    ASSERT_TRUE(ParseWalSyncPolicy(WalSyncPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  WalSyncPolicy ignored;
  EXPECT_FALSE(ParseWalSyncPolicy("", &ignored));
  EXPECT_FALSE(ParseWalSyncPolicy("fsync", &ignored));
  EXPECT_FALSE(ParseWalSyncPolicy("EVERY_RECORD", &ignored));
}

TEST(WalTest, FreshDirectoryRecoversNothing) {
  const std::string dir = Dir("fresh");
  Stream s("STREAM-SUBSAMPLE");
  WalRecovery recovery;
  std::string error;
  auto wal = Wal::Open(Options(dir), "STREAM-SUBSAMPLE", Params(), kD, kSeed,
                       s.builder.get(), &s.rng, &recovery, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(recovery.rows, 0u);
  EXPECT_EQ(recovery.checkpoint_rows, 0u);
  EXPECT_EQ(recovery.replayed_rows, 0u);
  EXPECT_EQ(recovery.truncated_bytes, 0u);
  EXPECT_TRUE(wal->ok());
}

TEST(WalTest, OpenRejectsBadOptions) {
  Stream s("STREAM-SUBSAMPLE");
  std::string error;
  WalOptions no_dir;
  EXPECT_EQ(Wal::Open(no_dir, "STREAM-SUBSAMPLE", Params(), kD, kSeed,
                      s.builder.get(), &s.rng, nullptr, &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  WalOptions bad_n = Options(Dir("bad_n"), WalSyncPolicy::kEveryN);
  bad_n.sync_every = 0;
  error.clear();
  EXPECT_EQ(Wal::Open(bad_n, "STREAM-SUBSAMPLE", Params(), kD, kSeed,
                      s.builder.get(), &s.rng, nullptr, &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// The core durability contract, per registered streaming algorithm:
// restart on the same directory, land exactly where the unbroken run
// stood, then CONTINUE and stay bit-identical to the unbroken run.
TEST(WalTest, RecoveryThenResumeIsBitIdenticalForEveryAlgorithm) {
  constexpr std::size_t kTotal = 400;
  constexpr std::size_t kCrashAt = 277;  // off-cadence: replay has a tail
  constexpr std::size_t kEvery = 100;
  const core::Database db = MakeRows(kTotal);

  const auto algorithms = StreamingAlgorithms();
  ASSERT_FALSE(algorithms.empty());
  for (const auto& algorithm : algorithms) {
    SCOPED_TRACE(algorithm);
    const std::string dir = Dir("resume_" + algorithm);
    const PrefixStates expect = ComputePrefixStates(algorithm, db);

    {
      Stream a(algorithm);
      std::string error;
      auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                           a.builder.get(), &a.rng, nullptr, &error);
      ASSERT_NE(wal, nullptr) << error;
      for (std::size_t i = 0; i < kCrashAt; ++i) {
        ASSERT_TRUE(wal->Append(db.Row(i)));
        a.builder->Observe(db.Row(i));
        if ((i + 1) % kEvery == 0) {
          ASSERT_TRUE(wal->Checkpoint(*a.builder, a.rng, i + 1));
        }
      }
    }  // destructor flushes; every_record already fsynced each row

    Stream b(algorithm);
    WalRecovery recovery;
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         b.builder.get(), &b.rng, &recovery, &error);
    ASSERT_NE(wal, nullptr) << error;
    EXPECT_EQ(recovery.rows, kCrashAt);
    EXPECT_EQ(recovery.checkpoint_rows, (kCrashAt / kEvery) * kEvery);
    EXPECT_EQ(recovery.replayed_rows, kCrashAt % kEvery);
    EXPECT_EQ(b.builder->rows_seen(), kCrashAt);
    ExpectAtPrefix(b, expect, kCrashAt);

    // Resume: the recovered run and the unbroken run must stay
    // indistinguishable to the end of the stream.
    for (std::size_t i = kCrashAt; i < kTotal; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      b.builder->Observe(db.Row(i));
    }
    ASSERT_TRUE(wal->Checkpoint(*b.builder, b.rng, kTotal));
    ExpectAtPrefix(b, expect, kTotal);
    Stream unbroken(algorithm);
    for (std::size_t i = 0; i < kTotal; ++i) {
      unbroken.builder->Observe(db.Row(i));
    }
    EXPECT_TRUE(b.builder->Summary() == unbroken.builder->Summary());
  }
}

// Die-at-byte-N matrix: crash the WAL at a stride of byte budgets
// covering the whole file traffic of a run. Whatever the crash point,
// a clean reopen must restore an exact prefix of the pushed rows -- at
// least everything a successful Checkpoint covered -- and land
// bit-identically on the unbroken run's state at that prefix.
TEST(WalTest, DieAtAnyByteRecoversAnExactPrefix) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  constexpr std::size_t kTotal = 120;
  constexpr std::size_t kEvery = 40;
  const core::Database db = MakeRows(kTotal, 7);
  const PrefixStates expect = ComputePrefixStates(algorithm, db);

  // Baseline run with an unreachable budget measures the total bytes a
  // full run writes, so the stride covers every phase of the traffic.
  std::uint64_t total_bytes = 0;
  {
    const std::string dir = Dir("die_baseline");
    auto plan = std::make_shared<util::CrashPlan>(1u << 30);
    WalOptions options = Options(dir);
    options.sink_factory = util::MakeFaultyFileSinkFactory(plan);
    Stream s(algorithm);
    std::string error;
    auto wal = Wal::Open(options, algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
      if ((i + 1) % kEvery == 0) {
        ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, i + 1));
      }
    }
    total_bytes = (1u << 30) -
                  static_cast<std::uint64_t>(
                      plan->remaining.load(std::memory_order_relaxed));
    ASSERT_GT(total_bytes, 0u);
  }

  // Prime-sized stride so the crash points sweep across record,
  // checkpoint and header offsets instead of hitting one phase.
  const std::uint64_t stride = total_bytes / 97 + 1;
  for (std::uint64_t budget = 0; budget <= total_bytes; budget += stride) {
    SCOPED_TRACE("crash after " + std::to_string(budget) + " bytes");
    const std::string dir = Dir("die_" + std::to_string(budget));
    auto plan = std::make_shared<util::CrashPlan>(budget);
    WalOptions options = Options(dir);
    options.sink_factory = util::MakeFaultyFileSinkFactory(plan);

    std::uint64_t pushed = 0;     // rows handed to Append (pre- or post-crash)
    std::uint64_t durable = 0;    // rows covered by a successful Checkpoint
    {
      Stream s(algorithm);
      std::string error;
      auto wal = Wal::Open(options, algorithm, Params(), kD, kSeed,
                           s.builder.get(), &s.rng, nullptr, &error);
      if (wal != nullptr) {
        for (std::size_t i = 0; i < kTotal; ++i) {
          ++pushed;
          if (!wal->Append(db.Row(i))) break;
          s.builder->Observe(db.Row(i));
          if ((i + 1) % kEvery == 0) {
            if (wal->Checkpoint(*s.builder, s.rng, i + 1)) durable = i + 1;
          }
        }
      }  // wal == nullptr: crashed during recovery's own writes
    }

    Stream r(algorithm);
    WalRecovery recovery;
    std::string error;
    auto reopened = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                              r.builder.get(), &r.rng, &recovery, &error);
    ASSERT_NE(reopened, nullptr)
        << "recovery must always succeed after a crash: " << error;
    EXPECT_GE(recovery.rows, durable)
        << "a successful Checkpoint promised durability";
    EXPECT_LE(recovery.rows, pushed) << "recovered rows nobody pushed";
    ExpectAtPrefix(r, expect, recovery.rows);

    // And the recovered run accepts new appends: the directory is
    // pristine again no matter where the crash landed.
    ASSERT_TRUE(reopened->ok());
    ASSERT_TRUE(reopened->Append(db.Row(0)));
  }
}

// Torn-tail fuzz: mutate the segment file (flip / truncate / extend) of
// a cleanly written log. Recovery must never crash and never invent
// rows: either it refuses with a located reason, or it restores an
// exact prefix no shorter than the checkpoint.
TEST(WalTest, TornTailFuzzNeverOverReplays) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  constexpr std::size_t kTotal = 60;
  constexpr std::size_t kCheckpointAt = 30;
  const core::Database db = MakeRows(kTotal, 11);
  const PrefixStates expect = ComputePrefixStates(algorithm, db);
  const std::string dir = Dir("fuzz");

  {
    Stream s(algorithm);
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
      if (i + 1 == kCheckpointAt) {
        ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, i + 1));
      }
    }
  }

  // Locate the one live segment and keep pristine copies of the whole
  // directory so every round starts from the same bytes.
  std::string segment_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") {
      EXPECT_TRUE(segment_path.empty()) << "expected a single segment";
      segment_path = entry.path().string();
    }
  }
  ASSERT_FALSE(segment_path.empty());
  const std::string pristine = ReadFileBytes(segment_path);
  ASSERT_GT(pristine.size(), 0u);

  util::Rng fuzz(123);
  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE(round);
    std::string mutated = pristine;
    switch (fuzz.UniformInt(3)) {
      case 0:  // truncate anywhere, including mid-header
        mutated.resize(static_cast<std::size_t>(
            fuzz.UniformInt(mutated.size() + 1)));
        break;
      case 1: {  // flip one byte anywhere
        const std::size_t at =
            static_cast<std::size_t>(fuzz.UniformInt(mutated.size()));
        mutated[at] = static_cast<char>(
            mutated[at] ^ static_cast<char>(1 + fuzz.UniformInt(255)));
        break;
      }
      default: {  // append garbage that is not a valid frame
        const std::size_t extra =
            static_cast<std::size_t>(1 + fuzz.UniformInt(32));
        for (std::size_t i = 0; i < extra; ++i) {
          mutated.push_back(static_cast<char>(fuzz.UniformInt(256)));
        }
        break;
      }
    }
    WriteFileBytes(segment_path, mutated);

    Stream r(algorithm);
    WalRecovery recovery;
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         r.builder.get(), &r.rng, &recovery, &error);
    if (wal == nullptr) {
      EXPECT_FALSE(error.empty());
    } else {
      EXPECT_GE(recovery.rows, kCheckpointAt);
      EXPECT_LE(recovery.rows, kTotal);
      ExpectAtPrefix(r, expect, recovery.rows);
    }

    // Restore the directory: recovery rewrote the checkpoint and pruned
    // segments, so rebuild the canonical layout for the next round.
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
      Stream s(algorithm);
      auto rebuild = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                               s.builder.get(), &s.rng, nullptr, &error);
      ASSERT_NE(rebuild, nullptr) << error;
      for (std::size_t i = 0; i < kTotal; ++i) {
        ASSERT_TRUE(rebuild->Append(db.Row(i)));
        s.builder->Observe(db.Row(i));
        if (i + 1 == kCheckpointAt) {
          ASSERT_TRUE(rebuild->Checkpoint(*s.builder, s.rng, i + 1));
        }
      }
    }
    segment_path.clear();
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".seg") {
        segment_path = entry.path().string();
      }
    }
    ASSERT_FALSE(segment_path.empty());
  }
}

// A flipped byte in the atomically-written checkpoint is genuine
// corruption: recovery must refuse (never serve a mangled state), and
// fsck must fail the directory.
TEST(WalTest, CorruptCheckpointIsRefusedNotServed) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  const core::Database db = MakeRows(20, 13);
  const std::string dir = Dir("bad_ckpt");
  {
    Stream s(algorithm);
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
    }
    ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, db.num_rows()));
  }
  const std::string ckpt = dir + "/checkpoint.ifwc";
  std::string bytes = ReadFileBytes(ckpt);
  ASSERT_GT(bytes.size(), 40u);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x20);
  WriteFileBytes(ckpt, bytes);

  Stream r(algorithm);
  std::string error;
  EXPECT_EQ(Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                      r.builder.get(), &r.rng, nullptr, &error),
            nullptr);
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;

  const WalFsckReport report = VerifyWalDir(dir);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("byte"), std::string::npos);
}

// Regression: a checkpoint (or recovery) landing at the current
// segment's own first row re-creates the SAME segment path; the
// rotation must not unlink the file it just reopened, or every
// subsequent append silently vanishes.
TEST(WalTest, RecoveryRepublishKeepsTheActiveSegment) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  constexpr std::size_t kFirst = 10;
  constexpr std::size_t kTotal = 30;
  const core::Database db = MakeRows(kTotal, 21);
  const PrefixStates expect = ComputePrefixStates(algorithm, db);
  const std::string dir = Dir("republish");

  {
    Stream s(algorithm);
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < kFirst; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
    }
    ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, kFirst));
  }

  // Reopen: recovery re-checkpoints at kFirst and reopens
  // wal-<kFirst>.seg -- the same name the pre-crash rotation created.
  // Rows appended through the recovered log must survive ANOTHER
  // restart.
  {
    Stream s(algorithm);
    WalRecovery recovery;
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, &recovery, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_EQ(recovery.rows, kFirst);
    for (std::size_t i = kFirst; i < kTotal; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
    }
    // Same-row double checkpoint: rotation onto the segment's own name.
    ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, kTotal));
    ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, kTotal));
    ASSERT_TRUE(wal->Append(db.Row(0)));  // lands in the re-created segment
  }

  Stream r(algorithm);
  WalRecovery recovery;
  std::string error;
  auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                       r.builder.get(), &r.rng, &recovery, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(recovery.rows, kTotal + 1);
  EXPECT_EQ(r.builder->rows_seen(), kTotal + 1);
}

// After every checkpoint the superseded segment is pruned: the
// directory never accumulates history it will not replay.
TEST(WalTest, RotationPrunesToASingleSegment) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  const core::Database db = MakeRows(90, 31);
  const std::string dir = Dir("prune");
  Stream s(algorithm);
  std::string error;
  auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                       s.builder.get(), &s.rng, nullptr, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    ASSERT_TRUE(wal->Append(db.Row(i)));
    s.builder->Observe(db.Row(i));
    if ((i + 1) % 30 == 0) {
      ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, i + 1));
      std::size_t segments = 0;
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        segments += entry.path().extension() == ".seg" ? 1 : 0;
      }
      EXPECT_EQ(segments, 1u);
    }
  }
}

TEST(WalTest, ForeignIdentityIsRefused) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  const core::Database db = MakeRows(10, 41);
  const std::string dir = Dir("identity");
  {
    Stream s(algorithm);
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
    }
    ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, db.num_rows()));
  }

  {  // different seed
    Stream r(algorithm, kSeed + 1);
    std::string error;
    EXPECT_EQ(Wal::Open(Options(dir), algorithm, Params(), kD, kSeed + 1,
                        r.builder.get(), &r.rng, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("identity"), std::string::npos) << error;
  }
  {  // different algorithm
    Stream r("STREAM-STRATIFIED");
    std::string error;
    EXPECT_EQ(Wal::Open(Options(dir), "STREAM-STRATIFIED", Params(), kD,
                        kSeed, r.builder.get(), &r.rng, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("identity"), std::string::npos) << error;
  }
  {  // different parameters
    Stream r(algorithm);
    core::SketchParams other = Params();
    other.eps = 0.05;
    std::string error;
    EXPECT_EQ(Wal::Open(Options(dir), algorithm, other, kD, kSeed,
                        r.builder.get(), &r.rng, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("identity"), std::string::npos) << error;
  }
}

TEST(WalTest, VerifyWalDirDistinguishesTornFromCorrupt) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  const core::Database db = MakeRows(40, 51);
  const std::string dir = Dir("fsck");
  {
    Stream s(algorithm);
    std::string error;
    auto wal = Wal::Open(Options(dir), algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
      if (i + 1 == 20) {
        ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, 20));
      }
    }
  }

  // Healthy: ok, no failures.
  WalFsckReport report = VerifyWalDir(dir);
  EXPECT_TRUE(report.ok) << (report.failures.empty()
                                 ? ""
                                 : report.failures[0]);
  EXPECT_TRUE(report.failures.empty());

  // Shear the live segment mid-record: recoverable, noted, still ok.
  std::string segment_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") {
      segment_path = entry.path().string();
    }
  }
  ASSERT_FALSE(segment_path.empty());
  const std::string bytes = ReadFileBytes(segment_path);
  ASSERT_GT(bytes.size(), 5u);
  WriteFileBytes(segment_path, bytes.substr(0, bytes.size() - 5));
  report = VerifyWalDir(dir);
  EXPECT_TRUE(report.ok);
  bool torn_note = false;
  for (const auto& note : report.notes) {
    torn_note |= note.find("torn") != std::string::npos;
  }
  EXPECT_TRUE(torn_note);

  // Missing directory: a failure, not a silent ok.
  report = VerifyWalDir(dir + "_missing");
  EXPECT_FALSE(report.ok);
}

TEST(WalTest, MetricsCountRecordsReplayAndSegmentBytes) {
  const std::string algorithm = "STREAM-SUBSAMPLE";
  constexpr std::size_t kRows = 25;
  const core::Database db = MakeRows(kRows, 61);
  const std::string dir = Dir("metrics");

  obs::MetricsRegistry write_registry;
  {
    Stream s(algorithm);
    WalOptions options = Options(dir);
    options.registry = &write_registry;
    std::string error;
    auto wal = Wal::Open(options, algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, nullptr, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (std::size_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
    }
    ASSERT_TRUE(wal->Checkpoint(*s.builder, s.rng, kRows));
  }
  EXPECT_EQ(write_registry.GetCounter("wal_records_total")->Value(), kRows);
  EXPECT_EQ(write_registry.GetCounter("recovery_replayed_rows_total")->Value(),
            0u);
  EXPECT_GT(write_registry.GetHistogram("wal_fsync_ns")->Snapshot().count, 0u);

  // Reopen WITHOUT the final checkpoint... the checkpoint covered all
  // rows, so force a replay tail by appending a few more without one.
  {
    Stream s(algorithm);
    WalOptions options = Options(dir);
    options.registry = &write_registry;
    std::string error;
    WalRecovery recovery;
    auto wal = Wal::Open(options, algorithm, Params(), kD, kSeed,
                         s.builder.get(), &s.rng, &recovery, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_EQ(recovery.rows, kRows);
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->Append(db.Row(i)));
      s.builder->Observe(db.Row(i));
    }
  }

  obs::MetricsRegistry recover_registry;
  Stream r(algorithm);
  WalOptions options = Options(dir);
  options.registry = &recover_registry;
  std::string error;
  WalRecovery recovery;
  auto wal = Wal::Open(options, algorithm, Params(), kD, kSeed,
                       r.builder.get(), &r.rng, &recovery, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(recovery.rows, kRows + 5);
  EXPECT_EQ(recovery.replayed_rows, 5u);
  EXPECT_EQ(
      recover_registry.GetCounter("recovery_replayed_rows_total")->Value(),
      5u);
}

// End to end through IngestService: a service restarted on its WAL
// directory republishes the recovered state immediately and keeps the
// ABSOLUTE row counter, so every snapshot it serves afterwards is
// bit-identical to what an unbroken service (and a one-shot
// Engine::Build over the same prefix) would serve.
TEST(WalTest, IngestServiceRestartServesBitIdenticalSnapshots) {
  constexpr std::size_t kTotal = 3000;
  constexpr std::size_t kBreakAt = 2500;
  constexpr std::size_t kEvery = 1000;
  const core::Database db = MakeRows(kTotal, 71);
  const std::string dir = Dir("service");

  IngestOptions options;
  options.algorithm = "STREAM-SUBSAMPLE";
  options.params = Params();
  options.d = kD;
  options.seed = kSeed;
  options.rows_per_snapshot = kEvery;
  options.wal_dir = dir;
  options.wal_sync = WalSyncPolicy::kOnSnapshot;

  {
    std::uint64_t last_published = 0;
    auto service = IngestService::Create(
        options, [&](std::shared_ptr<const Engine>, std::uint64_t rows) {
          last_published = rows;
        });
    ASSERT_NE(service, nullptr);
    for (std::size_t i = 0; i < kBreakAt; ++i) service->Push(db.Row(i));
    service->Finish();  // final partial publish checkpoints at kBreakAt
    EXPECT_FALSE(service->wal_failed());
    EXPECT_EQ(last_published, kBreakAt);
  }

  std::vector<std::pair<std::shared_ptr<const Engine>, std::uint64_t>>
      published;
  {
    auto service = IngestService::Create(
        options, [&](std::shared_ptr<const Engine> engine,
                     std::uint64_t rows) {
          published.emplace_back(std::move(engine), rows);
        });
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->recovery().rows, kBreakAt);
    for (std::size_t i = kBreakAt; i < kTotal; ++i) service->Push(db.Row(i));
    service->Finish();
    EXPECT_EQ(service->rows_ingested(), kTotal);
    EXPECT_FALSE(service->wal_failed());
  }
  // The recovered 2500-row snapshot first, then the cadence snapshot at
  // 3000 -- the row counter is absolute, not since-restart.
  ASSERT_EQ(published.size(), 2u);
  EXPECT_EQ(published[0].second, kBreakAt);
  EXPECT_EQ(published[1].second, kTotal);

  std::vector<core::Itemset> queries;
  {
    util::Rng qrng(404);
    for (std::size_t i = 0; i < 60; ++i) {
      core::Itemset t(kD);
      t.Add(static_cast<std::size_t>(qrng.UniformInt(kD)));
      t.Add(static_cast<std::size_t>(qrng.UniformInt(kD)));
      queries.push_back(std::move(t));
    }
  }
  for (const auto& [snapshot, rows] : published) {
    SCOPED_TRACE(rows);
    ASSERT_NE(snapshot, nullptr);
    core::Database prefix(0, kD);
    for (std::uint64_t i = 0; i < rows; ++i) prefix.AppendRow(db.Row(i));
    util::Rng build_rng(kSeed);
    const auto direct =
        Engine::Build(prefix, options.algorithm, Params(), build_rng);
    ASSERT_TRUE(direct.has_value());
    std::vector<double> snapshot_f, direct_f;
    snapshot->estimate_many(queries, &snapshot_f);
    direct->estimate_many(queries, &direct_f);
    EXPECT_EQ(snapshot_f, direct_f);  // bitwise: no tolerance
  }
}

}  // namespace
}  // namespace ifsketch::ingest
