#include "sketch/release_db.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "data/generators.h"

namespace ifsketch::sketch {
namespace {

class ReleaseDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(55);
    db_ = data::UniformRandom(40, 10, 0.4, rng);
    params_.k = 2;
    params_.eps = 0.1;
    params_.delta = 0.05;
  }
  core::Database db_;
  core::SketchParams params_;
  ReleaseDbSketch algo_;
  util::Rng build_rng_{77};
};

TEST_F(ReleaseDbTest, SummarySizeIsExactlyNd) {
  const auto summary = algo_.Build(db_, params_, build_rng_);
  EXPECT_EQ(summary.size(), db_.num_rows() * db_.num_columns());
  EXPECT_EQ(summary.size(),
            algo_.PredictedSizeBits(db_.num_rows(), db_.num_columns(),
                                    params_));
}

TEST_F(ReleaseDbTest, DecodeRecoversDatabaseExactly) {
  const auto summary = algo_.Build(db_, params_, build_rng_);
  const core::Database decoded =
      ReleaseDbSketch::Decode(summary, db_.num_columns(), db_.num_rows());
  EXPECT_EQ(decoded, db_);
}

TEST_F(ReleaseDbTest, EstimatorIsExact) {
  const auto summary = algo_.Build(db_, params_, build_rng_);
  const auto est = algo_.LoadEstimator(summary, params_, db_.num_columns(),
                                       db_.num_rows());
  const auto report =
      core::ValidateEstimatorExhaustive(db_, *est, 2, 1e-12);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.max_abs_error, 0.0);
}

TEST_F(ReleaseDbTest, IndicatorValidAtAnyEps) {
  const auto summary = algo_.Build(db_, params_, build_rng_);
  for (const double eps : {0.05, 0.2, 0.5}) {
    core::SketchParams p = params_;
    p.eps = eps;
    p.answer = core::Answer::kIndicator;
    const auto ind =
        algo_.LoadIndicator(summary, p, db_.num_columns(), db_.num_rows());
    const auto report = core::ValidateIndicatorExhaustive(db_, *ind, 2, eps);
    EXPECT_TRUE(report.valid()) << "eps=" << eps;
  }
}

TEST_F(ReleaseDbTest, DeterministicIgnoringRng) {
  util::Rng r1(1), r2(999);
  EXPECT_EQ(algo_.Build(db_, params_, r1), algo_.Build(db_, params_, r2));
}

TEST_F(ReleaseDbTest, NameIsStable) { EXPECT_EQ(algo_.name(), "RELEASE-DB"); }

TEST(ReleaseDbEdgeTest, SingleRowDatabase) {
  core::Database db(1, 6);
  db.Set(0, 3, true);
  ReleaseDbSketch algo;
  core::SketchParams params;
  util::Rng rng(5);
  const auto summary = algo.Build(db, params, rng);
  EXPECT_EQ(summary.size(), 6u);
  const auto est = algo.LoadEstimator(summary, params, 6, 1);
  EXPECT_DOUBLE_EQ(est->EstimateFrequency(core::Itemset(6, {3})), 1.0);
  EXPECT_DOUBLE_EQ(est->EstimateFrequency(core::Itemset(6, {0})), 0.0);
}

}  // namespace
}  // namespace ifsketch::sketch
