// The metrics layer's contracts: bucket math is an exact inverse pair
// within the documented 25% bound, counters stay exact under sharded
// concurrent writers, snapshots taken during recording are internally
// consistent, merged shard snapshots quantile identically to pooled
// recording, and traces stamp stages into the right histograms.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace ifsketch::obs {
namespace {

TEST(ObsBucketTest, IndexIsMonotoneAndBoundIsInverse) {
  // Every value lands in a bucket whose bound is >= the value, and the
  // previous bucket's bound is < the value (the defining property of an
  // inclusive upper-bound layout).
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int e = 12; e < 64; ++e) {
    const std::uint64_t base = std::uint64_t{1} << e;
    for (const std::uint64_t off : {std::uint64_t{0}, base / 3, base - 1}) {
      probes.push_back(base + off);
    }
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());
  std::size_t prev_idx = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t idx = BucketIndex(v);
    ASSERT_LT(idx, kHistogramBuckets) << v;
    EXPECT_GE(BucketUpperBound(idx), v) << v;
    if (idx > 0) {
      EXPECT_LT(BucketUpperBound(idx - 1), v) << v;
    }
    EXPECT_GE(idx, prev_idx) << v;  // monotone in the value
    prev_idx = std::max(prev_idx, idx);
  }
  // The top bucket's bound is the full range.
  EXPECT_EQ(BucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ObsBucketTest, RelativeErrorStaysUnderDocumentedBound) {
  // The bound overstates a value by at most 25% (one sub-bucket of 4
  // per power of two).
  std::mt19937_64 rng(7);
  for (int t = 0; t < 20000; ++t) {
    const std::uint64_t v = rng() >> (rng() % 60);
    const std::uint64_t bound = BucketUpperBound(BucketIndex(v));
    if (v < 8) {
      EXPECT_EQ(bound, v);
      continue;
    }
    EXPECT_GE(bound, v);
    EXPECT_LE(static_cast<double>(bound - v), 0.25 * static_cast<double>(v))
        << v;
  }
}

TEST(ObsCounterTest, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsHistogramTest, RecordAggregatesExactly) {
  Histogram h;
  const std::vector<std::uint64_t> values = {0, 1, 7, 8, 100, 1000, 1000000};
  std::uint64_t sum = 0;
  for (const std::uint64_t v : values) {
    h.Record(v);
    sum += v;
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, 1000000u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, values.size());
}

TEST(ObsHistogramTest, QuantilesWithinLayoutErrorOfPooledSamples) {
  Histogram h;
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform-ish latencies from 10ns to ~10ms.
    const std::uint64_t v = 10 + (rng() % (std::uint64_t{1} << (10 + i % 20)));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snap = h.Snapshot();
  for (const double q : {0.5, 0.9, 0.99}) {
    const std::uint64_t exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const std::uint64_t approx = snap.Quantile(q);
    // The histogram answer is an upper bound within 25% of some sample
    // near the exact rank; allow the layout error on both sides.
    EXPECT_GE(static_cast<double>(approx), 0.99 * static_cast<double>(exact))
        << q;
    EXPECT_LE(static_cast<double>(approx), 1.30 * static_cast<double>(exact))
        << q;
  }
  EXPECT_EQ(snap.Quantile(1.0), snap.max);
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0u);
}

TEST(ObsHistogramTest, MergeEqualsPooledRecording) {
  // Record one stream split across three histograms, merge the
  // snapshots, and compare against recording everything into one: the
  // layout is fixed, so the merged quantiles must match exactly.
  Histogram shards[3];
  Histogram pooled;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    shards[i % 3].Record(v);
    pooled.Record(v);
  }
  HistogramSnapshot merged = shards[0].Snapshot();
  merged.Merge(shards[1].Snapshot());
  merged.Merge(shards[2].Snapshot());
  const HistogramSnapshot direct = pooled.Snapshot();
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_EQ(merged.sum, direct.sum);
  EXPECT_EQ(merged.max, direct.max);
  EXPECT_EQ(merged.buckets, direct.buckets);
  for (const double q : {0.25, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.Quantile(q), direct.Quantile(q)) << q;
  }
}

TEST(ObsHistogramTest, SnapshotDuringConcurrentRecordingIsConsistent) {
  // Readers racing writers must always see a structurally valid view:
  // bucket totals never exceed the declared count by more than the
  // in-flight window, and nothing crashes or hangs. (Run under TSan to
  // verify the lock-free claim.)
  Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      // At least one record per writer even if the reader finishes
      // before this thread is first scheduled.
      do {
        h.Record(rng() % 100000);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot snap = h.Snapshot();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : snap.buckets) bucket_total += b;
    // count derives from the same buckets, so it is exactly their sum.
    EXPECT_EQ(snap.count, bucket_total);
    EXPECT_LE(snap.buckets.size(), kHistogramBuckets);
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  // Quiesced: everything recorded is now visible and consistent.
  const HistogramSnapshot final_snap = h.Snapshot();
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : final_snap.buckets) bucket_total += b;
  EXPECT_EQ(final_snap.count, bucket_total);
  EXPECT_GT(final_snap.count, 0u);
}

TEST(ObsRegistryTest, GetReturnsStablePointersAndSnapshotSeesAll) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_total");
  EXPECT_EQ(registry.GetCounter("test_total"), c);  // same name, same metric
  c->Add(3);
  registry.GetGauge("test_gauge")->Set(-5);
  registry.GetHistogram("test_ns")->Record(1234);
  // Registering more metrics must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler_" + std::to_string(i));
  }
  c->Add(1);
  const MetricsSnapshot snap = registry.Snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test_total") {
      saw_counter = true;
      EXPECT_EQ(value, 4u);
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test_gauge") {
      saw_gauge = true;
      EXPECT_EQ(value, -5);
    }
  }
  for (const auto& [name, h] : snap.histograms) {
    if (name == "test_ns") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 1234u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(ObsRegistryTest, ConcurrentRegistrationAndRecordingIsSafe) {
  // Threads race registration (cold path, mutexed) against recording on
  // already-resolved metrics and snapshotting. TSan is the real judge;
  // the assertion checks the counts survived.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter* mine =
          registry.GetCounter("worker_total{id=\"" + std::to_string(t) + "\"}");
      Histogram* hist = registry.GetHistogram("shared_ns");
      for (int i = 0; i < kIters; ++i) {
        mine->Add();
        hist->Record(static_cast<std::uint64_t>(i));
        if (i % 500 == 0) registry.Snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  const MetricsSnapshot snap = registry.Snapshot();
  std::uint64_t worker_sum = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("worker_total", 0) == 0) worker_sum += value;
  }
  EXPECT_EQ(worker_sum, static_cast<std::uint64_t>(kThreads) * kIters);
  for (const auto& [name, h] : snap.histograms) {
    if (name == "shared_ns") {
      EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kIters);
    }
  }
}

TEST(ObsRenderTest, TextAndLinesContainEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("reqs_total{op=\"estimate\"}")->Add(7);
  registry.GetGauge("depth")->Set(2);
  registry.GetHistogram("lat_ns")->Record(100);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("reqs_total{op=\"estimate\"} 7"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 100"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  const std::string lines = registry.RenderLines();
  EXPECT_NE(lines.find("reqs_total{op=\"estimate\"} 7"), std::string::npos);
  EXPECT_NE(lines.find("depth 2"), std::string::npos);
  EXPECT_NE(lines.find("lat_ns count=1"), std::string::npos);
}

TEST(ObsTraceTest, StagesLandInTheRightHistograms) {
  MetricsRegistry registry;
  {
    RequestTrace trace(&registry, "estimate");
    { StageTimer decode(Stage::kDecode); }
    { StageTimer kernel(Stage::kKernel); }
    EXPECT_EQ(RequestTrace::Current(), &trace);
    EXPECT_GT(trace.stage_ns(Stage::kDecode), 0u);
    EXPECT_GT(trace.stage_ns(Stage::kKernel), 0u);
    EXPECT_EQ(trace.stage_ns(Stage::kEncode), 0u);
  }
  EXPECT_EQ(RequestTrace::Current(), nullptr);
  const MetricsSnapshot snap = registry.Snapshot();
  bool saw_decode = false, saw_kernel = false, saw_total = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name == "serve_stage_decode_ns") {
      saw_decode = true;
      EXPECT_EQ(h.count, 1u);
    }
    if (name == "serve_stage_kernel_ns") {
      saw_kernel = true;
      EXPECT_EQ(h.count, 1u);
    }
    if (name == "serve_request_ns{op=\"estimate\"}") {
      saw_total = true;
      EXPECT_EQ(h.count, 1u);
    }
    // A stage never entered must not register a histogram sample.
    if (name == "serve_stage_encode_ns") {
      EXPECT_EQ(h.count, 0u);
    }
  }
  EXPECT_TRUE(saw_decode);
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_total);
}

TEST(ObsTraceTest, StampWithoutTraceIsANoOpAndTracesNest) {
  RequestTrace::Stamp(Stage::kKernel, 123);  // must not crash
  MetricsRegistry registry;
  {
    RequestTrace outer(&registry, "outer");
    {
      RequestTrace inner(nullptr, "inner");  // null registry: time-only
      RequestTrace::Stamp(Stage::kRoute, 50);
      EXPECT_EQ(RequestTrace::Current(), &inner);
      EXPECT_EQ(inner.stage_ns(Stage::kRoute), 50u);
    }
    EXPECT_EQ(RequestTrace::Current(), &outer);
    EXPECT_EQ(outer.stage_ns(Stage::kRoute), 0u);  // inner did not leak
  }
  EXPECT_EQ(RequestTrace::Current(), nullptr);
}

TEST(ObsLabelTest, LabeledNamesFollowTheConvention) {
  EXPECT_EQ(LabeledName("serve_pod_inflight", "pod", "3"),
            "serve_pod_inflight{pod=\"3\"}");
  EXPECT_EQ(LabeledName2("serve_sketch_queries_total", "pod", "0", "sketch",
                         "baskets"),
            "serve_sketch_queries_total{pod=\"0\",sketch=\"baskets\"}");
}

}  // namespace
}  // namespace ifsketch::obs
