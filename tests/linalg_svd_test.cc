#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace ifsketch::linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

// Reassembles U diag(sigma) V^T.
Matrix Reassemble(const SvdResult& svd) {
  Matrix us = svd.u;
  for (std::size_t j = 0; j < svd.singular_values.size(); ++j) {
    for (std::size_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= svd.singular_values[j];
    }
  }
  return us.Multiply(svd.v.Transpose());
}

TEST(SvdTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = 1;
  a(2, 2) = 2;
  const SvdResult svd = ComputeSvd(a);
  ASSERT_EQ(svd.singular_values.size(), 3u);
  EXPECT_NEAR(svd.singular_values[0], 3.0, 1e-9);
  EXPECT_NEAR(svd.singular_values[1], 2.0, 1e-9);
  EXPECT_NEAR(svd.singular_values[2], 1.0, 1e-9);
}

TEST(SvdTest, SingularValuesDescending) {
  util::Rng rng(1);
  const Matrix a = RandomMatrix(8, 5, rng);
  const SvdResult svd = ComputeSvd(a);
  for (std::size_t i = 1; i < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i - 1], svd.singular_values[i]);
  }
}

TEST(SvdTest, ReconstructsTallMatrix) {
  util::Rng rng(2);
  const Matrix a = RandomMatrix(10, 4, rng);
  EXPECT_LT(Reassemble(ComputeSvd(a)).MaxAbsDiff(a), 1e-8);
}

TEST(SvdTest, ReconstructsWideMatrix) {
  util::Rng rng(3);
  const Matrix a = RandomMatrix(4, 11, rng);
  EXPECT_LT(Reassemble(ComputeSvd(a)).MaxAbsDiff(a), 1e-8);
}

TEST(SvdTest, OrthonormalFactors) {
  util::Rng rng(4);
  const Matrix a = RandomMatrix(9, 6, rng);
  const SvdResult svd = ComputeSvd(a);
  const Matrix utu = svd.u.Transpose().Multiply(svd.u);
  const Matrix vtv = svd.v.Transpose().Multiply(svd.v);
  EXPECT_LT(utu.MaxAbsDiff(Matrix::Identity(6)), 1e-8);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(6)), 1e-8);
}

TEST(SvdTest, FrobeniusEqualsSigmaNorm) {
  util::Rng rng(5);
  const Matrix a = RandomMatrix(7, 7, rng);
  const SvdResult svd = ComputeSvd(a);
  double sum = 0;
  for (double s : svd.singular_values) sum += s * s;
  EXPECT_NEAR(std::sqrt(sum), a.FrobeniusNorm(), 1e-8);
}

TEST(SvdTest, RankDeficientHasZeroSigma) {
  // Two identical columns -> rank 1.
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  EXPECT_NEAR(SmallestSingularValue(a), 0.0, 1e-9);
}

TEST(SvdTest, SmallestSingularValueOfOrthogonal) {
  EXPECT_NEAR(SmallestSingularValue(Matrix::Identity(5)), 1.0, 1e-10);
}

TEST(PseudoInverseTest, InvertibleMatchesInverse) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 7;
  a(1, 0) = 2;
  a(1, 1) = 6;
  const Matrix pinv = PseudoInverse(a);
  EXPECT_LT(a.Multiply(pinv).MaxAbsDiff(Matrix::Identity(2)), 1e-9);
}

TEST(PseudoInverseTest, MoorePenroseConditions) {
  util::Rng rng(6);
  const Matrix a = RandomMatrix(8, 5, rng);
  const Matrix p = PseudoInverse(a);
  // A P A = A and P A P = P.
  EXPECT_LT(a.Multiply(p).Multiply(a).MaxAbsDiff(a), 1e-8);
  EXPECT_LT(p.Multiply(a).Multiply(p).MaxAbsDiff(p), 1e-8);
}

TEST(LeastSquaresTest, ExactSystem) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 1) = 1;
  a(2, 0) = 1;
  a(2, 1) = 1;
  const Vector x_true = {2.0, -1.0};
  const Vector b = a.MultiplyVec(x_true);
  const Vector x = LeastSquares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], -1.0, 1e-9);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
  util::Rng rng(7);
  const Matrix a = RandomMatrix(20, 5, rng);
  Vector x_true(5);
  for (auto& v : x_true) v = rng.Gaussian();
  Vector b = a.MultiplyVec(x_true);
  for (auto& v : b) v += 0.01 * rng.Gaussian();
  const Vector x = LeastSquares(a, b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 0.05);
}

}  // namespace
}  // namespace ifsketch::linalg
