#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ifsketch::util {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, ConstructedZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.Count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetAndGetAcrossWordBoundaries) {
  BitVector v(200);
  for (std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    v.Set(i, true);
    EXPECT_TRUE(v.Get(i)) << i;
  }
  EXPECT_EQ(v.Count(), 8u);
  v.Set(64, false);
  EXPECT_FALSE(v.Get(64));
  EXPECT_EQ(v.Count(), 7u);
}

TEST(BitVectorTest, FlipTogglesBit) {
  BitVector v(70);
  v.Flip(69);
  EXPECT_TRUE(v.Get(69));
  v.Flip(69);
  EXPECT_FALSE(v.Get(69));
}

TEST(BitVectorTest, ClearZeroesEverything) {
  BitVector v = BitVector::FromString("11111111");
  v.Clear();
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_EQ(v.size(), 8u);
}

TEST(BitVectorTest, FromStringRoundTrip) {
  const std::string s = "1010011101";
  BitVector v = BitVector::FromString(s);
  EXPECT_EQ(v.ToString(), s);
  EXPECT_EQ(v.Count(), 6u);
}

TEST(BitVectorTest, ContainsSubsetSemantics) {
  const BitVector big = BitVector::FromString("11011");
  EXPECT_TRUE(big.Contains(BitVector::FromString("10010")));
  EXPECT_TRUE(big.Contains(BitVector::FromString("00000")));
  EXPECT_TRUE(big.Contains(big));
  EXPECT_FALSE(big.Contains(BitVector::FromString("00100")));
}

TEST(BitVectorTest, HammingDistance) {
  const BitVector a = BitVector::FromString("110010");
  const BitVector b = BitVector::FromString("011010");
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

TEST(BitVectorTest, AndCountIsIntersectionSize) {
  const BitVector a = BitVector::FromString("11100");
  const BitVector b = BitVector::FromString("01110");
  EXPECT_EQ(a.AndCount(b), 2u);
}

TEST(BitVectorTest, BitwiseOperators) {
  const BitVector a = BitVector::FromString("1100");
  const BitVector b = BitVector::FromString("1010");
  EXPECT_EQ((a & b).ToString(), "1000");
  EXPECT_EQ((a | b).ToString(), "1110");
  EXPECT_EQ((a ^ b).ToString(), "0110");
}

TEST(BitVectorTest, EqualityRequiresSizeAndContent) {
  EXPECT_EQ(BitVector::FromString("101"), BitVector::FromString("101"));
  EXPECT_FALSE(BitVector::FromString("101") == BitVector::FromString("1010"));
  EXPECT_FALSE(BitVector::FromString("101") == BitVector::FromString("100"));
}

TEST(BitVectorTest, ConcatPreservesBothParts) {
  const BitVector a = BitVector::FromString("101");
  const BitVector b = BitVector::FromString("0110");
  EXPECT_EQ(a.Concat(b).ToString(), "1010110");
}

TEST(BitVectorTest, SliceExtractsRange) {
  const BitVector v = BitVector::FromString("110101101");
  EXPECT_EQ(v.Slice(2, 4).ToString(), "0101");
  EXPECT_EQ(v.Slice(0, 9).ToString(), "110101101");
  EXPECT_EQ(v.Slice(8, 1).ToString(), "1");
  EXPECT_EQ(v.Slice(3, 0).size(), 0u);
}

TEST(BitVectorTest, SetBitsListsAscendingIndices) {
  BitVector v(150);
  v.Set(3, true);
  v.Set(64, true);
  v.Set(149, true);
  const std::vector<std::size_t> expected = {3, 64, 149};
  EXPECT_EQ(v.SetBits(), expected);
}

TEST(BitVectorTest, ConcatSliceRoundTripRandom) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t la = rng.UniformInt(100);
    const std::size_t lb = rng.UniformInt(100);
    const BitVector a = rng.RandomBits(la);
    const BitVector b = rng.RandomBits(lb);
    const BitVector joined = a.Concat(b);
    EXPECT_EQ(joined.Slice(0, la), a);
    EXPECT_EQ(joined.Slice(la, lb), b);
  }
}

TEST(BitVectorTest, CountMatchesSetBitsSizeRandom) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVector v = rng.RandomBits(1 + rng.UniformInt(300));
    EXPECT_EQ(v.Count(), v.SetBits().size());
  }
}

TEST(BitVectorTest, AndCountManySingleOperandIsCount) {
  Rng rng(17);
  const BitVector v = rng.RandomBits(203);
  const BitVector* ops[1] = {&v};
  EXPECT_EQ(BitVector::AndCountMany(ops, 1), v.Count());
}

TEST(BitVectorTest, AndCountManyFoldEquivalenceRandom) {
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t bits = rng.UniformInt(300);
    const BitVector a = rng.RandomBits(bits);
    const BitVector b = rng.RandomBits(bits);
    const BitVector c = rng.RandomBits(bits);
    BitVector folded = a;
    folded &= b;
    folded &= c;
    EXPECT_EQ(BitVector::AndCountMany({&a, &b, &c}), folded.Count());
  }
}

// Zero-bit vectors are valid operands everywhere: no kernel may touch
// the (possibly null) word pointer when there are no words.
TEST(BitVectorTest, ZeroBitOperandsAreValid) {
  const BitVector a(0);
  const BitVector b(0);
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.AndCount(b), 0u);
  EXPECT_EQ(BitVector::AndCountMany({&a, &b}), 0u);
  BitVector acc = a;
  acc &= b;
  EXPECT_EQ(acc, a);
}

// An empty operand *list* has no defined AND width; it must abort, not
// read through a null operand array.
TEST(BitVectorDeathTest, AndCountManyEmptyOperandListAborts) {
  const std::vector<const BitVector*> none;
  EXPECT_DEATH(BitVector::AndCountMany(none), "");
}

TEST(BitVectorTest, XorSelfIsZeroRandom) {
  Rng rng(13);
  const BitVector v = rng.RandomBits(257);
  EXPECT_EQ((v ^ v).Count(), 0u);
  EXPECT_EQ(v.HammingDistance(v), 0u);
}

// ---- views: borrowed words must answer every const query exactly like
// an owning vector of the same bits (the zero-copy load path depends on
// this equivalence, at every word count including partial tail words).

TEST(BitVectorViewTest, ViewAnswersLikeOwnedAtEveryLength) {
  Rng rng(99);
  for (const std::size_t bits : {0u, 1u, 63u, 64u, 65u, 128u, 257u, 1000u}) {
    const BitVector owned = rng.RandomBits(bits);
    const BitVector view = BitVector::View(owned.data(), bits);
    ASSERT_TRUE(view.is_view());
    ASSERT_EQ(view.size(), bits);
    EXPECT_EQ(view.Count(), owned.Count());
    EXPECT_EQ(view, owned);
    EXPECT_EQ(owned, view);
    for (std::size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(view.Get(i), owned.Get(i)) << i;
    }
    const BitVector other = rng.RandomBits(bits);
    EXPECT_EQ(view.AndCount(other), owned.AndCount(other));
    EXPECT_EQ(view.HammingDistance(other), owned.HammingDistance(other));
    EXPECT_EQ(view.SetBits(), owned.SetBits());
    const std::vector<const BitVector*> operands = {&view, &other};
    const std::vector<const BitVector*> operands_owned = {&owned, &other};
    EXPECT_EQ(BitVector::AndCountMany(operands),
              BitVector::AndCountMany(operands_owned));
  }
}

TEST(BitVectorViewTest, CopyingAViewMaterializesAnIndependentOwner) {
  Rng rng(7);
  BitVector owned = rng.RandomBits(300);
  const BitVector view = BitVector::View(owned.data(), 300);

  BitVector copy = view;  // deep copy, no longer borrows
  EXPECT_FALSE(copy.is_view());
  EXPECT_EQ(copy, owned);
  EXPECT_NE(copy.data(), view.data());

  // Mutating the copy is legal and leaves the viewed storage untouched.
  const bool bit = copy.Get(5);
  copy.Flip(5);
  EXPECT_EQ(owned.Get(5), bit);

  // Copy-assignment materializes too (the CountRange prefix pattern:
  // `prefix = columns[a]; prefix &= columns[b];` must work when the
  // columns are borrowed views).
  BitVector prefix;
  prefix = view;
  prefix &= owned;
  EXPECT_EQ(prefix, owned);
}

TEST(BitVectorViewTest, MoveKeepsBorrowedWordsAlive) {
  Rng rng(21);
  const BitVector owned = rng.RandomBits(150);
  BitVector view = BitVector::View(owned.data(), 150);
  const BitVector moved = std::move(view);
  EXPECT_TRUE(moved.is_view());
  EXPECT_EQ(moved, owned);
}

TEST(BitVectorViewDeathTest, MutatingAViewAborts) {
  const BitVector owned(128);
  BitVector view = BitVector::View(owned.data(), 128);
  EXPECT_DEATH(view.Set(3, true), "");
  EXPECT_DEATH(view.Flip(3), "");
  EXPECT_DEATH(view.Clear(), "");
  BitVector other(128);
  EXPECT_DEATH(view &= other, "");
}

}  // namespace
}  // namespace ifsketch::util
