#include "mining/apriori.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "sketch/subsample.h"
#include "util/bitvector.h"
#include "util/combinatorics.h"

namespace ifsketch::mining {
namespace {

core::Database MakeDb(const std::vector<std::string>& rows) {
  std::vector<util::BitVector> bits;
  for (const auto& r : rows) bits.push_back(util::BitVector::FromString(r));
  return core::Database::FromRows(std::move(bits));
}

bool ContainsItemset(const std::vector<FrequentItemset>& mined,
                     const core::Itemset& t) {
  for (const auto& fi : mined) {
    if (fi.itemset == t) return true;
  }
  return false;
}

TEST(AprioriTest, HandComputedExample) {
  // 4 transactions over 4 items.
  const core::Database db = MakeDb({
      "1101",
      "1100",
      "1010",
      "1101",
  });
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 3;
  const auto mined = MineDatabase(db, opt);
  // Frequent: {0}=1.0, {1}=0.75, {3}=0.5, {0,1}=0.75, {0,3}=0.5,
  // {1,3}=0.5, {0,1,3}=0.5. Not: {2}=0.25.
  EXPECT_EQ(mined.size(), 7u);
  EXPECT_TRUE(ContainsItemset(mined, core::Itemset(4, {0, 1, 3})));
  EXPECT_FALSE(ContainsItemset(mined, core::Itemset(4, {2})));
  for (const auto& fi : mined) {
    EXPECT_GE(fi.frequency, 0.5);
    EXPECT_DOUBLE_EQ(fi.frequency, db.Frequency(fi.itemset));
  }
}

TEST(AprioriTest, DownwardClosureHolds) {
  util::Rng rng(1);
  const core::Database db = data::PowerLawBaskets(
      300, 15, 0.8, 0.6, 3, 3, 0.3, rng);
  AprioriOptions opt;
  opt.min_frequency = 0.15;
  opt.max_size = 4;
  const auto mined = MineDatabase(db, opt);
  // Every subset of a mined itemset obtained by dropping one attribute
  // must itself be mined (downward closure).
  for (const auto& fi : mined) {
    const auto attrs = fi.itemset.Attributes();
    if (attrs.size() < 2) continue;
    for (std::size_t drop = 0; drop < attrs.size(); ++drop) {
      std::vector<std::size_t> sub;
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i != drop) sub.push_back(attrs[i]);
      }
      EXPECT_TRUE(
          ContainsItemset(mined, core::Itemset(db.num_columns(), sub)))
          << fi.itemset.ToString();
    }
  }
}

TEST(AprioriTest, MiningIsExhaustiveUpToMaxSize) {
  util::Rng rng(2);
  const core::Database db = data::UniformRandom(100, 8, 0.6, rng);
  AprioriOptions opt;
  opt.min_frequency = 0.3;
  opt.max_size = 3;
  const auto mined = MineDatabase(db, opt);
  // Brute-force verification.
  std::size_t expected = 0;
  for (std::size_t k = 1; k <= 3; ++k) {
    for (const auto& attrs : util::AllSubsets(8, k)) {
      if (db.Frequency(core::Itemset(8, attrs)) >= 0.3) ++expected;
    }
  }
  EXPECT_EQ(mined.size(), expected);
}

TEST(AprioriTest, MaxSizeRespected) {
  const core::Database db = MakeDb({"1111", "1111", "1111"});
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 2;
  for (const auto& fi : MineDatabase(db, opt)) {
    EXPECT_LE(fi.itemset.size(), 2u);
  }
}

TEST(AprioriTest, MaxResultsCapRespected) {
  const core::Database db = MakeDb({"11111111", "11111111"});
  AprioriOptions opt;
  opt.min_frequency = 0.5;
  opt.max_size = 8;
  opt.max_results = 20;
  EXPECT_LE(MineDatabase(db, opt).size(), 20u);
}

TEST(AprioriTest, EmptyResultBelowThreshold) {
  const core::Database db = MakeDb({"10", "01"});
  AprioriOptions opt;
  opt.min_frequency = 0.9;
  EXPECT_TRUE(MineDatabase(db, opt).empty());
}

TEST(AprioriTest, MiningOnSketchApproximatesTruth) {
  util::Rng rng(3);
  const core::Database db = data::PlantedItemsets(
      3000, 12, {{{0, 3}, 0.4}, {{5, 7, 9}, 0.3}}, 0.08, rng);
  AprioriOptions opt;
  opt.min_frequency = 0.2;
  opt.max_size = 3;
  const auto reference = MineDatabase(db, opt);

  sketch::SubsampleSketch algo;
  core::SketchParams params;
  params.k = 3;
  params.eps = 0.04;
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;
  const auto summary = algo.Build(db, params, rng);
  const auto est = algo.LoadEstimator(summary, params, 12, 3000);
  const auto mined = MineWithEstimator(*est, 12, opt);

  const MiningQuality q = CompareMinedSets(reference, mined);
  EXPECT_GT(q.Recall(), 0.85);
  EXPECT_GT(q.Precision(), 0.85);
  // The planted itemsets themselves must be found.
  EXPECT_TRUE(ContainsItemset(mined, core::Itemset(12, {0, 3})));
}

TEST(RulesTest, ConfidenceComputedCorrectly) {
  // {0,1} has f=0.5; {0} has f=0.75 -> rule {0}=>{1} confidence 2/3.
  const core::Database db = MakeDb({"11", "10", "11", "00"});
  AprioriOptions opt;
  opt.min_frequency = 0.4;
  opt.max_size = 2;
  const auto mined = MineDatabase(db, opt);
  const auto rules = ExtractRules(
      mined, [&db](const core::Itemset& t) { return db.Frequency(t); },
      0.5);
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.lhs == core::Itemset(2, {0}) &&
        rule.rhs == core::Itemset(2, {1})) {
      EXPECT_NEAR(rule.confidence, 2.0 / 3.0, 1e-9);
      EXPECT_NEAR(rule.support, 0.5, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, MinConfidenceFilters) {
  const core::Database db = MakeDb({"11", "10", "11", "00"});
  AprioriOptions opt;
  opt.min_frequency = 0.4;
  opt.max_size = 2;
  const auto mined = MineDatabase(db, opt);
  const auto rules = ExtractRules(
      mined, [&db](const core::Itemset& t) { return db.Frequency(t); },
      0.99);
  for (const auto& rule : rules) {
    EXPECT_GE(rule.confidence, 0.99);
  }
}

TEST(QualityTest, PrecisionRecallMath) {
  std::vector<FrequentItemset> ref = {{core::Itemset(4, {0}), 0.5},
                                      {core::Itemset(4, {1}), 0.5}};
  std::vector<FrequentItemset> mined = {{core::Itemset(4, {0}), 0.5},
                                        {core::Itemset(4, {2}), 0.5}};
  const MiningQuality q = CompareMinedSets(ref, mined);
  EXPECT_EQ(q.intersection, 1u);
  EXPECT_DOUBLE_EQ(q.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(q.Recall(), 0.5);
}

}  // namespace
}  // namespace ifsketch::mining
