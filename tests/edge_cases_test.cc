// Failure-injection and precondition tests: the library must fail loudly
// (IFSKETCH_CHECK aborts) on contract violations instead of silently
// producing wrong experiment conclusions.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/marginal.h"
#include "ecc/gf256.h"
#include "ecc/reed_solomon.h"
#include "lowerbound/shattered_set.h"
#include "sketch/release_answers.h"
#include "util/bitio.h"
#include "util/bitvector.h"
#include "util/combinatorics.h"

namespace ifsketch {
namespace {

using DeathTest = ::testing::Test;

TEST(EdgeDeathTest, BitVectorSliceOutOfRange) {
  const util::BitVector v(10);
  EXPECT_DEATH(v.Slice(5, 6), "");
}

TEST(EdgeDeathTest, BitVectorMismatchedSizes) {
  const util::BitVector a(8);
  const util::BitVector b(9);
  EXPECT_DEATH(a.HammingDistance(b), "");
  EXPECT_DEATH(a.Contains(b), "");
}

TEST(EdgeDeathTest, BitReaderOverrun) {
  util::BitWriter w;
  w.WriteUint(3, 4);
  const util::BitVector bits = w.Finish();
  util::BitReader r(bits);
  r.ReadUint(4);
  EXPECT_DEATH(r.ReadBit(), "");
}

TEST(EdgeDeathTest, QuantizedRejectsOutOfRange) {
  util::BitWriter w;
  EXPECT_DEATH(w.WriteQuantized(1.5, 8), "");
  EXPECT_DEATH(w.WriteQuantized(-0.1, 8), "");
}

TEST(EdgeDeathTest, ItemsetAttributeOutOfUniverse) {
  EXPECT_DEATH(core::Itemset(4, {5}), "");
}

TEST(EdgeDeathTest, DatabaseRowWidthMismatch) {
  core::Database db(2, 4);
  EXPECT_DEATH(db.AppendRow(util::BitVector(5)), "");
}

TEST(EdgeDeathTest, FrequencyUniverseMismatch) {
  const core::Database db(3, 4);
  EXPECT_DEATH(db.Frequency(core::Itemset(5, {0})), "");
}

TEST(EdgeDeathTest, RankSubsetRejectsUnsorted) {
  EXPECT_DEATH(util::RankSubset({3, 1}, 5), "");
}

TEST(EdgeDeathTest, UnrankRejectsRankTooLarge) {
  EXPECT_DEATH(util::UnrankSubset(util::Binomial(5, 2), 5, 2), "");
}

TEST(EdgeDeathTest, GF256NoInverseOfZero) {
  EXPECT_DEATH(ecc::GF256::Inv(0), "");
  EXPECT_DEATH(ecc::GF256::Div(3, 0), "");
}

TEST(EdgeDeathTest, ReedSolomonShapeChecks) {
  EXPECT_DEATH(ecc::ReedSolomon(256, 10), "");  // n > 255
  EXPECT_DEATH(ecc::ReedSolomon(10, 11), "");   // k > n
  ecc::ReedSolomon rs(10, 4);
  EXPECT_DEATH(rs.Encode(std::vector<std::uint8_t>(3)), "");
}

TEST(EdgeDeathTest, ShatteredSetNeedsRoom) {
  EXPECT_DEATH(lowerbound::ShatteredSet(3, 2), "");  // d < 2k'
}

TEST(EdgeDeathTest, ReleaseAnswersRefusesAbsurdShapes) {
  sketch::ReleaseAnswersSketch algo;
  core::SketchParams p;
  p.k = 30;
  p.answer = core::Answer::kIndicator;
  core::Database db(2, 100);  // C(100,30) astronomically large
  util::Rng rng(1);
  EXPECT_DEATH(algo.Build(db, p, rng), "");
}

TEST(EdgeDeathTest, MarginalGuardsHugeAttributeSets) {
  const core::Database db(2, 30);
  std::vector<std::size_t> attrs(25);
  for (std::size_t i = 0; i < attrs.size(); ++i) attrs[i] = i;
  EXPECT_DEATH(core::ComputeMarginal(db, attrs), "");
}

// Non-death edge behaviors.

TEST(EdgeTest, EmptyDatabaseFrequencyIsZero) {
  core::Database db(0, 4);
  EXPECT_EQ(db.Frequency(core::Itemset(4, {1})), 0.0);
}

TEST(EdgeTest, EmptyItemsetFrequencyIsOne) {
  core::Database db(3, 4);
  EXPECT_DOUBLE_EQ(db.Frequency(core::Itemset(4)), 1.0);
}

TEST(EdgeTest, FullItemsetOnZeroDatabase) {
  core::Database db(3, 4);
  EXPECT_DOUBLE_EQ(db.Frequency(core::Itemset(4, {0, 1, 2, 3})), 0.0);
}

TEST(EdgeTest, SliceOfZeroLengthIsEmpty) {
  const util::BitVector v(10);
  EXPECT_EQ(v.Slice(10, 0).size(), 0u);
}

TEST(EdgeTest, ConcatWithEmpty) {
  const util::BitVector v = util::BitVector::FromString("101");
  const util::BitVector empty(0);
  EXPECT_EQ(v.Concat(empty), v);
  EXPECT_EQ(empty.Concat(v), v);
}

}  // namespace
}  // namespace ifsketch
