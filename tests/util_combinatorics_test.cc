#include "util/combinatorics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ifsketch::util {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(10, 3), 120u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(BinomialTest, KGreaterThanNIsZero) {
  EXPECT_EQ(Binomial(3, 4), 0u);
  EXPECT_EQ(Binomial(0, 1), 0u);
}

TEST(BinomialTest, PascalIdentity) {
  for (std::uint64_t n = 1; n < 40; ++n) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(BinomialTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(Binomial(200, 100), kBinomialInf);
  EXPECT_EQ(Binomial(1000, 500), kBinomialInf);
}

TEST(LogBinomialTest, MatchesExactForSmall) {
  for (std::uint64_t n = 1; n < 30; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogBinomial(n, k),
                  std::log(static_cast<double>(Binomial(n, k))), 1e-9);
    }
  }
}

TEST(SubsetRankTest, UnrankRankRoundTrip) {
  for (const auto& [n, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {6, 3}, {8, 2}, {10, 4}, {12, 1}, {7, 7}}) {
    const std::uint64_t total = Binomial(n, k);
    for (std::uint64_t rank = 0; rank < total; ++rank) {
      const auto subset = UnrankSubset(rank, n, k);
      ASSERT_EQ(subset.size(), k);
      EXPECT_EQ(RankSubset(subset, n), rank);
    }
  }
}

TEST(SubsetRankTest, UnrankProducesValidSubsets) {
  for (std::uint64_t rank = 0; rank < Binomial(9, 4); ++rank) {
    const auto subset = UnrankSubset(rank, 9, 4);
    for (std::size_t i = 0; i < subset.size(); ++i) {
      EXPECT_LT(subset[i], 9u);
      if (i > 0) {
        EXPECT_GT(subset[i], subset[i - 1]);
      }
    }
  }
}

TEST(SubsetRankTest, RankZeroIsPrefix) {
  const auto subset = UnrankSubset(0, 10, 3);
  EXPECT_EQ(subset, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NextSubsetTest, EnumerationMatchesColexRank) {
  std::vector<std::size_t> subset = {0, 1, 2};
  std::uint64_t rank = 0;
  do {
    EXPECT_EQ(RankSubset(subset, 8), rank);
    EXPECT_EQ(UnrankSubset(rank, 8, 3), subset);
    ++rank;
  } while (NextSubset(subset, 8));
  EXPECT_EQ(rank, Binomial(8, 3));
  // After wrapping, the subset is back at the first one.
  EXPECT_EQ(subset, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(AllSubsetsTest, CountsAndUniqueness) {
  const auto all = AllSubsets(7, 3);
  EXPECT_EQ(all.size(), Binomial(7, 3));
  std::set<std::vector<std::size_t>> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

TEST(AllSubsetsTest, EdgeCases) {
  EXPECT_EQ(AllSubsets(5, 0).size(), 1u);  // the empty set
  EXPECT_EQ(AllSubsets(5, 6).size(), 0u);
  EXPECT_EQ(AllSubsets(4, 4).size(), 1u);
}

TEST(Log2Test, FloorAndCeil) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1025), 10);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(IteratedLogTest, KnownValues) {
  EXPECT_NEAR(IteratedLog2(256.0, 1), 8.0, 1e-12);
  EXPECT_NEAR(IteratedLog2(256.0, 2), 3.0, 1e-12);
  EXPECT_NEAR(IteratedLog2(256.0, 3), std::log2(3.0), 1e-12);
  // Clamped at 1 once the value drops below 2.
  EXPECT_EQ(IteratedLog2(256.0, 10), 1.0);
  EXPECT_EQ(IteratedLog2(1.5, 1), 1.0);
}

TEST(IteratedLogTest, MonotoneInQ) {
  const double x = 1e12;
  double prev = IteratedLog2(x, 0);
  for (int q = 1; q < 6; ++q) {
    const double cur = IteratedLog2(x, q);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace ifsketch::util
