// The pinned golden-file spec, shared by the generator
// (tools/make_golden.cc) and the pinning test
// (tests/golden_files_test.cc) so the two can never drift apart.
//
// Changing ANYTHING here (seeds, shape, query set, algorithm list)
// invalidates the checked-in tests/data/ goldens: regenerate them with
// the make_golden tool in the same PR, and only for a deliberate format
// or sampling change -- never to absorb a kernel/batching difference.
#ifndef IFSKETCH_TESTS_GOLDEN_SPEC_H_
#define IFSKETCH_TESTS_GOLDEN_SPEC_H_

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "core/itemset.h"
#include "core/sketch.h"
#include "util/random.h"

namespace ifsketch::golden {

inline constexpr std::uint64_t kDbSeed = 20260730;
inline constexpr std::uint64_t kBuildSeed = 1234500;  // + algorithm index
inline constexpr std::uint64_t kQuerySeed = 424242;
inline constexpr std::size_t kRows = 2000;
inline constexpr std::size_t kCols = 16;
inline constexpr std::size_t kNumQueries = 48;
inline constexpr std::size_t kQuerySize = 3;  // == params.k: all algos answer it

inline constexpr const char* kAlgorithms[] = {
    "RELEASE-DB",        "RELEASE-ANSWERS", "SUBSAMPLE",
    "SUBSAMPLE-WOR",     "IMPORTANCE-SAMPLE",
    "MEDIAN-BOOST(SUBSAMPLE)",
};

inline core::SketchParams GoldenParams() {
  core::SketchParams p;
  p.k = kQuerySize;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

inline std::vector<core::Itemset> PinnedQueries() {
  util::Rng rng(kQuerySeed);
  std::vector<core::Itemset> queries;
  queries.reserve(kNumQueries);
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    core::Itemset t(kCols);
    while (t.size() < kQuerySize) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kCols)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

/// "MEDIAN-BOOST(SUBSAMPLE)" -> "median_boost_subsample": the file stem
/// for an algorithm's golden pair under tests/data/.
inline std::string Slug(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

}  // namespace ifsketch::golden

#endif  // IFSKETCH_TESTS_GOLDEN_SPEC_H_
