#include "sketch/reservoir.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "sketch/subsample.h"

namespace ifsketch::sketch {
namespace {

core::SketchParams EstParams() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

TEST(ReservoirTest, SlotCountMatchesSubsample) {
  util::Rng rng(1);
  ReservoirBuilder builder(12, EstParams(), rng);
  EXPECT_EQ(builder.slot_count(),
            SubsampleSketch::SampleCount(EstParams(), 12));
}

TEST(ReservoirTest, SummaryCompatibleWithSubsampleLoader) {
  util::Rng rng(2);
  const core::Database db = data::UniformRandom(300, 12, 0.4, rng);
  ReservoirBuilder builder(12, EstParams(), rng);
  for (std::size_t i = 0; i < db.num_rows(); ++i) builder.Observe(db.Row(i));
  EXPECT_EQ(builder.rows_seen(), 300u);
  const auto summary = builder.Finish();
  SubsampleSketch algo;
  const auto est = algo.LoadEstimator(summary, EstParams(), 12, 300);
  // Smoke check: estimate is a frequency.
  const double f = est->EstimateFrequency(core::Itemset(12, {0}));
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(ReservoirTest, SingleRowStreamAlwaysSampled) {
  util::Rng rng(3);
  ReservoirBuilder builder(6, EstParams(), rng);
  util::BitVector row(6);
  row.Set(2, true);
  builder.Observe(row);
  const core::Database sample =
      SubsampleSketch::DecodeSample(builder.Finish(), 6);
  for (std::size_t i = 0; i < sample.num_rows(); ++i) {
    EXPECT_EQ(sample.Row(i), row);
  }
}

TEST(ReservoirTest, SlotsAreUniformOverStream) {
  // Stream of 4 distinct rows, equal counts: each slot should hold each
  // row with probability ~1/4.
  util::Rng rng(4);
  core::SketchParams p = EstParams();
  p.eps = 0.05;  // more slots for tighter statistics
  std::vector<util::BitVector> distinct;
  for (int r = 0; r < 4; ++r) {
    util::BitVector row(4);
    row.Set(r, true);
    distinct.push_back(row);
  }
  int counts[4] = {};
  int total = 0;
  for (int rep = 0; rep < 40; ++rep) {
    ReservoirBuilder builder(4, p, rng);
    for (int pass = 0; pass < 25; ++pass) {
      for (const auto& row : distinct) builder.Observe(row);
    }
    const core::Database sample =
        SubsampleSketch::DecodeSample(builder.Finish(), 4);
    for (std::size_t i = 0; i < sample.num_rows(); ++i) {
      for (int r = 0; r < 4; ++r) {
        if (sample.Row(i) == distinct[r]) {
          ++counts[r];
          ++total;
        }
      }
    }
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / total, 0.25, 0.03) << r;
  }
}

TEST(ReservoirTest, StreamEstimateCloseToTrueFrequency) {
  util::Rng rng(5);
  const core::Database db =
      data::PlantedItemsets(2000, 10, {{{2, 6}, 0.35}}, 0.05, rng);
  core::SketchParams p = EstParams();
  p.eps = 0.05;
  ReservoirBuilder builder(10, p, rng);
  for (std::size_t i = 0; i < db.num_rows(); ++i) builder.Observe(db.Row(i));
  SubsampleSketch algo;
  const auto est = algo.LoadEstimator(builder.Finish(), p, 10, 2000);
  const core::Itemset t(10, {2, 6});
  EXPECT_NEAR(est->EstimateFrequency(t), db.Frequency(t), 0.08);
}

}  // namespace
}  // namespace ifsketch::sketch
