#include "lowerbound/estimator_lb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sketch/release_db.h"
#include "util/random.h"

namespace ifsketch::lowerbound {
namespace {

TEST(KrsuTest, ShapeAndQueryCount) {
  util::Rng rng(1);
  const KrsuInstance inst(6, 3, 10, rng);  // k'=3: two factor blocks
  EXPECT_EQ(inst.d1(), 13u);
  EXPECT_EQ(inst.NumQueries(), 36u);
  EXPECT_EQ(inst.QueryMatrix().rows(), 36u);
  EXPECT_EQ(inst.QueryMatrix().cols(), 10u);
}

TEST(KrsuTest, QueryItemsetsHaveSizeKPrime) {
  util::Rng rng(2);
  const KrsuInstance inst(5, 3, 8, rng);
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    const core::Itemset t = inst.QueryItemset(r);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_TRUE(t.Has(inst.d1() - 1));  // always includes the secret col
  }
}

// The core linear-algebra identity: n * f_{T_r}(D1(y)) == (A y)_r.
TEST(KrsuTest, FrequenciesAreLinearInSecret) {
  util::Rng rng(3);
  const KrsuInstance inst(5, 3, 12, rng);
  const util::BitVector y = rng.RandomBits(12);
  const core::Database db = inst.BuildDatabase(y);
  EXPECT_EQ(db.num_rows(), 12u);
  EXPECT_EQ(db.num_columns(), inst.d1());
  linalg::Vector yv(12);
  for (std::size_t j = 0; j < 12; ++j) yv[j] = y.Get(j) ? 1.0 : 0.0;
  const linalg::Vector ay = inst.QueryMatrix().MultiplyVec(yv);
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    EXPECT_NEAR(12.0 * db.Frequency(inst.QueryItemset(r)), ay[r], 1e-9)
        << r;
  }
}

TEST(KrsuTest, ExactAnswersRecoverSecretL1AndL2) {
  util::Rng rng(4);
  const KrsuInstance inst(6, 3, 16, rng);
  const util::BitVector y = rng.RandomBits(16);
  const core::Database db = inst.BuildDatabase(y);
  linalg::Vector answers(inst.NumQueries());
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    answers[r] = db.Frequency(inst.QueryItemset(r));
  }
  EXPECT_EQ(inst.ReconstructL1(answers), y);
  EXPECT_EQ(inst.ReconstructL2(answers), y);
}

TEST(KrsuTest, NoisyAnswersRecoverSecretWhenNBelowInverseEpsSquared) {
  // n = 16, eps = 1/64: eps ~ sqrt(n)/n regime where recovery succeeds.
  util::Rng rng(5);
  const KrsuInstance inst(10, 3, 16, rng);
  const util::BitVector y = rng.RandomBits(16);
  const core::Database db = inst.BuildDatabase(y);
  const double eps = 1.0 / 64.0;
  linalg::Vector answers(inst.NumQueries());
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    answers[r] = db.Frequency(inst.QueryItemset(r)) +
                 eps * (2.0 * rng.UniformDouble() - 1.0);
  }
  EXPECT_EQ(inst.ReconstructL1(answers), y);
  EXPECT_EQ(inst.ReconstructL2(answers), y);
}

// De's point: L1 survives a few grossly-wrong answers; L2 need not.
TEST(KrsuTest, L1RobustToSparseGrossErrors) {
  util::Rng rng(6);
  const KrsuInstance inst(10, 3, 16, rng);  // 100 queries
  const util::BitVector y = rng.RandomBits(16);
  const core::Database db = inst.BuildDatabase(y);
  linalg::Vector answers(inst.NumQueries());
  for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
    answers[r] = db.Frequency(inst.QueryItemset(r));
  }
  // Corrupt 5% of the answers completely.
  for (std::size_t c = 0; c < inst.NumQueries() / 20; ++c) {
    answers[rng.UniformInt(inst.NumQueries())] = rng.UniformDouble();
  }
  EXPECT_EQ(inst.ReconstructL1(answers), y);
}

TEST(Lemma21Test, ExactEstimatesRecovered) {
  util::Rng rng(7);
  const std::size_t v = 10;
  linalg::Vector z(v);
  for (auto& zi : z) zi = rng.UniformDouble();
  auto estimate = [&](const util::BitVector& s) {
    double dot = 0;
    for (std::size_t i = 0; i < v; ++i) {
      if (s.Get(i)) dot += z[i];
    }
    return dot / static_cast<double>(v);
  };
  const linalg::Vector decoded = Lemma21Decode(v, estimate, 40, rng);
  for (std::size_t i = 0; i < v; ++i) {
    EXPECT_NEAR(decoded[i], z[i], 1e-6) << i;
  }
}

TEST(Lemma21Test, NoisyEstimatesCloseOnAverage) {
  util::Rng rng(8);
  const std::size_t v = 12;
  linalg::Vector z(v);
  for (auto& zi : z) zi = rng.UniformDouble();
  const double eps = 0.01;
  auto estimate = [&](const util::BitVector& s) {
    double dot = 0;
    for (std::size_t i = 0; i < v; ++i) {
      if (s.Get(i)) dot += z[i];
    }
    return dot / static_cast<double>(v) +
           eps * (2.0 * rng.UniformDouble() - 1.0);
  };
  const linalg::Vector decoded = Lemma21Decode(v, estimate, 60, rng);
  double total = 0;
  for (std::size_t i = 0; i < v; ++i) total += std::fabs(decoded[i] - z[i]);
  // Lemma 21's bound is 4*eps average error (times v here since we sum).
  EXPECT_LE(total / static_cast<double>(v), 8 * eps);
}

TEST(Thm16AmplifiedTest, ShapeAndProbeArity) {
  util::Rng rng(9);
  const Thm16Amplified amp(8, 5, 3, 4, 10, rng);  // k=5, c=3: k-c=2
  EXPECT_EQ(amp.v(), amp.shattered().v());
  EXPECT_EQ(amp.PayloadBits(), amp.v() * 10);
  const util::BitVector s = rng.RandomBits(amp.v());
  // |T'| = (k-c) + c = k... as attribute sets: (k-c) from the shattered
  // block, c from the KRSU block.
  EXPECT_EQ(amp.OuterProbe(s, 3).size(), 5u);
}

TEST(Thm16AmplifiedTest, OuterFrequencyIdentity) {
  // f_{T'(T,s)}(D) = <s, z_T>/v (Equations (6)-(9) of the paper).
  util::Rng rng(10);
  const Thm16Amplified amp(8, 5, 3, 4, 8, rng);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);
  const std::size_t n = amp.krsu().n();
  for (std::size_t r = 0; r < amp.krsu().NumQueries(); r += 2) {
    // Compute z_T directly.
    linalg::Vector z(amp.v());
    for (std::size_t i = 0; i < amp.v(); ++i) {
      const core::Database di =
          amp.krsu().BuildDatabase(payload.Slice(i * n, n));
      z[i] = di.Frequency(amp.krsu().QueryItemset(r));
    }
    for (int trial = 0; trial < 5; ++trial) {
      const util::BitVector s = rng.RandomBits(amp.v());
      double dot = 0;
      for (std::size_t i = 0; i < amp.v(); ++i) {
        if (s.Get(i)) dot += z[i];
      }
      EXPECT_NEAR(db.Frequency(amp.OuterProbe(s, r)),
                  dot / static_cast<double>(amp.v()), 1e-9);
    }
  }
}

TEST(Thm16AmplifiedTest, FullReconstructionThroughExactEstimator) {
  util::Rng rng(11);
  const Thm16Amplified amp(8, 5, 3, 5, 10, rng);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);

  class Exact : public core::FrequencyEstimator {
   public:
    explicit Exact(const core::Database* db) : db_(db) {}
    double EstimateFrequency(const core::Itemset& t) const override {
      return db_->Frequency(t);
    }

   private:
    const core::Database* db_;
  } exact(&db);

  const util::BitVector recovered =
      amp.ReconstructPayload(exact, 30, rng);
  EXPECT_EQ(recovered, payload);
}

TEST(Thm16AmplifiedTest, ReconstructionThroughNoisyEstimator) {
  util::Rng rng(12);
  const Thm16Amplified amp(8, 5, 3, 4, 8, rng);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);

  class Noisy : public core::FrequencyEstimator {
   public:
    Noisy(const core::Database* db, double eps, util::Rng* rng)
        : db_(db), eps_(eps), rng_(rng) {}
    double EstimateFrequency(const core::Itemset& t) const override {
      return db_->Frequency(t) +
             eps_ * (2.0 * rng_->UniformDouble() - 1.0);
    }

   private:
    const core::Database* db_;
    double eps_;
    util::Rng* rng_;
  } noisy(&db, 0.004, &rng);

  const util::BitVector recovered =
      amp.ReconstructPayload(noisy, 40, rng);
  const std::size_t errors = recovered.HammingDistance(payload);
  EXPECT_LE(errors, amp.PayloadBits() / 4)
      << "errors=" << errors << "/" << amp.PayloadBits();
}

}  // namespace
}  // namespace ifsketch::lowerbound
