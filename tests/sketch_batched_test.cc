// Batched-vs-scalar equivalence: EstimateMany / AreFrequent must return
// bit-identical answers to N scalar calls on the same view. The batched
// paths share work (column-store transposes, per-row coefficients) but
// are contractually forbidden from changing a single answer.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/column_store.h"
#include "data/generators.h"
#include "mining/apriori.h"
#include "sketch/builtin_algorithms.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ifsketch {
namespace {

core::SketchParams EstimatorParams() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

// A query mix that exercises every SupportCounts fast path: empty, 1-,
// 2- and 3-attribute itemsets, duplicates included.
std::vector<core::Itemset> MixedQueries(std::size_t d, util::Rng& rng) {
  std::vector<core::Itemset> queries;
  queries.emplace_back(d);  // empty itemset
  for (std::size_t a = 0; a < d; ++a) {
    queries.emplace_back(d, std::vector<std::size_t>{a});
  }
  for (int i = 0; i < 200; ++i) {
    core::Itemset t(d);
    const std::size_t size = 1 + rng.UniformInt(3);
    while (t.size() < size) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(d)));
    }
    queries.push_back(std::move(t));
  }
  queries.push_back(queries.back());  // duplicate
  return queries;
}

class BatchedEquivalenceTest : public testing::TestWithParam<const char*> {};

TEST_P(BatchedEquivalenceTest, EstimateManyMatchesScalarBitForBit) {
  util::Rng rng(99);
  const std::size_t d = 12;
  const core::Database db = data::PowerLawBaskets(800, d, 1.0, 0.5, 4, 3,
                                                  0.2, rng);
  const core::SketchParams params = EstimatorParams();
  const auto algo = sketch::BuiltinRegistry().Create(GetParam());
  ASSERT_NE(algo, nullptr);
  const auto summary = algo->Build(db, params, rng);
  const auto estimator =
      algo->LoadEstimator(summary, params, d, db.num_rows());

  const auto queries = MixedQueries(d, rng);
  std::vector<double> batched;
  estimator->EstimateMany(queries, &batched);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double scalar = estimator->EstimateFrequency(queries[i]);
    EXPECT_EQ(scalar, batched[i])
        << GetParam() << " diverged on query " << i << " ("
        << queries[i].ToString() << ")";
  }
}

TEST_P(BatchedEquivalenceTest, AreFrequentMatchesScalarBitForBit) {
  util::Rng rng(100);
  const std::size_t d = 12;
  const core::Database db = data::PowerLawBaskets(800, d, 1.0, 0.5, 4, 3,
                                                  0.2, rng);
  core::SketchParams params = EstimatorParams();
  params.answer = core::Answer::kIndicator;
  const auto algo = sketch::BuiltinRegistry().Create(GetParam());
  ASSERT_NE(algo, nullptr);
  // MEDIAN-BOOST only defines the estimator view; its indicator goes
  // through the generic ThresholdIndicator, which this still exercises.
  if (std::string(GetParam()) == "MEDIAN-BOOST(SUBSAMPLE)") {
    params.answer = core::Answer::kEstimator;
  }
  const auto summary = algo->Build(db, params, rng);
  const auto indicator =
      algo->LoadIndicator(summary, params, d, db.num_rows());

  const auto queries = MixedQueries(d, rng);
  std::vector<bool> batched;
  indicator->AreFrequent(queries, &batched);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(indicator->IsFrequent(queries[i]), batched[i])
        << GetParam() << " diverged on query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOverridingEstimators, BatchedEquivalenceTest,
                         testing::Values("SUBSAMPLE", "SUBSAMPLE-WOR",
                                         "RELEASE-DB", "IMPORTANCE-SAMPLE",
                                         "MEDIAN-BOOST(SUBSAMPLE)"),
                         [](const auto& info) {
                           std::string safe = info.param;
                           for (char& c : safe) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return safe;
                         });

TEST(ColumnStoreBatchTest, SupportCountsMatchesScalar) {
  util::Rng rng(7);
  const core::Database db = data::UniformRandom(500, 9, 0.5, rng);
  const core::ColumnStore store(db);
  const auto queries = MixedQueries(9, rng);
  std::vector<std::size_t> counts;
  store.SupportCounts(queries, &counts);
  ASSERT_EQ(counts.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(store.SupportCount(queries[i]), counts[i]) << i;
    EXPECT_EQ(db.SupportCount(queries[i]), counts[i]) << i;
  }
}

// An Apriori-level-shaped batch (runs of queries sharing their
// (k-1)-prefix, interleaved with isolated queries) exercises every path
// of the prefix-sharing kernel; counts must match the scalar fold at
// every thread count.
TEST(ColumnStoreBatchTest, PrefixSharedLevelMatchesScalarAtEveryThreadCount) {
  util::Rng rng(17);
  const std::size_t d = 16;
  const core::Database db = data::UniformRandom(700, d, 0.4, rng);
  const core::ColumnStore store(db);

  std::vector<core::Itemset> queries;
  // Sibling runs {0,1,x}, {0,2,x}, {5,6,7,x} -- heads materialize a
  // prefix, siblings reuse it.
  for (std::size_t x = 2; x < d; ++x) {
    queries.emplace_back(d, std::vector<std::size_t>{0, 1, x});
  }
  for (std::size_t x = 3; x < d; ++x) {
    queries.emplace_back(d, std::vector<std::size_t>{0, 2, x});
  }
  // Isolated queries between runs take the fused AndCountMany path and
  // must invalidate the cached prefix.
  queries.emplace_back(d, std::vector<std::size_t>{3, 9, 11, 14});
  for (std::size_t x = 8; x < d; ++x) {
    queries.emplace_back(d, std::vector<std::size_t>{5, 6, 7, x});
  }
  queries.emplace_back(d);  // empty
  queries.emplace_back(d, std::vector<std::size_t>{4});
  queries.emplace_back(d, std::vector<std::size_t>{4, 10});

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool::SetDefaultThreadCount(threads);
    std::vector<std::size_t> counts;
    store.SupportCounts(queries, &counts);
    ASSERT_EQ(counts.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(db.SupportCount(queries[i]), counts[i])
          << "query " << i << " at " << threads << " threads";
    }
  }
  util::ThreadPool::SetDefaultThreadCount(0);
}

TEST(ColumnStoreBatchTest, AdoptedColumnsMatchTransposedStore) {
  util::Rng rng(18);
  const std::size_t d = 11;
  const core::Database db = data::UniformRandom(300, d, 0.5, rng);
  std::vector<util::BitVector> columns;
  columns.reserve(d);
  for (std::size_t j = 0; j < d; ++j) columns.push_back(db.Column(j));
  // O(d) adopting constructor vs O(n*d) transpose: same store.
  const core::ColumnStore adopted(db.num_rows(), std::move(columns));
  const core::ColumnStore transposed(db);
  ASSERT_EQ(adopted.num_rows(), transposed.num_rows());
  ASSERT_EQ(adopted.num_columns(), transposed.num_columns());
  const auto queries = MixedQueries(d, rng);
  std::vector<std::size_t> a, b;
  adopted.SupportCounts(queries, &a);
  transposed.SupportCounts(queries, &b);
  EXPECT_EQ(a, b);
}

TEST(BatchedMiningTest, BatchedMinerMatchesScalarMiner) {
  util::Rng rng(8);
  const std::size_t d = 14;
  const core::Database db = data::PowerLawBaskets(2000, d, 1.0, 0.5, 4, 3,
                                                  0.2, rng);
  const auto algo = sketch::BuiltinRegistry().Create("SUBSAMPLE");
  const auto params = EstimatorParams();
  const auto summary = algo->Build(db, params, rng);
  const auto estimator =
      algo->LoadEstimator(summary, params, d, db.num_rows());

  mining::AprioriOptions opt;
  opt.min_frequency = 0.1;
  opt.max_size = 3;
  const auto scalar = mining::MineWithEstimator(*estimator, d, opt);
  const auto batched = mining::MineWithEstimatorBatched(*estimator, d, opt);
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].itemset, batched[i].itemset) << i;
    EXPECT_EQ(scalar[i].frequency, batched[i].frequency) << i;
  }
}

}  // namespace
}  // namespace ifsketch
