#include "lowerbound/thm15.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "ecc/concatenated.h"
#include "sketch/subsample.h"
#include "sketch/release_db.h"
#include "util/random.h"

namespace ifsketch::lowerbound {
namespace {

/// Ground-truth indicator: thresholds exact frequencies with the valid
/// rule "1 iff f > eps/2" (any rule valid per Definition 1 works here).
class ExactIndicator : public core::FrequencyIndicator {
 public:
  ExactIndicator(const core::Database* db, double eps)
      : db_(db), eps_(eps) {}
  bool IsFrequent(const core::Itemset& t) const override {
    return db_->Frequency(t) > eps_ / 2;
  }

 private:
  const core::Database* db_;
  double eps_;
};

TEST(Thm15Test, InstanceShape) {
  const Thm15Instance inst(32, 3);  // k-1 = 2, block 16, v = 8
  EXPECT_EQ(inst.v(), 8u);
  EXPECT_EQ(inst.PayloadBits(), 8u * 32u);
}

TEST(Thm15Test, DatabaseLayout) {
  util::Rng rng(1);
  const Thm15Instance inst(16, 2);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  EXPECT_EQ(db.num_rows(), inst.v());
  EXPECT_EQ(db.num_columns(), 32u);
  for (std::size_t i = 0; i < inst.v(); ++i) {
    EXPECT_EQ(db.Row(i).Slice(0, 16), inst.shattered().Row(i));
    EXPECT_EQ(db.Row(i).Slice(16, 16), payload.Slice(i * 16, 16));
  }
}

TEST(Thm15Test, ProbeFrequencyIsInnerProduct) {
  // The key identity: f_{T_{s,j}}(D) = <s, t>/v with t = payload col j.
  util::Rng rng(2);
  const Thm15Instance inst(32, 3);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  for (int trial = 0; trial < 30; ++trial) {
    const util::BitVector s = rng.RandomBits(inst.v());
    const std::size_t j = rng.UniformInt(inst.d());
    EXPECT_DOUBLE_EQ(db.Frequency(inst.ProbeItemset(s, j)),
                     inst.TrueFrequency(payload, s, j));
  }
}

TEST(Thm15Test, ProbeItemsetsHaveSizeK) {
  util::Rng rng(3);
  const Thm15Instance inst(32, 3);
  for (int trial = 0; trial < 10; ++trial) {
    const util::BitVector s = rng.RandomBits(inst.v());
    // |T_s| = k-1 plus the payload column = k... except when the pattern
    // maps two blocks to the same attribute -- impossible here since
    // blocks are disjoint. Size is exactly k.
    EXPECT_EQ(inst.ProbeItemset(s, trial).size(), 3u);
  }
}

// The constant-eps reconstruction: with a valid indicator (exact
// thresholds), the consistency decoder recovers the payload with at
// most the Lemma 19 error budget -- in the 1/v > eps regime, exactly.
TEST(Thm15Test, ReconstructionExactInSmallVRegime) {
  util::Rng rng(4);
  const Thm15Instance inst(32, 3);  // v = 8 < 50
  ASSERT_LT(inst.v(), 50u);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  const ExactIndicator indicator(&db, Thm15Instance::kEps);
  ConsistencyDecoderOptions options;
  const util::BitVector recovered =
      inst.ReconstructPayload(indicator, options, rng);
  EXPECT_EQ(recovered, payload);
}

TEST(Thm15Test, ReconstructionThroughReleaseDbSketch) {
  util::Rng rng(5);
  const Thm15Instance inst(16, 3);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);
  sketch::ReleaseDbSketch algo;
  core::SketchParams params;
  params.k = 3;
  params.eps = Thm15Instance::kEps;
  params.answer = core::Answer::kIndicator;
  const auto summary = algo.Build(db, params, rng);
  const auto ind = algo.LoadIndicator(summary, params, db.num_columns(),
                                      db.num_rows());
  ConsistencyDecoderOptions options;
  EXPECT_EQ(inst.ReconstructPayload(*ind, options, rng), payload);
}

// Large-v regime: exercise the LP consistency decoder directly with a
// synthetic column and a valid answer oracle.
TEST(Thm15Test, ConsistencyDecoderLargeV) {
  util::Rng rng(6);
  const std::size_t v = 120;  // 1/v < eps/2: LP regime
  const util::BitVector truth = rng.RandomBits(v);
  auto answer = [&](const util::BitVector& s) {
    // A valid indicator at eps=1/50: forced answers outside the gray
    // zone, adversarially answer 0 inside it.
    std::size_t dot = 0;
    for (std::size_t i = 0; i < v; ++i) {
      if (s.Get(i) && truth.Get(i)) ++dot;
    }
    const double f = static_cast<double>(dot) / static_cast<double>(v);
    return f > Thm15Instance::kEps;  // threshold rule, valid
  };
  ConsistencyDecoderOptions options;
  options.random_probes = 220;
  const util::BitVector decoded =
      DecodeColumnByConsistency(v, answer, options, rng);
  const std::size_t errors = decoded.HammingDistance(truth);
  // Lemma 19's budget is v/25 for the all-probes decoder; our sampled-
  // probe decoder is validated against a 2x budget.
  EXPECT_LE(errors, 2 * v / 25) << "errors=" << errors;
}

TEST(Thm15Test, AmplifiedShape) {
  const Thm15Amplified amp(16, 3, 4);
  EXPECT_EQ(amp.m(), 4u);
  EXPECT_NEAR(amp.OuterEps(), 1.0 / 200.0, 1e-12);
  EXPECT_EQ(amp.PayloadBits(), 4 * amp.inner().PayloadBits());
  util::Rng rng(7);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);
  EXPECT_EQ(db.num_columns(), 48u);
  EXPECT_EQ(db.num_rows(), 4 * amp.inner().v());
}

TEST(Thm15Test, AmplifiedFrequencyScaling) {
  // f_outer(D) = f_inner(D_i) / m.
  util::Rng rng(8);
  const Thm15Amplified amp(16, 3, 5);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);
  const std::size_t inner_bits = amp.inner().PayloadBits();
  for (std::size_t copy = 0; copy < amp.m(); ++copy) {
    const core::Database di = amp.inner().BuildDatabase(
        payload.Slice(copy * inner_bits, inner_bits));
    for (int trial = 0; trial < 10; ++trial) {
      const util::BitVector s = rng.RandomBits(amp.inner().v());
      const std::size_t j = rng.UniformInt(amp.d());
      const double inner_f = di.Frequency(amp.inner().ProbeItemset(s, j));
      const double outer_f = db.Frequency(amp.OuterProbe(copy, s, j));
      EXPECT_NEAR(outer_f, inner_f / static_cast<double>(amp.m()), 1e-12);
    }
  }
}

TEST(Thm15Test, AmplifiedOuterProbeSizeIsK) {
  util::Rng rng(9);
  const Thm15Amplified amp(16, 5, 3);  // k=5: inner itemsets size 3, tags 2
  for (int trial = 0; trial < 10; ++trial) {
    const util::BitVector s = rng.RandomBits(amp.inner().v());
    EXPECT_EQ(amp.OuterProbe(trial % 3, s, trial).size(), 5u);
  }
}

TEST(Thm15Test, AmplifiedReconstruction) {
  util::Rng rng(10);
  const Thm15Amplified amp(16, 3, 4);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);
  const ExactIndicator indicator(&db, amp.OuterEps());
  ConsistencyDecoderOptions options;
  const util::BitVector recovered =
      amp.ReconstructPayload(indicator, options, rng);
  EXPECT_EQ(recovered, payload);
}

TEST(Thm15Test, AmplifiedReconstructionThroughRealSketch) {
  // The sub-constant-eps stage against an actual SUBSAMPLE For-All
  // indicator summary built at eps = 1/(50m).
  util::Rng rng(12);
  const Thm15Amplified amp(16, 3, 4);
  const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
  const core::Database db = amp.BuildDatabase(payload);
  core::SketchParams params;
  params.k = 3;
  params.eps = amp.OuterEps();
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kIndicator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, params, rng);
  const auto ind = algo.LoadIndicator(summary, params, db.num_columns(),
                                      db.num_rows());
  ConsistencyDecoderOptions options;
  const util::BitVector recovered =
      amp.ReconstructPayload(*ind, options, rng);
  EXPECT_LE(recovered.HammingDistance(payload), amp.PayloadBits() / 25);
}

// End-to-end with the error-correcting wrap: encode a message, embed the
// codeword as payload, reconstruct through an exact indicator, decode.
TEST(Thm15Test, EccWrappedPayloadRoundTrip) {
  util::Rng rng(11);
  const Thm15Instance inst(256, 3);  // v = 14, payload 3584 bits
  const ecc::ConcatenatedCode code = ecc::ConcatenatedCode::Small();
  const std::size_t capacity = code.CapacityForBudget(inst.PayloadBits());
  ASSERT_GT(capacity, 0u);
  const util::BitVector message = rng.RandomBits(capacity);
  util::BitVector payload(inst.PayloadBits());
  const util::BitVector codeword = code.Encode(message);
  for (std::size_t i = 0; i < codeword.size(); ++i) {
    payload.Set(i, codeword.Get(i));
  }
  const core::Database db = inst.BuildDatabase(payload);
  const ExactIndicator indicator(&db, Thm15Instance::kEps);
  ConsistencyDecoderOptions options;
  const util::BitVector recovered =
      inst.ReconstructPayload(indicator, options, rng);
  const auto decoded =
      code.Decode(recovered.Slice(0, codeword.size()), capacity);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

}  // namespace
}  // namespace ifsketch::lowerbound
