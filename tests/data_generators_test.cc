#include "data/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/combinatorics.h"
namespace ifsketch::data {
namespace {

TEST(UniformRandomTest, ShapeAndDensity) {
  util::Rng rng(1);
  const core::Database db = UniformRandom(500, 20, 0.3, rng);
  EXPECT_EQ(db.num_rows(), 500u);
  EXPECT_EQ(db.num_columns(), 20u);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < 500; ++i) ones += db.Row(i).Count();
  EXPECT_NEAR(static_cast<double>(ones) / (500.0 * 20.0), 0.3, 0.02);
}

TEST(UniformRandomTest, DensityExtremes) {
  util::Rng rng(2);
  const core::Database zeros = UniformRandom(10, 8, 0.0, rng);
  const core::Database ones = UniformRandom(10, 8, 1.0, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(zeros.Row(i).Count(), 0u);
    EXPECT_EQ(ones.Row(i).Count(), 8u);
  }
}

TEST(PlantedItemsetsTest, PlantedFrequenciesHit) {
  util::Rng rng(3);
  const core::Database db = PlantedItemsets(
      4000, 16, {{{2, 5, 11}, 0.35}}, 0.05, rng);
  const double f = db.Frequency(core::Itemset(16, {2, 5, 11}));
  // Planted at 0.35 plus small background coincidences.
  EXPECT_NEAR(f, 0.35, 0.04);
}

TEST(PlantedItemsetsTest, BackgroundUnaffectedItemsetsRare) {
  util::Rng rng(4);
  const core::Database db = PlantedItemsets(
      2000, 16, {{{2, 5}, 0.3}}, 0.05, rng);
  // An unplanted pair should have frequency ~0.0025.
  EXPECT_LT(db.Frequency(core::Itemset(16, {9, 13})), 0.03);
}

TEST(PowerLawTest, PopularityDecays) {
  util::Rng rng(5);
  const core::Database db =
      PowerLawBaskets(3000, 30, 1.0, 0.8, 0, 0, 0.0, rng);
  const double f0 = db.Frequency(core::Itemset(30, {0}));
  const double f9 = db.Frequency(core::Itemset(30, {9}));
  const double f29 = db.Frequency(core::Itemset(30, {29}));
  EXPECT_GT(f0, f9);
  EXPECT_GT(f9, f29);
  EXPECT_NEAR(f0, 0.8, 0.05);
  EXPECT_NEAR(f9, 0.08, 0.02);
}

TEST(PowerLawTest, BundlesCreateCorrelation) {
  util::Rng rng(6);
  // Low base rate, strong bundles: some triple must be far more frequent
  // than independence predicts.
  const core::Database db =
      PowerLawBaskets(3000, 20, 1.2, 0.1, 2, 3, 0.35, rng);
  double best_lift = 0.0;
  for (const auto& attrs : util::AllSubsets(20, 2)) {
    const core::Itemset pair(20, attrs);
    const double joint = db.Frequency(pair);
    const double indep =
        db.Frequency(core::Itemset(20, {attrs[0]})) *
        db.Frequency(core::Itemset(20, {attrs[1]}));
    if (indep > 1e-6) best_lift = std::max(best_lift, joint / indep);
  }
  EXPECT_GT(best_lift, 3.0);
}

TEST(CensusLikeTest, OneHotInvariant) {
  util::Rng rng(7);
  const std::vector<CategoricalAttribute> attrs = {
      {4, {}}, {3, {0.7, 0.2, 0.1}}, {2, {}}};
  const core::Database db = CensusLike(200, attrs, rng);
  EXPECT_EQ(db.num_columns(), 9u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(db.Row(i).Slice(0, 4).Count(), 1u);
    EXPECT_EQ(db.Row(i).Slice(4, 3).Count(), 1u);
    EXPECT_EQ(db.Row(i).Slice(7, 2).Count(), 1u);
  }
}

TEST(CensusLikeTest, CategoryProbabilitiesRespected) {
  util::Rng rng(8);
  const std::vector<CategoricalAttribute> attrs = {{3, {0.7, 0.2, 0.1}}};
  const core::Database db = CensusLike(5000, attrs, rng);
  EXPECT_NEAR(db.Frequency(core::Itemset(3, {0})), 0.7, 0.03);
  EXPECT_NEAR(db.Frequency(core::Itemset(3, {1})), 0.2, 0.03);
  EXPECT_NEAR(db.Frequency(core::Itemset(3, {2})), 0.1, 0.03);
}

TEST(CensusLikeTest, MutuallyExclusiveCategories) {
  util::Rng rng(9);
  const core::Database db = CensusLike(300, {{3, {}}}, rng);
  // Two categories of one attribute never co-occur.
  EXPECT_DOUBLE_EQ(db.Frequency(core::Itemset(3, {0, 1})), 0.0);
  EXPECT_DOUBLE_EQ(db.Frequency(core::Itemset(3, {1, 2})), 0.0);
}

}  // namespace
}  // namespace ifsketch::data
