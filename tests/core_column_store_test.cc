#include "core/column_store.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "data/generators.h"
#include "mining/apriori.h"
#include "util/combinatorics.h"

namespace ifsketch::core {
namespace {

TEST(ColumnStoreTest, MatchesRowStoreExhaustively) {
  util::Rng rng(1);
  const Database db = data::UniformRandom(200, 10, 0.45, rng);
  const ColumnStore cs(db);
  EXPECT_EQ(cs.num_rows(), 200u);
  EXPECT_EQ(cs.num_columns(), 10u);
  for (std::size_t k = 0; k <= 4; ++k) {
    for (const auto& attrs : util::AllSubsets(10, k)) {
      const Itemset t(10, attrs);
      EXPECT_EQ(cs.SupportCount(t), db.SupportCount(t));
      EXPECT_DOUBLE_EQ(cs.Frequency(t), db.Frequency(t));
    }
  }
}

TEST(ColumnStoreTest, EmptyItemsetIsAllRows) {
  util::Rng rng(2);
  const Database db = data::UniformRandom(33, 5, 0.2, rng);
  const ColumnStore cs(db);
  EXPECT_EQ(cs.SupportCount(Itemset(5)), 33u);
  EXPECT_DOUBLE_EQ(cs.Frequency(Itemset(5)), 1.0);
}

TEST(ColumnStoreTest, EmptyDatabase) {
  const Database db(0, 4);
  const ColumnStore cs(db);
  EXPECT_EQ(cs.Frequency(Itemset(4, {0})), 0.0);
}

TEST(ColumnStoreTest, ColumnsMatchSource) {
  util::Rng rng(3);
  const Database db = data::UniformRandom(70, 8, 0.5, rng);
  const ColumnStore cs(db);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(cs.Column(j), db.Column(j));
  }
}

TEST(ColumnStoreTest, DrivesMinerIdentically) {
  util::Rng rng(4);
  const Database db =
      data::PowerLawBaskets(600, 16, 1.0, 0.5, 3, 3, 0.25, rng);
  const ColumnStore cs(db);
  mining::AprioriOptions opt;
  opt.min_frequency = 0.105;
  opt.max_size = 3;
  const auto via_rows = mining::MineDatabase(db, opt);
  const auto via_cols = mining::MineFrequentItemsets(
      16, [&cs](const Itemset& t) { return cs.Frequency(t); }, opt);
  ASSERT_EQ(via_rows.size(), via_cols.size());
  for (std::size_t i = 0; i < via_rows.size(); ++i) {
    EXPECT_EQ(via_rows[i].itemset, via_cols[i].itemset);
    EXPECT_DOUBLE_EQ(via_rows[i].frequency, via_cols[i].frequency);
  }
}

TEST(ColumnStoreTest, UniverseMismatchDies) {
  const Database db(4, 6);
  const ColumnStore cs(db);
  EXPECT_DEATH(cs.SupportCount(Itemset(7, {0})), "");
}

}  // namespace
}  // namespace ifsketch::core
