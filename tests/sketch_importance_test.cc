#include "sketch/importance_sample.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "sketch/subsample.h"
#include "util/combinatorics.h"
#include "util/stats.h"

namespace ifsketch::sketch {
namespace {

core::SketchParams Params(double eps = 0.05) {
  core::SketchParams p;
  p.k = 3;
  p.eps = eps;
  p.delta = 0.05;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

TEST(ImportanceSampleTest, SizeMatchesPrediction) {
  util::Rng rng(1);
  const core::Database db = data::UniformRandom(500, 12, 0.3, rng);
  ImportanceSampleSketch algo;
  const auto p = Params();
  const auto summary = algo.Build(db, p, rng);
  EXPECT_EQ(summary.size(), algo.PredictedSizeBits(500, 12, p));
}

TEST(ImportanceSampleTest, UniformWeightsMatchSubsampleDistribution) {
  // With constant weights the estimator must behave like SUBSAMPLE.
  util::Rng rng(2);
  const core::Database db =
      data::PlantedItemsets(2000, 10, {{{1, 4}, 0.3}}, 0.1, rng);
  ImportanceSampleSketch algo([](const util::BitVector&) { return 1.0; });
  const auto p = Params();
  const core::Itemset t(10, {1, 4});
  util::RunningStat errs;
  for (int trial = 0; trial < 30; ++trial) {
    const auto summary = algo.Build(db, p, rng);
    const auto est = algo.LoadEstimator(summary, p, 10, 2000);
    errs.Add(std::fabs(est->EstimateFrequency(t) - db.Frequency(t)));
  }
  EXPECT_LT(errs.Mean(), p.eps);
}

TEST(ImportanceSampleTest, EstimatorIsUnbiasedOnAverage) {
  util::Rng rng(3);
  const core::Database db =
      data::PowerLawBaskets(3000, 12, 1.0, 0.4, 2, 3, 0.2, rng);
  ImportanceSampleSketch algo;  // popcount weights
  const auto p = Params();
  const core::Itemset t(12, {0, 1});
  const double truth = db.Frequency(t);
  util::RunningStat estimates;
  for (int trial = 0; trial < 60; ++trial) {
    const auto summary = algo.Build(db, p, rng);
    const auto est = algo.LoadEstimator(summary, p, 12, 3000);
    estimates.Add(est->EstimateFrequency(t));
  }
  EXPECT_NEAR(estimates.Mean(), truth, 0.02);
}

TEST(ImportanceSampleTest, ReducesVarianceForRareDenseItemsets) {
  // A rare itemset carried by dense rows: popcount weighting samples its
  // supporting rows more often, shrinking the estimator's variance
  // relative to uniform sampling at the same size.
  util::Rng rng(4);
  core::Database db = data::UniformRandom(8000, 16, 0.05, rng);
  // Plant a dense pattern in 1% of rows.
  const std::vector<std::size_t> pattern = {2, 5, 8, 11, 14};
  for (std::size_t i = 0; i < db.num_rows(); i += 100) {
    for (std::size_t a : pattern) db.Set(i, a, true);
  }
  const core::Itemset t(16, pattern);
  const double truth = db.Frequency(t);

  const auto p = Params(0.05);
  ImportanceSampleSketch weighted;
  SubsampleSketch uniform;
  util::RunningStat err_weighted, err_uniform;
  for (int trial = 0; trial < 60; ++trial) {
    {
      const auto s = weighted.Build(db, p, rng);
      const auto est = weighted.LoadEstimator(s, p, 16, db.num_rows());
      err_weighted.Add(std::fabs(est->EstimateFrequency(t) - truth));
    }
    {
      const auto s = uniform.Build(db, p, rng);
      const auto est = uniform.LoadEstimator(s, p, 16, db.num_rows());
      err_uniform.Add(std::fabs(est->EstimateFrequency(t) - truth));
    }
  }
  EXPECT_LT(err_weighted.Mean(), err_uniform.Mean());
}

TEST(ImportanceSampleTest, EstimateStaysInUnitInterval) {
  util::Rng rng(5);
  const core::Database db = data::UniformRandom(300, 8, 0.7, rng);
  ImportanceSampleSketch algo;
  const auto p = Params(0.1);
  const auto summary = algo.Build(db, p, rng);
  const auto est = algo.LoadEstimator(summary, p, 8, 300);
  for (const auto& attrs : util::AllSubsets(8, 2)) {
    const double f = est->EstimateFrequency(core::Itemset(8, attrs));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

}  // namespace
}  // namespace ifsketch::sketch
