// Deterministic byte-mutation fuzzing of the two binary decoders.
//
// Both ReadSketch (sketch/sketch_file.h) and the wire-protocol codec
// (serve/protocol.h) follow the validate-everything discipline: every
// header field checked before any body read, declared lengths capped,
// bodies consumed exactly. This suite regression-proofs that discipline
// with a seeded mutation fuzzer: start from valid bytes, apply random
// flips / overwrites / truncations / splices (~10k mutants per decoder
// per run), and require that decoding
//
//   (a) never crashes, over-reads or aborts, and
//   (b) either cleanly rejects (nullopt) or yields a value that survives
//       a re-encode/re-decode round trip unchanged -- a decoder that
//       "repairs" bytes into an unstable value is treated as a bug.
//
// The RNG is seeded, so a failure reproduces exactly; bump the seeds to
// widen coverage rather than re-rolling them per run.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "sketch/sketch_file.h"
#include "util/random.h"

namespace ifsketch {
namespace {

// Applies 1..4 random mutations: bit flip, byte overwrite, truncation,
// or a small splice (insert/erase), all position-uniform.
std::string Mutate(const std::string& bytes, util::Rng& rng) {
  std::string m = bytes;
  const std::size_t mutations = 1 + rng.UniformInt(4);
  for (std::size_t k = 0; k < mutations && !m.empty(); ++k) {
    switch (rng.UniformInt(5)) {
      case 0: {  // flip one bit
        const std::size_t i = rng.UniformInt(m.size());
        m[i] = static_cast<char>(m[i] ^ (1 << rng.UniformInt(8)));
        break;
      }
      case 1: {  // overwrite one byte
        m[rng.UniformInt(m.size())] =
            static_cast<char>(rng.UniformInt(256));
        break;
      }
      case 2: {  // truncate
        m.resize(rng.UniformInt(m.size() + 1));
        break;
      }
      case 3: {  // insert a random byte
        m.insert(m.begin() +
                     static_cast<std::ptrdiff_t>(rng.UniformInt(m.size() + 1)),
                 static_cast<char>(rng.UniformInt(256)));
        break;
      }
      default: {  // erase a byte
        m.erase(m.begin() +
                static_cast<std::ptrdiff_t>(rng.UniformInt(m.size())));
        break;
      }
    }
  }
  return m;
}

// ------------------------------------------------------------ IFSK files

sketch::SketchFile ValidSketchFile() {
  sketch::SketchFile file;
  file.algorithm = "SUBSAMPLE";
  file.params.k = 3;
  file.params.eps = 0.1;
  file.params.delta = 0.1;
  file.params.scope = core::Scope::kForAll;
  file.params.answer = core::Answer::kEstimator;
  file.n = 500;
  file.d = 16;
  util::Rng rng(31337);
  file.summary = rng.RandomBits(40 * 16);
  return file;
}

bool SameSketchFile(const sketch::SketchFile& a,
                    const sketch::SketchFile& b) {
  // Double fields compared bitwise-exact via ==: the codec moves raw
  // 8-byte values, so a round trip must preserve every bit (NaN payloads
  // cannot appear -- ValidSketchParams rejects non-finite eps/delta).
  return a.algorithm == b.algorithm && a.params.k == b.params.k &&
         a.params.eps == b.params.eps && a.params.delta == b.params.delta &&
         a.params.scope == b.params.scope &&
         a.params.answer == b.params.answer && a.n == b.n && a.d == b.d &&
         a.summary == b.summary;
}

TEST(SketchFileFuzzTest, MutantsNeverCrashAndRoundTripOrReject) {
  const sketch::SketchFile valid = ValidSketchFile();
  std::ostringstream valid_out;
  ASSERT_TRUE(sketch::WriteSketch(valid_out, valid));
  const std::string valid_bytes = valid_out.str();

  // Sanity: the unmutated bytes parse back to the same file.
  {
    std::istringstream in(valid_bytes);
    const auto parsed = sketch::ReadSketch(in);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(SameSketchFile(*parsed, valid));
  }

  util::Rng rng(20260731);
  std::size_t accepted = 0;
  constexpr std::size_t kMutants = 10000;
  for (std::size_t t = 0; t < kMutants; ++t) {
    const std::string mutant = Mutate(valid_bytes, rng);
    std::istringstream in(mutant);
    const auto parsed = sketch::ReadSketch(in);
    if (!parsed.has_value()) continue;  // clean rejection
    ++accepted;
    // Accepted mutants must re-serialize and re-parse to the same value:
    // whatever the decoder accepted, it accepted consistently.
    std::ostringstream re_out;
    ASSERT_TRUE(sketch::WriteSketch(re_out, *parsed)) << "mutant " << t;
    std::istringstream re_in(re_out.str());
    const auto reparsed = sketch::ReadSketch(re_in);
    ASSERT_TRUE(reparsed.has_value()) << "mutant " << t;
    ASSERT_TRUE(SameSketchFile(*parsed, *reparsed)) << "mutant " << t;
  }
  // Some mutants survive (e.g. payload-bit flips are valid files); if
  // none did, the fuzzer is likely broken, not the decoder strict.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, kMutants);
}

// ------------------------------------------------------- protocol frames

std::vector<std::string> ValidFrames() {
  using namespace serve;
  std::vector<std::string> frames;

  QueryRequest request;
  request.sketch = "golden";
  request.queries = {{0, 3, 7}, {1}, {}, {2, 5, 9, 11}};
  std::string body;
  EXPECT_TRUE(EncodeQueryRequest(request, &body));
  std::string frame;
  EXPECT_TRUE(EncodeFrame(Opcode::kEstimate, 0, body, &frame));
  frames.push_back(frame);
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kAreFrequent, 0, body, &frame));
  frames.push_back(frame);

  body.clear();
  EncodeEstimateReply({0.25, 0.5, 1.0, 0.125}, &body);
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kEstimateReply, 0, body, &frame));
  frames.push_back(frame);

  body.clear();
  EncodeAreFrequentReply({true, false, true, true, false, false, true, false,
                          true},
                         &body);
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kAreFrequentReply, 0, body, &frame));
  frames.push_back(frame);

  body.clear();
  EXPECT_TRUE(EncodeInfoRequest("golden", &body));
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kInfo, 0, body, &frame));
  frames.push_back(frame);

  SketchInfo info;
  info.algorithm = "SUBSAMPLE";
  info.k = 3;
  info.eps = 0.1;
  info.delta = 0.1;
  info.scope = 0;
  info.answer = 1;
  info.n = 500;
  info.d = 16;
  info.summary_bits = 640;
  body.clear();
  EncodeInfoReply(info, &body);
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kInfoReply, 0, body, &frame));
  frames.push_back(frame);

  body.clear();
  EncodeRefreshRequest("stream", &body);
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kRefresh, 0, body, &frame));
  frames.push_back(frame);

  SubscribeRequest subscribe;
  subscribe.sketch = "stream";
  subscribe.min_epoch = 3;
  subscribe.timeout_ms = 2500;
  body.clear();
  EXPECT_TRUE(EncodeSubscribeRequest(subscribe, &body));
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kSubscribe, 0, body, &frame));
  frames.push_back(frame);

  SnapshotInfo snapshot;
  snapshot.epoch = 4;
  snapshot.rows_seen = 40000;
  body.clear();
  EncodeSnapshotReply(snapshot, &body);
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kSubscribeReply, 0, body, &frame));
  frames.push_back(frame);

  body.clear();
  EXPECT_TRUE(EncodeHealthReply(
      {PodHealthInfo{0, 0, 2, 4096}, PodHealthInfo{2, 5, 0, 0}}, &body));
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kHealthReply, 0, body, &frame));
  frames.push_back(frame);

  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kHealth, 0, "", &frame));
  frames.push_back(frame);

  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kStats, 0, "", &frame));
  frames.push_back(frame);

  StatsReply stats;
  stats.counters.push_back({"serve_requests_total{op=\"estimate\"}", 7});
  stats.gauges.push_back({"serve_pod_inflight{pod=\"0\"}", 1});
  StatsHistogram stats_hist;
  stats_hist.name = "serve_request_ns{op=\"estimate\"}";
  stats_hist.count = 3;
  stats_hist.sum = 3000;
  stats_hist.max = 1500;
  stats_hist.buckets = {0, 1, 2};
  stats.histograms.push_back(std::move(stats_hist));
  body.clear();
  EXPECT_TRUE(EncodeStatsReply(stats, &body));
  frame.clear();
  EXPECT_TRUE(EncodeFrame(Opcode::kStatsReply, 0, body, &frame));
  frames.push_back(frame);

  frame.clear();
  EncodeError(Status::kUnknownSketch, "no such sketch", &frame);
  frames.push_back(frame);
  return frames;
}

// Decodes a mutated frame buffer the way ServeConnection would: header
// first, then -- only if the header validates and the declared body is
// fully present -- the opcode's body decoder on exactly that many bytes.
void DecodeLikeServer(const std::string& bytes) {
  using namespace serve;
  const auto header = DecodeFrameHeader(
      bytes.data(), std::min(bytes.size(), kFrameHeaderBytes));
  if (!header.has_value()) return;
  if (bytes.size() < kFrameHeaderBytes + header->body_length) return;
  const std::string_view body(bytes.data() + kFrameHeaderBytes,
                              header->body_length);
  switch (header->opcode) {
    case Opcode::kEstimate:
    case Opcode::kAreFrequent: {
      const auto request = DecodeQueryRequest(body);
      if (request.has_value()) {
        // Round trip: a request the decoder accepts must re-encode and
        // re-decode to the same queries.
        std::string re_body;
        ASSERT_TRUE(EncodeQueryRequest(*request, &re_body));
        const auto again = DecodeQueryRequest(re_body);
        ASSERT_TRUE(again.has_value());
        ASSERT_EQ(again->sketch, request->sketch);
        ASSERT_EQ(again->queries, request->queries);
      }
      break;
    }
    case Opcode::kEstimateReply:
      DecodeEstimateReply(body);
      break;
    case Opcode::kAreFrequentReply:
      DecodeAreFrequentReply(body);
      break;
    case Opcode::kInfo:
      DecodeInfoRequest(body);
      break;
    case Opcode::kInfoReply:
      DecodeInfoReply(body);
      break;
    case Opcode::kRefresh:
      DecodeRefreshRequest(body);
      break;
    case Opcode::kSubscribe: {
      const auto request = DecodeSubscribeRequest(body);
      if (request.has_value()) {
        std::string re_body;
        ASSERT_TRUE(EncodeSubscribeRequest(*request, &re_body));
        const auto again = DecodeSubscribeRequest(re_body);
        ASSERT_TRUE(again.has_value());
        ASSERT_EQ(again->sketch, request->sketch);
        ASSERT_EQ(again->min_epoch, request->min_epoch);
        ASSERT_EQ(again->timeout_ms, request->timeout_ms);
      }
      break;
    }
    case Opcode::kRefreshReply:
    case Opcode::kSubscribeReply:
      DecodeSnapshotReply(body);
      break;
    case Opcode::kHealth:
      // A health request carries no body; nothing to decode.
      break;
    case Opcode::kHealthReply: {
      const auto pods = DecodeHealthReply(body);
      if (pods.has_value()) {
        std::string re_body;
        ASSERT_TRUE(EncodeHealthReply(*pods, &re_body));
        ASSERT_EQ(re_body, std::string(body));
      }
      break;
    }
    case Opcode::kStats:
      // A stats request carries no body; nothing to decode.
      break;
    case Opcode::kStatsReply: {
      const auto stats = DecodeStatsReply(body);
      if (stats.has_value()) {
        // Round trip: an accepted reply must re-encode byte-identically.
        std::string re_body;
        ASSERT_TRUE(EncodeStatsReply(*stats, &re_body));
        ASSERT_EQ(re_body, std::string(body));
      }
      break;
    }
    case Opcode::kError:
      DecodeErrorMessage(body);
      break;
  }
}

TEST(ProtocolFuzzTest, MutantFramesNeverCrashDecode) {
  const auto frames = ValidFrames();
  util::Rng rng(20260732);
  constexpr std::size_t kMutantsPerFrame = 1500;  // x10 frames ~ 15k total
  for (std::size_t f = 0; f < frames.size(); ++f) {
    for (std::size_t t = 0; t < kMutantsPerFrame; ++t) {
      DecodeLikeServer(Mutate(frames[f], rng));
    }
  }
  // Plus pure noise buffers that never were a frame.
  for (std::size_t t = 0; t < 500; ++t) {
    std::string noise(rng.UniformInt(64), '\0');
    for (auto& c : noise) c = static_cast<char>(rng.UniformInt(256));
    DecodeLikeServer(noise);
  }
}

// ----------------------------------- incremental decoder (FrameDecoder)

/// The one-shot reference for a whole byte stream: what the blocking
/// ReadFrame loop would produce reading it to EOF -- the frames in
/// order, then how the stream ends (clean boundary, invalid header, or
/// EOF inside a frame, which ReadFrame reports as a malformed hangup).
struct StreamVerdict {
  enum class End { kClean, kMalformed, kMidFrame };
  std::vector<serve::Frame> frames;
  End end = End::kClean;
};

StreamVerdict ReferenceParse(const std::string& bytes) {
  using namespace serve;
  StreamVerdict verdict;
  std::size_t pos = 0;
  for (;;) {
    if (bytes.size() - pos == 0) break;  // clean end at a frame boundary
    if (bytes.size() - pos < kFrameHeaderBytes) {
      verdict.end = StreamVerdict::End::kMidFrame;
      break;
    }
    const auto header =
        DecodeFrameHeader(bytes.data() + pos, kFrameHeaderBytes);
    if (!header.has_value()) {
      verdict.end = StreamVerdict::End::kMalformed;
      break;
    }
    if (bytes.size() - pos - kFrameHeaderBytes < header->body_length) {
      verdict.end = StreamVerdict::End::kMidFrame;
      break;
    }
    Frame frame;
    frame.header = *header;
    frame.body = bytes.substr(pos + kFrameHeaderBytes, header->body_length);
    verdict.frames.push_back(std::move(frame));
    pos += kFrameHeaderBytes + header->body_length;
  }
  return verdict;
}

/// Feeds `bytes` to a fresh FrameDecoder in chunks cut at `boundaries`
/// (sorted offsets; implicit final boundary at the end) and checks the
/// result against the one-shot reference: same frames, same terminal
/// verdict, no matter where the stream was split.
void DriveAndCompare(const std::string& bytes,
                     const std::vector<std::size_t>& boundaries,
                     const StreamVerdict& want) {
  using namespace serve;
  FrameDecoder decoder;
  std::vector<Frame> frames;
  bool malformed = false;
  std::size_t pos = 0;
  for (std::size_t b = 0; b <= boundaries.size() && !malformed; ++b) {
    const std::size_t end =
        b < boundaries.size() ? boundaries[b] : bytes.size();
    while (pos < end) {
      std::size_t consumed = 0;
      const FrameDecoder::Step step =
          decoder.Consume(bytes.data() + pos, end - pos, &consumed);
      pos += consumed;
      if (step == FrameDecoder::Step::kFrame) {
        frames.push_back(decoder.take());
      } else if (step == FrameDecoder::Step::kMalformed) {
        malformed = true;
        break;
      } else {
        break;  // kNeedMore always consumes the whole chunk
      }
    }
    pos = std::max(pos, std::min(end, bytes.size()));
  }

  // Exactly the frames the one-shot parse accepts, in order...
  ASSERT_EQ(frames.size(), want.frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_EQ(frames[i].header.opcode, want.frames[i].header.opcode);
    ASSERT_EQ(frames[i].header.status, want.frames[i].header.status);
    ASSERT_EQ(frames[i].body, want.frames[i].body);
  }
  // ...and exactly the same terminal verdict.
  switch (want.end) {
    case StreamVerdict::End::kClean:
      ASSERT_FALSE(malformed);
      ASSERT_FALSE(decoder.mid_frame());
      break;
    case StreamVerdict::End::kMalformed:
      ASSERT_TRUE(malformed);
      break;
    case StreamVerdict::End::kMidFrame:
      ASSERT_FALSE(malformed);
      ASSERT_TRUE(decoder.mid_frame());
      break;
  }
}

TEST(ProtocolFuzzTest, IncrementalDecoderMatchesOneShotAtEverySplitPoint) {
  const auto valid = ValidFrames();
  std::string stream;
  for (const auto& frame : valid) stream += frame;
  const StreamVerdict want = ReferenceParse(stream);
  ASSERT_EQ(want.frames.size(), valid.size());
  ASSERT_EQ(want.end, StreamVerdict::End::kClean);

  // Every two-chunk split of the full valid stream: in particular every
  // header-boundary, intra-header, and intra-body cut.
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    DriveAndCompare(stream, {split}, want);
  }
}

TEST(ProtocolFuzzTest, IncrementalDecoderMatchesOneShotOnMutantStreams) {
  const auto valid = ValidFrames();
  util::Rng rng(20260808);
  constexpr std::size_t kStreams = 2000;
  std::size_t malformed_streams = 0;
  std::size_t midframe_streams = 0;
  for (std::size_t t = 0; t < kStreams; ++t) {
    // 1..6 frames, each mutated with probability ~1/3, concatenated;
    // sometimes truncated or with trailing noise -- valid prefixes with
    // a hostile tail are exactly what a reactor connection sees.
    std::string stream;
    const std::size_t count = 1 + rng.UniformInt(6);
    for (std::size_t f = 0; f < count; ++f) {
      const std::string& frame = valid[rng.UniformInt(valid.size())];
      stream += rng.UniformInt(3) == 0 ? Mutate(frame, rng) : frame;
    }
    if (rng.UniformInt(4) == 0 && !stream.empty()) {
      stream.resize(rng.UniformInt(stream.size()));
    }
    if (rng.UniformInt(4) == 0) {
      for (std::size_t i = 0, n = rng.UniformInt(20); i < n; ++i) {
        stream.push_back(static_cast<char>(rng.UniformInt(256)));
      }
    }
    const StreamVerdict want = ReferenceParse(stream);
    if (want.end == StreamVerdict::End::kMalformed) ++malformed_streams;
    if (want.end == StreamVerdict::End::kMidFrame) ++midframe_streams;

    // Whole-buffer, byte-at-a-time, and random chunking must all agree
    // with the one-shot parse.
    DriveAndCompare(stream, {}, want);
    std::vector<std::size_t> every_byte;
    for (std::size_t i = 1; i < stream.size(); ++i) every_byte.push_back(i);
    DriveAndCompare(stream, every_byte, want);
    std::vector<std::size_t> random_cuts;
    for (std::size_t i = 0; i < stream.size();) {
      i += 1 + rng.UniformInt(17);
      if (i < stream.size()) random_cuts.push_back(i);
    }
    DriveAndCompare(stream, random_cuts, want);
  }
  // The corpus must actually cover all three terminal verdicts.
  EXPECT_GT(malformed_streams, 0u);
  EXPECT_GT(midframe_streams, 0u);
  EXPECT_LT(malformed_streams + midframe_streams, kStreams);
}

}  // namespace
}  // namespace ifsketch
