#include "engine.h"

#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "data/generators.h"
#include "util/random.h"

namespace ifsketch {
namespace {

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

core::Database TestDb(util::Rng& rng) {
  return data::PowerLawBaskets(1000, 12, 1.0, 0.5, 4, 3, 0.2, rng);
}

TEST(EngineTest, BuildRejectsUnknownAlgorithm) {
  util::Rng rng(1);
  const core::Database db = TestDb(rng);
  EXPECT_FALSE(Engine::Build(db, "NO-SUCH", Params(), rng).has_value());
  EXPECT_FALSE(Engine::Build(db, "", Params(), rng).has_value());
}

TEST(EngineTest, BuildRejectsInvalidParams) {
  util::Rng rng(1);
  const core::Database db = TestDb(rng);
  core::SketchParams p = Params();
  p.k = 0;
  EXPECT_FALSE(Engine::Build(db, "SUBSAMPLE", p, rng).has_value());
  p = Params();
  p.eps = -0.1;
  EXPECT_FALSE(Engine::Build(db, "SUBSAMPLE", p, rng).has_value());
  p = Params();
  p.delta = 1.0;
  EXPECT_FALSE(Engine::Build(db, "SUBSAMPLE", p, rng).has_value());
}

TEST(EngineTest, FromFileRejectsPayloadOfTheWrongSize) {
  util::Rng rng(1);
  const core::Database db = TestDb(rng);
  const auto built = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  ASSERT_TRUE(built.has_value());
  sketch::SketchFile file = built->file();
  // A header-valid file whose payload is not what SUBSAMPLE emits for
  // this shape must be refused at open, not abort inside a loader later.
  file.summary = util::BitVector(8);
  EXPECT_FALSE(Engine::FromFile(file).has_value());
}

TEST(EngineTest, KnownAlgorithmsListsBuiltins) {
  const auto names = Engine::KnownAlgorithms();
  EXPECT_GE(names.size(), 6u);
}

TEST(EngineTest, BuildSaveOpenQueryRoundTrip) {
  util::Rng rng(2);
  const core::Database db = TestDb(rng);
  for (const char* name :
       {"SUBSAMPLE", "RELEASE-DB", "RELEASE-ANSWERS", "IMPORTANCE-SAMPLE",
        "MEDIAN-BOOST(SUBSAMPLE)"}) {
    const auto built = Engine::Build(db, name, Params(), rng);
    ASSERT_TRUE(built.has_value()) << name;
    EXPECT_EQ(built->algorithm(), name);
    EXPECT_EQ(built->n(), db.num_rows());
    EXPECT_EQ(built->d(), db.num_columns());

    const std::string path =
        testing::TempDir() + "/engine_test_" + std::to_string(rng.Next());
    ASSERT_TRUE(built->Save(path)) << name;

    // Open resolves the algorithm from the file alone -- the point of
    // the registry redesign.
    const auto opened = Engine::Open(path);
    ASSERT_TRUE(opened.has_value()) << name;
    EXPECT_EQ(opened->algorithm(), name);
    EXPECT_EQ(opened->summary_bits(), built->summary_bits());

    const core::Itemset t(db.num_columns(), {2, 7});
    EXPECT_EQ(opened->estimate(t), built->estimate(t)) << name;
    EXPECT_EQ(opened->is_frequent(t), built->is_frequent(t)) << name;
  }
}

TEST(EngineTest, OpenFailsOnMissingOrCorruptFiles) {
  EXPECT_FALSE(Engine::Open("/nonexistent/path.sk").has_value());
  const std::string garbage = testing::TempDir() + "/engine_garbage.sk";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not an IFSK file";
  }
  EXPECT_FALSE(Engine::Open(garbage).has_value());
}

TEST(EngineTest, OpenFailsOnUnregisteredAlgorithmName) {
  util::Rng rng(3);
  const core::Database db = TestDb(rng);
  const auto built = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  ASSERT_TRUE(built.has_value());
  sketch::SketchFile file = built->file();
  file.algorithm = "PROPRIETARY-V2";  // a producer we don't know
  const std::string path = testing::TempDir() + "/engine_unknown_algo.sk";
  ASSERT_TRUE(sketch::SaveSketchFile(path, file));
  // The file itself is valid...
  ASSERT_TRUE(sketch::LoadSketchFile(path).has_value());
  // ...but the engine cannot resolve a query procedure for it.
  EXPECT_FALSE(Engine::Open(path).has_value());
  EXPECT_FALSE(Engine::FromFile(file).has_value());
}

TEST(EngineTest, EstimateManyMatchesScalarEstimates) {
  util::Rng rng(4);
  const core::Database db = TestDb(rng);
  const auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  ASSERT_TRUE(engine.has_value());
  std::vector<core::Itemset> queries;
  for (std::size_t a = 0; a + 1 < db.num_columns(); ++a) {
    queries.emplace_back(db.num_columns(),
                         std::vector<std::size_t>{a, a + 1});
  }
  std::vector<double> batched;
  engine->estimate_many(queries, &batched);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(engine->estimate(queries[i]), batched[i]) << i;
  }
  std::vector<bool> frequent;
  engine->are_frequent(queries, &frequent);
  ASSERT_EQ(frequent.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(engine->is_frequent(queries[i]), frequent[i]) << i;
  }
}

TEST(EngineTest, MineFindsPlantedItemset) {
  util::Rng rng(5);
  const std::size_t d = 10;
  const core::Database db = data::PlantedItemsets(
      4000, d, {{{1, 5}, 0.4}, {{2, 8}, 0.3}}, 0.05, rng);
  const auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  ASSERT_TRUE(engine.has_value());
  mining::AprioriOptions opt;
  opt.min_frequency = 0.2;
  opt.max_size = 2;
  const auto mined = engine->mine(opt);
  bool found = false;
  for (const auto& fi : mined) {
    if (fi.itemset == core::Itemset(d, {1, 5})) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EngineTest, SupportsQuerySizeReflectsAlgorithmLimits) {
  util::Rng rng(7);
  const core::Database db = TestDb(rng);
  // RELEASE-ANSWERS stores only the size-k answers (k=2 here); any other
  // size would alias into a wrong table slot, so it must be refused
  // rather than silently mis-answered.
  const auto answers = Engine::Build(db, "RELEASE-ANSWERS", Params(), rng);
  ASSERT_TRUE(answers.has_value());
  EXPECT_TRUE(answers->supports_query_size(2));
  EXPECT_FALSE(answers->supports_query_size(1));
  EXPECT_FALSE(answers->supports_query_size(3));

  // Sample-backed sketches answer any size; MEDIAN-BOOST delegates to
  // its inner algorithm.
  for (const char* name : {"SUBSAMPLE", "RELEASE-DB", "IMPORTANCE-SAMPLE",
                           "MEDIAN-BOOST(SUBSAMPLE)"}) {
    const auto engine = Engine::Build(db, name, Params(), rng);
    ASSERT_TRUE(engine.has_value()) << name;
    for (std::size_t size : {1, 2, 3}) {
      EXPECT_TRUE(engine->supports_query_size(size)) << name << " " << size;
    }
  }
}

TEST(EngineTest, InfoReportsAlgorithmAndEnvelope) {
  util::Rng rng(6);
  const core::Database db = TestDb(rng);
  const auto engine =
      Engine::Build(db, "MEDIAN-BOOST(SUBSAMPLE)", Params(), rng);
  ASSERT_TRUE(engine.has_value());
  const std::string info = engine->info();
  EXPECT_NE(info.find("MEDIAN-BOOST(SUBSAMPLE)"), std::string::npos);
  EXPECT_NE(info.find("RELEASE-ANSWERS"), std::string::npos);
  EXPECT_NE(info.find("for-all"), std::string::npos);
  const auto env = engine->envelope();
  EXPECT_GT(env.winner_bits, 0u);
}

}  // namespace
}  // namespace ifsketch
