#include "util/bitio.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ifsketch::util {
namespace {

TEST(BitIoTest, EmptyWriterYieldsEmptyVector) {
  BitWriter w;
  EXPECT_EQ(w.BitCount(), 0u);
  EXPECT_EQ(w.Finish().size(), 0u);
}

TEST(BitIoTest, SingleBitsRoundTrip) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBit(true);
  const BitVector bits = w.Finish();
  BitReader r2(bits);
  EXPECT_TRUE(r2.ReadBit());
  EXPECT_FALSE(r2.ReadBit());
  EXPECT_TRUE(r2.ReadBit());
  EXPECT_EQ(r2.Remaining(), 0u);
}

TEST(BitIoTest, UintRoundTripVariousWidths) {
  BitWriter w;
  w.WriteUint(0, 1);
  w.WriteUint(1, 1);
  w.WriteUint(5, 3);
  w.WriteUint(1023, 10);
  w.WriteUint(0xdeadbeefcafef00dULL, 64);
  const BitVector bits = w.Finish();
  EXPECT_EQ(bits.size(), 1u + 1 + 3 + 10 + 64);
  BitReader r(bits);
  EXPECT_EQ(r.ReadUint(1), 0u);
  EXPECT_EQ(r.ReadUint(1), 1u);
  EXPECT_EQ(r.ReadUint(3), 5u);
  EXPECT_EQ(r.ReadUint(10), 1023u);
  EXPECT_EQ(r.ReadUint(64), 0xdeadbeefcafef00dULL);
}

TEST(BitIoTest, WriteBitsRoundTrip) {
  Rng rng(3);
  const BitVector payload = rng.RandomBits(137);
  BitWriter w;
  w.WriteUint(42, 7);
  w.WriteBits(payload);
  const BitVector bits = w.Finish();
  BitReader r(bits);
  EXPECT_EQ(r.ReadUint(7), 42u);
  EXPECT_EQ(r.ReadBits(137), payload);
}

TEST(BitIoTest, QuantizedFrequencyWithinResolution) {
  for (const double f : {0.0, 0.1, 0.25, 0.333, 0.5, 0.9, 1.0}) {
    for (const int width : {4, 8, 16, 24}) {
      BitWriter w;
      w.WriteQuantized(f, width);
      const BitVector bits = w.Finish();
      BitReader r(bits);
      const double back = r.ReadQuantized(width);
      const double resolution = 1.0 / ((1ull << width) - 1);
      EXPECT_NEAR(back, f, resolution) << "f=" << f << " width=" << width;
    }
  }
}

TEST(BitIoTest, BitCountTracksWrites) {
  BitWriter w;
  w.WriteBit(true);
  EXPECT_EQ(w.BitCount(), 1u);
  w.WriteUint(0, 13);
  EXPECT_EQ(w.BitCount(), 14u);
  w.WriteQuantized(0.5, 8);
  EXPECT_EQ(w.BitCount(), 22u);
}

TEST(BitIoTest, ReaderPositionAdvances) {
  BitWriter w;
  w.WriteUint(99, 20);
  const BitVector bits = w.Finish();
  BitReader r(bits);
  EXPECT_EQ(r.Position(), 0u);
  r.ReadUint(5);
  EXPECT_EQ(r.Position(), 5u);
  EXPECT_EQ(r.Remaining(), 15u);
}

TEST(BitIoTest, RandomizedMixedRoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    BitWriter w;
    std::vector<std::uint64_t> values;
    std::vector<int> widths;
    const int fields = 1 + static_cast<int>(rng.UniformInt(20));
    for (int f = 0; f < fields; ++f) {
      const int width = 1 + static_cast<int>(rng.UniformInt(63));
      const std::uint64_t value =
          rng.Next() & ((width == 64) ? ~0ull : ((1ull << width) - 1));
      w.WriteUint(value, width);
      values.push_back(value);
      widths.push_back(width);
    }
    const BitVector bits = w.Finish();
    BitReader r(bits);
    for (int f = 0; f < fields; ++f) {
      EXPECT_EQ(r.ReadUint(widths[f]), values[f]);
    }
    EXPECT_EQ(r.Remaining(), 0u);
  }
}

}  // namespace
}  // namespace ifsketch::util
