// The STATS opcode end to end over loopback: a known request load must
// show up in the served registry EXACTLY -- request counters match the
// issued counts, per-sketch query counters match the queries inside
// those requests, and the latency histograms carry one sample per
// request. Also covers the error paths (nonempty request body) and the
// client-side percentile reconstruction path (StatsReply buckets ->
// obs::HistogramSnapshot::Quantile).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/random.h"

namespace ifsketch::serve {
namespace {

core::SketchParams EstimatorParams() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// One-pod router over one saved sketch, metrics isolated in a
/// test-owned registry so every counter starts at zero.
struct StatsRig {
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::shared_ptr<Router> router;
};

StatsRig MakeStatsRig(const std::string& stem, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db =
      data::PowerLawBaskets(400, 10, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, "SUBSAMPLE", EstimatorParams(), rng);
  EXPECT_TRUE(built.has_value());
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(built->Save(path));

  StatsRig rig;
  rig.registry = std::make_unique<obs::MetricsRegistry>();
  RouterOptions options;
  options.registry = rig.registry.get();
  rig.router = std::make_shared<Router>(
      std::vector<std::shared_ptr<SketchPod>>{std::make_shared<SketchPod>(
          SketchPod::kUnlimited, rig.registry.get(), "0")},
      options);
  EXPECT_TRUE(rig.router->AddSketch("s", path));
  return rig;
}

class LoopbackServer {
 public:
  explicit LoopbackServer(std::shared_ptr<Router> router) {
    auto [client_end, server_end] = LoopbackTransport::CreatePair();
    client_end_ = std::move(client_end);
    thread_ = std::thread(
        [router = std::move(router), t = std::move(server_end)]() mutable {
          ServeConnection(*router, *t);
        });
  }
  ~LoopbackServer() {
    client_end_.reset();
    thread_.join();
  }

  std::unique_ptr<Transport> TakeClientEnd() { return std::move(client_end_); }

 private:
  std::unique_ptr<Transport> client_end_;
  std::thread thread_;
};

std::uint64_t CounterValue(const StatsReply& stats, const std::string& name) {
  for (const StatsCounter& c : stats.counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter not in STATS reply: " << name;
  return 0;
}

const StatsHistogram* FindHistogram(const StatsReply& stats,
                                    const std::string& name) {
  for (const StatsHistogram& h : stats.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(ServeStatsTest, CountersMatchIssuedRequestsExactly) {
  StatsRig rig = MakeStatsRig("stats_exact", 91);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());

  constexpr int kEstimateCalls = 7;
  constexpr int kAreFrequentCalls = 3;
  const std::vector<std::vector<std::uint32_t>> queries = {{0, 1}, {2}, {3}};
  for (int i = 0; i < kEstimateCalls; ++i) {
    ASSERT_TRUE(client.EstimateMany("s", queries).has_value()) << i;
  }
  for (int i = 0; i < kAreFrequentCalls; ++i) {
    ASSERT_TRUE(client.AreFrequent("s", queries).has_value()) << i;
  }
  ASSERT_TRUE(client.Info("s").has_value());

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.has_value()) << client.last_error();

  EXPECT_EQ(CounterValue(*stats, "serve_requests_total{op=\"estimate\"}"),
            kEstimateCalls);
  EXPECT_EQ(CounterValue(*stats, "serve_requests_total{op=\"are_frequent\"}"),
            kAreFrequentCalls);
  EXPECT_EQ(CounterValue(*stats, "serve_requests_total{op=\"info\"}"), 1u);
  // Every query batch entered coalescing; a single client never fuses.
  EXPECT_EQ(CounterValue(*stats, "serve_coalesce_requests_total"),
            kEstimateCalls + kAreFrequentCalls);
  EXPECT_EQ(CounterValue(*stats, "serve_coalesce_batches_total"),
            kEstimateCalls + kAreFrequentCalls);
  // Per-sketch point queries: each batch carries queries.size() of them.
  EXPECT_EQ(
      CounterValue(
          *stats,
          "serve_sketch_queries_total{pod=\"0\",sketch=\"s\"}"),
      static_cast<std::uint64_t>(kEstimateCalls + kAreFrequentCalls) *
          queries.size());

  // Latency histograms: one sample per query request, nonzero time.
  const StatsHistogram* estimate_ns =
      FindHistogram(*stats, "serve_request_ns{op=\"estimate\"}");
  ASSERT_NE(estimate_ns, nullptr);
  EXPECT_EQ(estimate_ns->count, kEstimateCalls);
  EXPECT_GT(estimate_ns->sum, 0u);
  const StatsHistogram* kernel_ns =
      FindHistogram(*stats, "serve_stage_kernel_ns");
  ASSERT_NE(kernel_ns, nullptr);
  EXPECT_EQ(kernel_ns->count, kEstimateCalls + kAreFrequentCalls);
  const StatsHistogram* decode_ns =
      FindHistogram(*stats, "serve_stage_decode_ns");
  ASSERT_NE(decode_ns, nullptr);
  // Info + the query calls decode bodies (the STATS call itself had not
  // happened yet when this snapshot's predecessors were taken; it does
  // not decode a body either way).
  EXPECT_GE(decode_ns->count, kEstimateCalls + kAreFrequentCalls + 1);

  // Client-side percentile reconstruction: rebuild a HistogramSnapshot
  // from the wire buckets and take quantiles with the shared routine.
  obs::HistogramSnapshot snap;
  snap.count = estimate_ns->count;
  snap.sum = estimate_ns->sum;
  snap.max = estimate_ns->max;
  snap.buckets = estimate_ns->buckets;
  EXPECT_GT(snap.Quantile(0.5), 0u);
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.99));
  EXPECT_EQ(snap.Quantile(1.0), snap.max);
}

TEST(ServeStatsTest, StatsCountsItselfOnTheSecondCall) {
  StatsRig rig = MakeStatsRig("stats_self", 92);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  ASSERT_TRUE(client.Stats().has_value());
  const auto second = client.Stats();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(CounterValue(*second, "serve_requests_total{op=\"stats\"}"), 2u);
}

TEST(ServeStatsTest, NonemptyStatsBodyIsRefused) {
  StatsRig rig = MakeStatsRig("stats_badbody", 93);
  LoopbackServer server(rig.router);
  auto transport = server.TakeClientEnd();
  std::string frame;
  ASSERT_TRUE(EncodeFrame(Opcode::kStats, 0, "junk", &frame));
  ASSERT_TRUE(transport->WriteAll(frame.data(), frame.size()));
  Frame reply;
  ASSERT_EQ(ReadFrame(*transport, &reply), ReadResult::kFrame);
  EXPECT_EQ(reply.header.opcode, Opcode::kError);
  EXPECT_EQ(static_cast<Status>(reply.header.status), Status::kBadRequest);
  // The connection survives a refused request.
  SketchClient client(std::move(transport));
  EXPECT_TRUE(client.Stats().has_value());
}

TEST(ServeStatsTest, PodGaugesAndEpochAppearInStats) {
  StatsRig rig = MakeStatsRig("stats_gauges", 94);
  LoopbackServer server(rig.router);
  SketchClient client(server.TakeClientEnd());
  // First request faults the engine in (a load); the second finds it
  // resident (a hit).
  ASSERT_TRUE(client.EstimateMany("s", {{0}}).has_value());
  ASSERT_TRUE(client.EstimateMany("s", {{0}}).has_value());
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.has_value());
  bool saw_inflight = false;
  for (const StatsGauge& g : stats->gauges) {
    if (g.name == "serve_pod_inflight{pod=\"0\"}") {
      saw_inflight = true;
      EXPECT_EQ(g.value, 0);  // nothing in flight between requests
    }
  }
  EXPECT_TRUE(saw_inflight);
  EXPECT_EQ(
      CounterValue(*stats,
                   "serve_sketch_loads_total{pod=\"0\",sketch=\"s\"}"),
      1u);
  EXPECT_EQ(
      CounterValue(*stats,
                   "serve_sketch_hits_total{pod=\"0\",sketch=\"s\"}"),
      1u);
}

}  // namespace
}  // namespace ifsketch::serve
