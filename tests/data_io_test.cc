#include "data/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generators.h"

namespace ifsketch::data {
namespace {

TEST(TransactionIoTest, RoundTrip) {
  util::Rng rng(1);
  const core::Database db = UniformRandom(50, 17, 0.3, rng);
  std::stringstream stream;
  WriteTransactions(stream, db);
  const auto back = ReadTransactions(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, db);
}

TEST(TransactionIoTest, EmptyRowsPreserved) {
  core::Database db(3, 5);
  db.Set(1, 2, true);
  std::stringstream stream;
  WriteTransactions(stream, db);
  const auto back = ReadTransactions(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, db);
  EXPECT_EQ(back->Row(0).Count(), 0u);
}

TEST(TransactionIoTest, RejectsOutOfRangeIndex) {
  std::stringstream stream("4\n0 1\n7\n");
  EXPECT_FALSE(ReadTransactions(stream).has_value());
}

TEST(TransactionIoTest, RejectsGarbage) {
  std::stringstream stream("4\n0 banana\n");
  EXPECT_FALSE(ReadTransactions(stream).has_value());
}

TEST(TransactionIoTest, RejectsMissingHeader) {
  std::stringstream stream("");
  EXPECT_FALSE(ReadTransactions(stream).has_value());
}

TEST(TransactionIoTest, EmptyDatabaseKeepsWidth) {
  std::stringstream stream("9\n");
  const auto back = ReadTransactions(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 9u);
}

TEST(DenseIoTest, RoundTrip) {
  util::Rng rng(2);
  const core::Database db = UniformRandom(30, 12, 0.5, rng);
  std::stringstream stream;
  WriteDense(stream, db);
  const auto back = ReadDense(stream);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, db);
}

TEST(DenseIoTest, RejectsWrongWidth) {
  std::stringstream stream("2 3\n101\n10\n");
  EXPECT_FALSE(ReadDense(stream).has_value());
}

TEST(DenseIoTest, RejectsNonBinaryChars) {
  std::stringstream stream("1 3\n1x1\n");
  EXPECT_FALSE(ReadDense(stream).has_value());
}

TEST(FileIoTest, SaveLoadRoundTrip) {
  util::Rng rng(3);
  const core::Database db = UniformRandom(20, 8, 0.4, rng);
  const std::string path = testing::TempDir() + "/ifsketch_io_test.txt";
  ASSERT_TRUE(SaveTransactionsFile(path, db));
  const auto back = LoadTransactionsFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, db);
}

TEST(FileIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(
      LoadTransactionsFile("/nonexistent/definitely/not/here").has_value());
}

TEST(IoTest, FrequenciesSurviveRoundTrip) {
  util::Rng rng(4);
  const core::Database db =
      PlantedItemsets(200, 10, {{{2, 6}, 0.3}}, 0.1, rng);
  std::stringstream stream;
  WriteTransactions(stream, db);
  const auto back = ReadTransactions(stream);
  ASSERT_TRUE(back.has_value());
  const core::Itemset t(10, {2, 6});
  EXPECT_DOUBLE_EQ(back->Frequency(t), db.Frequency(t));
}

}  // namespace
}  // namespace ifsketch::data
