// Differential tests: fast implementations vs naive reference
// re-implementations, on randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/database.h"
#include "core/marginal.h"
#include "data/generators.h"
#include "ecc/gf256.h"
#include "lowerbound/thm13.h"
#include "mining/fpgrowth.h"
#include "util/bitvector.h"
#include "util/combinatorics.h"
#include "util/random.h"

namespace ifsketch {
namespace {

// Reference: frequency by per-entry scanning (no word tricks).
double NaiveFrequency(const core::Database& db, const core::Itemset& t) {
  if (db.num_rows() == 0) return 0.0;
  const auto attrs = t.Attributes();
  std::size_t count = 0;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    bool all = true;
    for (std::size_t a : attrs) {
      if (!db.Get(i, a)) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(db.num_rows());
}

TEST(DifferentialTest, FrequencyMatchesNaive) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(80);
    const std::size_t d = 1 + rng.UniformInt(100);
    const core::Database db =
        data::UniformRandom(n, d, rng.UniformDouble(), rng);
    for (int q = 0; q < 10; ++q) {
      const std::size_t k = 1 + rng.UniformInt(std::min<std::size_t>(d, 6));
      const core::Itemset t(d, rng.SampleWithoutReplacement(d, k));
      EXPECT_DOUBLE_EQ(db.Frequency(t), NaiveFrequency(db, t));
    }
  }
}

// Reference: BitVector ops vs std::vector<bool>.
TEST(DifferentialTest, BitVectorMatchesVectorBool) {
  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t size = 1 + rng.UniformInt(300);
    std::vector<bool> ref(size, false);
    util::BitVector v(size);
    for (int op = 0; op < 200; ++op) {
      const std::size_t i = rng.UniformInt(size);
      switch (rng.UniformInt(3)) {
        case 0:
          ref[i] = true;
          v.Set(i, true);
          break;
        case 1:
          ref[i] = false;
          v.Set(i, false);
          break;
        default:
          ref[i] = !ref[i];
          v.Flip(i);
          break;
      }
    }
    std::size_t ref_count = 0;
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(v.Get(i), ref[i]) << i;
      if (ref[i]) ++ref_count;
    }
    EXPECT_EQ(v.Count(), ref_count);
  }
}

// Reference: GF(256) multiplication by schoolbook carry-less polynomial
// multiplication mod 0x11d.
std::uint8_t SchoolbookMul(std::uint8_t a, std::uint8_t b) {
  unsigned product = 0;
  unsigned aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if ((b >> bit) & 1u) product ^= aa << bit;
  }
  for (int bit = 15; bit >= 8; --bit) {
    if ((product >> bit) & 1u) product ^= 0x11du << (bit - 8);
  }
  return static_cast<std::uint8_t>(product);
}

TEST(DifferentialTest, GF256MulMatchesSchoolbook) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 0; b < 256; b += 5) {
      EXPECT_EQ(ecc::GF256::Mul(static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b)),
                SchoolbookMul(static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b)))
          << a << "*" << b;
    }
  }
}

// Reference: colex rank by linear scan of AllSubsets.
TEST(DifferentialTest, RankMatchesEnumerationOrder) {
  for (const auto& [n, k] :
       std::vector<std::pair<std::size_t, std::size_t>>{{7, 3}, {9, 2},
                                                        {6, 5}}) {
    const auto all = util::AllSubsets(n, k);
    for (std::size_t rank = 0; rank < all.size(); ++rank) {
      EXPECT_EQ(util::RankSubset(all[rank], n), rank);
      EXPECT_EQ(util::UnrankSubset(rank, n, k), all[rank]);
    }
  }
}

// Reference: marginal cells by brute-force pattern matching.
TEST(DifferentialTest, MarginalMatchesBruteForce) {
  util::Rng rng(3);
  const core::Database db = data::UniformRandom(120, 9, 0.5, rng);
  const std::vector<std::size_t> attrs = {1, 4, 7};
  const core::MarginalTable table = core::ComputeMarginal(db, attrs);
  for (std::size_t pattern = 0; pattern < 8; ++pattern) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      bool match = true;
      for (std::size_t bit = 0; bit < attrs.size(); ++bit) {
        const bool want = (pattern >> bit) & 1u;
        if (db.Get(i, attrs[bit]) != want) {
          match = false;
          break;
        }
      }
      if (match) ++count;
    }
    EXPECT_DOUBLE_EQ(table.cells[pattern],
                     static_cast<double>(count) / 120.0);
  }
}

// Reference: miners against exhaustive subset enumeration.
TEST(DifferentialTest, MinersMatchExhaustiveEnumeration) {
  util::Rng rng(4);
  const core::Database db = data::UniformRandom(60, 7, 0.55, rng);
  mining::AprioriOptions opt;
  opt.min_frequency = 0.305;  // off the count grid
  opt.max_size = 7;
  std::size_t expected = 0;
  for (std::size_t k = 1; k <= 7; ++k) {
    for (const auto& attrs : util::AllSubsets(7, k)) {
      if (db.Frequency(core::Itemset(7, attrs)) >= opt.min_frequency) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(mining::MineDatabase(db, opt).size(), expected);
  EXPECT_EQ(mining::FpGrowth(db, opt).size(), expected);
}

// Reference: Thm13 probe frequencies against direct database queries
// across the whole payload (the construction's core identity).
TEST(DifferentialTest, Thm13ProbeIdentityFullSweep) {
  util::Rng rng(5);
  const lowerbound::Thm13Instance inst(20, 3, 30);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload, 3);
  for (std::size_t i = 0; i < inst.num_rows(); ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const double expected =
          payload.Get(inst.PayloadIndex(i, j)) ? inst.RowFrequency() : 0.0;
      EXPECT_DOUBLE_EQ(db.Frequency(inst.ProbeItemset(i, j)), expected);
    }
  }
}

}  // namespace
}  // namespace ifsketch
