#include "lowerbound/shattered_set.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/database.h"
#include "util/random.h"

namespace ifsketch::lowerbound {
namespace {

TEST(ShatteredSetTest, DimensionsFollowFact18) {
  // v = k' * floor(log2(d/k')).
  const ShatteredSet s(32, 2);
  EXPECT_EQ(s.block_size(), 16u);
  EXPECT_EQ(s.v(), 8u);
  const ShatteredSet t(64, 3);
  EXPECT_EQ(t.block_size(), 16u);  // floor(log2(64/3)) = 4
  EXPECT_EQ(t.v(), 12u);
}

TEST(ShatteredSetTest, RowsHaveWidthD) {
  const ShatteredSet s(20, 2);
  for (std::size_t i = 0; i < s.v(); ++i) {
    EXPECT_EQ(s.Row(i).size(), 20u);
  }
}

TEST(ShatteredSetTest, QueriesHaveSizeKPrime) {
  util::Rng rng(1);
  const ShatteredSet s(32, 3);
  for (int trial = 0; trial < 20; ++trial) {
    const util::BitVector pattern = rng.RandomBits(s.v());
    EXPECT_EQ(s.QueryFor(pattern).size(), 3u);
  }
}

// The defining property of Fact 18, exhaustively: for EVERY pattern s in
// {0,1}^v, f_{T_s}(x_i) = s_i for all i.
class ShatteredExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ShatteredExhaustiveTest, EveryPatternShattered) {
  const auto [d, k_prime] = GetParam();
  const ShatteredSet s(d, k_prime);
  ASSERT_LE(s.v(), 16u) << "test parameter too large for exhaustion";
  const std::size_t patterns = std::size_t{1} << s.v();
  for (std::size_t p = 0; p < patterns; ++p) {
    util::BitVector pattern(s.v());
    for (std::size_t i = 0; i < s.v(); ++i) {
      pattern.Set(i, (p >> i) & 1u);
    }
    const core::Itemset ts = s.QueryFor(pattern);
    for (std::size_t i = 0; i < s.v(); ++i) {
      // f_{T_s}(x_i) on the one-row database x_i is containment.
      EXPECT_EQ(ts.ContainedIn(s.Row(i)), pattern.Get(i))
          << "d=" << d << " k'=" << k_prime << " pattern=" << p
          << " row=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fact18Sweep, ShatteredExhaustiveTest,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(16, 1),
                      std::make_tuple(256, 1), std::make_tuple(8, 2),
                      std::make_tuple(16, 2), std::make_tuple(64, 2),
                      std::make_tuple(12, 3), std::make_tuple(24, 3),
                      std::make_tuple(32, 4), std::make_tuple(40, 5),
                      std::make_tuple(20, 2), std::make_tuple(100, 3)));

TEST(ShatteredSetTest, DistinctPatternsDistinctQueries) {
  const ShatteredSet s(16, 2);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const util::BitVector p1 = rng.RandomBits(s.v());
    const util::BitVector p2 = rng.RandomBits(s.v());
    if (p1 == p2) continue;
    EXPECT_FALSE(s.QueryFor(p1) == s.QueryFor(p2));
  }
}

TEST(ShatteredSetTest, NonPowerOfTwoRatioUsesFloor) {
  // d=24, k'=5 -> d/k' = 4.8 -> block 4, v = 10; only the first 20
  // attributes participate, the rest are all-ones padding.
  const ShatteredSet s(24, 5);
  EXPECT_EQ(s.block_size(), 4u);
  EXPECT_EQ(s.v(), 10u);
  for (std::size_t i = 0; i < s.v(); ++i) {
    for (std::size_t a = 20; a < 24; ++a) {
      EXPECT_TRUE(s.Row(i).Get(a));
    }
  }
}

}  // namespace
}  // namespace ifsketch::lowerbound
