#include "stream/misra_gries.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace ifsketch::stream {
namespace {

TEST(MisraGriesTest, ExactWhenFewDistinctItems) {
  MisraGries mg(10);
  for (int i = 0; i < 7; ++i) mg.Observe(3);
  for (int i = 0; i < 4; ++i) mg.Observe(5);
  EXPECT_EQ(mg.Estimate(3), 7u);
  EXPECT_EQ(mg.Estimate(5), 4u);
  EXPECT_EQ(mg.Estimate(9), 0u);
  EXPECT_EQ(mg.items_seen(), 11u);
}

TEST(MisraGriesTest, UndercountBoundedByNOverC) {
  // Adversarial-ish stream: one heavy item among many distinct light ones.
  MisraGries mg(9);  // c=9 -> error <= N/10
  std::uint64_t true_heavy = 0;
  std::uint64_t n = 0;
  for (int round = 0; round < 100; ++round) {
    mg.Observe(1000);  // the heavy item
    ++true_heavy;
    ++n;
    for (int j = 0; j < 9; ++j) {
      mg.Observe(static_cast<std::size_t>(round * 9 + j));
      ++n;
    }
  }
  const std::uint64_t est = mg.Estimate(1000);
  EXPECT_LE(est, true_heavy);
  EXPECT_GE(est + mg.MaxError(), true_heavy);
  EXPECT_EQ(mg.MaxError(), n / 10);
}

TEST(MisraGriesTest, NeverOvercounts) {
  util::Rng rng(1);
  MisraGries mg(5);
  std::uint64_t truth[20] = {};
  for (int i = 0; i < 2000; ++i) {
    const auto item = static_cast<std::size_t>(rng.UniformInt(20));
    mg.Observe(item);
    ++truth[item];
  }
  for (std::size_t item = 0; item < 20; ++item) {
    EXPECT_LE(mg.Estimate(item), truth[item]) << item;
    EXPECT_GE(mg.Estimate(item) + mg.MaxError(), truth[item]) << item;
  }
}

TEST(MisraGriesTest, HeavyHittersFound) {
  util::Rng rng(2);
  MisraGries mg(20);  // eps = 1/21
  // Item 0 makes up ~30% of the stream; the rest is spread thin.
  std::uint64_t n = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.3)) {
      mg.Observe(0);
    } else {
      mg.Observe(1 + rng.UniformInt(500));
    }
    ++n;
  }
  const auto heavy = mg.HeavyHitters(n / 5);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], 0u);
}

TEST(MisraGriesTest, ObserveRowStreamsAttributes) {
  util::Rng rng(3);
  const core::Database db =
      data::PowerLawBaskets(2000, 30, 1.2, 0.6, 0, 0, 0.0, rng);
  MisraGries mg(15);
  std::uint64_t total_items = 0;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    mg.ObserveRow(db.Row(i));
    total_items += db.Row(i).Count();
  }
  EXPECT_EQ(mg.items_seen(), total_items);
  // The most popular attribute must survive as a heavy hitter.
  const std::uint64_t true_count =
      db.SupportCount(core::Itemset(30, {0}));
  EXPECT_GE(mg.Estimate(0) + mg.MaxError(), true_count);
  EXPECT_GT(mg.Estimate(0), 0u);
}

TEST(MisraGriesTest, SizeIsCountersNotUniverse) {
  // The heavy-hitters summary does NOT pay the Omega(d/eps) itemset
  // price: its size depends only on the counter budget.
  MisraGries small(10);
  MisraGries large(10);
  // Feed streams over wildly different universes.
  for (std::size_t i = 0; i < 1000; ++i) small.Observe(i % 8);
  for (std::size_t i = 0; i < 1000; ++i) large.Observe(i * 1000003);
  EXPECT_EQ(small.SizeBits(), large.SizeBits());
}

}  // namespace
}  // namespace ifsketch::stream
