#include "sketch/subsample.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/validate.h"
#include "data/generators.h"
#include "util/stats.h"

namespace ifsketch::sketch {
namespace {

core::SketchParams Params(double eps, core::Scope scope,
                          core::Answer answer) {
  core::SketchParams p;
  p.k = 2;
  p.eps = eps;
  p.delta = 0.05;
  p.scope = scope;
  p.answer = answer;
  return p;
}

TEST(SubsampleWorTest, SummaryFormatCompatible) {
  util::Rng rng(1);
  const core::Database db = data::UniformRandom(5000, 12, 0.4, rng);
  SubsampleWithoutReplacementSketch wor;
  const auto p = Params(0.1, core::Scope::kForEach,
                        core::Answer::kEstimator);
  const auto summary = wor.Build(db, p, rng);
  EXPECT_EQ(summary.size(), wor.PredictedSizeBits(5000, 12, p));
  // Loaders are inherited: the summary decodes as a plain sample.
  const core::Database sample = SubsampleSketch::DecodeSample(summary, 12);
  EXPECT_EQ(sample.num_rows(), SubsampleSketch::SampleCount(p, 12));
}

TEST(SubsampleWorTest, SampledRowsAreDistinctRows) {
  // With distinct database rows and s <= n, a WOR sample never repeats.
  util::Rng rng(2);
  core::Database db(4000, 13);
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    for (std::size_t b = 0; b < 12; ++b) {
      if ((i >> b) & 1u) db.Set(i, b, true);
    }
    db.Set(i, 12, true);  // keep rows nonzero
  }
  SubsampleWithoutReplacementSketch wor;
  const auto p = Params(0.1, core::Scope::kForEach,
                        core::Answer::kEstimator);
  const core::Database sample =
      SubsampleSketch::DecodeSample(wor.Build(db, p, rng), 13);
  std::set<std::string> seen;
  for (std::size_t i = 0; i < sample.num_rows(); ++i) {
    EXPECT_TRUE(seen.insert(sample.Row(i).ToString()).second) << i;
  }
}

TEST(SubsampleWorTest, FallsBackWhenSampleExceedsRows) {
  util::Rng rng(3);
  const core::Database db = data::UniformRandom(20, 10, 0.4, rng);
  SubsampleWithoutReplacementSketch wor;
  // eps small enough that s > 20 rows.
  const auto p = Params(0.02, core::Scope::kForEach,
                        core::Answer::kEstimator);
  ASSERT_GT(SubsampleSketch::SampleCount(p, 10), 20u);
  const auto summary = wor.Build(db, p, rng);
  EXPECT_EQ(summary.size(), wor.PredictedSizeBits(20, 10, p));
}

TEST(SubsampleWorTest, ValidForAllEstimator) {
  util::Rng rng(4);
  const core::Database db = data::UniformRandom(100000, 9, 0.4, rng);
  SubsampleWithoutReplacementSketch wor;
  const auto p =
      Params(0.1, core::Scope::kForAll, core::Answer::kEstimator);
  int invalid = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto summary = wor.Build(db, p, rng);
    const auto est = wor.LoadEstimator(summary, p, 9, db.num_rows());
    if (!core::ValidateEstimatorExhaustive(db, *est, 2, p.eps).valid()) {
      ++invalid;
    }
  }
  EXPECT_LE(invalid, 1);
}

TEST(SubsampleWorTest, NoWorseThanWithReplacement) {
  // Hypergeometric vs binomial: WOR error should not exceed WR error by
  // more than noise, and typically is smaller when s is a sizable
  // fraction of n.
  util::Rng rng(5);
  const core::Database db =
      data::PlantedItemsets(2500, 10, {{{2, 6}, 0.3}}, 0.1, rng);
  const core::Itemset t(10, {2, 6});
  const double truth = db.Frequency(t);
  const auto p = Params(0.05, core::Scope::kForEach,
                        core::Answer::kEstimator);
  SubsampleSketch wr;
  SubsampleWithoutReplacementSketch wor;
  util::RunningStat e_wr, e_wor;
  for (int trial = 0; trial < 80; ++trial) {
    {
      const auto s = wr.Build(db, p, rng);
      e_wr.Add(std::fabs(
          wr.LoadEstimator(s, p, 10, 2500)->EstimateFrequency(t) - truth));
    }
    {
      const auto s = wor.Build(db, p, rng);
      e_wor.Add(std::fabs(
          wor.LoadEstimator(s, p, 10, 2500)->EstimateFrequency(t) - truth));
    }
  }
  EXPECT_LE(e_wor.Mean(), e_wr.Mean() * 1.25);
}

}  // namespace
}  // namespace ifsketch::sketch
