#include "core/marginal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "sketch/subsample.h"
#include "util/bitvector.h"

namespace ifsketch::core {
namespace {

Database MakeDb(const std::vector<std::string>& rows) {
  std::vector<util::BitVector> bits;
  for (const auto& r : rows) bits.push_back(util::BitVector::FromString(r));
  return Database::FromRows(std::move(bits));
}

TEST(MarginalTest, HandComputedTwoWay) {
  // Patterns over attrs {0,1}: rows 11, 10, 00, 11.
  const Database db = MakeDb({"110", "100", "000", "110"});
  const MarginalTable t = ComputeMarginal(db, {0, 1});
  ASSERT_EQ(t.NumCells(), 4u);
  EXPECT_DOUBLE_EQ(t.cells[0b00], 0.25);
  EXPECT_DOUBLE_EQ(t.cells[0b01], 0.25);  // attr0=1, attr1=0
  EXPECT_DOUBLE_EQ(t.cells[0b10], 0.0);
  EXPECT_DOUBLE_EQ(t.cells[0b11], 0.5);
  EXPECT_DOUBLE_EQ(t.Total(), 1.0);
}

TEST(MarginalTest, CellsSumToOneRandom) {
  util::Rng rng(1);
  const Database db = data::UniformRandom(500, 10, 0.4, rng);
  for (const auto& attrs : {std::vector<std::size_t>{0},
                            {1, 5},
                            {2, 4, 8},
                            {0, 3, 6, 9}}) {
    const MarginalTable t = ComputeMarginal(db, attrs);
    EXPECT_NEAR(t.Total(), 1.0, 1e-9);
    for (double c : t.cells) EXPECT_GE(c, 0.0);
  }
}

TEST(MarginalTest, InclusionExclusionMatchesExact) {
  // Footnote 2's reduction with an exact frequency oracle must reproduce
  // the direct computation bit-for-bit (up to float rounding).
  util::Rng rng(2);
  const Database db = data::UniformRandom(300, 9, 0.45, rng);
  const auto oracle = [&db](const Itemset& t) { return db.Frequency(t); };
  for (const auto& attrs :
       {std::vector<std::size_t>{3}, {0, 7}, {1, 4, 8}, {0, 2, 5, 6}}) {
    const MarginalTable direct = ComputeMarginal(db, attrs);
    const MarginalTable via_ie =
        MarginalFromFrequencies(9, attrs, oracle);
    EXPECT_LT(direct.MaxCellDiff(via_ie), 1e-9);
  }
}

TEST(MarginalTest, EmptyAttributeSet) {
  util::Rng rng(3);
  const Database db = data::UniformRandom(50, 5, 0.5, rng);
  const MarginalTable t = ComputeMarginal(db, {});
  ASSERT_EQ(t.NumCells(), 1u);
  EXPECT_DOUBLE_EQ(t.cells[0], 1.0);
  const MarginalTable t2 = MarginalFromFrequencies(
      5, {}, [&db](const Itemset& q) { return db.Frequency(q); });
  EXPECT_DOUBLE_EQ(t2.cells[0], 1.0);
}

TEST(MarginalTest, DeterministicColumns) {
  // Attribute 1 always equals attribute 0: off-diagonal cells vanish.
  const Database db = MakeDb({"11", "11", "00", "00"});
  const MarginalTable t = ComputeMarginal(db, {0, 1});
  EXPECT_DOUBLE_EQ(t.cells[0b01], 0.0);
  EXPECT_DOUBLE_EQ(t.cells[0b10], 0.0);
  EXPECT_DOUBLE_EQ(t.cells[0b00], 0.5);
  EXPECT_DOUBLE_EQ(t.cells[0b11], 0.5);
}

TEST(MarginalTest, SketchBackedMarginalWithinInclusionExclusionError) {
  util::Rng rng(4);
  const Database db = data::CensusLike(
      20000, {{3, {0.5, 0.3, 0.2}}, {2, {}}, {2, {0.8, 0.2}}}, rng);
  SketchParams p;
  p.k = 3;
  p.eps = 0.01;
  p.delta = 0.05;
  p.scope = Scope::kForAll;
  p.answer = Answer::kEstimator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);
  const auto est =
      algo.LoadEstimator(summary, p, db.num_columns(), db.num_rows());
  // One attribute from each group: a 3-way marginal through the sketch.
  const std::vector<std::size_t> attrs = {0, 3, 5};
  const MarginalTable direct = ComputeMarginal(db, attrs);
  const MarginalTable sketched = MarginalFromFrequencies(
      db.num_columns(), attrs,
      [&est](const Itemset& t) { return est->EstimateFrequency(t); });
  // Each cell is a sum of at most 2^3 frequencies, each +/- eps.
  EXPECT_LT(direct.MaxCellDiff(sketched), 8 * p.eps);
  EXPECT_NEAR(sketched.Total(), 1.0, 8 * p.eps);
}

TEST(MarginalTest, CellIsNonMonotoneConjunction) {
  // Cell (1,0) over attrs {0,1} equals f_{0} - f_{0,1}: the footnote's
  // "general conjunction = +/- sum of monotone conjunctions".
  util::Rng rng(5);
  const Database db = data::UniformRandom(400, 6, 0.5, rng);
  const MarginalTable t = ComputeMarginal(db, {0, 1});
  const double expected = db.Frequency(Itemset(6, {0})) -
                          db.Frequency(Itemset(6, {0, 1}));
  EXPECT_NEAR(t.cells[0b01], expected, 1e-12);
}

}  // namespace
}  // namespace ifsketch::core
