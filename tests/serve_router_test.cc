// Router: deterministic name -> shard assignment, and request coalescing
// that returns exactly the answers each client would get serially (the
// fused batches are answer-preserving by the batched-kernel contract).

#include "serve/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ifsketch::serve {
namespace {

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.1;
  p.delta = 0.1;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  return p;
}

std::string MakeSketchFile(const std::string& stem, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Database db = data::UniformRandom(400, 12, 0.4, rng);
  auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  EXPECT_TRUE(engine.has_value());
  const std::string path = testing::TempDir() + "/" + stem + ".ifsk";
  EXPECT_TRUE(engine->Save(path));
  return path;
}

std::vector<core::Itemset> RandomQueries(std::size_t count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Itemset> queries;
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(12);
    const std::size_t size = 1 + rng.UniformInt(3);
    while (t.size() < size) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(12)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

std::vector<std::shared_ptr<SketchPod>> MakePods(std::size_t count) {
  std::vector<std::shared_ptr<SketchPod>> pods;
  for (std::size_t i = 0; i < count; ++i) {
    pods.push_back(std::make_shared<SketchPod>());
  }
  return pods;
}

TEST(RouterTest, ShardAssignmentIsDeterministicAndCoversPods) {
  Router router(MakePods(4));
  bool used[4] = {false, false, false, false};
  for (int i = 0; i < 64; ++i) {
    const std::string name = "sketch-" + std::to_string(i);
    const std::size_t shard = router.ShardOf(name);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(router.ShardOf(name), shard);  // pure function of the name
    used[shard] = true;
  }
  // FNV-1a over 64 names spreads across all 4 shards.
  EXPECT_TRUE(used[0] && used[1] && used[2] && used[3]);

  // Same names, independent router: identical assignment (no per-process
  // salt -- clients and restarts must agree).
  Router other(MakePods(4));
  for (int i = 0; i < 64; ++i) {
    const std::string name = "sketch-" + std::to_string(i);
    EXPECT_EQ(other.ShardOf(name), router.ShardOf(name));
  }
}

TEST(RouterTest, AddSketchLandsOnOwningShardOnly) {
  Router router(MakePods(3));
  const std::string path = MakeSketchFile("router_shard", 21);
  ASSERT_TRUE(router.AddSketch("hello", path));
  EXPECT_FALSE(router.AddSketch("hello", path));  // duplicate
  const std::size_t owner = router.ShardOf("hello");
  for (std::size_t i = 0; i < router.pod_count(); ++i) {
    EXPECT_EQ(router.pods()[i]->Knows("hello"), i == owner) << i;
  }
  EXPECT_NE(router.Acquire("hello"), nullptr);
  EXPECT_EQ(router.Acquire("nobody"), nullptr);
}

TEST(RouterTest, RoutesAndAnswersMatchDirectEngine) {
  Router router(MakePods(2));
  const std::string path = MakeSketchFile("router_direct", 22);
  ASSERT_TRUE(router.AddSketch("s", path));
  const auto queries = RandomQueries(50, 23);

  const auto direct = Engine::Open(path);
  ASSERT_TRUE(direct.has_value());
  std::vector<double> expected;
  direct->estimate_many(queries, &expected);
  std::vector<bool> expected_bits;
  direct->are_frequent(queries, &expected_bits);

  std::vector<double> answers;
  ASSERT_EQ(router.EstimateMany("s", queries, &answers), RouteStatus::kOk);
  EXPECT_EQ(answers, expected);
  std::vector<bool> bits;
  ASSERT_EQ(router.AreFrequent("s", queries, &bits), RouteStatus::kOk);
  EXPECT_EQ(bits, expected_bits);

  EXPECT_EQ(router.EstimateMany("nope", queries, &answers),
            RouteStatus::kUnknownSketch);
}

TEST(RouterTest, MismatchedUniverseFailsWithoutAborting) {
  Router router(MakePods(1));
  ASSERT_TRUE(router.AddSketch("s", MakeSketchFile("router_bad", 24)));
  std::vector<core::Itemset> wrong = {core::Itemset(99, {0, 98})};
  std::vector<double> answers;
  EXPECT_EQ(router.EstimateMany("s", wrong, &answers),
            RouteStatus::kUnsupportedQuery);
}

// Many clients hammer the same sketch concurrently; whatever fusion the
// group-commit slot performs, every client must receive exactly the
// answers of its own serial request.
TEST(RouterTest, CoalescedAnswersEqualSerialAnswers) {
  Router router(MakePods(2));
  const std::string path = MakeSketchFile("router_fuse", 25);
  ASSERT_TRUE(router.AddSketch("s", path));

  constexpr std::size_t kClients = 8;
  constexpr int kRounds = 20;
  std::vector<std::vector<core::Itemset>> batches;
  std::vector<std::vector<double>> expected(kClients);
  const auto direct = Engine::Open(path);
  ASSERT_TRUE(direct.has_value());
  for (std::size_t c = 0; c < kClients; ++c) {
    batches.push_back(RandomQueries(30 + c, 100 + c));
    direct->estimate_many(batches[c], &expected[c]);
  }

  util::ThreadPool::SetDefaultThreadCount(2);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> answers;
      for (int r = 0; r < kRounds; ++r) {
        if (router.EstimateMany("s", batches[c], &answers) !=
                RouteStatus::kOk ||
            answers != expected[c]) {
          mismatches.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  const CoalesceStats stats = router.coalesce_stats();
  // Every request was served...
  EXPECT_EQ(stats.requests, kClients * kRounds);
  // ...by at most that many engine batches (strictly fewer when any
  // fusion happened; equality is legal on a machine that never
  // overlapped two requests).
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GT(stats.batches, 0u);
  util::ThreadPool::SetDefaultThreadCount(0);
}

// Estimate and indicator requests interleave on one name: the drain
// split must fuse each flavor separately and still answer both exactly.
TEST(RouterTest, MixedFlavorCoalescingStaysExact) {
  Router router(MakePods(1));
  const std::string path = MakeSketchFile("router_mixed", 26);
  ASSERT_TRUE(router.AddSketch("s", path));
  const auto queries = RandomQueries(40, 27);

  const auto direct = Engine::Open(path);
  std::vector<double> expected;
  direct->estimate_many(queries, &expected);
  std::vector<bool> expected_bits;
  direct->are_frequent(queries, &expected_bits);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < 6; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < 15; ++r) {
        if (c % 2 == 0) {
          std::vector<double> answers;
          if (router.EstimateMany("s", queries, &answers) !=
                  RouteStatus::kOk ||
              answers != expected) {
            mismatches.fetch_add(1);
            return;
          }
        } else {
          std::vector<bool> bits;
          if (router.AreFrequent("s", queries, &bits) != RouteStatus::kOk ||
              bits != expected_bits) {
            mismatches.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ifsketch::serve
