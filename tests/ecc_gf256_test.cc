#include "ecc/gf256.h"

#include <gtest/gtest.h>

namespace ifsketch::ecc {
namespace {

TEST(GF256Test, AddIsXor) {
  EXPECT_EQ(GF256::Add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GF256::Add(7, 7), 0);
}

TEST(GF256Test, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::Mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::Mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::Mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256Test, MulCommutative) {
  for (unsigned a = 1; a < 256; a += 7) {
    for (unsigned b = 1; b < 256; b += 11) {
      EXPECT_EQ(GF256::Mul(a, b), GF256::Mul(b, a));
    }
  }
}

TEST(GF256Test, MulAssociative) {
  for (unsigned a = 1; a < 256; a += 17) {
    for (unsigned b = 1; b < 256; b += 19) {
      for (unsigned c = 1; c < 256; c += 23) {
        EXPECT_EQ(GF256::Mul(GF256::Mul(a, b), c),
                  GF256::Mul(a, GF256::Mul(b, c)));
      }
    }
  }
}

TEST(GF256Test, DistributesOverAdd) {
  for (unsigned a = 1; a < 256; a += 13) {
    for (unsigned b = 0; b < 256; b += 29) {
      for (unsigned c = 0; c < 256; c += 31) {
        EXPECT_EQ(GF256::Mul(a, GF256::Add(b, c)),
                  GF256::Add(GF256::Mul(a, b), GF256::Mul(a, c)));
      }
    }
  }
}

TEST(GF256Test, KnownProduct) {
  // 0x02 * 0x80 = 0x100 mod 0x11d = 0x1d.
  EXPECT_EQ(GF256::Mul(0x02, 0x80), 0x1d);
}

TEST(GF256Test, InverseIsTwoSided) {
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t inv = GF256::Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::Mul(static_cast<std::uint8_t>(a), inv), 1) << a;
    EXPECT_EQ(GF256::Mul(inv, static_cast<std::uint8_t>(a)), 1) << a;
  }
}

TEST(GF256Test, DivInvertsMul) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned b = 1; b < 256; b += 9) {
      const std::uint8_t q = GF256::Div(a, b);
      EXPECT_EQ(GF256::Mul(q, b), a);
    }
  }
}

TEST(GF256Test, PowMatchesRepeatedMul) {
  for (unsigned a = 1; a < 256; a += 37) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(GF256::Pow(static_cast<std::uint8_t>(a), e), acc);
      acc = GF256::Mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(GF256Test, PowZeroBase) {
  EXPECT_EQ(GF256::Pow(0, 0), 1);
  EXPECT_EQ(GF256::Pow(0, 5), 0);
}

TEST(GF256Test, PolyEvalHorner) {
  // p(x) = 3 + 2x + x^2 at x=1: 3^2^1 = 0; at x=0: 3.
  const std::vector<std::uint8_t> p = {3, 2, 1};
  EXPECT_EQ(GF256::PolyEval(p, 0), 3);
  EXPECT_EQ(GF256::PolyEval(p, 1), 3 ^ 2 ^ 1);
}

TEST(GF256Test, PolyMulDegreeAndContent) {
  // (1 + x)(1 + x) = 1 + 2x + x^2 = 1 + x^2 over GF(2^8) (char 2).
  const std::vector<std::uint8_t> one_plus_x = {1, 1};
  const auto sq = GF256::PolyMul(one_plus_x, one_plus_x);
  EXPECT_EQ(sq, (std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(GF256Test, PolyDivRemRoundTrip) {
  // num = q*den + r with deg(r) < deg(den), for random-ish polynomials.
  const std::vector<std::uint8_t> den = {7, 1, 3};  // degree 2
  const std::vector<std::uint8_t> q = {2, 5, 11, 1};
  const std::vector<std::uint8_t> r = {9, 4};
  auto num = GF256::PolyMul(q, den);
  for (std::size_t i = 0; i < r.size(); ++i) num[i] = GF256::Add(num[i], r[i]);
  const auto dr = GF256::PolyDivRem(num, den);
  EXPECT_EQ(dr.quotient, q);
  ASSERT_GE(dr.remainder.size(), r.size());
  for (std::size_t i = 0; i < dr.remainder.size(); ++i) {
    EXPECT_EQ(dr.remainder[i], i < r.size() ? r[i] : 0);
  }
}

TEST(GF256Test, PolyDivExactDivision) {
  const std::vector<std::uint8_t> den = {1, 1};     // x + 1
  const std::vector<std::uint8_t> q = {5, 0, 255};  // arbitrary
  const auto num = GF256::PolyMul(q, den);
  const auto dr = GF256::PolyDivRem(num, den);
  EXPECT_EQ(dr.quotient, q);
  for (std::uint8_t c : dr.remainder) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace ifsketch::ecc
