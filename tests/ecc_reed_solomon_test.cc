#include "ecc/reed_solomon.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ifsketch::ecc {
namespace {

std::vector<std::uint8_t> RandomMessage(std::size_t k, util::Rng& rng) {
  std::vector<std::uint8_t> m(k);
  for (auto& b : m) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return m;
}

TEST(ReedSolomonTest, EncodeLengthAndDeterminism) {
  ReedSolomon rs(15, 5);
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  const auto cw = rs.Encode(msg);
  EXPECT_EQ(cw.size(), 15u);
  EXPECT_EQ(rs.Encode(msg), cw);
}

TEST(ReedSolomonTest, NoErrorsDecodes) {
  util::Rng rng(1);
  ReedSolomon rs(20, 8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto msg = RandomMessage(8, rng);
    const auto decoded = rs.Decode(rs.Encode(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(ReedSolomonTest, MaxErrors) {
  EXPECT_EQ(ReedSolomon(15, 5).max_errors(), 5u);
  EXPECT_EQ(ReedSolomon(255, 85).max_errors(), 85u);
  EXPECT_EQ(ReedSolomon(10, 10).max_errors(), 0u);
}

TEST(ReedSolomonTest, CorrectsUpToMaxErrors) {
  util::Rng rng(2);
  ReedSolomon rs(31, 11);  // corrects 10
  for (int trial = 0; trial < 20; ++trial) {
    const auto msg = RandomMessage(11, rng);
    auto cw = rs.Encode(msg);
    const std::size_t num_errors = rng.UniformInt(rs.max_errors() + 1);
    for (std::size_t pos : rng.SampleWithoutReplacement(31, num_errors)) {
      cw[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    }
    const auto decoded = rs.Decode(cw);
    ASSERT_TRUE(decoded.has_value())
        << "errors=" << num_errors << " trial=" << trial;
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(ReedSolomonTest, ExactlyMaxErrorsBoundary) {
  util::Rng rng(3);
  ReedSolomon rs(24, 8);  // corrects 8
  for (int trial = 0; trial < 10; ++trial) {
    const auto msg = RandomMessage(8, rng);
    auto cw = rs.Encode(msg);
    for (std::size_t pos : rng.SampleWithoutReplacement(24, 8)) {
      cw[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    }
    const auto decoded = rs.Decode(cw);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(ReedSolomonTest, BeyondCapacityDoesNotReturnWrongSilently) {
  // With > max_errors the decoder may fail (nullopt) or, rarely, land on
  // another codeword; it must never return a message whose re-encoding is
  // far from the received word. We check the decoder's self-consistency.
  util::Rng rng(4);
  ReedSolomon rs(20, 8);  // corrects 6
  int failures = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto msg = RandomMessage(8, rng);
    auto cw = rs.Encode(msg);
    for (std::size_t pos : rng.SampleWithoutReplacement(20, 10)) {
      cw[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    }
    const auto decoded = rs.Decode(cw);
    if (!decoded.has_value()) {
      ++failures;
      continue;
    }
    // If it decoded, the result must be within max_errors of received.
    const auto recoded = rs.Encode(*decoded);
    std::size_t dist = 0;
    for (std::size_t i = 0; i < 20; ++i) {
      if (recoded[i] != cw[i]) ++dist;
    }
    EXPECT_LE(dist, rs.max_errors());
  }
  EXPECT_GT(failures, 0);  // most over-capacity patterns are detected
}

TEST(ReedSolomonTest, RateOneCodePassesThrough) {
  util::Rng rng(5);
  ReedSolomon rs(9, 9);
  const auto msg = RandomMessage(9, rng);
  const auto cw = rs.Encode(msg);
  const auto decoded = rs.Decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, PaperScaleBlock) {
  util::Rng rng(6);
  ReedSolomon rs(255, 85);
  const auto msg = RandomMessage(85, rng);
  auto cw = rs.Encode(msg);
  for (std::size_t pos : rng.SampleWithoutReplacement(255, 85)) {
    cw[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
  }
  const auto decoded = rs.Decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, BurstErrorsAlsoCorrected) {
  util::Rng rng(7);
  ReedSolomon rs(40, 20);  // corrects 10
  const auto msg = RandomMessage(20, rng);
  auto cw = rs.Encode(msg);
  for (std::size_t i = 5; i < 15; ++i) cw[i] ^= 0xff;  // contiguous burst
  const auto decoded = rs.Decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

}  // namespace
}  // namespace ifsketch::ecc
