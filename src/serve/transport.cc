#include "serve/transport.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

namespace ifsketch::serve {

ReadResult ReadFrame(Transport& transport, Frame* frame) {
  char header[kFrameHeaderBytes];
  // Peek the first byte separately so a peer that closed between frames
  // reads as kEof, while one that died mid-header reads as kMalformed.
  if (!transport.ReadAll(header, 1)) return ReadResult::kEof;
  if (!transport.ReadAll(header + 1, kFrameHeaderBytes - 1)) {
    return ReadResult::kMalformed;
  }
  const auto parsed = DecodeFrameHeader(header, kFrameHeaderBytes);
  if (!parsed.has_value()) return ReadResult::kMalformed;
  frame->header = *parsed;
  frame->body.resize(parsed->body_length);
  if (parsed->body_length > 0 &&
      !transport.ReadAll(frame->body.data(), parsed->body_length)) {
    return ReadResult::kMalformed;
  }
  return ReadResult::kFrame;
}

bool WriteFrame(Transport& transport, Opcode opcode, std::uint8_t status,
                std::string_view body) {
  std::string wire;
  if (!EncodeFrame(opcode, status, body, &wire)) return false;
  return transport.WriteAll(wire.data(), wire.size());
}

/// FIFO byte queue with blocking reads; closing wakes pending readers.
class LoopbackChannel {
 public:
  bool Write(const void* data, std::size_t size) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    const char* bytes = static_cast<const char*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
    cv_.notify_all();
    return true;
  }

  bool Read(void* data, std::size_t size) {
    std::unique_lock<std::mutex> lock(mu_);
    char* bytes = static_cast<char*>(data);
    std::size_t got = 0;
    while (got < size) {
      cv_.wait(lock, [this] { return !buffer_.empty() || closed_; });
      if (buffer_.empty()) return false;  // closed and drained
      const std::size_t take =
          std::min(size - got, buffer_.size());
      std::copy(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(take), bytes + got);
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(take));
      got += take;
    }
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<char> buffer_;
  bool closed_ = false;
};

LoopbackTransport::LoopbackTransport(std::shared_ptr<LoopbackChannel> read,
                                     std::shared_ptr<LoopbackChannel> write)
    : read_(std::move(read)), write_(std::move(write)) {}

LoopbackTransport::~LoopbackTransport() {
  // Dropping an end hangs up both directions it touches, so a peer
  // blocked in ReadAll unblocks instead of waiting forever.
  write_->Close();
  read_->Close();
}

std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
LoopbackTransport::CreatePair() {
  auto a_to_b = std::make_shared<LoopbackChannel>();
  auto b_to_a = std::make_shared<LoopbackChannel>();
  std::unique_ptr<LoopbackTransport> a(
      new LoopbackTransport(b_to_a, a_to_b));
  std::unique_ptr<LoopbackTransport> b(
      new LoopbackTransport(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

bool LoopbackTransport::WriteAll(const void* data, std::size_t size) {
  return write_->Write(data, size);
}

bool LoopbackTransport::ReadAll(void* data, std::size_t size) {
  return read_->Read(data, size);
}

void LoopbackTransport::CloseWrite() { write_->Close(); }

}  // namespace ifsketch::serve
