#include "serve/transport.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace ifsketch::serve {

ReadResult ReadFrame(Transport& transport, Frame* frame) {
  char header[kFrameHeaderBytes];
  // Peek the first byte separately so a peer that closed between frames
  // reads as kEof, while one that died mid-header reads as kMalformed.
  if (!transport.ReadAll(header, 1)) return ReadResult::kEof;
  if (!transport.ReadAll(header + 1, kFrameHeaderBytes - 1)) {
    return ReadResult::kMalformed;
  }
  const auto parsed = DecodeFrameHeader(header, kFrameHeaderBytes);
  if (!parsed.has_value()) return ReadResult::kMalformed;
  frame->header = *parsed;
  frame->body.resize(parsed->body_length);
  if (parsed->body_length > 0 &&
      !transport.ReadAll(frame->body.data(), parsed->body_length)) {
    return ReadResult::kMalformed;
  }
  return ReadResult::kFrame;
}

bool WriteFrame(Transport& transport, Opcode opcode, std::uint8_t status,
                std::string_view body) {
  std::string wire;
  if (!EncodeFrame(opcode, status, body, &wire)) return false;
  return transport.WriteAll(wire.data(), wire.size());
}

/// FIFO byte queue with blocking reads; closing wakes pending readers.
class LoopbackChannel {
 public:
  bool Write(const void* data, std::size_t size) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    const char* bytes = static_cast<const char*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
    cv_.notify_all();
    return true;
  }

  /// Reads exactly `size` bytes; a zero timeout blocks forever, a
  /// positive one fails the read after that long with no progress (the
  /// client-deadline contract of Transport::SetReadTimeout).
  bool Read(void* data, std::size_t size,
            std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    char* bytes = static_cast<char*>(data);
    std::size_t got = 0;
    while (got < size) {
      const auto ready = [this] { return !buffer_.empty() || closed_; };
      if (timeout.count() <= 0) {
        cv_.wait(lock, ready);
      } else if (!cv_.wait_for(lock, timeout, ready)) {
        return false;  // timed out with no progress
      }
      if (buffer_.empty()) return false;  // closed and drained
      const std::size_t take =
          std::min(size - got, buffer_.size());
      std::copy(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(take), bytes + got);
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(take));
      got += take;
    }
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<char> buffer_;
  bool closed_ = false;
};

LoopbackTransport::LoopbackTransport(std::shared_ptr<LoopbackChannel> read,
                                     std::shared_ptr<LoopbackChannel> write)
    : read_(std::move(read)), write_(std::move(write)) {}

LoopbackTransport::~LoopbackTransport() {
  // Dropping an end hangs up both directions it touches, so a peer
  // blocked in ReadAll unblocks instead of waiting forever.
  write_->Close();
  read_->Close();
}

std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
LoopbackTransport::CreatePair() {
  auto a_to_b = std::make_shared<LoopbackChannel>();
  auto b_to_a = std::make_shared<LoopbackChannel>();
  std::unique_ptr<LoopbackTransport> a(
      new LoopbackTransport(b_to_a, a_to_b));
  std::unique_ptr<LoopbackTransport> b(
      new LoopbackTransport(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

bool LoopbackTransport::WriteAll(const void* data, std::size_t size) {
  return write_->Write(data, size);
}

bool LoopbackTransport::ReadAll(void* data, std::size_t size) {
  return read_->Read(data, size, read_timeout_);
}

void LoopbackTransport::CloseWrite() { write_->Close(); }

bool LoopbackTransport::SetReadTimeout(std::chrono::milliseconds timeout) {
  read_timeout_ = timeout;
  return true;
}

// ------------------------------------------------------ fault injection

namespace {

/// splitmix64: tiny, seedable, and good enough to schedule faults; the
/// transport must not depend on util/random.h just for a Bernoulli.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), rng_state_(plan.seed) {}

bool FaultyTransport::Roll(double p) {
  if (p <= 0.0) return false;
  return (SplitMix64(&rng_state_) >> 11) * 0x1.0p-53 < p;
}

void FaultyTransport::MaybeDelay() {
  if (plan_.delay.count() > 0 && Roll(plan_.delay_prob)) {
    std::this_thread::sleep_for(plan_.delay);
  }
}

void FaultyTransport::Kill() {
  dead_ = true;
  // Hang up the inner write side so a peer blocked reading the frame we
  // just mangled sees EOF instead of waiting forever.
  inner_->CloseWrite();
}

bool FaultyTransport::WriteAll(const void* data, std::size_t size) {
  if (dead_) return false;
  MaybeDelay();
  if (plan_.fail_after_bytes > 0 &&
      bytes_moved_ + size > plan_.fail_after_bytes) {
    // Die exactly at the byte offset: deliver the allowed prefix so the
    // peer sees a frame cut mid-stream, not at an op boundary.
    const std::size_t deliver = plan_.fail_after_bytes - bytes_moved_;
    if (deliver > 0) inner_->WriteAll(data, deliver);
    bytes_moved_ += deliver;
    Kill();
    return false;
  }
  if (Roll(plan_.fail_write)) {  // dropped whole: peer never sees a byte
    Kill();
    return false;
  }
  if (size > 1 && Roll(plan_.truncate_write)) {
    const std::size_t prefix =
        1 + static_cast<std::size_t>(SplitMix64(&rng_state_) % (size - 1));
    inner_->WriteAll(data, prefix);
    bytes_moved_ += prefix;
    Kill();
    return false;
  }
  if (!inner_->WriteAll(data, size)) {
    dead_ = true;
    return false;
  }
  bytes_moved_ += size;
  return true;
}

bool FaultyTransport::ReadAll(void* data, std::size_t size) {
  if (dead_) return false;
  MaybeDelay();
  if (plan_.fail_after_bytes > 0 &&
      bytes_moved_ + size > plan_.fail_after_bytes) {
    Kill();
    return false;
  }
  if (Roll(plan_.fail_read)) {
    Kill();
    return false;
  }
  if (!inner_->ReadAll(data, size)) {
    dead_ = true;
    return false;
  }
  bytes_moved_ += size;
  return true;
}

void FaultyTransport::CloseWrite() { inner_->CloseWrite(); }

bool FaultyTransport::SetReadTimeout(std::chrono::milliseconds timeout) {
  return inner_->SetReadTimeout(timeout);
}

}  // namespace ifsketch::serve
