// The ifsketch wire protocol: versioned, length-prefixed binary frames.
//
// The serving subsystem (serve/pod.h, serve/router.h, serve/server.h)
// speaks one frame format over any byte transport (serve/transport.h) --
// the same codec drives the TCP server and the in-process loopback pair
// the tests and benches use. Framing:
//
//   frame   := header || body
//   header  := magic   u32   "IFSP" (bytes 'I','F','S','P')
//              version u16   = 1
//              opcode  u8    (see Opcode)
//              status  u8    (0 on requests; Status on kError responses)
//              length  u32   body byte count, <= kMaxBodyBytes
//   body    := opcode-specific payload (layouts below)
//
// All integers are written with the same raw host-endian discipline as
// the IFSK sketch file format (sketch/sketch_file.h): little-endian on
// every platform this repo targets. Strings are u16 length + bytes;
// itemsets travel as u16 attribute count + ascending u32 attribute
// indices (the universe size d is server-side state, carried by the
// sketch itself and reported by kInfo).
//
// Body layouts:
//   kEstimate / kAreFrequent (requests):
//       name   string        target sketch (pod-registered name)
//       count  u32           number of queries, <= kMaxQueriesPerRequest
//       count x { attrs u16, attr u32 x attrs }
//   kEstimateReply:   count u32, answer f64 x count
//   kAreFrequentReply: count u32, bits packed LSB-first, (count+7)/8 bytes
//   kInfo (request):  name string
//   kInfoReply:       algorithm string, k u32, eps f64, delta f64,
//                     scope u8, answer u8, n u64, d u64, summary_bits u64
//   kRefresh (request):   name string
//   kSubscribe (request): name string, min_epoch u64, timeout_ms u32
//                         (timeout_ms <= kMaxSubscribeTimeoutMs)
//   kRefreshReply / kSubscribeReply: epoch u64, rows_seen u64
//       (a subscribe reply always reports the FINAL state -- on timeout
//       epoch <= min_epoch, which is how clients tell the two apart)
//   kHealth (request):    empty body
//   kHealthReply:         pod_count u32 (<= kMaxPodsPerReply), then per
//                         pod: health u8 (0 healthy, 1 suspect, 2 down),
//                         consecutive_failures u32, inflight u64,
//                         resident_bytes u64. One row per pod behind the
//                         serving router, in pod-index order -- what a
//                         load balancer or operator polls to see the
//                         replica set's failure/backoff state (see
//                         serve/router.h for how the states are driven).
//   kStats (request):     empty body
//   kStatsReply:          the server's metrics registry snapshot
//                         (src/obs/metrics.h), three sections in order:
//       counter_count u32 (<= kMaxMetricsPerReply), then per counter:
//           name string, value u64
//       gauge_count u32 (<= kMaxMetricsPerReply), then per gauge:
//           name string, value i64
//       histogram_count u32 (<= kMaxMetricsPerReply), then per
//       histogram: name string, count u64, sum u64, max u64,
//           bucket_count u32 (<= kMaxHistogramBuckets),
//           bucket u64 x bucket_count  (log-linear layout of
//           obs::BucketIndex, trimmed at the last nonzero bucket --
//           clients derive p50/p90/p99 with obs::HistogramSnapshot)
//   kError:           header.status = Status, body = message string
//
// Version note: kRefresh/kSubscribe (streaming ingest, src/ingest/),
// kHealth (replicated serving, PR 7) and kStats (observability, PR 8)
// were added without a version bump
// -- the protocol version stays 1 because nothing existing changed
// shape; an older peer simply rejects the new opcodes as a malformed
// header and hangs up, which is the defined behavior for any unknown
// opcode.
//
// Decoding follows the ReadSketch validate-everything discipline: every
// header field is checked (magic, version, known opcode, length cap)
// before any body byte is read, a reader consumes exactly header.length
// body bytes and never trusts a declared count without bounding it, and
// a body must be fully consumed -- trailing bytes are a malformed frame.
// Codec functions are pure buffer transforms with no transport
// dependency; serve/transport.h adds ReadFrame/WriteFrame over a
// Transport.
//
// Pipelining contract (PR 9, the event-loop server in serve/reactor.h):
// a client may write any number of request frames back-to-back without
// waiting for replies. The server answers every request with exactly one
// reply frame, in request order -- requests may execute concurrently
// server-side, but reply N is never written before reply N-1, so a
// client matches replies to requests by counting. Two per-connection
// bounds apply: the server stops reading a connection once its
// outstanding (unanswered) frames reach the server's outstanding cap
// (resuming as replies drain, so a client that also drains never
// deadlocks), and a connection whose client stops reading replies is
// hung up once the queued reply bytes exceed the server's outbound cap.
// The first malformed frame still kills the connection: framing is lost,
// so the server answers the requests already read, appends one kError
// frame, and closes -- bytes after the malformed frame are never
// interpreted. FrameDecoder below is the incremental form of this
// boundary: it accepts exactly the frames the blocking
// ReadFrame/DecodeFrameHeader path accepts, byte for byte.
#ifndef IFSKETCH_SERVE_PROTOCOL_H_
#define IFSKETCH_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ifsketch::serve {

inline constexpr char kFrameMagic[4] = {'I', 'F', 'S', 'P'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on a frame body; a declared length beyond this is
/// malformed (rejected before any allocation or body read).
inline constexpr std::uint32_t kMaxBodyBytes = 16u << 20;
/// Upper bound on queries fused into one request frame.
inline constexpr std::uint32_t kMaxQueriesPerRequest = 1u << 20;
/// Upper bound on a kSubscribe wait (10 minutes); a larger declared
/// timeout is a malformed frame, so one client cannot park a connection
/// thread forever.
inline constexpr std::uint32_t kMaxSubscribeTimeoutMs = 600000;
/// Upper bound on pod rows in a kHealthReply (matches the server's own
/// --pods cap with headroom); a larger declared count is malformed.
inline constexpr std::uint32_t kMaxPodsPerReply = 4096;
/// Upper bound on metrics per kStatsReply section; a larger declared
/// count is malformed.
inline constexpr std::uint32_t kMaxMetricsPerReply = 65536;
/// Upper bound on buckets per kStatsReply histogram row (covers
/// obs::kHistogramBuckets = 252 with headroom for layout growth).
inline constexpr std::uint32_t kMaxHistogramBuckets = 512;

/// Frame kinds. Requests have the high bit clear, replies set it; kError
/// answers any request whose dispatch fails.
enum class Opcode : std::uint8_t {
  kEstimate = 0x01,
  kAreFrequent = 0x02,
  kInfo = 0x03,
  kRefresh = 0x04,
  kSubscribe = 0x05,
  kHealth = 0x06,
  kStats = 0x07,
  kEstimateReply = 0x81,
  kAreFrequentReply = 0x82,
  kInfoReply = 0x83,
  kRefreshReply = 0x84,
  kSubscribeReply = 0x85,
  kHealthReply = 0x86,
  kStatsReply = 0x87,
  kError = 0xff,
};

/// Why a request failed; carried in the kError frame's header.status.
enum class Status : std::uint8_t {
  kOk = 0,
  kUnknownSketch = 1,   ///< name not registered on any pod
  kBadRequest = 2,      ///< body undecodable or limits exceeded
  kUnsupportedQuery = 3,///< wrong answer flavor / query size / attr range
  kInternal = 4,        ///< sketch registered but unloadable, etc.
};

/// Validated frame header (magic/version already checked and dropped).
struct FrameHeader {
  Opcode opcode = Opcode::kError;
  std::uint8_t status = 0;
  std::uint32_t body_length = 0;
};

/// A decoded frame: header plus exactly header.body_length body bytes.
struct Frame {
  FrameHeader header;
  std::string body;
};

/// One batched query request (kEstimate or kAreFrequent): the target
/// sketch name and each query's ascending attribute indices.
struct QueryRequest {
  std::string sketch;
  std::vector<std::vector<std::uint32_t>> queries;
};

/// kRefreshReply / kSubscribeReply payload: which snapshot the sketch is
/// serving (mirrors serve::SnapshotState; epoch 0 = nothing published).
struct SnapshotInfo {
  std::uint64_t epoch = 0;
  std::uint64_t rows_seen = 0;
};

/// kSubscribe payload: block until the sketch's epoch exceeds min_epoch
/// or timeout_ms elapses (the reply carries the final state either way).
struct SubscribeRequest {
  std::string sketch;
  std::uint64_t min_epoch = 0;
  std::uint32_t timeout_ms = 0;
};

/// One kHealthReply row: a pod's health/load state as the router sees
/// it. health is 0 healthy, 1 suspect (recent failures, still tried
/// first-choice traffic last), 2 down (skipped until its backoff probe).
struct PodHealthInfo {
  std::uint8_t health = 0;
  std::uint32_t consecutive_failures = 0;
  std::uint64_t inflight = 0;        ///< query batches executing right now
  std::uint64_t resident_bytes = 0;  ///< pod's resident engine bytes
};

/// One kStatsReply counter or gauge row (value type differs).
struct StatsCounter {
  std::string name;
  std::uint64_t value = 0;
};
struct StatsGauge {
  std::string name;
  std::int64_t value = 0;
};

/// One kStatsReply histogram row: the wire form of an
/// obs::HistogramSnapshot (count/sum/max plus the trimmed bucket
/// vector). Decoding validates sizes only, not cross-field arithmetic
/// -- count and the bucket sum are reported independently by a racing
/// snapshot and may legitimately differ by in-flight records.
struct StatsHistogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;
};

/// kStatsReply payload: the full registry snapshot.
struct StatsReply {
  std::vector<StatsCounter> counters;
  std::vector<StatsGauge> gauges;
  std::vector<StatsHistogram> histograms;
};

/// kInfoReply payload: the served sketch's public context.
struct SketchInfo {
  std::string algorithm;
  std::uint32_t k = 0;
  double eps = 0.0;
  double delta = 0.0;
  std::uint8_t scope = 0;   // 0 = for-all, 1 = for-each
  std::uint8_t answer = 0;  // 0 = indicator, 1 = estimator
  std::uint64_t n = 0;
  std::uint64_t d = 0;
  std::uint64_t summary_bits = 0;
};

// ------------------------------------------------------------- encoding

/// Appends a complete frame (header + body) to `out`. Returns false when
/// the body exceeds kMaxBodyBytes (nothing is appended).
bool EncodeFrame(Opcode opcode, std::uint8_t status, std::string_view body,
                 std::string* out);

/// Writes just the 12-byte header for a body of `body_length` bytes into
/// `out[0..kFrameHeaderBytes)`. The scatter/gather write path (reactor,
/// pipelined client) encodes headers and bodies into separate buffers
/// and hands both to writev, so reply payloads are never copied into a
/// staging buffer. Returns false when body_length exceeds kMaxBodyBytes
/// (nothing is written).
bool EncodeFrameHeader(Opcode opcode, std::uint8_t status,
                       std::uint32_t body_length, char* out);

/// Body encoders. EncodeQueryRequest returns false when the request
/// exceeds protocol limits (name > 64 KiB, too many queries, a query
/// with > 65535 attributes).
bool EncodeQueryRequest(const QueryRequest& request, std::string* body);
void EncodeEstimateReply(const std::vector<double>& answers,
                         std::string* body);
void EncodeAreFrequentReply(const std::vector<bool>& answers,
                            std::string* body);
bool EncodeInfoRequest(std::string_view sketch, std::string* body);
void EncodeInfoReply(const SketchInfo& info, std::string* body);
bool EncodeRefreshRequest(std::string_view sketch, std::string* body);
/// False when the name is oversized or the timeout exceeds
/// kMaxSubscribeTimeoutMs.
bool EncodeSubscribeRequest(const SubscribeRequest& request,
                            std::string* body);
/// Shared payload of kRefreshReply and kSubscribeReply.
void EncodeSnapshotReply(const SnapshotInfo& info, std::string* body);
/// False when there are more than kMaxPodsPerReply rows.
bool EncodeHealthReply(const std::vector<PodHealthInfo>& pods,
                       std::string* body);
/// False when a section exceeds kMaxMetricsPerReply, a name exceeds
/// 64 KiB, or a histogram carries more than kMaxHistogramBuckets
/// buckets.
bool EncodeStatsReply(const StatsReply& reply, std::string* body);
void EncodeError(Status status, std::string_view message, std::string* out);
/// Body-only form of EncodeError for callers that frame separately (the
/// reactor's reply slots). Oversized messages are truncated, not failed.
void EncodeErrorBody(std::string_view message, std::string* body);

// ------------------------------------------------------------- decoding

/// Parses and validates a 12-byte header buffer: magic, version, known
/// opcode, body length cap. nullopt on anything malformed.
std::optional<FrameHeader> DecodeFrameHeader(const char* data,
                                             std::size_t size);

/// Body decoders; each consumes the entire body and returns nullopt on
/// truncation, limit violations, or trailing bytes.
std::optional<QueryRequest> DecodeQueryRequest(std::string_view body);
std::optional<std::vector<double>> DecodeEstimateReply(std::string_view body);
std::optional<std::vector<bool>> DecodeAreFrequentReply(
    std::string_view body);
std::optional<std::string> DecodeInfoRequest(std::string_view body);
std::optional<SketchInfo> DecodeInfoReply(std::string_view body);
std::optional<std::string> DecodeRefreshRequest(std::string_view body);
std::optional<SubscribeRequest> DecodeSubscribeRequest(std::string_view body);
std::optional<SnapshotInfo> DecodeSnapshotReply(std::string_view body);
std::optional<std::vector<PodHealthInfo>> DecodeHealthReply(
    std::string_view body);
std::optional<StatsReply> DecodeStatsReply(std::string_view body);
std::optional<std::string> DecodeErrorMessage(std::string_view body);

// -------------------------------------------------- incremental decode

/// Incremental frame decoder for non-blocking reads: feed whatever bytes
/// the socket produced, pull out complete frames. Accept/reject parity
/// with the blocking path is the invariant the fuzz test enforces -- a
/// byte stream chopped at any boundaries yields exactly the frames (and
/// exactly the malformed verdict) that ReadFrame would produce reading
/// the same stream whole. Header validation happens the moment byte 12
/// arrives, before any body allocation, so a hostile length field is
/// rejected without reserving memory for it.
///
/// Usage: call Consume with unread input; it eats bytes until a frame
/// completes (kFrame -- take() the result, call again with the rest),
/// input runs out (kNeedMore), or the header fails validation
/// (kMalformed -- terminal; framing is lost and the connection must
/// close; further Consume calls eat nothing and return kMalformed).
class FrameDecoder {
 public:
  enum class Step {
    kNeedMore,   ///< all input consumed, no complete frame yet
    kFrame,      ///< one frame completed; take() it, re-Consume the rest
    kMalformed,  ///< header invalid (bad magic/version/opcode/length)
  };

  /// Consumes up to `size` bytes from `data`; `*consumed` is always set
  /// to the number of bytes eaten (on kFrame, bytes beyond the completed
  /// frame are left for the next call).
  Step Consume(const char* data, std::size_t size, std::size_t* consumed);

  /// The frame completed by the last kFrame step. Valid until the next
  /// Consume call.
  Frame take() { return std::move(frame_); }

  /// True when the stream ends inside a frame -- EOF here is the
  /// mid-frame hangup ReadFrame reports as kMalformed, while EOF at a
  /// frame boundary is a clean close.
  bool mid_frame() const {
    return state_ == State::kBody || (state_ == State::kHeader && have_ > 0);
  }

 private:
  enum class State { kHeader, kBody, kMalformed };

  State state_ = State::kHeader;
  std::size_t have_ = 0;  // bytes of header_ or frame_.body filled so far
  char header_[kFrameHeaderBytes];
  Frame frame_;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_PROTOCOL_H_
