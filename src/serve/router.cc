#include "serve/router.h"

#include <utility>

#include "util/check.h"

namespace ifsketch::serve {
namespace {

/// FNV-1a, 64-bit: stable across platforms, processes and restarts, so
/// shard assignment is a pure function of the name.
std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Router::Router(std::vector<std::shared_ptr<SketchPod>> pods)
    : pods_(std::move(pods)) {
  IFSKETCH_CHECK(!pods_.empty());
  for (const auto& pod : pods_) IFSKETCH_CHECK(pod != nullptr);
}

std::size_t Router::ShardOf(const std::string& name) const {
  return static_cast<std::size_t>(Fnv1a64(name) % pods_.size());
}

SketchPod& Router::PodFor(const std::string& name) {
  return *pods_[ShardOf(name)];
}

bool Router::AddSketch(const std::string& name, const std::string& path) {
  return PodFor(name).AddSketch(name, path);
}

bool Router::AddStream(const std::string& name) {
  return PodFor(name).AddStream(name);
}

std::uint64_t Router::Publish(const std::string& name,
                              std::shared_ptr<const Engine> engine,
                              std::uint64_t rows_seen) {
  return PodFor(name).Publish(name, std::move(engine), rows_seen);
}

std::shared_ptr<const Engine> Router::Acquire(const std::string& name) {
  return PodFor(name).Acquire(name);
}

RouteStatus Router::EstimateMany(const std::string& name,
                                 const std::vector<core::Itemset>& ts,
                                 std::vector<double>* answers) {
  return Route(name, nullptr, ts, answers, nullptr);
}

RouteStatus Router::AreFrequent(const std::string& name,
                                const std::vector<core::Itemset>& ts,
                                std::vector<bool>* answers) {
  return Route(name, nullptr, ts, nullptr, answers);
}

RouteStatus Router::EstimateMany(const std::string& name,
                                 std::shared_ptr<const Engine> engine,
                                 const std::vector<core::Itemset>& ts,
                                 std::vector<double>* answers) {
  return Route(name, std::move(engine), ts, answers, nullptr);
}

RouteStatus Router::AreFrequent(const std::string& name,
                                std::shared_ptr<const Engine> engine,
                                const std::vector<core::Itemset>& ts,
                                std::vector<bool>* answers) {
  return Route(name, std::move(engine), ts, nullptr, answers);
}

CoalesceStats Router::coalesce_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Router::Slot& Router::SlotFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(slots_mu_);
  return slots_[name];  // std::map nodes are address-stable
}

RouteStatus Router::Route(const std::string& name,
                          std::shared_ptr<const Engine> engine,
                          const std::vector<core::Itemset>& ts,
                          std::vector<double>* estimates,
                          std::vector<bool>* bits) {
  SketchPod& pod = PodFor(name);
  // Slots live forever once created (their addresses must stay stable
  // for waiting clients), so refuse to mint one for a name the shard
  // does not even catalog -- otherwise a peer cycling through made-up
  // names would grow slots_ without bound. A pre-acquired engine is
  // proof of cataloging.
  if (engine == nullptr && !pod.Knows(name)) {
    return RouteStatus::kUnknownSketch;
  }
  Slot& slot = SlotFor(name);
  Pending self;
  self.ts = &ts;
  self.estimates = estimates;
  self.bits = bits;
  self.engine = std::move(engine);

  std::unique_lock<std::mutex> lock(slot.mu);
  if (slot.busy) {
    // A batch is in flight: queue up and let its leader fuse us into the
    // next one. Answers and status are written before `done` is set, and
    // both sides synchronize on slot.mu.
    slot.queue.push_back(&self);
    slot.cv.wait(lock, [&self] { return self.done; });
    return self.status;
  }

  // Leader: nothing in flight, so execute immediately (and alone -- a
  // lone request must not wait for company that may never come).
  slot.busy = true;
  lock.unlock();
  RunFused(name, pod, {&self}, estimates != nullptr);

  // Drain whatever queued while the batch ran, as fused batches, until
  // the queue is empty; then hand the slot back.
  lock.lock();
  while (!slot.queue.empty()) {
    std::vector<Pending*> drained;
    drained.swap(slot.queue);
    lock.unlock();
    std::vector<Pending*> fused_estimates;
    std::vector<Pending*> fused_bits;
    for (Pending* p : drained) {
      (p->estimates != nullptr ? fused_estimates : fused_bits).push_back(p);
    }
    if (!fused_estimates.empty()) RunFused(name, pod, fused_estimates, true);
    if (!fused_bits.empty()) RunFused(name, pod, fused_bits, false);
    lock.lock();
    for (Pending* p : drained) p->done = true;
    slot.cv.notify_all();
  }
  slot.busy = false;
  return self.status;
}

void Router::RunFused(const std::string& name, SketchPod& pod,
                      const std::vector<Pending*>& batch,
                      bool estimator_flavor) {
  // Requests that arrived with a pre-acquired engine use it; the rest
  // share one Acquire. Any live engine for the name answers
  // identically (reloads deserialize the same file).
  std::shared_ptr<const Engine> fallback;
  bool fallback_tried = false;

  // Per-request validation: a request with any unanswerable query fails
  // whole (never partially) and is excluded from the fused batch, so one
  // bad client cannot abort the engine for everyone else.
  std::vector<Pending*> runnable;
  std::vector<core::Itemset> fused;
  const Engine* exec = nullptr;
  for (Pending* p : batch) {
    const Engine* engine = p->engine.get();
    if (engine == nullptr) {
      if (!fallback_tried) {
        fallback = pod.Acquire(name);
        fallback_tried = true;
      }
      engine = fallback.get();
    }
    if (engine == nullptr) {
      p->status = pod.Knows(name) ? RouteStatus::kLoadFailed
                                  : RouteStatus::kUnknownSketch;
      continue;
    }
    bool ok = !estimator_flavor ||
              engine->params().answer == core::Answer::kEstimator;
    for (const core::Itemset& t : *p->ts) {
      if (t.universe() != engine->d() ||
          !engine->supports_query_size(t.size())) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      p->status = RouteStatus::kUnsupportedQuery;
      continue;
    }
    runnable.push_back(p);
    exec = engine;
    fused.insert(fused.end(), p->ts->begin(), p->ts->end());
  }
  if (!runnable.empty()) {
    // One engine call answers every runnable request. Batched kernels
    // are bit-identical per answer slot whatever the batch composition,
    // so each scattered slice equals the request's serial answer.
    if (estimator_flavor) {
      std::vector<double> answers;
      exec->estimate_many(fused, &answers);
      std::size_t offset = 0;
      for (Pending* p : runnable) {
        p->estimates->assign(answers.begin() + static_cast<std::ptrdiff_t>(offset),
                             answers.begin() + static_cast<std::ptrdiff_t>(
                                                   offset + p->ts->size()));
        p->status = RouteStatus::kOk;
        offset += p->ts->size();
      }
    } else {
      std::vector<bool> answers;
      exec->are_frequent(fused, &answers);
      std::size_t offset = 0;
      for (Pending* p : runnable) {
        p->bits->assign(answers.begin() + static_cast<std::ptrdiff_t>(offset),
                        answers.begin() + static_cast<std::ptrdiff_t>(
                                              offset + p->ts->size()));
        p->status = RouteStatus::kOk;
        offset += p->ts->size();
      }
    }
    pod.CountQueries(name, fused.size());
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.batches;
  stats_.requests += batch.size();
  if (runnable.size() > 1) stats_.fused += runnable.size();
}

}  // namespace ifsketch::serve
