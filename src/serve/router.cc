#include "serve/router.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace ifsketch::serve {
namespace {

/// FNV-1a, 64-bit: stable across platforms, processes and restarts, so
/// replica placement is a pure function of the name.
std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer: the avalanche step that turns (name hash ^
/// pod seed) into an HRW score. Full 64-bit avalanche means ranking by
/// score is indistinguishable from a per-name random permutation of the
/// pods -- which is what gives rendezvous hashing its even spread and
/// minimal-reshuffle property.
std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Router::Router(std::vector<std::shared_ptr<SketchPod>> pods,
               RouterOptions options)
    : pods_(std::move(pods)), options_(options) {
  IFSKETCH_CHECK(!pods_.empty());
  for (const auto& pod : pods_) IFSKETCH_CHECK(pod != nullptr);
  replication_ = std::clamp<std::size_t>(options_.replication, 1,
                                         pods_.size());
  if (options_.fail_threshold < 1) options_.fail_threshold = 1;
  if (options_.probe_backoff.count() < 1) {
    options_.probe_backoff = std::chrono::milliseconds(1);
  }
  if (options_.probe_backoff_max < options_.probe_backoff) {
    options_.probe_backoff_max = options_.probe_backoff;
  }
  pod_states_.resize(pods_.size());
  for (PodState& state : pod_states_) state.backoff = options_.probe_backoff;

  registry_ = options_.registry != nullptr ? options_.registry
                                           : &obs::MetricsRegistry::Default();
  coalesce_batches_ = registry_->GetCounter("serve_coalesce_batches_total");
  coalesce_requests_ = registry_->GetCounter("serve_coalesce_requests_total");
  coalesce_fused_ = registry_->GetCounter("serve_coalesce_fused_total");
  coalesce_depth_ = registry_->GetHistogram("serve_coalesce_depth");
  coalesce_baseline_.batches = coalesce_batches_->Value();
  coalesce_baseline_.requests = coalesce_requests_->Value();
  coalesce_baseline_.fused = coalesce_fused_->Value();
  pod_metrics_.reserve(pods_.size());
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    const std::string pod = std::to_string(i);
    pod_metrics_.push_back(PodMetrics{
        registry_->GetGauge(
            obs::LabeledName("serve_pod_inflight", "pod", pod)),
        registry_->GetCounter(obs::LabeledName(
            "serve_pod_health_transitions_total", "pod", pod)),
        registry_->GetCounter(
            obs::LabeledName("serve_pod_probes_total", "pod", pod)),
        registry_->GetCounter(
            obs::LabeledName("serve_pod_failovers_total", "pod", pod)),
    });
  }
}

std::vector<std::size_t> Router::ReplicasOf(const std::string& name) const {
  const std::uint64_t h = Fnv1a64(name);
  std::vector<std::uint64_t> score(pods_.size());
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    score[i] = Mix64(h ^ Mix64(static_cast<std::uint64_t>(i) + 1));
  }
  std::vector<std::size_t> order(pods_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&score](std::size_t a, std::size_t b) {
              if (score[a] != score[b]) return score[a] > score[b];
              return a < b;  // ties (vanishingly rare) break by index
            });
  order.resize(replication_);
  return order;
}

std::size_t Router::ShardOf(const std::string& name) const {
  return ReplicasOf(name).front();
}

SketchPod& Router::PodFor(const std::string& name) {
  return *pods_[ShardOf(name)];
}

bool Router::AddSketch(const std::string& name, const std::string& path) {
  bool ok = true;
  for (std::size_t idx : ReplicasOf(name)) {
    ok = pods_[idx]->AddSketch(name, path) && ok;
  }
  return ok;
}

bool Router::AddStream(const std::string& name) {
  bool ok = true;
  for (std::size_t idx : ReplicasOf(name)) {
    ok = pods_[idx]->AddStream(name) && ok;
  }
  return ok;
}

std::uint64_t Router::Publish(const std::string& name,
                              std::shared_ptr<const Engine> engine,
                              std::uint64_t rows_seen) {
  // Every replica gets the same snapshot shared_ptr, so replicas stay in
  // epoch lockstep and failover can never serve a different snapshot.
  std::uint64_t epoch = 0;
  for (std::size_t idx : ReplicasOf(name)) {
    epoch = std::max(epoch, pods_[idx]->Publish(name, engine, rows_seen));
  }
  return epoch;
}

bool Router::Knows(const std::string& name) const {
  for (std::size_t idx : ReplicasOf(name)) {
    if (pods_[idx]->Knows(name)) return true;
  }
  return false;
}

std::optional<SnapshotState> Router::SnapshotOf(
    const std::string& name) const {
  for (std::size_t idx : ReplicasOf(name)) {
    auto state = pods_[idx]->SnapshotOf(name);
    if (state.has_value()) return state;
  }
  return std::nullopt;
}

bool Router::WaitForEpoch(const std::string& name, std::uint64_t min_epoch,
                          std::chrono::milliseconds timeout,
                          SnapshotState* out) {
  // Publish hits every replica with the same epoch, so waiting on any
  // replica that catalogs the name observes every publication.
  for (std::size_t idx : ReplicasOf(name)) {
    if (pods_[idx]->Knows(name)) {
      return pods_[idx]->WaitForEpoch(name, min_epoch, timeout, out);
    }
  }
  return false;
}

std::vector<std::size_t> Router::SelectionOrder(const std::string& name) {
  std::vector<std::size_t> replicas = ReplicasOf(name);
  // A single replica is always attempted no matter its health: skipping
  // it could only turn a maybe-failure into a certain one. This also
  // keeps replication=1 behaviorally identical to the old router.
  if (replicas.size() == 1) return replicas;

  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<std::size_t> probe, healthy, suspect, parked;
  for (std::size_t idx : replicas) {
    PodState& state = pod_states_[idx];
    switch (state.health) {
      case PodHealth::kHealthy:
        healthy.push_back(idx);
        break;
      case PodHealth::kSuspect:
        suspect.push_back(idx);
        break;
      case PodHealth::kDown:
        if (now >= state.next_probe) {
          // Claim the probe window right here so concurrent requests
          // do not gang up on a pod that is likely still down; the
          // requester that got this order performs the one probe.
          state.next_probe = now + state.backoff;
          ++state.probes;
          pod_metrics_[idx].probes->Add();
          probe.push_back(idx);
        } else {
          parked.push_back(idx);
        }
        break;
    }
  }
  // Least-loaded healthy replicas first; full ties rotate so serial
  // traffic on one hot name alternates across its replicas instead of
  // pinning the first. (A failed probe costs one refused Acquire, so
  // due probes go ahead of healthy pods -- that is what lets a revived
  // pod rejoin without a separate prober thread.)
  std::stable_sort(healthy.begin(), healthy.end(),
                   [this](std::size_t a, std::size_t b) {
                     return pod_states_[a].inflight <
                            pod_states_[b].inflight;
                   });
  if (healthy.size() > 1 && pod_states_[healthy.front()].inflight ==
                                pod_states_[healthy.back()].inflight) {
    std::rotate(healthy.begin(),
                healthy.begin() + static_cast<std::ptrdiff_t>(
                                      tie_rotor_++ % healthy.size()),
                healthy.end());
  }

  std::vector<std::size_t> order;
  order.reserve(replicas.size());
  order.insert(order.end(), probe.begin(), probe.end());
  order.insert(order.end(), healthy.begin(), healthy.end());
  order.insert(order.end(), suspect.begin(), suspect.end());
  // Down pods whose backoff has not elapsed come dead last: attempted
  // only when every better replica already failed this request, so a
  // full outage still tries everything rather than failing outright.
  order.insert(order.end(), parked.begin(), parked.end());
  return order;
}

void Router::ReportSuccess(std::size_t pod) {
  std::lock_guard<std::mutex> lock(health_mu_);
  PodState& state = pod_states_[pod];
  state.consecutive_failures = 0;
  if (state.health != PodHealth::kHealthy) {
    pod_metrics_[pod].health_transitions->Add();
  }
  state.health = PodHealth::kHealthy;
  state.backoff = options_.probe_backoff;
}

void Router::ReportFailure(std::size_t pod) {
  std::lock_guard<std::mutex> lock(health_mu_);
  PodState& state = pod_states_[pod];
  ++state.failovers;
  pod_metrics_[pod].failovers->Add();
  ++state.consecutive_failures;
  const PodHealth before = state.health;
  if (state.consecutive_failures >= options_.fail_threshold) {
    if (state.health == PodHealth::kDown) {
      // Another failed probe: keep backing off, up to the cap.
      state.backoff = std::min(state.backoff * 2, options_.probe_backoff_max);
    } else {
      state.health = PodHealth::kDown;
      state.backoff = options_.probe_backoff;
    }
    state.next_probe = std::chrono::steady_clock::now() + state.backoff;
  } else {
    state.health = PodHealth::kSuspect;
  }
  if (state.health != before) pod_metrics_[pod].health_transitions->Add();
}

void Router::AddInflight(std::size_t pod, std::int64_t delta) {
  if (pod >= pod_states_.size()) return;
  pod_metrics_[pod].inflight->Add(delta);
  std::lock_guard<std::mutex> lock(health_mu_);
  pod_states_[pod].inflight += static_cast<std::uint64_t>(delta);
}

std::vector<PodHealthSnapshot> Router::pod_health() const {
  // Pod byte counters live behind each pod's own mutex; read them before
  // taking health_mu_ so the two locks never nest.
  std::vector<std::uint64_t> resident(pods_.size());
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    resident[i] = pods_[i]->resident_bytes();
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<PodHealthSnapshot> out(pods_.size());
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    const PodState& state = pod_states_[i];
    out[i].health = state.health;
    out[i].consecutive_failures =
        static_cast<std::uint32_t>(state.consecutive_failures);
    out[i].inflight = state.inflight;
    out[i].resident_bytes = resident[i];
    out[i].failovers = state.failovers;
    out[i].probes = state.probes;
  }
  return out;
}

std::shared_ptr<const Engine> Router::Acquire(const std::string& name,
                                              std::size_t* served_pod) {
  // The acquire stage covers the whole failover walk: a request that
  // limps across refusing replicas shows up here, not in kRoute.
  obs::StageTimer acquire_timer(obs::Stage::kAcquire);
  if (served_pod != nullptr) *served_pod = kNoPod;
  for (std::size_t idx : SelectionOrder(name)) {
    SketchPod& pod = *pods_[idx];
    auto engine = pod.Acquire(name);
    if (engine != nullptr) {
      ReportSuccess(idx);
      if (served_pod != nullptr) *served_pod = idx;
      return engine;
    }
    // Only a genuine refusal counts against the pod: a name it does not
    // catalog, or a stream with nothing published yet, says nothing
    // about the pod's own health.
    if (pod.Knows(name) && !pod.IsUnpublishedStream(name)) {
      ReportFailure(idx);
    }
  }
  return nullptr;
}

RouteStatus Router::EstimateMany(const std::string& name,
                                 const std::vector<core::Itemset>& ts,
                                 std::vector<double>* answers) {
  return Route(name, nullptr, kNoPod, ts, answers, nullptr);
}

RouteStatus Router::AreFrequent(const std::string& name,
                                const std::vector<core::Itemset>& ts,
                                std::vector<bool>* answers) {
  return Route(name, nullptr, kNoPod, ts, nullptr, answers);
}

RouteStatus Router::EstimateMany(const std::string& name,
                                 std::shared_ptr<const Engine> engine,
                                 const std::vector<core::Itemset>& ts,
                                 std::vector<double>* answers,
                                 std::size_t engine_pod) {
  return Route(name, std::move(engine), engine_pod, ts, answers, nullptr);
}

RouteStatus Router::AreFrequent(const std::string& name,
                                std::shared_ptr<const Engine> engine,
                                const std::vector<core::Itemset>& ts,
                                std::vector<bool>* answers,
                                std::size_t engine_pod) {
  return Route(name, std::move(engine), engine_pod, ts, nullptr, answers);
}

CoalesceStats Router::coalesce_stats() const {
  CoalesceStats stats;
  stats.batches = coalesce_batches_->Value() - coalesce_baseline_.batches;
  stats.requests = coalesce_requests_->Value() - coalesce_baseline_.requests;
  stats.fused = coalesce_fused_->Value() - coalesce_baseline_.fused;
  return stats;
}

Router::Slot& Router::SlotFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(slots_mu_);
  return slots_[name];  // std::map nodes are address-stable
}

RouteStatus Router::Route(const std::string& name,
                          std::shared_ptr<const Engine> engine,
                          std::size_t engine_pod,
                          const std::vector<core::Itemset>& ts,
                          std::vector<double>* estimates,
                          std::vector<bool>* bits) {
  // Slots live forever once created (their addresses must stay stable
  // for waiting clients), so refuse to mint one for a name no replica
  // even catalogs -- otherwise a peer cycling through made-up names
  // would grow slots_ without bound. A pre-acquired engine is proof of
  // cataloging.
  if (engine == nullptr && !Knows(name)) {
    return RouteStatus::kUnknownSketch;
  }
  Slot& slot = SlotFor(name);
  Pending self;
  self.ts = &ts;
  self.estimates = estimates;
  self.bits = bits;
  self.engine = std::move(engine);
  self.engine_pod = engine_pod;

  std::unique_lock<std::mutex> lock(slot.mu);
  if (slot.busy) {
    // A batch is in flight: queue up and let its leader fuse us into the
    // next one. Answers and status are written before `done` is set, and
    // both sides synchronize on slot.mu.
    slot.queue.push_back(&self);
    slot.cv.wait(lock, [&self] { return self.done; });
    return self.status;
  }

  // Leader: nothing in flight, so execute immediately (and alone -- a
  // lone request must not wait for company that may never come).
  slot.busy = true;
  lock.unlock();
  RunFused(name, {&self}, estimates != nullptr);

  // Drain whatever queued while the batch ran, as fused batches, until
  // the queue is empty; then hand the slot back.
  lock.lock();
  while (!slot.queue.empty()) {
    std::vector<Pending*> drained;
    drained.swap(slot.queue);
    lock.unlock();
    std::vector<Pending*> fused_estimates;
    std::vector<Pending*> fused_bits;
    for (Pending* p : drained) {
      (p->estimates != nullptr ? fused_estimates : fused_bits).push_back(p);
    }
    if (!fused_estimates.empty()) RunFused(name, fused_estimates, true);
    if (!fused_bits.empty()) RunFused(name, fused_bits, false);
    lock.lock();
    for (Pending* p : drained) p->done = true;
    slot.cv.notify_all();
  }
  slot.busy = false;
  return self.status;
}

void Router::RunFused(const std::string& name,
                      const std::vector<Pending*>& batch,
                      bool estimator_flavor) {
  // Requests that arrived with a pre-acquired engine use it; the rest
  // share one replica-failover Acquire. Any live engine for the name
  // answers identically: every replica of a file-backed sketch opens
  // the same file, and every replica of a stream name holds the same
  // published snapshot.
  std::shared_ptr<const Engine> fallback;
  std::size_t fallback_pod = kNoPod;
  bool fallback_tried = false;

  // Per-request validation: a request with any unanswerable query fails
  // whole (never partially) and is excluded from the fused batch, so one
  // bad client cannot abort the engine for everyone else.
  std::vector<Pending*> runnable;
  std::vector<core::Itemset> fused;
  const Engine* exec = nullptr;
  std::size_t exec_pod = kNoPod;
  for (Pending* p : batch) {
    const Engine* engine = p->engine.get();
    std::size_t engine_pod = p->engine_pod;
    if (engine == nullptr) {
      if (!fallback_tried) {
        fallback = Acquire(name, &fallback_pod);
        fallback_tried = true;
      }
      engine = fallback.get();
      engine_pod = fallback_pod;
    }
    if (engine == nullptr) {
      p->status = Knows(name) ? RouteStatus::kLoadFailed
                              : RouteStatus::kUnknownSketch;
      continue;
    }
    bool ok = !estimator_flavor ||
              engine->params().answer == core::Answer::kEstimator;
    for (const core::Itemset& t : *p->ts) {
      if (t.universe() != engine->d() ||
          !engine->supports_query_size(t.size())) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      p->status = RouteStatus::kUnsupportedQuery;
      continue;
    }
    runnable.push_back(p);
    exec = engine;
    exec_pod = engine_pod != kNoPod ? engine_pod : ShardOf(name);
    fused.insert(fused.end(), p->ts->begin(), p->ts->end());
  }
  if (!runnable.empty()) {
    // One engine call answers every runnable request. Batched kernels
    // are bit-identical per answer slot whatever the batch composition,
    // so each scattered slice equals the request's serial answer. The
    // in-flight gauge brackets exactly the engine call: that is the load
    // the replica selector wants to spread. The kernel stage lands on
    // the executing leader's trace (see obs/trace.h).
    coalesce_depth_->Record(runnable.size());
    obs::StageTimer kernel_timer(obs::Stage::kKernel);
    AddInflight(exec_pod, +1);
    if (estimator_flavor) {
      std::vector<double> answers;
      exec->estimate_many(fused, &answers);
      std::size_t offset = 0;
      for (Pending* p : runnable) {
        p->estimates->assign(answers.begin() + static_cast<std::ptrdiff_t>(offset),
                             answers.begin() + static_cast<std::ptrdiff_t>(
                                                   offset + p->ts->size()));
        p->status = RouteStatus::kOk;
        offset += p->ts->size();
      }
    } else {
      std::vector<bool> answers;
      exec->are_frequent(fused, &answers);
      std::size_t offset = 0;
      for (Pending* p : runnable) {
        p->bits->assign(answers.begin() + static_cast<std::ptrdiff_t>(offset),
                        answers.begin() + static_cast<std::ptrdiff_t>(
                                              offset + p->ts->size()));
        p->status = RouteStatus::kOk;
        offset += p->ts->size();
      }
    }
    AddInflight(exec_pod, -1);
    pods_[exec_pod]->CountQueries(name, fused.size());
  }

  coalesce_batches_->Add();
  coalesce_requests_->Add(batch.size());
  if (runnable.size() > 1) coalesce_fused_->Add(runnable.size());
}

}  // namespace ifsketch::serve
