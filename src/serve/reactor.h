// Event-loop serving: an epoll reactor front end over the Router.
//
// The blocking path (serve/server.h) spends one thread and one stack per
// connection, which tops out at a few thousand clients. The reactor
// serves the same protocol with a fixed thread budget: N event-loop
// threads multiplex all connections through epoll, so ten thousand idle
// connections cost ten thousand fds and nothing else. Layout:
//
//   - Loop threads (default: hardware concurrency, `--loop-threads` in
//     the binary). Each owns an epoll instance, an eventfd for
//     cross-thread wakeups, and the connections assigned to it
//     round-robin at accept. Only the owning loop thread touches a
//     connection's fd or epoll registration; everything cross-thread
//     moves through the loop's inbox + eventfd. Loop 0 additionally
//     owns the non-blocking listener.
//   - Dispatch workers (a small private pool). Frames decoded by a loop
//     are handed here to run DispatchRequest -- acquire, routing,
//     kernels -- so an event loop never blocks on heavy work. Kernel
//     fan-out inside a request still runs on util::ThreadPool (the
//     router's ParallelFor has the caller participate, so workers make
//     progress rather than wait). A kSubscribe long-poll parks its
//     worker for up to the request timeout; size the pool above the
//     expected concurrent subscriber count if that matters.
//
// Pipelining (the protocol.h contract): each connection keeps an ordered
// deque of reply slots, one per request frame in arrival order. Requests
// may complete on workers in any order -- queries are read-only, answers
// are order-independent -- but the loop only ever writes the completed
// prefix of the deque, so replies hit the wire strictly in request
// order. Completed replies go out with writev, headers and bodies as
// separate spans straight from the slots: batched answers are never
// copied into a staging buffer.
//
// Backpressure, two bounds per connection (ReactorOptions):
//   - max_outstanding / pause_outbound_bytes: the loop stops reading
//     (drops EPOLLIN) while a connection has that many unanswered
//     frames or that many queued reply bytes, resuming as the queue
//     drains. A client that reads its replies never notices.
//   - max_outbound_bytes: a client that stops reading replies while
//     still posting requests gets its connection closed once the queued
//     replies cross this hard cap (serve_backpressure_hangups_total) --
//     bounded server memory, clean hangup, loop thread unaffected.
//
// max_connections is enforced at accept: beyond the cap, accept then
// immediately close, count serve_conns_rejected_total, and keep looping
// -- the listener never blocks and standing connections are unaffected.
//
// Observability (all in the router's registry): per-loop gauges
// serve_loop_connections{loop=} and serve_loop_outbound_bytes{loop=},
// per-loop counter serve_loop_wakeups_total{loop=}, plus the counters
// above. Request metrics and traces are identical to the blocking path
// because both run the same DispatchRequest.
#ifndef IFSKETCH_SERVE_REACTOR_H_
#define IFSKETCH_SERVE_REACTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "serve/router.h"

namespace ifsketch::serve {

struct ReactorOptions {
  /// Event-loop threads; 0 = hardware concurrency.
  std::size_t loop_threads = 0;
  /// Dispatch workers; 0 = max(4, loop threads).
  std::size_t dispatch_threads = 0;
  /// Concurrent-connection cap, enforced by reject-at-accept; 0 = no cap.
  std::size_t max_connections = 0;
  /// Unanswered frames per connection before the loop pauses reads.
  std::size_t max_outstanding = 128;
  /// Queued reply bytes per connection before the loop pauses reads.
  std::size_t pause_outbound_bytes = 4u << 20;
  /// Queued reply bytes per connection before the server hangs up; must
  /// exceed the largest reply a deployment emits (any value >=
  /// kMaxBodyBytes + header is safe). 0 = no cap.
  std::size_t max_outbound_bytes = 64u << 20;
};

/// The reactor server. Listen() binds and starts the threads; the
/// destructor force-closes everything. For a graceful shutdown call
/// StopAccepting() (e.g. from a signal thread) and then WaitDrained()
/// before destruction: standing connections are served until their
/// clients close.
class ReactorServer {
 public:
  explicit ReactorServer(Router& router, ReactorOptions options = {});
  ~ReactorServer();
  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()) and
  /// starts the loop and dispatch threads. False on bind failure; call
  /// at most once.
  bool Listen(std::uint16_t port);

  /// The bound port (after a successful Listen).
  std::uint16_t port() const;

  /// Stops accepting new connections (idempotent, any thread); standing
  /// connections keep being served.
  void StopAccepting();

  /// Blocks until StopAccepting() has been called and every connection
  /// has closed.
  void WaitDrained();

  std::size_t open_connections() const;
  std::uint64_t accepted_total() const;
  std::uint64_t rejected_total() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_REACTOR_H_
