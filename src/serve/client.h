// SketchClient: the request/reply side of the wire protocol.
//
// Wraps any Transport (a TcpConnect socket or one end of a
// LoopbackTransport pair) and speaks one request at a time: encode,
// send, read exactly one reply frame, decode.
//
// Failure semantics -- every nullopt return is classified by
// last_failure(), and the classes behave differently:
//
//   kRequest   The server answered with a kError frame. The connection
//              is healthy and stays usable; the REQUEST was refused
//              (unknown sketch, unsupported query, bad argument --
//              last_status()/last_error() carry the verdict). Never
//              retried: resending the same request gets the same answer.
//   kTransport The connection died or desynced: send failed, the reply
//              never arrived (peer closed, read deadline expired), or
//              the reply was malformed/unexpected/undecodable. The
//              connection is poisoned -- with no way to know whether the
//              server executed the request, resuming mid-stream could
//              misattribute replies, so the transport is never reused
//              (the server enforces the same no-resync rule). A client
//              built over a TransportFactory instead RECONNECTS and
//              retries, under RetryPolicy's budget: bounded attempts,
//              jittered exponential backoff, optional per-attempt read
//              deadline and overall deadline. Retrying re-sends the
//              request on a fresh connection -- safe because every
//              protocol request is a read-only query (at-least-once
//              execution is indistinguishable from exactly-once).
//   kLocal     The request never left the process (it exceeds protocol
//              limits). Nothing was sent; the connection is untouched.
//              Never retried: it can only fail the same way.
//
// Not thread-safe: one client per connection per thread. Open several
// clients for concurrency -- the server coalesces them (see
// serve/router.h).
#ifndef IFSKETCH_SERVE_CLIENT_H_
#define IFSKETCH_SERVE_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace ifsketch::serve {

/// Why the last call returned nullopt (kNone after a success). See the
/// header comment for the exact contract of each class.
enum class FailureKind {
  kNone,       ///< last call succeeded
  kRequest,    ///< server refused the request; connection still fine
  kTransport,  ///< connection lost/desynced; retryable via reconnect
  kLocal,      ///< request violates protocol limits; nothing was sent
};

/// Retry budget for transport-class failures. Only effective on clients
/// constructed with a TransportFactory -- without one there is no way to
/// replace a poisoned connection, so every call is single-attempt.
struct RetryPolicy {
  /// Total tries per call (first attempt included).
  int max_attempts = 3;
  /// Backoff before retry k is initial * multiplier^(k-1), capped at
  /// max_backoff, then jittered to [50%, 100%] of itself so clients that
  /// fail together do not retry in lockstep.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{2000};
  double backoff_multiplier = 2.0;
  /// Per-attempt read deadline (0 = block forever). Needs a transport
  /// that can enforce timeouts (see Transport::SetReadTimeout); sockets
  /// and loopbacks both can. Subscribe callers beware: the deadline must
  /// exceed the subscribe timeout or the server's (legitimate) long poll
  /// reads as a dead peer.
  std::chrono::milliseconds attempt_timeout{0};
  /// Overall wall-clock budget per call, attempts + backoffs included
  /// (0 = unbounded). Also caps each attempt's read deadline.
  std::chrono::milliseconds deadline{0};
  /// Seed for the backoff jitter; fixed seed = reproducible schedule.
  std::uint64_t jitter_seed = 1;
};

/// Makes a fresh connection; nullptr when the endpoint is unreachable
/// (which consumes one attempt and is retried like any transport
/// failure, so a factory can rotate through replica endpoints).
using TransportFactory = std::function<std::unique_ptr<Transport>()>;

/// Blocking protocol client; single-connection, or self-reconnecting
/// with retry when given a factory.
class SketchClient {
 public:
  /// Single-connection client: transport failures poison it permanently
  /// (every later call fails fast) and nothing is ever retried.
  explicit SketchClient(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)), jitter_state_(policy_.jitter_seed) {}

  /// Reconnecting client: connects lazily via `factory` and retries
  /// transport-class failures on a fresh connection per `policy`.
  SketchClient(TransportFactory factory, RetryPolicy policy = RetryPolicy{})
      : factory_(std::move(factory)),
        policy_(policy),
        jitter_state_(policy.jitter_seed) {}

  /// Batched frequency estimates for `queries` (each a list of ascending
  /// attribute indices) against the named sketch. nullopt on any error;
  /// see last_failure() / last_error() / last_status().
  std::optional<std::vector<double>> EstimateMany(
      const std::string& sketch,
      const std::vector<std::vector<std::uint32_t>>& queries);

  /// Batched threshold bits; same shape as EstimateMany.
  std::optional<std::vector<bool>> AreFrequent(
      const std::string& sketch,
      const std::vector<std::vector<std::uint32_t>>& queries);

  /// EstimateMany, pipelined: splits `queries` into up to `frames`
  /// contiguous request frames, writes them all back-to-back in one
  /// vectored write, then reads the replies in order and concatenates
  /// the answers -- bit-identical to the single-frame call, but the
  /// server (reactor path) overlaps the chunks' execution. frames <= 1
  /// degenerates to EstimateMany. A kError on any chunk is a request
  /// failure (the remaining replies are still drained, so the
  /// connection stays usable); transport failures retry whole per the
  /// policy, like every other call.
  std::optional<std::vector<double>> EstimateManyPipelined(
      const std::string& sketch,
      const std::vector<std::vector<std::uint32_t>>& queries,
      std::size_t frames);

  /// The served sketch's public context (algorithm, params, shape).
  std::optional<SketchInfo> Info(const std::string& sketch);

  /// The snapshot currently served under `sketch` (epoch 0 = nothing
  /// published yet for a stream sketch).
  std::optional<SnapshotInfo> Refresh(const std::string& sketch);

  /// Blocks (server-side) until the sketch's epoch exceeds `min_epoch`
  /// or `timeout_ms` elapses, then returns the final state -- compare
  /// epoch with min_epoch to tell satisfied from timed out. timeout_ms
  /// must not exceed kMaxSubscribeTimeoutMs.
  std::optional<SnapshotInfo> Subscribe(const std::string& sketch,
                                        std::uint64_t min_epoch,
                                        std::uint32_t timeout_ms);

  /// Per-pod health/load of the serving router (see protocol.h
  /// PodHealthInfo), pod-index order.
  std::optional<std::vector<PodHealthInfo>> Health();

  /// The server's full metrics snapshot (the STATS opcode): every
  /// registry counter, gauge, and histogram by name. Reconstruct
  /// percentiles client-side with obs::HistogramSnapshot over the
  /// returned buckets -- the same quantile math the server uses.
  std::optional<StatsReply> Stats();

  /// Failure class of the last nullopt return; kNone after a success.
  FailureKind last_failure() const { return last_failure_; }

  /// Attempts the last call consumed (>= 2 means it retried).
  int last_attempts() const { return last_attempts_; }

  /// Human-readable reason for the last nullopt return.
  const std::string& last_error() const { return last_error_; }

  /// Server status of the last kError reply (kOk when the failure was
  /// not a server verdict: transport lost, undecodable reply, local).
  Status last_status() const { return last_status_; }

 private:
  /// Sends `body` under `opcode` and reads one reply, which must be
  /// `expected_reply` or kError; retries transport failures per policy
  /// when a factory is available. nullopt (with last_* set) else.
  std::optional<Frame> RoundTrip(Opcode opcode, const std::string& body,
                                 Opcode expected_reply);

  /// True with a live transport_ (reconnecting via the factory if the
  /// old one is gone or poisoned).
  bool EnsureConnected();

  /// Installs the per-attempt read deadline: attempt_timeout capped by
  /// what remains of the overall deadline that started at `start`.
  void ApplyReadTimeout(std::chrono::steady_clock::time_point start);

  /// The jittered backoff to sleep before retry number `attempt` + 1.
  std::chrono::milliseconds NextBackoff(int attempt);

  /// Records a transport-class failure and poisons the connection.
  void Poison(const char* message);

  std::unique_ptr<Transport> transport_;
  TransportFactory factory_;  // null for single-connection clients
  RetryPolicy policy_;
  bool poisoned_ = false;
  std::uint64_t jitter_state_;
  FailureKind last_failure_ = FailureKind::kNone;
  int last_attempts_ = 0;
  std::string last_error_;
  Status last_status_ = Status::kOk;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_CLIENT_H_
