// SketchClient: the request/reply side of the wire protocol.
//
// Wraps any Transport (a TcpConnect socket or one end of a
// LoopbackTransport pair) and speaks one request at a time: encode,
// send, read exactly one reply frame, decode. A kError reply surfaces as
// nullopt with the server's status/message in last_error(); a transport
// or framing failure poisons the client (every later call fails fast),
// matching the server's own no-resync rule.
//
// Not thread-safe: one client per connection per thread. Open several
// connections for concurrency -- the server coalesces them (see
// serve/router.h).
#ifndef IFSKETCH_SERVE_CLIENT_H_
#define IFSKETCH_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace ifsketch::serve {

/// Blocking protocol client over an owned transport.
class SketchClient {
 public:
  explicit SketchClient(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {}

  /// Batched frequency estimates for `queries` (each a list of ascending
  /// attribute indices) against the named sketch. nullopt on any error;
  /// see last_error() / last_status().
  std::optional<std::vector<double>> EstimateMany(
      const std::string& sketch,
      const std::vector<std::vector<std::uint32_t>>& queries);

  /// Batched threshold bits; same shape as EstimateMany.
  std::optional<std::vector<bool>> AreFrequent(
      const std::string& sketch,
      const std::vector<std::vector<std::uint32_t>>& queries);

  /// The served sketch's public context (algorithm, params, shape).
  std::optional<SketchInfo> Info(const std::string& sketch);

  /// The snapshot currently served under `sketch` (epoch 0 = nothing
  /// published yet for a stream sketch).
  std::optional<SnapshotInfo> Refresh(const std::string& sketch);

  /// Blocks (server-side) until the sketch's epoch exceeds `min_epoch`
  /// or `timeout_ms` elapses, then returns the final state -- compare
  /// epoch with min_epoch to tell satisfied from timed out. timeout_ms
  /// must not exceed kMaxSubscribeTimeoutMs.
  std::optional<SnapshotInfo> Subscribe(const std::string& sketch,
                                        std::uint64_t min_epoch,
                                        std::uint32_t timeout_ms);

  /// Human-readable reason for the last nullopt return.
  const std::string& last_error() const { return last_error_; }

  /// Server status of the last kError reply (kOk when the failure was
  /// local: transport closed, undecodable reply).
  Status last_status() const { return last_status_; }

 private:
  /// Sends `body` under `opcode` and reads one reply, which must be
  /// `expected_reply` or kError. nullopt (with last_error_ set) else.
  std::optional<Frame> RoundTrip(Opcode opcode, const std::string& body,
                                 Opcode expected_reply);

  std::unique_ptr<Transport> transport_;
  bool poisoned_ = false;
  std::string last_error_;
  Status last_status_ = Status::kOk;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_CLIENT_H_
