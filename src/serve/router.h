// Router: deterministic name -> shard routing with request coalescing.
//
// The front door over N SketchPods. Routing is a pure function of the
// sketch name (FNV-1a 64-bit hash mod pod count), so every client, every
// server thread, and every restart agrees on which pod owns a name --
// no routing table to synchronize or persist.
//
// Coalescing: concurrent requests against the same sketch are fused into
// one batched Engine call. Each sketch name has a group-commit slot: the
// first arriving request becomes the leader and executes immediately;
// requests arriving while a batch is in flight queue up, and when the
// leader finishes it drains the whole queue as ONE fused
// estimate_many/are_frequent batch (which fans out on the existing
// ThreadPool), scattering the answer slices back to the waiting clients.
// Fusion is answer-preserving by construction: the batched query kernels
// are bit-identical per answer slot regardless of batch composition (see
// core/sketch.h), so a fused answer equals the per-client serial answer.
//
// Serial traffic never waits: with no batch in flight a request executes
// immediately, alone.
#ifndef IFSKETCH_SERVE_ROUTER_H_
#define IFSKETCH_SERVE_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/pod.h"

namespace ifsketch::serve {

/// How a routed query batch fared (mirrors protocol Status, minus
/// transport concerns).
enum class RouteStatus {
  kOk,
  kUnknownSketch,     ///< no pod's catalog has the name
  kLoadFailed,        ///< cataloged but the IFSK file would not open
  kUnsupportedQuery,  ///< wrong answer flavor or unsupported query size
};

/// Coalescing counters, snapshot via Router::coalesce_stats().
struct CoalesceStats {
  std::uint64_t batches = 0;   ///< Engine batch calls issued
  std::uint64_t requests = 0;  ///< client requests those batches served
  std::uint64_t fused = 0;     ///< requests that shared a batch with others
};

/// Routes named-sketch requests across pods, fusing concurrent batches.
class Router {
 public:
  explicit Router(std::vector<std::shared_ptr<SketchPod>> pods);

  /// The shard (pod index) that owns `name`: FNV1a64(name) % pods.
  std::size_t ShardOf(const std::string& name) const;

  /// The owning pod itself.
  SketchPod& PodFor(const std::string& name);

  /// Registers a sketch file on its owning shard (catalog only; loaded
  /// on first use). False if the name is already registered there.
  bool AddSketch(const std::string& name, const std::string& path);

  /// Registers a stream-published name on its owning shard (see
  /// SketchPod::AddStream).
  bool AddStream(const std::string& name);

  /// Publishes a snapshot through the owning shard's pod (see
  /// SketchPod::Publish); returns the new epoch.
  std::uint64_t Publish(const std::string& name,
                        std::shared_ptr<const Engine> engine,
                        std::uint64_t rows_seen);

  /// Acquires the engine for metadata/validation (open-on-demand via the
  /// owning pod). nullptr when unknown or unloadable.
  std::shared_ptr<const Engine> Acquire(const std::string& name);

  /// Batched estimate through the owning pod, coalescing with concurrent
  /// callers on the same name. `ts` must already be validated against
  /// the sketch (universe d, supported sizes, estimator flavor) -- use
  /// Acquire for the checks; invalid batches fail kUnsupportedQuery.
  RouteStatus EstimateMany(const std::string& name,
                           const std::vector<core::Itemset>& ts,
                           std::vector<double>* answers);

  /// Batched threshold queries; same coalescing and contract.
  RouteStatus AreFrequent(const std::string& name,
                          const std::vector<core::Itemset>& ts,
                          std::vector<bool>* answers);

  /// Overloads taking the engine the caller already holds from
  /// Acquire(name): the serving loop validates and routes with a single
  /// pod acquire per request. Any live engine for the name works --
  /// reloads of one file answer identically.
  RouteStatus EstimateMany(const std::string& name,
                           std::shared_ptr<const Engine> engine,
                           const std::vector<core::Itemset>& ts,
                           std::vector<double>* answers);
  RouteStatus AreFrequent(const std::string& name,
                          std::shared_ptr<const Engine> engine,
                          const std::vector<core::Itemset>& ts,
                          std::vector<bool>* answers);

  std::size_t pod_count() const { return pods_.size(); }
  const std::vector<std::shared_ptr<SketchPod>>& pods() const {
    return pods_;
  }

  CoalesceStats coalesce_stats() const;

 private:
  /// One waiting client request inside a coalescing slot.
  struct Pending {
    const std::vector<core::Itemset>* ts = nullptr;
    std::vector<double>* estimates = nullptr;   // exactly one of these
    std::vector<bool>* bits = nullptr;          // two is non-null
    std::shared_ptr<const Engine> engine;       // pre-acquired, or null
    RouteStatus status = RouteStatus::kOk;
    bool done = false;
  };

  /// Group-commit state for one sketch name. Estimate and indicator
  /// requests coalesce in the same queue; the drain step splits them
  /// into (at most) one fused batch per flavor.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool busy = false;
    std::vector<Pending*> queue;
  };

  RouteStatus Route(const std::string& name,
                    std::shared_ptr<const Engine> engine,
                    const std::vector<core::Itemset>& ts,
                    std::vector<double>* estimates,
                    std::vector<bool>* bits);

  /// Executes one fused batch for every request in `batch` (all the same
  /// flavor), writing each request's slice and status.
  void RunFused(const std::string& name, SketchPod& pod,
                const std::vector<Pending*>& batch, bool estimator_flavor);

  Slot& SlotFor(const std::string& name);

  std::vector<std::shared_ptr<SketchPod>> pods_;

  std::mutex slots_mu_;
  // Node-stable map: Slot addresses must survive concurrent SlotFor
  // calls (slots are created on first use and never removed).
  std::map<std::string, Slot> slots_;

  mutable std::mutex stats_mu_;
  CoalesceStats stats_;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_ROUTER_H_
