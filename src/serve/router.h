// Router: deterministic replicated name -> pod placement with
// health-checked failover and request coalescing.
//
// The front door over N SketchPods. Placement is R-way rendezvous
// hashing (highest-random-weight, HRW): every pod index is scored
// against the sketch name with a pure mixing function and the top R
// scores are that name's replica set, in preference order. Like the old
// single-shard FNV map this is a pure function of (name, pod count,
// replication factor) -- every client, server thread, and restart
// agrees with no routing table to synchronize -- but a name now lives
// on R pods, so one pod going down no longer makes its names
// unreachable, and a hot name's load can spread across its replicas.
//
// Health: the router tracks one state per pod -- healthy, suspect
// (recent failures, deprioritized), or down (skipped entirely). A pod
// acquire failure counts against it; kFailThreshold consecutive
// failures mark it down. Down pods are retried by at most one request
// per probe window, on an exponential backoff (options.probe_backoff
// doubling up to probe_backoff_max); a successful probe restores the
// pod to healthy and resets the backoff. Replica selection is
// load-aware among healthy replicas: least in-flight batches first,
// ties rotated so a hot name's traffic alternates across its replicas
// instead of saturating the first one.
//
// Failover is transparent and answer-preserving: a request that hits a
// refusing/failed replica simply moves to the next replica in selection
// order, and because every replica of a file-backed name opens the same
// IFSK file (and every replica of a stream name receives the same
// published snapshot), answers are bit-identical whichever replica
// serves them -- the bit-identity CI invariants hold through every
// failover path.
//
// Coalescing (unchanged from the single-shard router): concurrent
// requests against the same sketch are fused into one batched Engine
// call. Each sketch name has a group-commit slot: the first arriving
// request becomes the leader and executes immediately; requests
// arriving while a batch is in flight queue up, and when the leader
// finishes it drains the whole queue as ONE fused
// estimate_many/are_frequent batch (which fans out on the existing
// ThreadPool), scattering the answer slices back to the waiting
// clients. Fusion is answer-preserving by construction: the batched
// query kernels are bit-identical per answer slot regardless of batch
// composition (see core/sketch.h). Serial traffic never waits: with no
// batch in flight a request executes immediately, alone.
#ifndef IFSKETCH_SERVE_ROUTER_H_
#define IFSKETCH_SERVE_ROUTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/pod.h"

namespace ifsketch::serve {

/// How a routed query batch fared (mirrors protocol Status, minus
/// transport concerns).
enum class RouteStatus {
  kOk,
  kUnknownSketch,     ///< no replica's catalog has the name
  kLoadFailed,        ///< cataloged but no replica could serve it
  kUnsupportedQuery,  ///< wrong answer flavor or unsupported query size
};

/// Coalescing counters, snapshot via Router::coalesce_stats(). Since
/// PR 8 these are read back from the metrics registry
/// (serve_coalesce_*_total) as deltas against the router's
/// construction-time baseline -- the struct survives as a convenience
/// view of THIS router's traffic even when the registry is shared.
struct CoalesceStats {
  std::uint64_t batches = 0;   ///< Engine batch calls issued
  std::uint64_t requests = 0;  ///< client requests those batches served
  std::uint64_t fused = 0;     ///< requests that shared a batch with others
};

/// A pod's health as the router sees it. State machine:
/// healthy --failure--> suspect --(kFailThreshold consecutive)--> down
/// down --backoff elapses--> one probe --success--> healthy.
enum class PodHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,  ///< recent failures; deprioritized but still tried
  kDown = 2,     ///< skipped until its next backoff probe
};

/// Per-pod health/load snapshot, via Router::pod_health(). The first
/// four fields travel on the wire as the HEALTH reply (protocol.h
/// PodHealthInfo); failovers/probes are in-process diagnostics.
struct PodHealthSnapshot {
  PodHealth health = PodHealth::kHealthy;
  std::uint32_t consecutive_failures = 0;
  std::uint64_t inflight = 0;        ///< query batches executing right now
  std::uint64_t resident_bytes = 0;  ///< SketchPod::resident_bytes()
  std::uint64_t failovers = 0;  ///< requests that moved past this pod
  std::uint64_t probes = 0;     ///< times a down pod was probed
};

/// Replication and health-tracking knobs.
struct RouterOptions {
  /// Replicas per name, clamped to the pod count. 1 reproduces the old
  /// single-shard behavior exactly (no failover, no spreading).
  std::size_t replication = 1;
  /// Consecutive acquire failures before a pod is marked down.
  int fail_threshold = 3;
  /// First down->probe delay; doubles per failed probe up to the max.
  std::chrono::milliseconds probe_backoff{100};
  std::chrono::milliseconds probe_backoff_max{5000};
  /// Registry the router's metrics land in (coalescing counters, batch
  /// depth, per-pod inflight/health/probe series). Null uses the
  /// process-wide obs::MetricsRegistry::Default(); tests pass their own
  /// so counters start from zero.
  obs::MetricsRegistry* registry = nullptr;
};

/// Routes named-sketch requests across replicated pods, fusing
/// concurrent batches and failing over past unhealthy replicas.
class Router {
 public:
  static constexpr std::size_t kNoPod = static_cast<std::size_t>(-1);

  explicit Router(std::vector<std::shared_ptr<SketchPod>> pods,
                  RouterOptions options = RouterOptions{});

  /// `name`'s replica pod indices in HRW preference order (size
  /// min(replication, pod_count)). Pure function of name/pod-count/R:
  /// identical across processes and restarts.
  std::vector<std::size_t> ReplicasOf(const std::string& name) const;

  /// The primary replica's index (HRW winner).
  std::size_t ShardOf(const std::string& name) const;

  /// The primary replica's pod itself.
  SketchPod& PodFor(const std::string& name);

  /// Registers a sketch file on every replica of `name` (catalog only;
  /// loaded on first use). False if the name is already registered on
  /// any of them.
  bool AddSketch(const std::string& name, const std::string& path);

  /// Registers a stream-published name on every replica (see
  /// SketchPod::AddStream).
  bool AddStream(const std::string& name);

  /// Publishes a snapshot to every replica of `name` (see
  /// SketchPod::Publish), so failover between replicas never changes
  /// the served snapshot; returns the new epoch.
  std::uint64_t Publish(const std::string& name,
                        std::shared_ptr<const Engine> engine,
                        std::uint64_t rows_seen);

  /// Whether any replica catalogs `name`.
  bool Knows(const std::string& name) const;

  /// Snapshot state from the first replica that catalogs `name`
  /// (replicas publish in lockstep, so any of them is authoritative).
  std::optional<SnapshotState> SnapshotOf(const std::string& name) const;

  /// SketchPod::WaitForEpoch on the first replica that catalogs `name`;
  /// false when no replica knows it.
  bool WaitForEpoch(const std::string& name, std::uint64_t min_epoch,
                    std::chrono::milliseconds timeout,
                    SnapshotState* out = nullptr);

  /// Acquires an engine for metadata/validation, failing over across
  /// replicas: tries them in selection order (healthy by load, then
  /// suspect, then down pods due for a probe) and returns the first
  /// success, updating health state as it goes. nullptr when unknown
  /// everywhere or no replica can serve. `served_pod` (when non-null)
  /// receives the serving pod's index, or kNoPod.
  std::shared_ptr<const Engine> Acquire(const std::string& name,
                                        std::size_t* served_pod = nullptr);

  /// Batched estimate through `name`'s replica set, coalescing with
  /// concurrent callers on the same name. `ts` must already be
  /// validated against the sketch (universe d, supported sizes,
  /// estimator flavor) -- use Acquire for the checks; invalid batches
  /// fail kUnsupportedQuery.
  RouteStatus EstimateMany(const std::string& name,
                           const std::vector<core::Itemset>& ts,
                           std::vector<double>* answers);

  /// Batched threshold queries; same coalescing and contract.
  RouteStatus AreFrequent(const std::string& name,
                          const std::vector<core::Itemset>& ts,
                          std::vector<bool>* answers);

  /// Overloads taking the engine (and serving pod index) the caller
  /// already holds from Acquire(name, &pod): the serving loop validates
  /// and routes with a single replica acquire per request. Any live
  /// engine for the name works -- every replica serves bit-identical
  /// answers.
  RouteStatus EstimateMany(const std::string& name,
                           std::shared_ptr<const Engine> engine,
                           const std::vector<core::Itemset>& ts,
                           std::vector<double>* answers,
                           std::size_t engine_pod = kNoPod);
  RouteStatus AreFrequent(const std::string& name,
                          std::shared_ptr<const Engine> engine,
                          const std::vector<core::Itemset>& ts,
                          std::vector<bool>* answers,
                          std::size_t engine_pod = kNoPod);

  std::size_t pod_count() const { return pods_.size(); }
  std::size_t replication() const { return replication_; }
  const std::vector<std::shared_ptr<SketchPod>>& pods() const {
    return pods_;
  }

  CoalesceStats coalesce_stats() const;

  /// Per-pod health/load snapshots, pod-index order (the HEALTH reply).
  std::vector<PodHealthSnapshot> pod_health() const;

  /// The registry this router's metrics land in (the STATS reply source).
  obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  /// One waiting client request inside a coalescing slot.
  struct Pending {
    const std::vector<core::Itemset>* ts = nullptr;
    std::vector<double>* estimates = nullptr;   // exactly one of these
    std::vector<bool>* bits = nullptr;          // two is non-null
    std::shared_ptr<const Engine> engine;       // pre-acquired, or null
    std::size_t engine_pod = kNoPod;            // who served `engine`
    RouteStatus status = RouteStatus::kOk;
    bool done = false;
  };

  /// Group-commit state for one sketch name. Estimate and indicator
  /// requests coalesce in the same queue; the drain step splits them
  /// into (at most) one fused batch per flavor.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool busy = false;
    std::vector<Pending*> queue;
  };

  /// Mutable per-pod health state; guarded by health_mu_.
  struct PodState {
    PodHealth health = PodHealth::kHealthy;
    int consecutive_failures = 0;
    std::uint64_t inflight = 0;
    std::uint64_t failovers = 0;
    std::uint64_t probes = 0;
    std::chrono::milliseconds backoff{0};  // set from options at first down
    std::chrono::steady_clock::time_point next_probe{};
  };

  RouteStatus Route(const std::string& name,
                    std::shared_ptr<const Engine> engine,
                    std::size_t engine_pod,
                    const std::vector<core::Itemset>& ts,
                    std::vector<double>* estimates,
                    std::vector<bool>* bits);

  /// Executes one fused batch for every request in `batch` (all the same
  /// flavor), writing each request's slice and status.
  void RunFused(const std::string& name, const std::vector<Pending*>& batch,
                bool estimator_flavor);

  /// `name`'s replicas in selection order: healthy by ascending
  /// in-flight load (ties rotated), then suspect, then down pods whose
  /// probe backoff has elapsed (down pods not yet due are excluded).
  std::vector<std::size_t> SelectionOrder(const std::string& name);

  void ReportSuccess(std::size_t pod);
  void ReportFailure(std::size_t pod);
  void AddInflight(std::size_t pod, std::int64_t delta);

  Slot& SlotFor(const std::string& name);

  std::vector<std::shared_ptr<SketchPod>> pods_;
  std::size_t replication_;
  RouterOptions options_;

  std::mutex slots_mu_;
  // Node-stable map: Slot addresses must survive concurrent SlotFor
  // calls (slots are created on first use and never removed).
  std::map<std::string, Slot> slots_;

  mutable std::mutex health_mu_;
  std::vector<PodState> pod_states_;
  std::uint64_t tie_rotor_ = 0;  // rotates equal-load replica ties

  // Registry metrics, resolved once in the constructor (hot paths touch
  // only these pre-resolved lock-free pointers; see obs/metrics.h).
  obs::MetricsRegistry* registry_;
  obs::Counter* coalesce_batches_;
  obs::Counter* coalesce_requests_;
  obs::Counter* coalesce_fused_;
  obs::Histogram* coalesce_depth_;
  // Counter values at construction: coalesce_stats() reports deltas so
  // a router sharing the process-wide registry with predecessors still
  // reports only its own traffic.
  CoalesceStats coalesce_baseline_;
  struct PodMetrics {
    obs::Gauge* inflight;
    obs::Counter* health_transitions;
    obs::Counter* probes;
    obs::Counter* failovers;
  };
  std::vector<PodMetrics> pod_metrics_;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_ROUTER_H_
