#include "serve/client.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"

namespace ifsketch::serve {
namespace {

/// splitmix64, for backoff jitter: seedable so tests replay the exact
/// retry schedule.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

bool SketchClient::EnsureConnected() {
  if (transport_ != nullptr && !poisoned_) return true;
  if (!factory_) return false;  // single-connection client: stay poisoned
  transport_ = factory_();
  poisoned_ = false;
  return transport_ != nullptr;
}

void SketchClient::ApplyReadTimeout(
    std::chrono::steady_clock::time_point start) {
  auto timeout = policy_.attempt_timeout;
  if (policy_.deadline.count() > 0) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            policy_.deadline -
            (std::chrono::steady_clock::now() - start));
    const auto left = std::max(remaining, std::chrono::milliseconds(1));
    timeout = timeout.count() > 0 ? std::min(timeout, left) : left;
  }
  if (timeout.count() > 0) transport_->SetReadTimeout(timeout);
}

std::chrono::milliseconds SketchClient::NextBackoff(int attempt) {
  double base = static_cast<double>(policy_.initial_backoff.count());
  for (int i = 1; i < attempt; ++i) base *= policy_.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy_.max_backoff.count()));
  // Jitter to [50%, 100%]: failed-together clients spread back out.
  const double u = (SplitMix64(&jitter_state_) >> 11) * 0x1.0p-53;
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(base * (0.5 + 0.5 * u)));
}

void SketchClient::Poison(const char* message) {
  poisoned_ = true;
  last_error_ = message;
  last_failure_ = FailureKind::kTransport;
}

std::optional<Frame> SketchClient::RoundTrip(Opcode opcode,
                                             const std::string& body,
                                             Opcode expected_reply) {
  last_error_.clear();
  last_status_ = Status::kOk;
  last_failure_ = FailureKind::kNone;
  last_attempts_ = 0;
  std::string wire;
  if (!EncodeFrame(opcode, 0, body, &wire)) {
    // Local limit, nothing sent: the connection is still healthy.
    last_error_ = "request exceeds the frame size limit";
    last_failure_ = FailureKind::kLocal;
    return std::nullopt;
  }
  const auto start = std::chrono::steady_clock::now();
  const int max_attempts = factory_ ? std::max(1, policy_.max_attempts) : 1;
  for (int attempt = 1;; ++attempt) {
    last_attempts_ = attempt;
    if (!EnsureConnected()) {
      last_error_ =
          factory_ ? "connect failed" : "connection is closed";
      last_failure_ = FailureKind::kTransport;
    } else {
      ApplyReadTimeout(start);
      if (!transport_->WriteAll(wire.data(), wire.size())) {
        Poison("send failed (peer closed the connection)");
      } else {
        Frame reply;
        if (ReadFrame(*transport_, &reply) != ReadResult::kFrame) {
          Poison(
              "no reply (peer closed, deadline expired, or malformed "
              "frame)");
        } else if (reply.header.opcode == Opcode::kError) {
          // A served refusal: the connection stays usable and a retry
          // would only be refused again.
          last_status_ = static_cast<Status>(reply.header.status);
          const auto message = DecodeErrorMessage(reply.body);
          last_error_ = message.has_value() ? *message : "server error";
          last_failure_ = FailureKind::kRequest;
          return std::nullopt;
        } else if (reply.header.opcode != expected_reply) {
          Poison("unexpected reply opcode");
        } else {
          last_failure_ = FailureKind::kNone;
          return reply;
        }
      }
    }
    // Transport-class failure. Retry on a fresh connection while the
    // attempt budget and the overall deadline both allow it.
    if (attempt >= max_attempts) return std::nullopt;
    // Cold-path registry lookup is fine here: retries are backoff-paced.
    obs::MetricsRegistry::Default()
        .GetCounter("client_retries_total")
        ->Add();
    const auto backoff = NextBackoff(attempt);
    if (policy_.deadline.count() > 0 &&
        std::chrono::steady_clock::now() + backoff - start >=
            policy_.deadline) {
      return std::nullopt;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
  }
}

std::optional<std::vector<double>> SketchClient::EstimateMany(
    const std::string& sketch,
    const std::vector<std::vector<std::uint32_t>>& queries) {
  QueryRequest request;
  request.sketch = sketch;
  request.queries = queries;
  std::string body;
  if (!EncodeQueryRequest(request, &body)) {
    last_error_ = "request exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    last_failure_ = FailureKind::kLocal;
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kEstimate, body, Opcode::kEstimateReply);
  if (!reply.has_value()) return std::nullopt;
  auto answers = DecodeEstimateReply(reply->body);
  if (!answers.has_value() || answers->size() != queries.size()) {
    Poison("undecodable estimate reply");
    return std::nullopt;
  }
  return answers;
}

std::optional<std::vector<double>> SketchClient::EstimateManyPipelined(
    const std::string& sketch,
    const std::vector<std::vector<std::uint32_t>>& queries,
    std::size_t frames) {
  if (frames <= 1 || queries.size() <= 1) {
    return EstimateMany(sketch, queries);
  }
  frames = std::min(frames, queries.size());
  last_error_.clear();
  last_status_ = Status::kOk;
  last_failure_ = FailureKind::kNone;
  last_attempts_ = 0;

  // Encode every chunk up front; the wire buffers then go out as one
  // vectored write per attempt.
  std::vector<std::string> wire(frames);
  std::vector<std::size_t> chunk_sizes(frames);
  const std::size_t per = queries.size() / frames;
  const std::size_t extra = queries.size() % frames;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < frames; ++i) {
    const std::size_t count = per + (i < extra ? 1 : 0);
    QueryRequest request;
    request.sketch = sketch;
    request.queries.assign(queries.begin() + begin,
                           queries.begin() + begin + count);
    std::string body;
    if (!EncodeQueryRequest(request, &body) ||
        !EncodeFrame(Opcode::kEstimate, 0, body, &wire[i])) {
      last_error_ = "request exceeds protocol limits";
      last_failure_ = FailureKind::kLocal;
      return std::nullopt;
    }
    chunk_sizes[i] = count;
    begin += count;
  }

  const auto start = std::chrono::steady_clock::now();
  const int max_attempts = factory_ ? std::max(1, policy_.max_attempts) : 1;
  for (int attempt = 1;; ++attempt) {
    last_attempts_ = attempt;
    if (!EnsureConnected()) {
      last_error_ = factory_ ? "connect failed" : "connection is closed";
      last_failure_ = FailureKind::kTransport;
    } else {
      ApplyReadTimeout(start);
      std::vector<ConstBuffer> spans(frames);
      for (std::size_t i = 0; i < frames; ++i) {
        spans[i] = ConstBuffer{wire[i].data(), wire[i].size()};
      }
      if (!transport_->WritevAll(spans.data(), spans.size())) {
        Poison("send failed (peer closed the connection)");
      } else {
        std::vector<double> answers;
        answers.reserve(queries.size());
        bool refused = false;
        bool lost = false;
        // Replies come back in request order (the protocol's pipelining
        // contract). On a kError chunk keep draining the rest so the
        // connection stays usable, exactly like a single-frame refusal.
        for (std::size_t i = 0; i < frames; ++i) {
          Frame reply;
          if (ReadFrame(*transport_, &reply) != ReadResult::kFrame) {
            Poison(
                "no reply (peer closed, deadline expired, or malformed "
                "frame)");
            lost = true;
            break;
          }
          if (reply.header.opcode == Opcode::kError) {
            if (!refused) {
              last_status_ = static_cast<Status>(reply.header.status);
              const auto message = DecodeErrorMessage(reply.body);
              last_error_ = message.has_value() ? *message : "server error";
            }
            refused = true;
            continue;
          }
          if (reply.header.opcode != Opcode::kEstimateReply) {
            Poison("unexpected reply opcode");
            lost = true;
            break;
          }
          auto chunk = DecodeEstimateReply(reply.body);
          if (!chunk.has_value() || chunk->size() != chunk_sizes[i]) {
            Poison("undecodable estimate reply");
            lost = true;
            break;
          }
          answers.insert(answers.end(), chunk->begin(), chunk->end());
        }
        if (!lost) {
          if (refused) {
            last_failure_ = FailureKind::kRequest;
            return std::nullopt;
          }
          last_failure_ = FailureKind::kNone;
          return answers;
        }
      }
    }
    if (attempt >= max_attempts) return std::nullopt;
    obs::MetricsRegistry::Default()
        .GetCounter("client_retries_total")
        ->Add();
    const auto backoff = NextBackoff(attempt);
    if (policy_.deadline.count() > 0 &&
        std::chrono::steady_clock::now() + backoff - start >=
            policy_.deadline) {
      return std::nullopt;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
  }
}

std::optional<std::vector<bool>> SketchClient::AreFrequent(
    const std::string& sketch,
    const std::vector<std::vector<std::uint32_t>>& queries) {
  QueryRequest request;
  request.sketch = sketch;
  request.queries = queries;
  std::string body;
  if (!EncodeQueryRequest(request, &body)) {
    last_error_ = "request exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    last_failure_ = FailureKind::kLocal;
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kAreFrequent, body, Opcode::kAreFrequentReply);
  if (!reply.has_value()) return std::nullopt;
  auto answers = DecodeAreFrequentReply(reply->body);
  if (!answers.has_value() || answers->size() != queries.size()) {
    Poison("undecodable are-frequent reply");
    return std::nullopt;
  }
  return answers;
}

std::optional<SketchInfo> SketchClient::Info(const std::string& sketch) {
  std::string body;
  if (!EncodeInfoRequest(sketch, &body)) {
    last_error_ = "sketch name exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    last_failure_ = FailureKind::kLocal;
    return std::nullopt;
  }
  const auto reply = RoundTrip(Opcode::kInfo, body, Opcode::kInfoReply);
  if (!reply.has_value()) return std::nullopt;
  auto info = DecodeInfoReply(reply->body);
  if (!info.has_value()) {
    Poison("undecodable info reply");
    return std::nullopt;
  }
  return info;
}

std::optional<SnapshotInfo> SketchClient::Refresh(const std::string& sketch) {
  std::string body;
  if (!EncodeRefreshRequest(sketch, &body)) {
    last_error_ = "sketch name exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    last_failure_ = FailureKind::kLocal;
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kRefresh, body, Opcode::kRefreshReply);
  if (!reply.has_value()) return std::nullopt;
  auto info = DecodeSnapshotReply(reply->body);
  if (!info.has_value()) {
    Poison("undecodable refresh reply");
    return std::nullopt;
  }
  return info;
}

std::optional<SnapshotInfo> SketchClient::Subscribe(const std::string& sketch,
                                                    std::uint64_t min_epoch,
                                                    std::uint32_t timeout_ms) {
  SubscribeRequest request;
  request.sketch = sketch;
  request.min_epoch = min_epoch;
  request.timeout_ms = timeout_ms;
  std::string body;
  if (!EncodeSubscribeRequest(request, &body)) {
    last_error_ = "subscribe request exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    last_failure_ = FailureKind::kLocal;
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kSubscribe, body, Opcode::kSubscribeReply);
  if (!reply.has_value()) return std::nullopt;
  auto info = DecodeSnapshotReply(reply->body);
  if (!info.has_value()) {
    Poison("undecodable subscribe reply");
    return std::nullopt;
  }
  return info;
}

std::optional<std::vector<PodHealthInfo>> SketchClient::Health() {
  const auto reply =
      RoundTrip(Opcode::kHealth, std::string(), Opcode::kHealthReply);
  if (!reply.has_value()) return std::nullopt;
  auto pods = DecodeHealthReply(reply->body);
  if (!pods.has_value()) {
    Poison("undecodable health reply");
    return std::nullopt;
  }
  return pods;
}

std::optional<StatsReply> SketchClient::Stats() {
  const auto reply =
      RoundTrip(Opcode::kStats, std::string(), Opcode::kStatsReply);
  if (!reply.has_value()) return std::nullopt;
  auto stats = DecodeStatsReply(reply->body);
  if (!stats.has_value()) {
    Poison("undecodable stats reply");
    return std::nullopt;
  }
  return stats;
}

}  // namespace ifsketch::serve
