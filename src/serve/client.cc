#include "serve/client.h"

namespace ifsketch::serve {

std::optional<Frame> SketchClient::RoundTrip(Opcode opcode,
                                             const std::string& body,
                                             Opcode expected_reply) {
  last_error_.clear();
  last_status_ = Status::kOk;
  if (poisoned_ || transport_ == nullptr) {
    last_error_ = "connection is closed";
    return std::nullopt;
  }
  std::string wire;
  if (!EncodeFrame(opcode, 0, body, &wire)) {
    // Local limit, nothing sent: the connection is still healthy.
    last_error_ = "request exceeds the frame size limit";
    return std::nullopt;
  }
  if (!transport_->WriteAll(wire.data(), wire.size())) {
    poisoned_ = true;
    last_error_ = "send failed (peer closed the connection)";
    return std::nullopt;
  }
  Frame reply;
  if (ReadFrame(*transport_, &reply) != ReadResult::kFrame) {
    poisoned_ = true;
    last_error_ = "no reply (peer closed or sent a malformed frame)";
    return std::nullopt;
  }
  if (reply.header.opcode == Opcode::kError) {
    last_status_ = static_cast<Status>(reply.header.status);
    const auto message = DecodeErrorMessage(reply.body);
    last_error_ = message.has_value() ? *message : "server error";
    return std::nullopt;
  }
  if (reply.header.opcode != expected_reply) {
    poisoned_ = true;
    last_error_ = "unexpected reply opcode";
    return std::nullopt;
  }
  return reply;
}

std::optional<std::vector<double>> SketchClient::EstimateMany(
    const std::string& sketch,
    const std::vector<std::vector<std::uint32_t>>& queries) {
  QueryRequest request;
  request.sketch = sketch;
  request.queries = queries;
  std::string body;
  if (!EncodeQueryRequest(request, &body)) {
    last_error_ = "request exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kEstimate, body, Opcode::kEstimateReply);
  if (!reply.has_value()) return std::nullopt;
  auto answers = DecodeEstimateReply(reply->body);
  if (!answers.has_value() || answers->size() != queries.size()) {
    poisoned_ = true;
    last_error_ = "undecodable estimate reply";
    return std::nullopt;
  }
  return answers;
}

std::optional<std::vector<bool>> SketchClient::AreFrequent(
    const std::string& sketch,
    const std::vector<std::vector<std::uint32_t>>& queries) {
  QueryRequest request;
  request.sketch = sketch;
  request.queries = queries;
  std::string body;
  if (!EncodeQueryRequest(request, &body)) {
    last_error_ = "request exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kAreFrequent, body, Opcode::kAreFrequentReply);
  if (!reply.has_value()) return std::nullopt;
  auto answers = DecodeAreFrequentReply(reply->body);
  if (!answers.has_value() || answers->size() != queries.size()) {
    poisoned_ = true;
    last_error_ = "undecodable are-frequent reply";
    return std::nullopt;
  }
  return answers;
}

std::optional<SketchInfo> SketchClient::Info(const std::string& sketch) {
  std::string body;
  if (!EncodeInfoRequest(sketch, &body)) {
    last_error_ = "sketch name exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    return std::nullopt;
  }
  const auto reply = RoundTrip(Opcode::kInfo, body, Opcode::kInfoReply);
  if (!reply.has_value()) return std::nullopt;
  auto info = DecodeInfoReply(reply->body);
  if (!info.has_value()) {
    poisoned_ = true;
    last_error_ = "undecodable info reply";
    return std::nullopt;
  }
  return info;
}

std::optional<SnapshotInfo> SketchClient::Refresh(const std::string& sketch) {
  std::string body;
  if (!EncodeRefreshRequest(sketch, &body)) {
    last_error_ = "sketch name exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kRefresh, body, Opcode::kRefreshReply);
  if (!reply.has_value()) return std::nullopt;
  auto info = DecodeSnapshotReply(reply->body);
  if (!info.has_value()) {
    poisoned_ = true;
    last_error_ = "undecodable refresh reply";
    return std::nullopt;
  }
  return info;
}

std::optional<SnapshotInfo> SketchClient::Subscribe(const std::string& sketch,
                                                    std::uint64_t min_epoch,
                                                    std::uint32_t timeout_ms) {
  SubscribeRequest request;
  request.sketch = sketch;
  request.min_epoch = min_epoch;
  request.timeout_ms = timeout_ms;
  std::string body;
  if (!EncodeSubscribeRequest(request, &body)) {
    last_error_ = "subscribe request exceeds protocol limits";
    last_status_ = Status::kOk;  // local failure, not a server verdict
    return std::nullopt;
  }
  const auto reply =
      RoundTrip(Opcode::kSubscribe, body, Opcode::kSubscribeReply);
  if (!reply.has_value()) return std::nullopt;
  auto info = DecodeSnapshotReply(reply->body);
  if (!info.has_value()) {
    poisoned_ = true;
    last_error_ = "undecodable subscribe reply";
    return std::nullopt;
  }
  return info;
}

}  // namespace ifsketch::serve
