// SketchPod: a multi-tenant host for many named sketches.
//
// One pod owns a name -> IFSK-path catalog and materializes Engine
// instances on demand (Engine::Open on first Acquire), holding them
// resident under an LRU + byte-budget admission policy. The byte budget
// is accounted in Engine::resident_bytes(): for mapped (arena v2) loads
// that is the whole mapped file image -- what eviction actually gives
// back to the page cache -- and for copied loads the owned summary
// payload bytes; either way the dominant, size-predictable term (the
// derived query views are a small multiple of it, and for mapped
// row-major sketches the views borrow the mapping outright). Loading a
// sketch that would push the pod over budget first evicts
// least-recently-acquired residents; a sketch larger than the whole
// budget is still admitted, alone, after everything else is evicted
// (refusing it would make the pod unable to serve that name at all).
//
// Eviction only drops the pod's reference. Acquire hands out
// shared_ptr<const Engine>, so queries already in flight on an evicted
// sketch finish safely on their own reference -- for a mapped engine the
// munmap is deferred the same way, until the last in-flight query
// releases it; the next Acquire remaps from the catalog path. All
// catalog/LRU/stat state is mutex-guarded; queries themselves run
// outside the lock on the shared Engine (whose query surface is
// const-thread-safe, see engine.h).
#ifndef IFSKETCH_SERVE_POD_H_
#define IFSKETCH_SERVE_POD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine.h"

namespace ifsketch::serve {

/// Per-sketch counters, snapshot via SketchPod::stats().
struct SketchStats {
  std::string name;
  std::uint64_t hits = 0;       ///< Acquire calls served by a resident engine
  std::uint64_t loads = 0;      ///< Engine::Open calls (misses that loaded)
  std::uint64_t evictions = 0;  ///< times the budget pushed it out
  std::uint64_t queries = 0;    ///< individual query answers served
  std::size_t resident_bytes = 0;  ///< 0 when not resident
  bool resident = false;
};

/// Hosts many named sketches behind one byte budget.
class SketchPod {
 public:
  /// No eviction until a budget is set.
  static constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

  explicit SketchPod(std::size_t byte_budget = kUnlimited)
      : byte_budget_(byte_budget) {}

  /// Registers `name` as servable from the IFSK file at `path`. The file
  /// is not opened until first Acquire. False if the name is taken.
  bool AddSketch(const std::string& name, const std::string& path);

  /// The engine for `name`, loading (and evicting) as needed. nullptr
  /// when the name is unregistered or its file fails to open -- callers
  /// distinguish the two with Knows().
  std::shared_ptr<const Engine> Acquire(const std::string& name);

  /// Whether `name` is in the catalog (resident or not).
  bool Knows(const std::string& name) const;

  /// Registered names, sorted (catalog order, not residency).
  std::vector<std::string> Names() const;

  /// Adds `count` served answers to `name`'s query counter.
  void CountQueries(const std::string& name, std::uint64_t count);

  /// Per-sketch counters, sorted by name.
  std::vector<SketchStats> stats() const;

  /// Total bytes currently resident (sum of Engine::resident_bytes over
  /// loaded engines: mapped image sizes and owned summary bytes).
  std::size_t resident_bytes() const;

  /// Re-budgets the pod, evicting LRU residents to fit immediately.
  void SetByteBudget(std::size_t bytes);
  std::size_t byte_budget() const;

 private:
  struct Entry {
    std::string path;
    std::shared_ptr<const Engine> engine;  // null when not resident
    std::size_t bytes = 0;                 // resident summary bytes
    std::uint64_t last_used = 0;           // LRU tick of last Acquire
    std::uint64_t hits = 0;
    std::uint64_t loads = 0;
    std::uint64_t evictions = 0;
    std::uint64_t queries = 0;
  };

  /// Evicts least-recently-used residents until resident bytes fit
  /// `budget`. Caller holds mu_.
  void EvictToFitLocked(std::size_t budget);

  mutable std::mutex mu_;
  std::map<std::string, Entry> catalog_;
  std::size_t byte_budget_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_POD_H_
