// SketchPod: a multi-tenant host for many named sketches.
//
// One pod owns a name -> IFSK-path catalog and materializes Engine
// instances on demand (Engine::Open on first Acquire), holding them
// resident under an LRU + byte-budget admission policy. The byte budget
// is accounted in Engine::resident_bytes(): for mapped (arena v2) loads
// that is the whole mapped file image -- what eviction actually gives
// back to the page cache -- and for copied loads the owned summary
// payload bytes; either way the dominant, size-predictable term (the
// derived query views are a small multiple of it, and for mapped
// row-major sketches the views borrow the mapping outright). Loading a
// sketch that would push the pod over budget first evicts
// least-recently-acquired residents; a sketch larger than the whole
// budget is still admitted, alone, after everything else is evicted
// (refusing it would make the pod unable to serve that name at all).
//
// Eviction only drops the pod's reference. Acquire hands out
// shared_ptr<const Engine>, so queries already in flight on an evicted
// sketch finish safely on their own reference -- for a mapped engine the
// munmap is deferred the same way, until the last in-flight query
// releases it; the next Acquire remaps from the catalog path. All
// catalog/LRU/stat state is mutex-guarded; queries themselves run
// outside the lock on the shared Engine (whose query surface is
// const-thread-safe, see engine.h).
//
// Stream-published sketches (the ingest path, src/ingest/) have no
// backing file: Publish() swaps in each freshly built snapshot with the
// same shared_ptr discipline, bumps the per-name epoch (0 = nothing
// published yet), and wakes WaitForEpoch subscribers. Published
// snapshots are explicitly placed hot objects: they count against the
// byte budget -- displacing file-backed LRU residents -- but are never
// eviction victims themselves, because there is no path to reload them
// from; only the next Publish replaces one.
#ifndef IFSKETCH_SERVE_POD_H_
#define IFSKETCH_SERVE_POD_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine.h"
#include "obs/metrics.h"

namespace ifsketch::serve {

/// Per-sketch counters, snapshot via SketchPod::stats(). Since PR 8 the
/// counters live in the pod's metrics registry
/// (serve_sketch_*_total{pod=...,sketch=...}); this struct is the
/// read-back view existing callers keep using.
struct SketchStats {
  std::string name;
  std::uint64_t hits = 0;       ///< Acquire calls served by a resident engine
  std::uint64_t loads = 0;      ///< Engine::Open calls (misses that loaded)
  std::uint64_t evictions = 0;  ///< times the budget pushed it out
  std::uint64_t queries = 0;    ///< individual query answers served
  std::uint64_t publishes = 0;  ///< snapshots published via Publish()
  std::size_t resident_bytes = 0;  ///< 0 when not resident
  bool resident = false;
};

/// Which snapshot a sketch name is currently serving. epoch starts at 0
/// (nothing published; for file-backed sketches it stays 0) and
/// increments once per Publish. rows_seen is the stream prefix the
/// snapshot covers (the engine's n) -- for a file-backed sketch, the
/// file's n once loaded.
struct SnapshotState {
  std::uint64_t epoch = 0;
  std::uint64_t rows_seen = 0;
};

/// Fault hooks for failover testing: a faulted pod behaves like a dead
/// or overloaded replica without anything actually dying. Injected via
/// SketchPod::SetFault; all hooks default off.
struct PodFault {
  /// Every Acquire returns nullptr (the pod "refuses" to serve), which
  /// the router counts as a pod failure and fails over past.
  bool fail_acquire = false;
  /// Every Acquire stalls this long first (a wedged or thrashing pod).
  std::chrono::milliseconds acquire_delay{0};
};

/// Hosts many named sketches behind one byte budget.
class SketchPod {
 public:
  /// No eviction until a budget is set.
  static constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

  /// `registry` is where the per-sketch counter series land (null uses
  /// the process-wide obs::MetricsRegistry::Default()); `label` is the
  /// pod= label value on those series and defaults to a process-unique
  /// ordinal, which matches router pod indices when pods are created in
  /// index order (as ifsketch_server does).
  explicit SketchPod(std::size_t byte_budget = kUnlimited,
                     obs::MetricsRegistry* registry = nullptr,
                     std::string label = std::string());

  /// Registers `name` as servable from the IFSK file at `path`. The file
  /// is not opened until first Acquire. False if the name is taken.
  bool AddSketch(const std::string& name, const std::string& path);

  /// Registers `name` as a stream-published sketch with no backing file:
  /// it serves nothing until the first Publish. False if the name is
  /// taken. (Publish auto-registers, so this exists to reserve the name
  /// up front -- e.g. before the ingest thread starts.)
  bool AddStream(const std::string& name);

  /// Atomically swaps in a freshly built snapshot for `name`,
  /// auto-registering the name as a stream sketch if needed, and returns
  /// the new epoch (1 for the first snapshot). The previous snapshot is
  /// retired exactly like eviction: in-flight queries finish on their
  /// own shared_ptr. Published snapshots are pinned -- they count
  /// against the byte budget (file-backed residents are evicted to make
  /// room) but are never evicted themselves, only replaced by the next
  /// Publish. Wakes all WaitForEpoch waiters.
  std::uint64_t Publish(const std::string& name,
                        std::shared_ptr<const Engine> engine,
                        std::uint64_t rows_seen);

  /// The current snapshot state of `name`; nullopt when unregistered.
  std::optional<SnapshotState> SnapshotOf(const std::string& name) const;

  /// Blocks until `name`'s epoch exceeds `min_epoch`, the timeout
  /// elapses, or the name is unregistered (returns false only in that
  /// last case). On true, *out (when non-null) holds the final state --
  /// callers distinguish satisfied from timed-out by comparing
  /// out->epoch with min_epoch.
  bool WaitForEpoch(const std::string& name, std::uint64_t min_epoch,
                    std::chrono::milliseconds timeout,
                    SnapshotState* out = nullptr);

  /// The engine for `name`, loading (and evicting) as needed. nullptr
  /// when the name is unregistered, its file fails to open, or it is a
  /// stream sketch with no snapshot published yet -- callers distinguish
  /// unregistered from the rest with Knows().
  std::shared_ptr<const Engine> Acquire(const std::string& name);

  /// Whether `name` is in the catalog (resident or not).
  bool Knows(const std::string& name) const;

  /// True when `name` is a stream sketch that has not published its
  /// first snapshot: Acquire returning nullptr for it is expected, not
  /// a pod failure (the router must not count it against health).
  bool IsUnpublishedStream(const std::string& name) const;

  /// Registered names, sorted (catalog order, not residency).
  std::vector<std::string> Names() const;

  /// Adds `count` served answers to `name`'s query counter.
  void CountQueries(const std::string& name, std::uint64_t count);

  /// Per-sketch counters, sorted by name.
  std::vector<SketchStats> stats() const;

  /// Total bytes currently resident (sum of Engine::resident_bytes over
  /// loaded engines: mapped image sizes and owned summary bytes).
  std::size_t resident_bytes() const;

  /// Re-budgets the pod, evicting LRU residents to fit immediately.
  void SetByteBudget(std::size_t bytes);
  std::size_t byte_budget() const;

  /// Installs (or, with a default-constructed PodFault, clears) the
  /// fault hooks. Thread-safe; takes effect on the next Acquire.
  void SetFault(const PodFault& fault);
  PodFault fault() const;

 private:
  /// Registry series backing one catalog entry's counters, resolved
  /// when the entry is created (cold path). The entry's own fields keep
  /// only what the pod's logic needs under mu_; everything countable
  /// lives in the registry so STATS and stats() read the same numbers.
  struct EntryMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* loads = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* queries = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Gauge* epoch = nullptr;  // published epoch; cross-pod max -
                                  // value = replica epoch lag
  };

  struct Entry {
    std::string path;  // empty for stream-published sketches
    std::shared_ptr<const Engine> engine;  // null when not resident
    std::size_t bytes = 0;                 // resident summary bytes
    std::uint64_t last_used = 0;           // LRU tick of last Acquire
    std::uint64_t epoch = 0;      // 0 until the first Publish
    std::uint64_t rows_seen = 0;  // prefix covered by the current engine
    EntryMetrics metrics;
  };

  /// Resolves the registry series for `name` (caller holds mu_; the
  /// registry has its own lock and never calls back into the pod).
  EntryMetrics ResolveMetrics(const std::string& name) const;

  /// Evicts least-recently-used residents until resident bytes fit
  /// `budget`. Caller holds mu_.
  void EvictToFitLocked(std::size_t budget);

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled on every Publish
  std::map<std::string, Entry> catalog_;
  obs::MetricsRegistry* registry_;
  std::string label_;
  std::size_t byte_budget_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t lru_clock_ = 0;
  PodFault fault_;  // failover-test hooks, default all-off
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_POD_H_
