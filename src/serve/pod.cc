#include "serve/pod.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

namespace ifsketch::serve {

namespace {

// Default pod= label: process-unique creation ordinal, which matches
// router pod indices when pods are created in index order.
std::string NextPodLabel() {
  static std::atomic<std::uint64_t> next{0};
  return std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

SketchPod::SketchPod(std::size_t byte_budget, obs::MetricsRegistry* registry,
                     std::string label)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Default()),
      label_(label.empty() ? NextPodLabel() : std::move(label)),
      byte_budget_(byte_budget) {}

SketchPod::EntryMetrics SketchPod::ResolveMetrics(
    const std::string& name) const {
  auto series = [this, &name](const char* base) {
    return obs::LabeledName2(base, "pod", label_, "sketch", name);
  };
  EntryMetrics m;
  m.hits = registry_->GetCounter(series("serve_sketch_hits_total"));
  m.loads = registry_->GetCounter(series("serve_sketch_loads_total"));
  m.evictions =
      registry_->GetCounter(series("serve_sketch_evictions_total"));
  m.queries = registry_->GetCounter(series("serve_sketch_queries_total"));
  m.publishes =
      registry_->GetCounter(series("serve_sketch_publishes_total"));
  m.epoch = registry_->GetGauge(series("serve_sketch_epoch"));
  return m;
}

bool SketchPod::AddSketch(const std::string& name, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.path = path;
  entry.metrics = ResolveMetrics(name);
  return catalog_.emplace(name, std::move(entry)).second;
}

bool SketchPod::AddStream(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.metrics = ResolveMetrics(name);
  return catalog_.emplace(name, std::move(entry)).second;
}

std::uint64_t SketchPod::Publish(const std::string& name,
                                 std::shared_ptr<const Engine> engine,
                                 std::uint64_t rows_seen) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = catalog_[name];  // auto-registers with an empty path
  if (entry.metrics.hits == nullptr) entry.metrics = ResolveMetrics(name);
  const std::size_t bytes = engine->resident_bytes();
  resident_bytes_ -= entry.bytes;
  // The old snapshot's shared_ptr is dropped exactly like eviction:
  // in-flight queries keep it alive until they finish.
  entry.engine = std::move(engine);
  entry.bytes = bytes;
  entry.last_used = ++lru_clock_;
  entry.rows_seen = rows_seen;
  entry.metrics.publishes->Add();
  ++entry.epoch;
  entry.metrics.epoch->Set(static_cast<std::int64_t>(entry.epoch));
  resident_bytes_ += bytes;
  // The new snapshot is pinned (EvictToFitLocked skips path-less
  // entries), so making room only displaces file-backed residents.
  if (byte_budget_ != kUnlimited) EvictToFitLocked(byte_budget_);
  cv_.notify_all();
  return entry.epoch;
}

std::optional<SnapshotState> SketchPod::SnapshotOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return std::nullopt;
  return SnapshotState{it->second.epoch, it->second.rows_seen};
}

bool SketchPod::WaitForEpoch(const std::string& name, std::uint64_t min_epoch,
                             std::chrono::milliseconds timeout,
                             SnapshotState* out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return false;
  // Entries are never erased and std::map nodes are address-stable, so
  // the pointer stays valid across the wait.
  Entry* entry = &it->second;
  cv_.wait_for(lock, timeout,
               [entry, min_epoch] { return entry->epoch > min_epoch; });
  if (out != nullptr) *out = SnapshotState{entry->epoch, entry->rows_seen};
  return true;
}

std::shared_ptr<const Engine> SketchPod::Acquire(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  // Fault hooks first: a faulted pod refuses (or stalls) before touching
  // its catalog, exactly like a dead or wedged replica would.
  if (fault_.acquire_delay.count() > 0) {
    const auto delay = fault_.acquire_delay;
    lock.unlock();
    std::this_thread::sleep_for(delay);
    lock.lock();
  }
  if (fault_.fail_acquire) return nullptr;
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return nullptr;
  Entry& entry = it->second;
  entry.last_used = ++lru_clock_;
  if (entry.engine != nullptr) {
    entry.metrics.hits->Add();
    return entry.engine;
  }
  // A stream sketch with no snapshot yet has nothing to load from.
  if (entry.path.empty()) return nullptr;

  // Open outside the lock: file I/O and payload validation can be slow,
  // and other names must stay servable meanwhile. The slot is re-checked
  // after reacquiring in case a concurrent Acquire won the race.
  const std::string path = entry.path;
  lock.unlock();
  auto opened = Engine::Open(path);
  lock.lock();
  it = catalog_.find(name);
  if (it == catalog_.end()) return nullptr;
  Entry& slot = it->second;
  if (slot.engine != nullptr) {
    slot.metrics.hits->Add();
    return slot.engine;
  }
  if (!opened.has_value()) return nullptr;

  auto engine = std::make_shared<const Engine>(*std::move(opened));
  const std::size_t bytes = engine->resident_bytes();
  // Make room first; the incoming sketch is not resident yet, so it can
  // never be its own victim. A sketch bigger than the whole budget gets
  // everything evicted and is then admitted alone.
  if (byte_budget_ != kUnlimited) {
    EvictToFitLocked(bytes <= byte_budget_ ? byte_budget_ - bytes : 0);
  }
  slot.engine = std::move(engine);
  slot.bytes = bytes;
  slot.last_used = ++lru_clock_;
  slot.rows_seen = slot.engine->n();
  slot.metrics.loads->Add();
  resident_bytes_ += bytes;
  return slot.engine;
}

bool SketchPod::Knows(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.count(name) > 0;
}

bool SketchPod::IsUnpublishedStream(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return false;
  const Entry& entry = it->second;
  return entry.path.empty() && entry.engine == nullptr && entry.epoch == 0;
}

std::vector<std::string> SketchPod::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

void SketchPod::CountQueries(const std::string& name, std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it != catalog_.end()) it->second.metrics.queries->Add(count);
}

std::vector<SketchStats> SketchPod::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SketchStats> out;
  out.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) {
    SketchStats s;
    s.name = name;
    s.hits = entry.metrics.hits->Value();
    s.loads = entry.metrics.loads->Value();
    s.evictions = entry.metrics.evictions->Value();
    s.queries = entry.metrics.queries->Value();
    s.publishes = entry.metrics.publishes->Value();
    s.resident = entry.engine != nullptr;
    s.resident_bytes = s.resident ? entry.bytes : 0;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t SketchPod::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

void SketchPod::SetByteBudget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  if (byte_budget_ != kUnlimited) EvictToFitLocked(byte_budget_);
}

std::size_t SketchPod::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

void SketchPod::SetFault(const PodFault& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_ = fault;
}

PodFault SketchPod::fault() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_;
}

void SketchPod::EvictToFitLocked(std::size_t budget) {
  while (resident_bytes_ > budget) {
    Entry* victim = nullptr;
    for (auto& [name, entry] : catalog_) {
      // Published snapshots are pinned: with no backing file there is no
      // way to reload one, so eviction would lose it outright.
      if (entry.engine == nullptr || entry.path.empty()) continue;
      if (victim == nullptr || entry.last_used < victim->last_used) {
        victim = &entry;
      }
    }
    if (victim == nullptr) return;  // nothing evictable remains
    // In-flight queries hold their own shared_ptr; this only drops the
    // pod's reference, so the engine is destroyed once they finish.
    victim->engine.reset();
    resident_bytes_ -= victim->bytes;
    victim->bytes = 0;
    victim->metrics.evictions->Add();
  }
}

}  // namespace ifsketch::serve
