#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"

namespace ifsketch::serve {
namespace {

Status ToProtocolStatus(RouteStatus status) {
  switch (status) {
    case RouteStatus::kOk:
      return Status::kOk;
    case RouteStatus::kUnknownSketch:
      return Status::kUnknownSketch;
    case RouteStatus::kLoadFailed:
      return Status::kInternal;
    case RouteStatus::kUnsupportedQuery:
      return Status::kUnsupportedQuery;
  }
  return Status::kInternal;
}

bool SendError(Transport& transport, Status status,
               std::string_view message) {
  std::string wire;
  EncodeError(status, message, &wire);
  return transport.WriteAll(wire.data(), wire.size());
}

/// Turns a decoded query request into Itemsets over the target sketch's
/// universe, handing back the acquired engine so routing can reuse it
/// (one pod acquire per request). False (with an error already sent)
/// when the name is unknown, the file will not load, or any attribute
/// is out of range.
bool PrepareQueries(Router& router, Transport& transport,
                    const QueryRequest& request,
                    std::vector<core::Itemset>* ts,
                    std::shared_ptr<const Engine>* engine_out,
                    std::size_t* engine_pod) {
  auto engine = router.Acquire(request.sketch, engine_pod);
  if (engine == nullptr) {
    if (router.Knows(request.sketch)) {
      SendError(transport, Status::kInternal,
                "sketch \"" + request.sketch + "\" failed to load");
    } else {
      SendError(transport, Status::kUnknownSketch,
                "unknown sketch \"" + request.sketch + "\"");
    }
    return false;
  }
  const std::size_t d = engine->d();
  ts->reserve(request.queries.size());
  for (const auto& attrs : request.queries) {
    core::Itemset t(d);
    for (std::uint32_t attr : attrs) {
      if (attr >= d) {
        SendError(transport, Status::kUnsupportedQuery,
                  "attribute out of range for sketch \"" + request.sketch +
                      "\"");
        return false;
      }
      t.Add(attr);
    }
    if (!engine->supports_query_size(t.size())) {
      SendError(transport, Status::kUnsupportedQuery,
                "query size unsupported by sketch \"" + request.sketch +
                    "\"");
      return false;
    }
    ts->push_back(std::move(t));
  }
  *engine_out = std::move(engine);
  return true;
}

/// Decode with the kDecode stage stamped on the current trace.
template <typename DecodeFn>
auto TimedDecode(DecodeFn&& decode, std::string_view body) {
  obs::StageTimer timer(obs::Stage::kDecode);
  return decode(body);
}

/// Encode + write with the kEncode stage stamped on the current trace.
template <typename EncodeFn>
bool TimedReply(Transport& transport, Opcode opcode, EncodeFn&& encode) {
  obs::StageTimer timer(obs::Stage::kEncode);
  std::string reply;
  encode(&reply);
  return WriteFrame(transport, opcode, 0, reply);
}

bool HandleEstimate(Router& router, Transport& transport,
                    std::string_view body) {
  const auto request = TimedDecode(DecodeQueryRequest, body);
  if (!request.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable estimate request");
  }
  std::vector<core::Itemset> ts;
  std::shared_ptr<const Engine> engine;
  std::size_t engine_pod = Router::kNoPod;
  if (!PrepareQueries(router, transport, *request, &ts, &engine,
                      &engine_pod)) {
    return true;
  }
  std::vector<double> answers;
  RouteStatus status;
  {
    // The route span covers coalescing: queue wait for a follower, the
    // fused kernel for the leader (which also stamps kKernel).
    obs::StageTimer route_timer(obs::Stage::kRoute);
    status = router.EstimateMany(request->sketch, std::move(engine), ts,
                                 &answers, engine_pod);
  }
  if (status != RouteStatus::kOk) {
    return SendError(transport, ToProtocolStatus(status),
                     "estimate failed for sketch \"" + request->sketch +
                         "\" (indicator-flavored sketch?)");
  }
  return TimedReply(transport, Opcode::kEstimateReply,
                    [&answers](std::string* reply) {
                      EncodeEstimateReply(answers, reply);
                    });
}

bool HandleAreFrequent(Router& router, Transport& transport,
                       std::string_view body) {
  const auto request = TimedDecode(DecodeQueryRequest, body);
  if (!request.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable are-frequent request");
  }
  std::vector<core::Itemset> ts;
  std::shared_ptr<const Engine> engine;
  std::size_t engine_pod = Router::kNoPod;
  if (!PrepareQueries(router, transport, *request, &ts, &engine,
                      &engine_pod)) {
    return true;
  }
  std::vector<bool> answers;
  RouteStatus status;
  {
    obs::StageTimer route_timer(obs::Stage::kRoute);
    status = router.AreFrequent(request->sketch, std::move(engine), ts,
                                &answers, engine_pod);
  }
  if (status != RouteStatus::kOk) {
    return SendError(transport, ToProtocolStatus(status),
                     "are-frequent failed for sketch \"" + request->sketch +
                         "\"");
  }
  return TimedReply(transport, Opcode::kAreFrequentReply,
                    [&answers](std::string* reply) {
                      EncodeAreFrequentReply(answers, reply);
                    });
}

bool HandleInfo(Router& router, Transport& transport,
                std::string_view body) {
  const auto name = TimedDecode(DecodeInfoRequest, body);
  if (!name.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable info request");
  }
  const auto engine = router.Acquire(*name);
  if (engine == nullptr) {
    if (router.Knows(*name)) {
      return SendError(transport, Status::kInternal,
                       "sketch \"" + *name + "\" failed to load");
    }
    return SendError(transport, Status::kUnknownSketch,
                     "unknown sketch \"" + *name + "\"");
  }
  SketchInfo info;
  info.algorithm = engine->algorithm();
  info.k = static_cast<std::uint32_t>(engine->params().k);
  info.eps = engine->params().eps;
  info.delta = engine->params().delta;
  info.scope = engine->params().scope == core::Scope::kForAll ? 0 : 1;
  info.answer =
      engine->params().answer == core::Answer::kIndicator ? 0 : 1;
  info.n = engine->n();
  info.d = engine->d();
  info.summary_bits = engine->summary_bits();
  return TimedReply(transport, Opcode::kInfoReply,
                    [&info](std::string* reply) {
                      EncodeInfoReply(info, reply);
                    });
}

bool HandleRefresh(Router& router, Transport& transport,
                   std::string_view body) {
  const auto name = TimedDecode(DecodeRefreshRequest, body);
  if (!name.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable refresh request");
  }
  const auto state = router.SnapshotOf(*name);
  if (!state.has_value()) {
    return SendError(transport, Status::kUnknownSketch,
                     "unknown sketch \"" + *name + "\"");
  }
  return TimedReply(transport, Opcode::kRefreshReply,
                    [&state](std::string* reply) {
                      EncodeSnapshotReply(
                          SnapshotInfo{state->epoch, state->rows_seen},
                          reply);
                    });
}

bool HandleSubscribe(Router& router, Transport& transport,
                     std::string_view body) {
  const auto request = TimedDecode(DecodeSubscribeRequest, body);
  if (!request.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable subscribe request");
  }
  SnapshotState state;
  // The wait blocks only this connection's thread; publishes arrive from
  // the ingest thread and wake it through the pod's condition variable.
  if (!router.WaitForEpoch(request->sketch, request->min_epoch,
                           std::chrono::milliseconds(request->timeout_ms),
                           &state)) {
    return SendError(transport, Status::kUnknownSketch,
                     "unknown sketch \"" + request->sketch + "\"");
  }
  // On timeout the reply still carries the final state; the client tells
  // the cases apart by comparing epoch with its min_epoch.
  return TimedReply(transport, Opcode::kSubscribeReply,
                    [&state](std::string* reply) {
                      EncodeSnapshotReply(
                          SnapshotInfo{state.epoch, state.rows_seen}, reply);
                    });
}

bool HandleHealth(Router& router, Transport& transport,
                  std::string_view body) {
  if (!body.empty()) {
    return SendError(transport, Status::kBadRequest,
                     "health request takes no body");
  }
  const auto snapshots = router.pod_health();
  std::vector<PodHealthInfo> pods;
  pods.reserve(snapshots.size());
  for (const PodHealthSnapshot& s : snapshots) {
    PodHealthInfo info;
    info.health = static_cast<std::uint8_t>(s.health);
    info.consecutive_failures = s.consecutive_failures;
    info.inflight = s.inflight;
    info.resident_bytes = s.resident_bytes;
    pods.push_back(info);
  }
  std::string reply;
  if (!EncodeHealthReply(pods, &reply)) {
    return SendError(transport, Status::kInternal,
                     "health reply exceeds protocol limits");
  }
  return WriteFrame(transport, Opcode::kHealthReply, 0, reply);
}

bool HandleStats(Router& router, Transport& transport,
                 std::string_view body) {
  if (!body.empty()) {
    return SendError(transport, Status::kBadRequest,
                     "stats request takes no body");
  }
  const obs::MetricsSnapshot snap = router.registry().Snapshot();
  StatsReply stats;
  stats.counters.reserve(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    stats.counters.push_back(StatsCounter{name, value});
  }
  stats.gauges.reserve(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    stats.gauges.push_back(StatsGauge{name, value});
  }
  stats.histograms.reserve(snap.histograms.size());
  for (const auto& [name, h] : snap.histograms) {
    stats.histograms.push_back(
        StatsHistogram{name, h.count, h.sum, h.max, h.buckets});
  }
  std::string reply;
  if (!EncodeStatsReply(stats, &reply)) {
    return SendError(transport, Status::kInternal,
                     "stats reply exceeds protocol limits");
  }
  return WriteFrame(transport, Opcode::kStatsReply, 0, reply);
}

/// The per-opcode request counter plus the trace's op label, resolved
/// once per connection (serving threads then only touch lock-free
/// counters).
struct OpMetrics {
  obs::Counter* requests = nullptr;
  const char* op = "";
};

OpMetrics ResolveOp(obs::MetricsRegistry& registry, const char* op) {
  return OpMetrics{
      registry.GetCounter(obs::LabeledName("serve_requests_total", "op", op)),
      op};
}

}  // namespace

void ServeConnection(Router& router, Transport& transport) {
  obs::MetricsRegistry& registry = router.registry();
  const OpMetrics op_estimate = ResolveOp(registry, "estimate");
  const OpMetrics op_are_frequent = ResolveOp(registry, "are_frequent");
  const OpMetrics op_info = ResolveOp(registry, "info");
  const OpMetrics op_refresh = ResolveOp(registry, "refresh");
  const OpMetrics op_subscribe = ResolveOp(registry, "subscribe");
  const OpMetrics op_health = ResolveOp(registry, "health");
  const OpMetrics op_stats = ResolveOp(registry, "stats");

  // One request = one trace: count the opcode, then let the handler
  // stamp decode/route/acquire/kernel/encode onto the installed trace;
  // the trace destructor records the stages and the total span.
  const auto dispatch = [&](const OpMetrics& op, auto&& handler,
                            std::string_view body) {
    op.requests->Add();
    obs::RequestTrace trace(&registry, op.op);
    return handler(router, transport, body);
  };

  for (;;) {
    Frame frame;
    switch (ReadFrame(transport, &frame)) {
      case ReadResult::kEof:
        return;
      case ReadResult::kMalformed:
        // Framing is gone (bad header or short body): report once and
        // hang up -- there is no boundary to resynchronize on.
        SendError(transport, Status::kBadRequest, "malformed frame");
        transport.CloseWrite();
        return;
      case ReadResult::kFrame:
        break;
    }
    bool alive = true;
    switch (frame.header.opcode) {
      case Opcode::kEstimate:
        alive = dispatch(op_estimate, HandleEstimate, frame.body);
        break;
      case Opcode::kAreFrequent:
        alive = dispatch(op_are_frequent, HandleAreFrequent, frame.body);
        break;
      case Opcode::kInfo:
        alive = dispatch(op_info, HandleInfo, frame.body);
        break;
      case Opcode::kRefresh:
        alive = dispatch(op_refresh, HandleRefresh, frame.body);
        break;
      case Opcode::kSubscribe:
        alive = dispatch(op_subscribe, HandleSubscribe, frame.body);
        break;
      case Opcode::kHealth:
        alive = dispatch(op_health, HandleHealth, frame.body);
        break;
      case Opcode::kStats:
        alive = dispatch(op_stats, HandleStats, frame.body);
        break;
      default:
        // Reply opcodes are valid frames but not valid *requests*; the
        // frame was fully consumed, so the connection survives.
        alive = SendError(transport, Status::kBadRequest,
                          "frame opcode is not a request");
        break;
    }
    if (!alive) return;  // peer went away mid-reply
  }
}

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdTransport::WriteAll(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdTransport::ReadAll(void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, bytes + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK here means SO_RCVTIMEO expired: the deadline
      // contract says a stalled read fails like a dead peer.
      return false;
    }
    if (n == 0) return false;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void FdTransport::CloseWrite() { ::shutdown(fd_, SHUT_WR); }

bool FdTransport::SetReadTimeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpListener::Listen(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

std::unique_ptr<Transport> TcpListener::Accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  return std::make_unique<FdTransport>(client);
}

void TcpListener::Shutdown() {
  // shutdown(2) on a listening socket makes a blocked accept return
  // immediately with an error (Linux: EINVAL) without racing fd reuse
  // the way close() from another thread would; the fd itself still
  // closes in the destructor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<Transport> TcpConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<FdTransport>(fd);
}

}  // namespace ifsketch::serve
