#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ifsketch::serve {
namespace {

Status ToProtocolStatus(RouteStatus status) {
  switch (status) {
    case RouteStatus::kOk:
      return Status::kOk;
    case RouteStatus::kUnknownSketch:
      return Status::kUnknownSketch;
    case RouteStatus::kLoadFailed:
      return Status::kInternal;
    case RouteStatus::kUnsupportedQuery:
      return Status::kUnsupportedQuery;
  }
  return Status::kInternal;
}

bool SendError(Transport& transport, Status status,
               std::string_view message) {
  std::string wire;
  EncodeError(status, message, &wire);
  return transport.WriteAll(wire.data(), wire.size());
}

/// Turns a decoded query request into Itemsets over the target sketch's
/// universe, handing back the acquired engine so routing can reuse it
/// (one pod acquire per request). False (with an error already sent)
/// when the name is unknown, the file will not load, or any attribute
/// is out of range.
bool PrepareQueries(Router& router, Transport& transport,
                    const QueryRequest& request,
                    std::vector<core::Itemset>* ts,
                    std::shared_ptr<const Engine>* engine_out,
                    std::size_t* engine_pod) {
  auto engine = router.Acquire(request.sketch, engine_pod);
  if (engine == nullptr) {
    if (router.Knows(request.sketch)) {
      SendError(transport, Status::kInternal,
                "sketch \"" + request.sketch + "\" failed to load");
    } else {
      SendError(transport, Status::kUnknownSketch,
                "unknown sketch \"" + request.sketch + "\"");
    }
    return false;
  }
  const std::size_t d = engine->d();
  ts->reserve(request.queries.size());
  for (const auto& attrs : request.queries) {
    core::Itemset t(d);
    for (std::uint32_t attr : attrs) {
      if (attr >= d) {
        SendError(transport, Status::kUnsupportedQuery,
                  "attribute out of range for sketch \"" + request.sketch +
                      "\"");
        return false;
      }
      t.Add(attr);
    }
    if (!engine->supports_query_size(t.size())) {
      SendError(transport, Status::kUnsupportedQuery,
                "query size unsupported by sketch \"" + request.sketch +
                    "\"");
      return false;
    }
    ts->push_back(std::move(t));
  }
  *engine_out = std::move(engine);
  return true;
}

bool HandleEstimate(Router& router, Transport& transport,
                    std::string_view body) {
  const auto request = DecodeQueryRequest(body);
  if (!request.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable estimate request");
  }
  std::vector<core::Itemset> ts;
  std::shared_ptr<const Engine> engine;
  std::size_t engine_pod = Router::kNoPod;
  if (!PrepareQueries(router, transport, *request, &ts, &engine,
                      &engine_pod)) {
    return true;
  }
  std::vector<double> answers;
  const RouteStatus status = router.EstimateMany(
      request->sketch, std::move(engine), ts, &answers, engine_pod);
  if (status != RouteStatus::kOk) {
    return SendError(transport, ToProtocolStatus(status),
                     "estimate failed for sketch \"" + request->sketch +
                         "\" (indicator-flavored sketch?)");
  }
  std::string reply;
  EncodeEstimateReply(answers, &reply);
  return WriteFrame(transport, Opcode::kEstimateReply, 0, reply);
}

bool HandleAreFrequent(Router& router, Transport& transport,
                       std::string_view body) {
  const auto request = DecodeQueryRequest(body);
  if (!request.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable are-frequent request");
  }
  std::vector<core::Itemset> ts;
  std::shared_ptr<const Engine> engine;
  std::size_t engine_pod = Router::kNoPod;
  if (!PrepareQueries(router, transport, *request, &ts, &engine,
                      &engine_pod)) {
    return true;
  }
  std::vector<bool> answers;
  const RouteStatus status = router.AreFrequent(
      request->sketch, std::move(engine), ts, &answers, engine_pod);
  if (status != RouteStatus::kOk) {
    return SendError(transport, ToProtocolStatus(status),
                     "are-frequent failed for sketch \"" + request->sketch +
                         "\"");
  }
  std::string reply;
  EncodeAreFrequentReply(answers, &reply);
  return WriteFrame(transport, Opcode::kAreFrequentReply, 0, reply);
}

bool HandleInfo(Router& router, Transport& transport,
                std::string_view body) {
  const auto name = DecodeInfoRequest(body);
  if (!name.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable info request");
  }
  const auto engine = router.Acquire(*name);
  if (engine == nullptr) {
    if (router.Knows(*name)) {
      return SendError(transport, Status::kInternal,
                       "sketch \"" + *name + "\" failed to load");
    }
    return SendError(transport, Status::kUnknownSketch,
                     "unknown sketch \"" + *name + "\"");
  }
  SketchInfo info;
  info.algorithm = engine->algorithm();
  info.k = static_cast<std::uint32_t>(engine->params().k);
  info.eps = engine->params().eps;
  info.delta = engine->params().delta;
  info.scope = engine->params().scope == core::Scope::kForAll ? 0 : 1;
  info.answer =
      engine->params().answer == core::Answer::kIndicator ? 0 : 1;
  info.n = engine->n();
  info.d = engine->d();
  info.summary_bits = engine->summary_bits();
  std::string reply;
  EncodeInfoReply(info, &reply);
  return WriteFrame(transport, Opcode::kInfoReply, 0, reply);
}

bool HandleRefresh(Router& router, Transport& transport,
                   std::string_view body) {
  const auto name = DecodeRefreshRequest(body);
  if (!name.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable refresh request");
  }
  const auto state = router.SnapshotOf(*name);
  if (!state.has_value()) {
    return SendError(transport, Status::kUnknownSketch,
                     "unknown sketch \"" + *name + "\"");
  }
  std::string reply;
  EncodeSnapshotReply(SnapshotInfo{state->epoch, state->rows_seen}, &reply);
  return WriteFrame(transport, Opcode::kRefreshReply, 0, reply);
}

bool HandleSubscribe(Router& router, Transport& transport,
                     std::string_view body) {
  const auto request = DecodeSubscribeRequest(body);
  if (!request.has_value()) {
    return SendError(transport, Status::kBadRequest,
                     "undecodable subscribe request");
  }
  SnapshotState state;
  // The wait blocks only this connection's thread; publishes arrive from
  // the ingest thread and wake it through the pod's condition variable.
  if (!router.WaitForEpoch(request->sketch, request->min_epoch,
                           std::chrono::milliseconds(request->timeout_ms),
                           &state)) {
    return SendError(transport, Status::kUnknownSketch,
                     "unknown sketch \"" + request->sketch + "\"");
  }
  // On timeout the reply still carries the final state; the client tells
  // the cases apart by comparing epoch with its min_epoch.
  std::string reply;
  EncodeSnapshotReply(SnapshotInfo{state.epoch, state.rows_seen}, &reply);
  return WriteFrame(transport, Opcode::kSubscribeReply, 0, reply);
}

bool HandleHealth(Router& router, Transport& transport,
                  std::string_view body) {
  if (!body.empty()) {
    return SendError(transport, Status::kBadRequest,
                     "health request takes no body");
  }
  const auto snapshots = router.pod_health();
  std::vector<PodHealthInfo> pods;
  pods.reserve(snapshots.size());
  for (const PodHealthSnapshot& s : snapshots) {
    PodHealthInfo info;
    info.health = static_cast<std::uint8_t>(s.health);
    info.consecutive_failures = s.consecutive_failures;
    info.inflight = s.inflight;
    info.resident_bytes = s.resident_bytes;
    pods.push_back(info);
  }
  std::string reply;
  if (!EncodeHealthReply(pods, &reply)) {
    return SendError(transport, Status::kInternal,
                     "health reply exceeds protocol limits");
  }
  return WriteFrame(transport, Opcode::kHealthReply, 0, reply);
}

}  // namespace

void ServeConnection(Router& router, Transport& transport) {
  for (;;) {
    Frame frame;
    switch (ReadFrame(transport, &frame)) {
      case ReadResult::kEof:
        return;
      case ReadResult::kMalformed:
        // Framing is gone (bad header or short body): report once and
        // hang up -- there is no boundary to resynchronize on.
        SendError(transport, Status::kBadRequest, "malformed frame");
        transport.CloseWrite();
        return;
      case ReadResult::kFrame:
        break;
    }
    bool alive = true;
    switch (frame.header.opcode) {
      case Opcode::kEstimate:
        alive = HandleEstimate(router, transport, frame.body);
        break;
      case Opcode::kAreFrequent:
        alive = HandleAreFrequent(router, transport, frame.body);
        break;
      case Opcode::kInfo:
        alive = HandleInfo(router, transport, frame.body);
        break;
      case Opcode::kRefresh:
        alive = HandleRefresh(router, transport, frame.body);
        break;
      case Opcode::kSubscribe:
        alive = HandleSubscribe(router, transport, frame.body);
        break;
      case Opcode::kHealth:
        alive = HandleHealth(router, transport, frame.body);
        break;
      default:
        // Reply opcodes are valid frames but not valid *requests*; the
        // frame was fully consumed, so the connection survives.
        alive = SendError(transport, Status::kBadRequest,
                          "frame opcode is not a request");
        break;
    }
    if (!alive) return;  // peer went away mid-reply
  }
}

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdTransport::WriteAll(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdTransport::ReadAll(void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, bytes + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK here means SO_RCVTIMEO expired: the deadline
      // contract says a stalled read fails like a dead peer.
      return false;
    }
    if (n == 0) return false;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void FdTransport::CloseWrite() { ::shutdown(fd_, SHUT_WR); }

bool FdTransport::SetReadTimeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpListener::Listen(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

std::unique_ptr<Transport> TcpListener::Accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  return std::make_unique<FdTransport>(client);
}

void TcpListener::Shutdown() {
  // shutdown(2) on a listening socket makes a blocked accept return
  // immediately with an error (Linux: EINVAL) without racing fd reuse
  // the way close() from another thread would; the fd itself still
  // closes in the destructor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<Transport> TcpConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<FdTransport>(fd);
}

}  // namespace ifsketch::serve
