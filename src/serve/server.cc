#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"

namespace ifsketch::serve {
namespace {

Status ToProtocolStatus(RouteStatus status) {
  switch (status) {
    case RouteStatus::kOk:
      return Status::kOk;
    case RouteStatus::kUnknownSketch:
      return Status::kUnknownSketch;
    case RouteStatus::kLoadFailed:
      return Status::kInternal;
    case RouteStatus::kUnsupportedQuery:
      return Status::kUnsupportedQuery;
  }
  return Status::kInternal;
}

ReplyFrame ErrorReply(Status status, std::string_view message) {
  ReplyFrame reply;
  reply.opcode = Opcode::kError;
  reply.status = static_cast<std::uint8_t>(status);
  EncodeErrorBody(message, &reply.body);
  return reply;
}

bool SendError(Transport& transport, Status status,
               std::string_view message) {
  std::string wire;
  EncodeError(status, message, &wire);
  return transport.WriteAll(wire.data(), wire.size());
}

/// Turns a decoded query request into Itemsets over the target sketch's
/// universe, handing back the acquired engine so routing can reuse it
/// (one pod acquire per request). False (with `*error` filled) when the
/// name is unknown, the file will not load, or any attribute is out of
/// range.
bool PrepareQueries(Router& router, const QueryRequest& request,
                    std::vector<core::Itemset>* ts,
                    std::shared_ptr<const Engine>* engine_out,
                    std::size_t* engine_pod, ReplyFrame* error) {
  auto engine = router.Acquire(request.sketch, engine_pod);
  if (engine == nullptr) {
    if (router.Knows(request.sketch)) {
      *error = ErrorReply(Status::kInternal,
                          "sketch \"" + request.sketch + "\" failed to load");
    } else {
      *error = ErrorReply(Status::kUnknownSketch,
                          "unknown sketch \"" + request.sketch + "\"");
    }
    return false;
  }
  const std::size_t d = engine->d();
  ts->reserve(request.queries.size());
  for (const auto& attrs : request.queries) {
    core::Itemset t(d);
    for (std::uint32_t attr : attrs) {
      if (attr >= d) {
        *error = ErrorReply(Status::kUnsupportedQuery,
                            "attribute out of range for sketch \"" +
                                request.sketch + "\"");
        return false;
      }
      t.Add(attr);
    }
    if (!engine->supports_query_size(t.size())) {
      *error = ErrorReply(Status::kUnsupportedQuery,
                          "query size unsupported by sketch \"" +
                              request.sketch + "\"");
      return false;
    }
    ts->push_back(std::move(t));
  }
  *engine_out = std::move(engine);
  return true;
}

/// Decode with the kDecode stage stamped on the current trace.
template <typename DecodeFn>
auto TimedDecode(DecodeFn&& decode, std::string_view body) {
  obs::StageTimer timer(obs::Stage::kDecode);
  return decode(body);
}

/// Encode with the kEncode stage stamped on the current trace.
template <typename EncodeFn>
ReplyFrame TimedReply(Opcode opcode, EncodeFn&& encode) {
  obs::StageTimer timer(obs::Stage::kEncode);
  ReplyFrame reply;
  reply.opcode = opcode;
  encode(&reply.body);
  return reply;
}

ReplyFrame HandleEstimate(Router& router, std::string_view body) {
  const auto request = TimedDecode(DecodeQueryRequest, body);
  if (!request.has_value()) {
    return ErrorReply(Status::kBadRequest, "undecodable estimate request");
  }
  std::vector<core::Itemset> ts;
  std::shared_ptr<const Engine> engine;
  std::size_t engine_pod = Router::kNoPod;
  ReplyFrame error;
  if (!PrepareQueries(router, *request, &ts, &engine, &engine_pod, &error)) {
    return error;
  }
  std::vector<double> answers;
  RouteStatus status;
  {
    // The route span covers coalescing: queue wait for a follower, the
    // fused kernel for the leader (which also stamps kKernel).
    obs::StageTimer route_timer(obs::Stage::kRoute);
    status = router.EstimateMany(request->sketch, std::move(engine), ts,
                                 &answers, engine_pod);
  }
  if (status != RouteStatus::kOk) {
    return ErrorReply(ToProtocolStatus(status),
                      "estimate failed for sketch \"" + request->sketch +
                          "\" (indicator-flavored sketch?)");
  }
  return TimedReply(Opcode::kEstimateReply, [&answers](std::string* reply) {
    EncodeEstimateReply(answers, reply);
  });
}

ReplyFrame HandleAreFrequent(Router& router, std::string_view body) {
  const auto request = TimedDecode(DecodeQueryRequest, body);
  if (!request.has_value()) {
    return ErrorReply(Status::kBadRequest,
                      "undecodable are-frequent request");
  }
  std::vector<core::Itemset> ts;
  std::shared_ptr<const Engine> engine;
  std::size_t engine_pod = Router::kNoPod;
  ReplyFrame error;
  if (!PrepareQueries(router, *request, &ts, &engine, &engine_pod, &error)) {
    return error;
  }
  std::vector<bool> answers;
  RouteStatus status;
  {
    obs::StageTimer route_timer(obs::Stage::kRoute);
    status = router.AreFrequent(request->sketch, std::move(engine), ts,
                                &answers, engine_pod);
  }
  if (status != RouteStatus::kOk) {
    return ErrorReply(ToProtocolStatus(status),
                      "are-frequent failed for sketch \"" + request->sketch +
                          "\"");
  }
  return TimedReply(Opcode::kAreFrequentReply,
                    [&answers](std::string* reply) {
                      EncodeAreFrequentReply(answers, reply);
                    });
}

ReplyFrame HandleInfo(Router& router, std::string_view body) {
  const auto name = TimedDecode(DecodeInfoRequest, body);
  if (!name.has_value()) {
    return ErrorReply(Status::kBadRequest, "undecodable info request");
  }
  const auto engine = router.Acquire(*name);
  if (engine == nullptr) {
    if (router.Knows(*name)) {
      return ErrorReply(Status::kInternal,
                        "sketch \"" + *name + "\" failed to load");
    }
    return ErrorReply(Status::kUnknownSketch,
                      "unknown sketch \"" + *name + "\"");
  }
  SketchInfo info;
  info.algorithm = engine->algorithm();
  info.k = static_cast<std::uint32_t>(engine->params().k);
  info.eps = engine->params().eps;
  info.delta = engine->params().delta;
  info.scope = engine->params().scope == core::Scope::kForAll ? 0 : 1;
  info.answer =
      engine->params().answer == core::Answer::kIndicator ? 0 : 1;
  info.n = engine->n();
  info.d = engine->d();
  info.summary_bits = engine->summary_bits();
  return TimedReply(Opcode::kInfoReply, [&info](std::string* reply) {
    EncodeInfoReply(info, reply);
  });
}

ReplyFrame HandleRefresh(Router& router, std::string_view body) {
  const auto name = TimedDecode(DecodeRefreshRequest, body);
  if (!name.has_value()) {
    return ErrorReply(Status::kBadRequest, "undecodable refresh request");
  }
  const auto state = router.SnapshotOf(*name);
  if (!state.has_value()) {
    return ErrorReply(Status::kUnknownSketch,
                      "unknown sketch \"" + *name + "\"");
  }
  return TimedReply(Opcode::kRefreshReply, [&state](std::string* reply) {
    EncodeSnapshotReply(SnapshotInfo{state->epoch, state->rows_seen}, reply);
  });
}

ReplyFrame HandleSubscribe(Router& router, std::string_view body) {
  const auto request = TimedDecode(DecodeSubscribeRequest, body);
  if (!request.has_value()) {
    return ErrorReply(Status::kBadRequest, "undecodable subscribe request");
  }
  SnapshotState state;
  // The wait blocks only the thread carrying this request (a connection
  // thread on the blocking path, a dispatch worker on the reactor path);
  // publishes arrive from the ingest thread and wake it through the
  // pod's condition variable.
  if (!router.WaitForEpoch(request->sketch, request->min_epoch,
                           std::chrono::milliseconds(request->timeout_ms),
                           &state)) {
    return ErrorReply(Status::kUnknownSketch,
                      "unknown sketch \"" + request->sketch + "\"");
  }
  // On timeout the reply still carries the final state; the client tells
  // the cases apart by comparing epoch with its min_epoch.
  return TimedReply(Opcode::kSubscribeReply, [&state](std::string* reply) {
    EncodeSnapshotReply(SnapshotInfo{state.epoch, state.rows_seen}, reply);
  });
}

ReplyFrame HandleHealth(Router& router, std::string_view body) {
  if (!body.empty()) {
    return ErrorReply(Status::kBadRequest, "health request takes no body");
  }
  const auto snapshots = router.pod_health();
  std::vector<PodHealthInfo> pods;
  pods.reserve(snapshots.size());
  for (const PodHealthSnapshot& s : snapshots) {
    PodHealthInfo info;
    info.health = static_cast<std::uint8_t>(s.health);
    info.consecutive_failures = s.consecutive_failures;
    info.inflight = s.inflight;
    info.resident_bytes = s.resident_bytes;
    pods.push_back(info);
  }
  ReplyFrame reply;
  reply.opcode = Opcode::kHealthReply;
  if (!EncodeHealthReply(pods, &reply.body)) {
    return ErrorReply(Status::kInternal,
                      "health reply exceeds protocol limits");
  }
  return reply;
}

ReplyFrame HandleStats(Router& router, std::string_view body) {
  if (!body.empty()) {
    return ErrorReply(Status::kBadRequest, "stats request takes no body");
  }
  const obs::MetricsSnapshot snap = router.registry().Snapshot();
  StatsReply stats;
  stats.counters.reserve(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    stats.counters.push_back(StatsCounter{name, value});
  }
  stats.gauges.reserve(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    stats.gauges.push_back(StatsGauge{name, value});
  }
  stats.histograms.reserve(snap.histograms.size());
  for (const auto& [name, h] : snap.histograms) {
    stats.histograms.push_back(
        StatsHistogram{name, h.count, h.sum, h.max, h.buckets});
  }
  ReplyFrame reply;
  reply.opcode = Opcode::kStatsReply;
  if (!EncodeStatsReply(stats, &reply.body)) {
    return ErrorReply(Status::kInternal,
                      "stats reply exceeds protocol limits");
  }
  return reply;
}

constexpr const char* kOpNames[] = {"estimate", "are_frequent", "info",
                                    "refresh",  "subscribe",    "health",
                                    "stats"};
constexpr std::size_t kOpCount = sizeof(kOpNames) / sizeof(kOpNames[0]);

/// Request-opcode index into kOpNames; kOpCount for non-request opcodes.
std::size_t OpIndex(Opcode opcode) {
  switch (opcode) {
    case Opcode::kEstimate:
      return 0;
    case Opcode::kAreFrequent:
      return 1;
    case Opcode::kInfo:
      return 2;
    case Opcode::kRefresh:
      return 3;
    case Opcode::kSubscribe:
      return 4;
    case Opcode::kHealth:
      return 5;
    case Opcode::kStats:
      return 6;
    default:
      return kOpCount;
  }
}

/// serve_requests_total{op=} counters, cached thread-local per registry
/// generation (the RequestTrace pattern): dispatch threads resolve the
/// names once and then only touch lock-free counters, so the per-frame
/// path never takes the registry mutex.
obs::Counter* RequestCounter(obs::MetricsRegistry& registry,
                             std::size_t op) {
  struct Cache {
    const obs::MetricsRegistry* registry = nullptr;
    std::uint64_t generation = 0;
    obs::Counter* counters[kOpCount] = {};
  };
  thread_local Cache cache;
  if (cache.registry != &registry ||
      cache.generation != registry.generation()) {
    for (std::size_t i = 0; i < kOpCount; ++i) {
      cache.counters[i] = registry.GetCounter(
          obs::LabeledName("serve_requests_total", "op", kOpNames[i]));
    }
    cache.registry = &registry;
    cache.generation = registry.generation();
  }
  return cache.counters[op];
}

}  // namespace

ReplyFrame DispatchRequest(Router& router, Opcode opcode,
                           std::string_view body) {
  const std::size_t op = OpIndex(opcode);
  if (op == kOpCount) {
    // Reply opcodes are valid frames but not valid *requests*; the frame
    // was fully consumed, so the connection survives.
    return ErrorReply(Status::kBadRequest, "frame opcode is not a request");
  }
  // One request = one trace: count the opcode, then let the handler
  // stamp decode/route/acquire/kernel/encode onto the installed trace;
  // the trace destructor records the stages and the total span.
  obs::MetricsRegistry& registry = router.registry();
  RequestCounter(registry, op)->Add();
  obs::RequestTrace trace(&registry, kOpNames[op]);
  switch (opcode) {
    case Opcode::kEstimate:
      return HandleEstimate(router, body);
    case Opcode::kAreFrequent:
      return HandleAreFrequent(router, body);
    case Opcode::kInfo:
      return HandleInfo(router, body);
    case Opcode::kRefresh:
      return HandleRefresh(router, body);
    case Opcode::kSubscribe:
      return HandleSubscribe(router, body);
    case Opcode::kHealth:
      return HandleHealth(router, body);
    case Opcode::kStats:
      return HandleStats(router, body);
    default:
      return ErrorReply(Status::kBadRequest, "frame opcode is not a request");
  }
}

void ServeConnection(Router& router, Transport& transport) {
  for (;;) {
    Frame frame;
    switch (ReadFrame(transport, &frame)) {
      case ReadResult::kEof:
        return;
      case ReadResult::kMalformed:
        // Framing is gone (bad header or short body): report once and
        // hang up -- there is no boundary to resynchronize on.
        SendError(transport, Status::kBadRequest, "malformed frame");
        transport.CloseWrite();
        return;
      case ReadResult::kFrame:
        break;
    }
    const ReplyFrame reply =
        DispatchRequest(router, frame.header.opcode, frame.body);
    if (!WriteFrame(transport, reply.opcode, reply.status, reply.body)) {
      return;  // peer went away mid-reply
    }
  }
}

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdTransport::WriteAll(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdTransport::WritevAll(const ConstBuffer* buffers, std::size_t count) {
  // writev caps the vector at IOV_MAX entries; walk the spans with a
  // rolling (index, offset) cursor so partial writes and long batches
  // both resume exactly where the kernel stopped.
  std::size_t index = 0;
  std::size_t offset = 0;
  while (index < count) {
    iovec iov[64];
    int iov_count = 0;
    for (std::size_t i = index; i < count && iov_count < 64; ++i) {
      const std::size_t skip = i == index ? offset : 0;
      if (buffers[i].size <= skip) continue;
      iov[iov_count].iov_base = const_cast<char*>(
          static_cast<const char*>(buffers[i].data) + skip);
      iov[iov_count].iov_len = buffers[i].size - skip;
      ++iov_count;
    }
    if (iov_count == 0) return true;  // only empty spans left
    // sendmsg, not writev: MSG_NOSIGNAL turns a dead peer into a plain
    // EPIPE error instead of a process-killing SIGPIPE, matching the
    // WriteAll path above.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (index < count && advanced >= buffers[index].size - offset) {
      advanced -= buffers[index].size - offset;
      offset = 0;
      ++index;
    }
    offset += advanced;
  }
  return true;
}

bool FdTransport::ReadAll(void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, bytes + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK here means SO_RCVTIMEO expired: the deadline
      // contract says a stalled read fails like a dead peer.
      return false;
    }
    if (n == 0) return false;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void FdTransport::CloseWrite() { ::shutdown(fd_, SHUT_WR); }

bool FdTransport::SetReadTimeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpListener::Listen(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

std::unique_ptr<Transport> TcpListener::Accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  return std::make_unique<FdTransport>(client);
}

void TcpListener::Shutdown() {
  // shutdown(2) on a listening socket makes a blocked accept return
  // immediately with an error (Linux: EINVAL) without racing fd reuse
  // the way close() from another thread would; the fd itself still
  // closes in the destructor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<Transport> TcpConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<FdTransport>(fd);
}

}  // namespace ifsketch::serve
