// The serving loop: protocol dispatch over a Transport, plus TCP glue.
//
// ServeConnection is the whole server behavior for one connection and is
// transport-independent: the TCP binary (examples/ifsketch_server.cpp)
// runs it over an accepted socket, the tests and benches run the very
// same loop over a LoopbackTransport pair. Request frames dispatch
// through a shared Router (coalescing across connections happens there);
// malformed frames are answered with a kError frame where framing
// permits and the connection is closed where it does not (a bad header
// loses frame sync, so resynchronization is impossible by design --
// length-prefixed framing has no frame boundary markers to hunt for).
//
// The TCP pieces here are deliberately minimal: a blocking accept loop
// plus one thread per connection, which the tests and small tools still
// use. The production front end is the epoll reactor (serve/reactor.h);
// both paths answer requests through the one DispatchRequest below, so
// a frame gets the identical reply bytes whichever loop carried it.
#ifndef IFSKETCH_SERVE_SERVER_H_
#define IFSKETCH_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/router.h"
#include "serve/transport.h"

namespace ifsketch::serve {

/// One encoded reply, ready to frame: the unit DispatchRequest returns
/// and the reactor's in-order reply queue carries.
struct ReplyFrame {
  Opcode opcode = Opcode::kError;
  std::uint8_t status = 0;  ///< Status byte on kError replies, else 0
  std::string body;
};

/// Answers one request frame: decode, route through `router`, encode.
/// Every request opcode (and every failure) yields exactly one reply
/// frame; a non-request opcode in a valid frame yields a kError reply
/// without killing anything (the frame was consumed, framing holds).
/// Counts serve_requests_total{op=} and runs under a RequestTrace
/// exactly like the blocking loop always did. Thread-safe against one
/// Router; per-op counters are cached thread-local so the hot path
/// never takes the registry mutex.
ReplyFrame DispatchRequest(Router& router, Opcode opcode,
                           std::string_view body);

/// Serves one connection to completion: reads frames, dispatches through
/// `router`, writes replies. Returns when the peer closes cleanly or a
/// malformed frame forces the connection down. Safe to run on many
/// threads against one Router.
void ServeConnection(Router& router, Transport& transport);

/// Transport over an open file descriptor (socket); owns and closes it.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override;

  bool WriteAll(const void* data, std::size_t size) override;
  /// writev(2): all spans go out in one gathering write path, no staging
  /// copy -- the pipelined client sends a whole batch of frames this way.
  bool WritevAll(const ConstBuffer* buffers, std::size_t count) override;
  bool ReadAll(void* data, std::size_t size) override;
  void CloseWrite() override;

  /// SO_RCVTIMEO: a recv stalled past the timeout fails the read (the
  /// client-deadline contract). Zero restores blocking reads.
  bool SetReadTimeout(std::chrono::milliseconds timeout) override;

 private:
  int fd_;
};

/// Blocking loopback TCP listener.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()).
  bool Listen(std::uint16_t port);

  /// The bound port (after a successful Listen).
  std::uint16_t port() const { return port_; }

  /// Accepts one connection; nullptr on error/shutdown.
  std::unique_ptr<Transport> Accept();

  /// Wakes a blocked Accept (it returns nullptr) and refuses further
  /// connections; the graceful-shutdown path calls this from the signal
  /// thread. Safe to call more than once; the fd closes in ~TcpListener.
  void Shutdown();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`; nullptr on failure.
std::unique_ptr<Transport> TcpConnect(std::uint16_t port);

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_SERVER_H_
