#include "serve/reactor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "serve/server.h"

namespace ifsketch::serve {
namespace {

/// Per-recv buffer and per-wakeup read budget: a single chatty
/// connection yields the loop after this much input (level-triggered
/// epoll re-reports whatever it left behind).
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kReadBudget = 256 * 1024;
/// iovec spans per writev call (well under IOV_MAX everywhere).
constexpr int kMaxIov = 64;

}  // namespace

struct ReactorServer::Impl {
  /// One reply slot, created at frame arrival in request order. A
  /// dispatch worker fills it (done flips under mu); the loop writes the
  /// done prefix of the deque. Slots are only popped after being fully
  /// written, and deque push/pop at the ends never moves other elements,
  /// so a worker's slot pointer stays valid for the task's lifetime.
  struct PendingReply {
    bool done = false;
    char header[kFrameHeaderBytes];
    std::string body;
  };

  struct Conn {
    int fd = -1;
    std::size_t loop = 0;
    FrameDecoder decoder;  // loop thread only

    std::mutex mu;  // guards everything below
    std::deque<PendingReply> pending;
    std::size_t inflight = 0;        // dispatched, slot not yet done
    std::size_t outbound_bytes = 0;  // done-but-unwritten reply bytes
    std::size_t write_off = 0;       // bytes of pending.front() written
    bool paused = false;             // EPOLLIN dropped (backpressure)
    bool want_write = false;         // EPOLLOUT armed
    bool read_done = false;          // EOF or malformed: no more requests
    bool overflow = false;           // outbound hard cap tripped
    bool dead = false;               // fd closed, detached from its loop
  };

  struct Loop {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    // Loop-thread-only state.
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    // A connection closed mid-batch may still have stale events in the
    // current epoll_wait result; the graveyard keeps the object alive
    // through the batch and the set marks it skippable.
    std::vector<std::shared_ptr<Conn>> graveyard;
    std::unordered_set<Conn*> closed_in_batch;
    // Cross-thread inbox, drained on eventfd wakeups.
    std::mutex inbox_mu;
    std::vector<std::shared_ptr<Conn>> incoming;
    std::vector<std::shared_ptr<Conn>> completions;

    obs::Gauge* g_conns = nullptr;
    obs::Gauge* g_outbound = nullptr;
    obs::Counter* c_wakeups = nullptr;
  };

  Router& router;
  ReactorOptions options;

  int listen_fd = -1;
  std::uint16_t port = 0;
  std::vector<std::unique_ptr<Loop>> loops;
  std::size_t next_loop = 0;  // loop 0 (the accepting loop) only

  std::atomic<bool> stop_accepting{false};
  std::atomic<bool> stopping{false};
  std::atomic<std::size_t> open_conns{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  obs::Counter* c_rejected = nullptr;
  obs::Counter* c_hangups = nullptr;

  std::mutex drain_mu;
  std::condition_variable drain_cv;

  std::vector<std::thread> workers;
  std::mutex work_mu;
  std::condition_variable work_cv;
  std::deque<std::function<void()>> work;
  bool work_stop = false;

  Impl(Router& r, ReactorOptions o) : router(r), options(o) {
    if (options.loop_threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      options.loop_threads = hw == 0 ? 1 : hw;
    }
    if (options.dispatch_threads == 0) {
      options.dispatch_threads = std::max<std::size_t>(4, options.loop_threads);
    }
  }

  ~Impl() { Shutdown(); }

  // ------------------------------------------------------------- setup

  bool Listen(std::uint16_t want_port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) return false;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(want_port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd, 1024) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      ::close(listen_fd);
      listen_fd = -1;
      return false;
    }
    port = ntohs(addr.sin_port);

    obs::MetricsRegistry& registry = router.registry();
    c_rejected = registry.GetCounter("serve_conns_rejected_total");
    c_hangups = registry.GetCounter("serve_backpressure_hangups_total");

    loops.reserve(options.loop_threads);
    for (std::size_t i = 0; i < options.loop_threads; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (loop->epoll_fd < 0 || loop->event_fd < 0) return false;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = nullptr;  // nullptr tags the eventfd
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
      const std::string idx = std::to_string(i);
      loop->g_conns = registry.GetGauge(
          obs::LabeledName("serve_loop_connections", "loop", idx));
      loop->g_outbound = registry.GetGauge(
          obs::LabeledName("serve_loop_outbound_bytes", "loop", idx));
      loop->c_wakeups = registry.GetCounter(
          obs::LabeledName("serve_loop_wakeups_total", "loop", idx));
      loops.push_back(std::move(loop));
    }
    {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = this;  // `this` tags the listener (loop 0 only)
      ::epoll_ctl(loops[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
    }
    for (std::size_t i = 0; i < loops.size(); ++i) {
      loops[i]->thread = std::thread([this, i] { LoopMain(i); });
    }
    workers.reserve(options.dispatch_threads);
    for (std::size_t i = 0; i < options.dispatch_threads; ++i) {
      workers.emplace_back([this] { WorkerMain(); });
    }
    return true;
  }

  void Shutdown() {
    if (loops.empty()) {
      if (listen_fd >= 0) ::close(listen_fd);
      listen_fd = -1;
      return;
    }
    StopAccepting();
    stopping.store(true, std::memory_order_release);
    for (auto& loop : loops) Wake(*loop);
    for (auto& loop : loops) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    {
      std::lock_guard<std::mutex> lock(work_mu);
      work_stop = true;
      work.clear();  // queued tasks are for closed connections
    }
    work_cv.notify_all();
    for (std::thread& w : workers) {
      if (w.joinable()) w.join();
    }
    workers.clear();
    for (auto& loop : loops) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->event_fd >= 0) ::close(loop->event_fd);
    }
    loops.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
  }

  void StopAccepting() {
    if (stop_accepting.exchange(true)) return;
    // shutdown(2) (not close) so loop 0's registration stays valid; the
    // loop sees EPOLLIN/HUP, accept fails, and it deregisters itself.
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    {
      // An empty-but-stopped server must release WaitDrained.
      std::lock_guard<std::mutex> lock(drain_mu);
    }
    drain_cv.notify_all();
  }

  void WaitDrained() {
    std::unique_lock<std::mutex> lock(drain_mu);
    drain_cv.wait(lock, [this] {
      return stop_accepting.load() &&
             open_conns.load(std::memory_order_acquire) == 0;
    });
  }

  void Wake(Loop& loop) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(loop.event_fd, &one, sizeof(one));
  }

  // ------------------------------------------------------- event loops

  void LoopMain(std::size_t index) {
    Loop& loop = *loops[index];
    epoll_event events[128];
    for (;;) {
      const int n = ::epoll_wait(loop.epoll_fd, events, 128, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      loop.c_wakeups->Add();
      for (int i = 0; i < n; ++i) {
        void* tag = events[i].data.ptr;
        if (tag == nullptr) {
          std::uint64_t drained = 0;
          [[maybe_unused]] ssize_t r =
              ::read(loop.event_fd, &drained, sizeof(drained));
        } else if (tag == this) {
          AcceptReady();
        } else {
          Conn* raw = static_cast<Conn*>(tag);
          if (loop.closed_in_batch.count(raw) != 0) continue;
          auto it = loop.conns.find(raw->fd);
          if (it == loop.conns.end() || it->second.get() != raw) continue;
          std::shared_ptr<Conn> conn = it->second;
          if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
            HandleReadable(loop, conn);
          }
          if (loop.closed_in_batch.count(raw) == 0 &&
              (events[i].events & EPOLLOUT)) {
            TryFlush(loop, conn);
          }
        }
      }
      ProcessInbox(loop);
      loop.graveyard.clear();
      loop.closed_in_batch.clear();
      if (stopping.load(std::memory_order_acquire)) {
        std::vector<std::shared_ptr<Conn>> all;
        all.reserve(loop.conns.size());
        for (auto& [fd, conn] : loop.conns) all.push_back(conn);
        for (auto& conn : all) CloseConn(loop, conn);
        loop.graveyard.clear();
        loop.closed_in_batch.clear();
        return;
      }
    }
  }

  void ProcessInbox(Loop& loop) {
    std::vector<std::shared_ptr<Conn>> incoming;
    std::vector<std::shared_ptr<Conn>> completions;
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mu);
      incoming.swap(loop.incoming);
      completions.swap(loop.completions);
    }
    for (auto& conn : incoming) {
      if (stopping.load(std::memory_order_acquire)) {
        DropUnregistered(conn);
        continue;
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      const int fd = conn->fd;
      if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        DropUnregistered(conn);
        continue;
      }
      loop.g_conns->Add(1);
      loop.conns.emplace(fd, std::move(conn));
    }
    for (auto& conn : completions) {
      bool dead;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        dead = conn->dead;
      }
      if (!dead) TryFlush(loop, conn);
    }
  }

  /// An accepted connection that never reached its loop's epoll set.
  void DropUnregistered(const std::shared_ptr<Conn>& conn) {
    ::close(conn->fd);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->dead = true;
    }
    open_conns.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(drain_mu);
    }
    drain_cv.notify_all();
  }

  void AcceptReady() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN: drained. Anything else (EMFILE, or the shutdown(2)
        // from StopAccepting): stop for now; level-triggered epoll
        // retries if the condition persists.
        return;
      }
      if (stop_accepting.load(std::memory_order_acquire)) {
        ::close(fd);
        continue;
      }
      if (options.max_connections != 0 &&
          open_conns.load(std::memory_order_acquire) >=
              options.max_connections) {
        // Reject-at-accept: the peer sees an immediate EOF, standing
        // connections and the accept loop are unaffected.
        ::close(fd);
        rejected.fetch_add(1, std::memory_order_relaxed);
        c_rejected->Add();
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->loop = next_loop++ % loops.size();
      open_conns.fetch_add(1, std::memory_order_acq_rel);
      accepted.fetch_add(1, std::memory_order_relaxed);
      Loop& target = *loops[conn->loop];
      {
        std::lock_guard<std::mutex> lock(target.inbox_mu);
        target.incoming.push_back(std::move(conn));
      }
      Wake(target);
    }
  }

  void HandleReadable(Loop& loop, const std::shared_ptr<Conn>& conn) {
    char buf[kReadChunk];
    std::size_t total = 0;
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        CloseConn(loop, conn);
        return;
      }
      if (n == 0) {
        OnReadEof(loop, conn);
        return;
      }
      std::size_t off = 0;
      bool malformed = false;
      while (off < static_cast<std::size_t>(n)) {
        std::size_t used = 0;
        const FrameDecoder::Step step = conn->decoder.Consume(
            buf + off, static_cast<std::size_t>(n) - off, &used);
        off += used;
        if (step == FrameDecoder::Step::kNeedMore) break;
        if (step == FrameDecoder::Step::kMalformed) {
          malformed = true;
          break;
        }
        Frame frame = conn->decoder.take();
        PendingReply* slot = nullptr;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->pending.emplace_back();
          slot = &conn->pending.back();
          ++conn->inflight;
        }
        Submit(conn, slot, std::move(frame));
      }
      if (malformed) {
        // Same contract as the blocking loop: answer what was already
        // read (the slots ahead in the deque), then one kError, then
        // close. Bytes after the malformed frame are never interpreted.
        FailConnRead(loop, conn, "malformed frame");
        return;
      }
      bool pause = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        pause = conn->pending.size() >= options.max_outstanding ||
                conn->outbound_bytes >= options.pause_outbound_bytes;
        conn->paused = pause;
      }
      if (pause) {
        UpdateInterest(loop, conn.get());
        return;
      }
      total += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      if (total >= kReadBudget) return;  // yield; epoll re-reports
    }
  }

  void OnReadEof(Loop& loop, const std::shared_ptr<Conn>& conn) {
    if (conn->decoder.mid_frame()) {
      // Died mid-frame: the blocking path answers this with kError
      // before hanging up; match it (best effort, the peer may only
      // half-closed and still be reading).
      FailConnRead(loop, conn, "malformed frame");
      return;
    }
    // Clean half-close: no more requests, but every already-read frame
    // still gets its reply before the connection closes.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->read_done = true;
    }
    UpdateInterest(loop, conn.get());
    TryFlush(loop, conn);
  }

  /// Stops reading and queues the terminal kError reply behind whatever
  /// requests are already pending.
  void FailConnRead(Loop& loop, const std::shared_ptr<Conn>& conn,
                    std::string_view message) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->read_done = true;
      conn->pending.emplace_back();
      PendingReply& slot = conn->pending.back();
      EncodeErrorBody(message, &slot.body);
      EncodeFrameHeader(Opcode::kError,
                        static_cast<std::uint8_t>(Status::kBadRequest),
                        static_cast<std::uint32_t>(slot.body.size()),
                        slot.header);
      slot.done = true;
      conn->outbound_bytes += kFrameHeaderBytes + slot.body.size();
      loop.g_outbound->Add(
          static_cast<std::int64_t>(kFrameHeaderBytes + slot.body.size()));
    }
    UpdateInterest(loop, conn.get());
    TryFlush(loop, conn);
  }

  /// Re-arms the connection's epoll interest from its current flags.
  /// Loop thread only.
  void UpdateInterest(Loop& loop, Conn* conn) {
    epoll_event ev{};
    ev.data.ptr = conn;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      if (!conn->read_done && !conn->paused) ev.events |= EPOLLIN;
      if (conn->want_write) ev.events |= EPOLLOUT;
    }
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  /// Writes the completed prefix of the reply deque with writev,
  /// advancing the partial-write cursor; closes the connection when the
  /// hard outbound cap tripped, the peer died, or a drained half-closed
  /// connection has nothing left to say. Loop thread only.
  void TryFlush(Loop& loop, const std::shared_ptr<Conn>& conn) {
    bool do_close = false;
    bool hangup = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      if (conn->overflow) {
        hangup = true;
      } else {
        bool blocked = false;
        bool peer_dead = false;
        while (!blocked && !peer_dead) {
          iovec iov[kMaxIov];
          int cnt = 0;
          std::size_t off = conn->write_off;
          for (const PendingReply& slot : conn->pending) {
            if (!slot.done || cnt + 2 > kMaxIov) break;
            if (off < kFrameHeaderBytes) {
              iov[cnt].iov_base =
                  const_cast<char*>(slot.header) + off;
              iov[cnt].iov_len = kFrameHeaderBytes - off;
              ++cnt;
              off = kFrameHeaderBytes;
            }
            const std::size_t body_off = off - kFrameHeaderBytes;
            if (body_off < slot.body.size()) {
              iov[cnt].iov_base =
                  const_cast<char*>(slot.body.data()) + body_off;
              iov[cnt].iov_len = slot.body.size() - body_off;
              ++cnt;
            }
            off = 0;
          }
          if (cnt == 0) break;
          std::size_t built = 0;
          for (int i = 0; i < cnt; ++i) built += iov[i].iov_len;
          // sendmsg with MSG_NOSIGNAL: a client that disconnected with
          // replies pending must surface as EPIPE here, not SIGPIPE the
          // whole process.
          msghdr msg{};
          msg.msg_iov = iov;
          msg.msg_iovlen = static_cast<std::size_t>(cnt);
          const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
          if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
              blocked = true;
              break;
            }
            peer_dead = true;
            break;
          }
          std::size_t advanced = static_cast<std::size_t>(n);
          conn->outbound_bytes -= advanced;
          loop.g_outbound->Add(-static_cast<std::int64_t>(advanced));
          while (advanced > 0) {
            PendingReply& front = conn->pending.front();
            const std::size_t remaining =
                kFrameHeaderBytes + front.body.size() - conn->write_off;
            if (advanced >= remaining) {
              advanced -= remaining;
              conn->write_off = 0;
              conn->pending.pop_front();
            } else {
              conn->write_off += advanced;
              advanced = 0;
            }
          }
          if (static_cast<std::size_t>(n) < built) {
            blocked = true;
            break;
          }
        }
        if (peer_dead) {
          do_close = true;
        } else {
          conn->want_write = blocked;
          if (conn->paused && !conn->read_done &&
              conn->pending.size() < options.max_outstanding &&
              conn->outbound_bytes < options.pause_outbound_bytes) {
            conn->paused = false;
          }
          if (conn->read_done && conn->inflight == 0 &&
              conn->pending.empty()) {
            do_close = true;
          }
        }
      }
    }
    if (hangup) {
      c_hangups->Add();
      CloseConn(loop, conn);
      return;
    }
    if (do_close) {
      CloseConn(loop, conn);
      return;
    }
    UpdateInterest(loop, conn.get());
  }

  /// Detaches the connection from its loop and closes the fd. Loop
  /// thread only; safe to call once per connection (later stale events
  /// in the same batch are screened by closed_in_batch).
  void CloseConn(Loop& loop, const std::shared_ptr<Conn>& conn) {
    std::size_t leftover = 0;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      conn->dead = true;
      leftover = conn->outbound_bytes;
      conn->outbound_bytes = 0;
    }
    if (leftover != 0) {
      loop.g_outbound->Add(-static_cast<std::int64_t>(leftover));
    }
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    loop.conns.erase(conn->fd);
    loop.closed_in_batch.insert(conn.get());
    loop.graveyard.push_back(conn);
    loop.g_conns->Add(-1);
    open_conns.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(drain_mu);
    }
    drain_cv.notify_all();
  }

  // --------------------------------------------------------- dispatch

  void Submit(std::shared_ptr<Conn> conn, PendingReply* slot, Frame frame) {
    {
      std::lock_guard<std::mutex> lock(work_mu);
      if (work_stop) return;
      work.push_back([this, conn = std::move(conn), slot,
                      frame = std::move(frame)]() mutable {
        RunRequest(std::move(conn), slot, std::move(frame));
      });
    }
    work_cv.notify_one();
  }

  void WorkerMain() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(work_mu);
        work_cv.wait(lock, [this] { return work_stop || !work.empty(); });
        if (work_stop) return;
        task = std::move(work.front());
        work.pop_front();
      }
      task();
    }
  }

  void RunRequest(std::shared_ptr<Conn> conn, PendingReply* slot,
                  Frame frame) {
    ReplyFrame reply =
        DispatchRequest(router, frame.header.opcode, frame.body);
    Loop& loop = *loops[conn->loop];
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      slot->body = std::move(reply.body);
      if (!EncodeFrameHeader(reply.opcode, reply.status,
                             static_cast<std::uint32_t>(slot->body.size()),
                             slot->header)) {
        // A reply body over kMaxBodyBytes cannot be framed (possible
        // only for a pathological stats snapshot); degrade to an error
        // reply rather than emit an unparseable frame.
        slot->body.clear();
        EncodeErrorBody("reply exceeds frame limit", &slot->body);
        EncodeFrameHeader(Opcode::kError,
                          static_cast<std::uint8_t>(Status::kInternal),
                          static_cast<std::uint32_t>(slot->body.size()),
                          slot->header);
      }
      slot->done = true;
      --conn->inflight;
      if (!conn->dead) {
        const std::size_t sz = kFrameHeaderBytes + slot->body.size();
        conn->outbound_bytes += sz;
        loop.g_outbound->Add(static_cast<std::int64_t>(sz));
        if (options.max_outbound_bytes != 0 &&
            conn->outbound_bytes > options.max_outbound_bytes) {
          conn->overflow = true;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mu);
      loop.completions.push_back(std::move(conn));
    }
    Wake(loop);
  }
};

ReactorServer::ReactorServer(Router& router, ReactorOptions options)
    : impl_(std::make_unique<Impl>(router, options)) {}

ReactorServer::~ReactorServer() = default;

bool ReactorServer::Listen(std::uint16_t port) { return impl_->Listen(port); }

std::uint16_t ReactorServer::port() const { return impl_->port; }

void ReactorServer::StopAccepting() { impl_->StopAccepting(); }

void ReactorServer::WaitDrained() { impl_->WaitDrained(); }

std::size_t ReactorServer::open_connections() const {
  return impl_->open_conns.load(std::memory_order_acquire);
}

std::uint64_t ReactorServer::accepted_total() const {
  return impl_->accepted.load(std::memory_order_relaxed);
}

std::uint64_t ReactorServer::rejected_total() const {
  return impl_->rejected.load(std::memory_order_relaxed);
}

}  // namespace ifsketch::serve
