#include "serve/protocol.h"

#include <algorithm>
#include <cstring>

namespace ifsketch::serve {
namespace {

template <typename T>
void PutRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void PutString(std::string* out, std::string_view s) {
  PutRaw<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked cursor over a body buffer: every Get advances only on
/// success, so a decoder can bail at the first short read.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Get(T& value) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetString(std::string& value) {
    std::uint16_t len = 0;
    if (!Get(len) || data_.size() - pos_ < len) return false;
    value.assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool Done() const { return pos_ == data_.size(); }

  std::size_t Remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

bool KnownOpcode(std::uint8_t byte) {
  switch (static_cast<Opcode>(byte)) {
    case Opcode::kEstimate:
    case Opcode::kAreFrequent:
    case Opcode::kInfo:
    case Opcode::kRefresh:
    case Opcode::kSubscribe:
    case Opcode::kHealth:
    case Opcode::kStats:
    case Opcode::kEstimateReply:
    case Opcode::kAreFrequentReply:
    case Opcode::kInfoReply:
    case Opcode::kRefreshReply:
    case Opcode::kSubscribeReply:
    case Opcode::kHealthReply:
    case Opcode::kStatsReply:
    case Opcode::kError:
      return true;
  }
  return false;
}

}  // namespace

bool EncodeFrame(Opcode opcode, std::uint8_t status, std::string_view body,
                 std::string* out) {
  if (body.size() > kMaxBodyBytes) return false;
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(opcode, status, static_cast<std::uint32_t>(body.size()),
                    header);
  out->append(header, kFrameHeaderBytes);
  out->append(body.data(), body.size());
  return true;
}

bool EncodeFrameHeader(Opcode opcode, std::uint8_t status,
                       std::uint32_t body_length, char* out) {
  if (body_length > kMaxBodyBytes) return false;
  std::memcpy(out, kFrameMagic, sizeof(kFrameMagic));
  const std::uint16_t version = kProtocolVersion;
  std::memcpy(out + 4, &version, sizeof(version));
  out[6] = static_cast<char>(opcode);
  out[7] = static_cast<char>(status);
  std::memcpy(out + 8, &body_length, sizeof(body_length));
  return true;
}

bool EncodeQueryRequest(const QueryRequest& request, std::string* body) {
  if (request.sketch.size() > 0xffff) return false;
  if (request.queries.size() > kMaxQueriesPerRequest) return false;
  PutString(body, request.sketch);
  PutRaw<std::uint32_t>(body,
                        static_cast<std::uint32_t>(request.queries.size()));
  for (const auto& attrs : request.queries) {
    if (attrs.size() > 0xffff) return false;
    PutRaw<std::uint16_t>(body, static_cast<std::uint16_t>(attrs.size()));
    for (std::uint32_t attr : attrs) PutRaw<std::uint32_t>(body, attr);
  }
  return true;
}

void EncodeEstimateReply(const std::vector<double>& answers,
                         std::string* body) {
  PutRaw<std::uint32_t>(body, static_cast<std::uint32_t>(answers.size()));
  for (double a : answers) PutRaw<double>(body, a);
}

void EncodeAreFrequentReply(const std::vector<bool>& answers,
                            std::string* body) {
  PutRaw<std::uint32_t>(body, static_cast<std::uint32_t>(answers.size()));
  // Pack bits LSB-first, the same order the IFSK payload uses.
  std::string bytes((answers.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < answers.size(); ++i) {
    if (answers[i]) bytes[i / 8] |= static_cast<char>(1 << (i % 8));
  }
  body->append(bytes);
}

bool EncodeInfoRequest(std::string_view sketch, std::string* body) {
  if (sketch.size() > 0xffff) return false;
  PutString(body, sketch);
  return true;
}

void EncodeInfoReply(const SketchInfo& info, std::string* body) {
  PutString(body, info.algorithm);
  PutRaw<std::uint32_t>(body, info.k);
  PutRaw<double>(body, info.eps);
  PutRaw<double>(body, info.delta);
  PutRaw<std::uint8_t>(body, info.scope);
  PutRaw<std::uint8_t>(body, info.answer);
  PutRaw<std::uint64_t>(body, info.n);
  PutRaw<std::uint64_t>(body, info.d);
  PutRaw<std::uint64_t>(body, info.summary_bits);
}

bool EncodeRefreshRequest(std::string_view sketch, std::string* body) {
  if (sketch.size() > 0xffff) return false;
  PutString(body, sketch);
  return true;
}

bool EncodeSubscribeRequest(const SubscribeRequest& request,
                            std::string* body) {
  if (request.sketch.size() > 0xffff) return false;
  if (request.timeout_ms > kMaxSubscribeTimeoutMs) return false;
  PutString(body, request.sketch);
  PutRaw<std::uint64_t>(body, request.min_epoch);
  PutRaw<std::uint32_t>(body, request.timeout_ms);
  return true;
}

void EncodeSnapshotReply(const SnapshotInfo& info, std::string* body) {
  PutRaw<std::uint64_t>(body, info.epoch);
  PutRaw<std::uint64_t>(body, info.rows_seen);
}

bool EncodeHealthReply(const std::vector<PodHealthInfo>& pods,
                       std::string* body) {
  if (pods.size() > kMaxPodsPerReply) return false;
  PutRaw<std::uint32_t>(body, static_cast<std::uint32_t>(pods.size()));
  for (const PodHealthInfo& pod : pods) {
    PutRaw<std::uint8_t>(body, pod.health);
    PutRaw<std::uint32_t>(body, pod.consecutive_failures);
    PutRaw<std::uint64_t>(body, pod.inflight);
    PutRaw<std::uint64_t>(body, pod.resident_bytes);
  }
  return true;
}

bool EncodeStatsReply(const StatsReply& reply, std::string* body) {
  if (reply.counters.size() > kMaxMetricsPerReply ||
      reply.gauges.size() > kMaxMetricsPerReply ||
      reply.histograms.size() > kMaxMetricsPerReply) {
    return false;
  }
  PutRaw<std::uint32_t>(body,
                        static_cast<std::uint32_t>(reply.counters.size()));
  for (const StatsCounter& c : reply.counters) {
    if (c.name.size() > 0xffff) return false;
    PutString(body, c.name);
    PutRaw<std::uint64_t>(body, c.value);
  }
  PutRaw<std::uint32_t>(body,
                        static_cast<std::uint32_t>(reply.gauges.size()));
  for (const StatsGauge& g : reply.gauges) {
    if (g.name.size() > 0xffff) return false;
    PutString(body, g.name);
    PutRaw<std::int64_t>(body, g.value);
  }
  PutRaw<std::uint32_t>(body,
                        static_cast<std::uint32_t>(reply.histograms.size()));
  for (const StatsHistogram& h : reply.histograms) {
    if (h.name.size() > 0xffff) return false;
    if (h.buckets.size() > kMaxHistogramBuckets) return false;
    PutString(body, h.name);
    PutRaw<std::uint64_t>(body, h.count);
    PutRaw<std::uint64_t>(body, h.sum);
    PutRaw<std::uint64_t>(body, h.max);
    PutRaw<std::uint32_t>(body,
                          static_cast<std::uint32_t>(h.buckets.size()));
    for (std::uint64_t b : h.buckets) PutRaw<std::uint64_t>(body, b);
  }
  return true;
}

void EncodeError(Status status, std::string_view message, std::string* out) {
  std::string body;
  EncodeErrorBody(message, &body);
  EncodeFrame(Opcode::kError, static_cast<std::uint8_t>(status), body, out);
}

void EncodeErrorBody(std::string_view message, std::string* body) {
  // Error messages are diagnostic, not data: truncate rather than fail.
  if (message.size() > 0xffff) message = message.substr(0, 0xffff);
  PutString(body, message);
}

std::optional<FrameHeader> DecodeFrameHeader(const char* data,
                                             std::size_t size) {
  if (size != kFrameHeaderBytes) return std::nullopt;
  if (std::memcmp(data, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return std::nullopt;
  }
  std::uint16_t version = 0;
  std::memcpy(&version, data + 4, sizeof(version));
  if (version != kProtocolVersion) return std::nullopt;
  const std::uint8_t opcode = static_cast<std::uint8_t>(data[6]);
  if (!KnownOpcode(opcode)) return std::nullopt;
  FrameHeader header;
  header.opcode = static_cast<Opcode>(opcode);
  header.status = static_cast<std::uint8_t>(data[7]);
  std::memcpy(&header.body_length, data + 8, sizeof(header.body_length));
  if (header.body_length > kMaxBodyBytes) return std::nullopt;
  return header;
}

std::optional<QueryRequest> DecodeQueryRequest(std::string_view body) {
  Reader in(body);
  QueryRequest request;
  std::uint32_t count = 0;
  if (!in.GetString(request.sketch) || !in.Get(count)) return std::nullopt;
  if (count > kMaxQueriesPerRequest) return std::nullopt;
  // Bound the declared count by the bytes actually present (every query
  // costs at least its u16 attribute count) before sizing anything from
  // it -- a tiny frame must not provoke a megabyte reserve.
  if (count > in.Remaining() / 2) return std::nullopt;
  request.queries.reserve(count);
  for (std::uint32_t q = 0; q < count; ++q) {
    std::uint16_t attrs = 0;
    if (!in.Get(attrs)) return std::nullopt;
    std::vector<std::uint32_t> query(attrs);
    for (std::uint16_t a = 0; a < attrs; ++a) {
      if (!in.Get(query[a])) return std::nullopt;
    }
    request.queries.push_back(std::move(query));
  }
  if (!in.Done()) return std::nullopt;
  return request;
}

std::optional<std::vector<double>> DecodeEstimateReply(
    std::string_view body) {
  Reader in(body);
  std::uint32_t count = 0;
  if (!in.Get(count) || count > kMaxQueriesPerRequest) return std::nullopt;
  // The body is exactly `count` raw doubles; check before allocating.
  if (in.Remaining() != static_cast<std::size_t>(count) * sizeof(double)) {
    return std::nullopt;
  }
  std::vector<double> answers(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!in.Get(answers[i])) return std::nullopt;
  }
  return answers;
}

std::optional<std::vector<bool>> DecodeAreFrequentReply(
    std::string_view body) {
  Reader in(body);
  std::uint32_t count = 0;
  if (!in.Get(count) || count > kMaxQueriesPerRequest) return std::nullopt;
  // The body is exactly the packed bit bytes; check before allocating.
  if (in.Remaining() != (static_cast<std::size_t>(count) + 7) / 8) {
    return std::nullopt;
  }
  std::vector<bool> answers(count);
  std::uint8_t byte = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (i % 8 == 0 && !in.Get(byte)) return std::nullopt;
    answers[i] = (byte >> (i % 8)) & 1;
  }
  return answers;
}

std::optional<std::string> DecodeInfoRequest(std::string_view body) {
  Reader in(body);
  std::string sketch;
  if (!in.GetString(sketch) || !in.Done()) return std::nullopt;
  return sketch;
}

std::optional<SketchInfo> DecodeInfoReply(std::string_view body) {
  Reader in(body);
  SketchInfo info;
  if (!in.GetString(info.algorithm) || !in.Get(info.k) ||
      !in.Get(info.eps) || !in.Get(info.delta) || !in.Get(info.scope) ||
      !in.Get(info.answer) || !in.Get(info.n) || !in.Get(info.d) ||
      !in.Get(info.summary_bits) || !in.Done()) {
    return std::nullopt;
  }
  // Enum bytes must name a real enumerator (same rule as ReadSketch).
  if (info.scope > 1 || info.answer > 1) return std::nullopt;
  return info;
}

std::optional<std::string> DecodeRefreshRequest(std::string_view body) {
  Reader in(body);
  std::string sketch;
  if (!in.GetString(sketch) || !in.Done()) return std::nullopt;
  return sketch;
}

std::optional<SubscribeRequest> DecodeSubscribeRequest(std::string_view body) {
  Reader in(body);
  SubscribeRequest request;
  if (!in.GetString(request.sketch) || !in.Get(request.min_epoch) ||
      !in.Get(request.timeout_ms) || !in.Done()) {
    return std::nullopt;
  }
  // An oversize timeout would park a server connection thread; reject it
  // at the codec like every other limit.
  if (request.timeout_ms > kMaxSubscribeTimeoutMs) return std::nullopt;
  return request;
}

std::optional<SnapshotInfo> DecodeSnapshotReply(std::string_view body) {
  Reader in(body);
  SnapshotInfo info;
  if (!in.Get(info.epoch) || !in.Get(info.rows_seen) || !in.Done()) {
    return std::nullopt;
  }
  return info;
}

std::optional<std::vector<PodHealthInfo>> DecodeHealthReply(
    std::string_view body) {
  Reader in(body);
  std::uint32_t count = 0;
  if (!in.Get(count) || count > kMaxPodsPerReply) return std::nullopt;
  // Each row is exactly 21 bytes; bound the declared count by the bytes
  // actually present before allocating anything from it.
  constexpr std::size_t kRowBytes = 1 + 4 + 8 + 8;
  if (in.Remaining() != static_cast<std::size_t>(count) * kRowBytes) {
    return std::nullopt;
  }
  std::vector<PodHealthInfo> pods(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PodHealthInfo& pod = pods[i];
    if (!in.Get(pod.health) || !in.Get(pod.consecutive_failures) ||
        !in.Get(pod.inflight) || !in.Get(pod.resident_bytes)) {
      return std::nullopt;
    }
    // The health byte must name a real state (same rule as ReadSketch).
    if (pod.health > 2) return std::nullopt;
  }
  if (!in.Done()) return std::nullopt;
  return pods;
}

std::optional<StatsReply> DecodeStatsReply(std::string_view body) {
  Reader in(body);
  StatsReply reply;
  std::uint32_t count = 0;

  // Counters: each row costs at least its u16 name length + u64 value;
  // bound every declared count by the bytes actually present before
  // sizing anything from it (the DecodeQueryRequest discipline).
  if (!in.Get(count) || count > kMaxMetricsPerReply) return std::nullopt;
  if (count > in.Remaining() / (2 + 8)) return std::nullopt;
  reply.counters.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StatsCounter c;
    if (!in.GetString(c.name) || !in.Get(c.value)) return std::nullopt;
    reply.counters.push_back(std::move(c));
  }

  if (!in.Get(count) || count > kMaxMetricsPerReply) return std::nullopt;
  if (count > in.Remaining() / (2 + 8)) return std::nullopt;
  reply.gauges.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StatsGauge g;
    if (!in.GetString(g.name) || !in.Get(g.value)) return std::nullopt;
    reply.gauges.push_back(std::move(g));
  }

  // Histograms: minimum row is name length u16 + count/sum/max u64 +
  // bucket_count u32.
  if (!in.Get(count) || count > kMaxMetricsPerReply) return std::nullopt;
  if (count > in.Remaining() / (2 + 3 * 8 + 4)) return std::nullopt;
  reply.histograms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StatsHistogram h;
    std::uint32_t buckets = 0;
    if (!in.GetString(h.name) || !in.Get(h.count) || !in.Get(h.sum) ||
        !in.Get(h.max) || !in.Get(buckets)) {
      return std::nullopt;
    }
    if (buckets > kMaxHistogramBuckets) return std::nullopt;
    if (in.Remaining() < static_cast<std::size_t>(buckets) * 8) {
      return std::nullopt;
    }
    h.buckets.resize(buckets);
    for (std::uint32_t b = 0; b < buckets; ++b) {
      if (!in.Get(h.buckets[b])) return std::nullopt;
    }
    reply.histograms.push_back(std::move(h));
  }
  if (!in.Done()) return std::nullopt;
  return reply;
}

std::optional<std::string> DecodeErrorMessage(std::string_view body) {
  Reader in(body);
  std::string message;
  if (!in.GetString(message) || !in.Done()) return std::nullopt;
  return message;
}

FrameDecoder::Step FrameDecoder::Consume(const char* data, std::size_t size,
                                         std::size_t* consumed) {
  *consumed = 0;
  while (true) {
    switch (state_) {
      case State::kMalformed:
        return Step::kMalformed;
      case State::kHeader: {
        const std::size_t take =
            std::min(size - *consumed, kFrameHeaderBytes - have_);
        std::memcpy(header_ + have_, data + *consumed, take);
        have_ += take;
        *consumed += take;
        if (have_ < kFrameHeaderBytes) return Step::kNeedMore;
        std::optional<FrameHeader> header =
            DecodeFrameHeader(header_, kFrameHeaderBytes);
        if (!header) {
          state_ = State::kMalformed;
          return Step::kMalformed;
        }
        // The length field was validated against kMaxBodyBytes above, so
        // this resize is bounded.
        frame_.header = *header;
        frame_.body.resize(header->body_length);
        have_ = 0;
        state_ = State::kBody;
        break;
      }
      case State::kBody: {
        const std::size_t take =
            std::min(size - *consumed, frame_.body.size() - have_);
        std::memcpy(frame_.body.data() + have_, data + *consumed, take);
        have_ += take;
        *consumed += take;
        if (have_ < frame_.body.size()) return Step::kNeedMore;
        have_ = 0;
        state_ = State::kHeader;
        return Step::kFrame;
      }
    }
  }
}

}  // namespace ifsketch::serve
