// Byte transports the wire protocol runs over.
//
// serve/protocol.h defines pure buffer codecs; this header supplies the
// byte-stream abstraction underneath them, so the identical frames drive
// a TCP socket (serve/server.h wraps an fd in FdTransport) and the
// in-process loopback pair the tests and benches use. ReadFrame /
// WriteFrame are the only frame I/O in the subsystem: ReadFrame reads
// exactly one validated header and then exactly header.body_length body
// bytes -- never more -- so a malformed frame cannot make the server
// over-read into the next frame.
#ifndef IFSKETCH_SERVE_TRANSPORT_H_
#define IFSKETCH_SERVE_TRANSPORT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "serve/protocol.h"

namespace ifsketch::serve {

/// One span of a vectored write (mirrors struct iovec without pulling
/// <sys/uio.h> into transport-independent code).
struct ConstBuffer {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// A blocking, reliable, ordered byte stream (one direction per method).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes all `size` bytes; false on a closed/failed peer.
  virtual bool WriteAll(const void* data, std::size_t size) = 0;

  /// Writes every buffer, in order, as one logical write; false on a
  /// closed/failed peer (the stream position is then unspecified, like a
  /// partial WriteAll). The default loops WriteAll; fd-backed transports
  /// override with writev so a pipelined batch of frames (headers and
  /// bodies as separate spans) goes out without a staging-buffer copy.
  virtual bool WritevAll(const ConstBuffer* buffers, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      if (buffers[i].size == 0) continue;
      if (!WriteAll(buffers[i].data, buffers[i].size)) return false;
    }
    return true;
  }

  /// Reads exactly `size` bytes; false on EOF or error before `size`
  /// bytes arrive. A clean EOF at offset 0 also returns false -- callers
  /// that care use ReadFrame's distinction below.
  virtual bool ReadAll(void* data, std::size_t size) = 0;

  /// Signals end-of-stream to the peer's reads; further writes fail.
  virtual void CloseWrite() = 0;

  /// Bounds every subsequent read: a read that makes no progress for
  /// `timeout` fails as if the peer died, which is how client deadlines
  /// turn a stalled server into a retryable transport error instead of a
  /// hung thread. Zero restores blocking reads. Returns false when the
  /// transport cannot enforce timeouts (the default); callers fall back
  /// to unbounded blocking reads.
  virtual bool SetReadTimeout(std::chrono::milliseconds timeout) {
    (void)timeout;
    return false;
  }
};

/// Result of ReadFrame: distinguishes a clean end-of-stream (peer closed
/// between frames) from a protocol violation (bad header, short body).
enum class ReadResult {
  kFrame,      ///< `frame` holds a complete validated frame
  kEof,        ///< stream ended cleanly before any header byte
  kMalformed,  ///< bad magic/version/opcode/length or truncated frame
};

/// Reads one frame. Consumes exactly kFrameHeaderBytes + body_length
/// bytes on success and never reads past the declared body length.
ReadResult ReadFrame(Transport& transport, Frame* frame);

/// Encodes and writes one frame; false when the body is over-long or the
/// transport fails.
bool WriteFrame(Transport& transport, Opcode opcode, std::uint8_t status,
                std::string_view body);

/// One direction of an in-process connection: a bounded-unbounded byte
/// queue with blocking reads. Shared by the two LoopbackTransport ends.
class LoopbackChannel;

/// In-process Transport: two channels cross-wired so that one end's
/// writes are the other end's reads. Drives the protocol (and the whole
/// server dispatch loop) in tests and benches without sockets.
class LoopbackTransport : public Transport {
 public:
  /// A connected pair: frames written to `first` are read by `second`
  /// and vice versa.
  static std::pair<std::unique_ptr<LoopbackTransport>,
                   std::unique_ptr<LoopbackTransport>>
  CreatePair();

  ~LoopbackTransport() override;

  bool WriteAll(const void* data, std::size_t size) override;
  bool ReadAll(void* data, std::size_t size) override;
  void CloseWrite() override;

  bool SetReadTimeout(std::chrono::milliseconds timeout) override;

 private:
  LoopbackTransport(std::shared_ptr<LoopbackChannel> read,
                    std::shared_ptr<LoopbackChannel> write);

  std::shared_ptr<LoopbackChannel> read_;
  std::shared_ptr<LoopbackChannel> write_;
  std::chrono::milliseconds read_timeout_{0};  // 0 = block forever
};

// ------------------------------------------------------ fault injection

/// What FaultyTransport may do to the byte stream, on a seeded schedule.
/// Every probability is evaluated independently per WriteAll/ReadAll
/// call from a deterministic PRNG, so a given (plan, seed, call
/// sequence) always fails at the same operations -- tests replay the
/// exact failure they assert about. Once any fault fires, the transport
/// is dead: every later operation fails, exactly like a real broken
/// socket (there is no such thing as a connection that errors once and
/// then heals).
struct FaultPlan {
  std::uint64_t seed = 1;
  double fail_read = 0.0;      ///< P(a read errors out)
  double fail_write = 0.0;     ///< P(a write is dropped whole: peer sees EOF)
  double truncate_write = 0.0; ///< P(a write delivers a prefix, then dies)
  double delay_prob = 0.0;     ///< P(an op stalls for `delay` first)
  std::chrono::milliseconds delay{0};
  /// Hard kill after this many total bytes moved (0 = off): models a
  /// peer dying at a byte offset rather than an op boundary, so frames
  /// get split exactly at the configured point.
  std::size_t fail_after_bytes = 0;
};

/// Decorator that injects FaultPlan faults into any Transport. Delays
/// happen before the op; drop/truncate/error faults kill the connection
/// permanently (dead() turns true and the inner write side is closed so
/// a blocked peer unblocks). Used by the failover tests and benches to
/// prove the retry/failover paths end-to-end without real networks.
class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultPlan plan);

  bool WriteAll(const void* data, std::size_t size) override;
  bool ReadAll(void* data, std::size_t size) override;
  void CloseWrite() override;
  bool SetReadTimeout(std::chrono::milliseconds timeout) override;

  /// True once a fault has killed the connection.
  bool dead() const { return dead_; }

 private:
  /// True with probability `p`, from the seeded schedule.
  bool Roll(double p);
  /// Applies the delay fault (if the schedule picks one) before an op.
  void MaybeDelay();
  /// Kills the connection: dead_ latches and the inner write side closes
  /// so a peer blocked on its read unblocks.
  void Kill();

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::uint64_t rng_state_;
  std::size_t bytes_moved_ = 0;
  bool dead_ = false;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_TRANSPORT_H_
