// Byte transports the wire protocol runs over.
//
// serve/protocol.h defines pure buffer codecs; this header supplies the
// byte-stream abstraction underneath them, so the identical frames drive
// a TCP socket (serve/server.h wraps an fd in FdTransport) and the
// in-process loopback pair the tests and benches use. ReadFrame /
// WriteFrame are the only frame I/O in the subsystem: ReadFrame reads
// exactly one validated header and then exactly header.body_length body
// bytes -- never more -- so a malformed frame cannot make the server
// over-read into the next frame.
#ifndef IFSKETCH_SERVE_TRANSPORT_H_
#define IFSKETCH_SERVE_TRANSPORT_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "serve/protocol.h"

namespace ifsketch::serve {

/// A blocking, reliable, ordered byte stream (one direction per method).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes all `size` bytes; false on a closed/failed peer.
  virtual bool WriteAll(const void* data, std::size_t size) = 0;

  /// Reads exactly `size` bytes; false on EOF or error before `size`
  /// bytes arrive. A clean EOF at offset 0 also returns false -- callers
  /// that care use ReadFrame's distinction below.
  virtual bool ReadAll(void* data, std::size_t size) = 0;

  /// Signals end-of-stream to the peer's reads; further writes fail.
  virtual void CloseWrite() = 0;
};

/// Result of ReadFrame: distinguishes a clean end-of-stream (peer closed
/// between frames) from a protocol violation (bad header, short body).
enum class ReadResult {
  kFrame,      ///< `frame` holds a complete validated frame
  kEof,        ///< stream ended cleanly before any header byte
  kMalformed,  ///< bad magic/version/opcode/length or truncated frame
};

/// Reads one frame. Consumes exactly kFrameHeaderBytes + body_length
/// bytes on success and never reads past the declared body length.
ReadResult ReadFrame(Transport& transport, Frame* frame);

/// Encodes and writes one frame; false when the body is over-long or the
/// transport fails.
bool WriteFrame(Transport& transport, Opcode opcode, std::uint8_t status,
                std::string_view body);

/// One direction of an in-process connection: a bounded-unbounded byte
/// queue with blocking reads. Shared by the two LoopbackTransport ends.
class LoopbackChannel;

/// In-process Transport: two channels cross-wired so that one end's
/// writes are the other end's reads. Drives the protocol (and the whole
/// server dispatch loop) in tests and benches without sockets.
class LoopbackTransport : public Transport {
 public:
  /// A connected pair: frames written to `first` are read by `second`
  /// and vice versa.
  static std::pair<std::unique_ptr<LoopbackTransport>,
                   std::unique_ptr<LoopbackTransport>>
  CreatePair();

  ~LoopbackTransport() override;

  bool WriteAll(const void* data, std::size_t size) override;
  bool ReadAll(void* data, std::size_t size) override;
  void CloseWrite() override;

 private:
  LoopbackTransport(std::shared_ptr<LoopbackChannel> read,
                    std::shared_ptr<LoopbackChannel> write);

  std::shared_ptr<LoopbackChannel> read_;
  std::shared_ptr<LoopbackChannel> write_;
};

}  // namespace ifsketch::serve

#endif  // IFSKETCH_SERVE_TRANSPORT_H_
