#include "dp/private_answers.h"

#include <cmath>

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::dp {

double SampleLaplace(double scale, util::Rng& rng) {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2),
  // x = -scale * sgn(u) * ln(1 - 2|u|).
  double u = rng.UniformDouble() - 0.5;
  while (u == -0.5) u = rng.UniformDouble() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

PrivateAnswers::PrivateAnswers(const core::Database& db, std::size_t k,
                               double eps_dp, util::Rng& rng)
    : d_(db.num_columns()), k_(k) {
  IFSKETCH_CHECK_GT(eps_dp, 0.0);
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  const std::uint64_t count = util::Binomial(d_, k_);
  IFSKETCH_CHECK_LT(count, std::uint64_t{1} << 24);
  // Each released answer gets budget eps_dp / count (basic composition);
  // each answer has sensitivity 1/n.
  noise_scale_ = static_cast<double>(count) /
                 (static_cast<double>(db.num_rows()) * eps_dp);
  answers_.reserve(count);
  std::vector<std::size_t> attrs(k_);
  for (std::size_t i = 0; i < k_; ++i) attrs[i] = i;
  do {
    answers_.push_back(db.Frequency(core::Itemset(d_, attrs)) +
                       SampleLaplace(noise_scale_, rng));
  } while (util::NextSubset(attrs, d_));
}

double PrivateAnswers::EstimateFrequency(const core::Itemset& t) const {
  IFSKETCH_CHECK_EQ(t.universe(), d_);
  IFSKETCH_CHECK_EQ(t.size(), k_);
  const std::uint64_t rank = util::RankSubset(t.Attributes(), d_);
  IFSKETCH_CHECK_LT(rank, answers_.size());
  const double a = answers_[rank];
  return a < 0.0 ? 0.0 : (a > 1.0 ? 1.0 : a);
}

}  // namespace ifsketch::dp
