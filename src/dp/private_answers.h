// Differentially private itemset answers (footnote 3 of the paper).
//
// The paper observes a formal connection between non-private sketching
// lower bounds and differential privacy: its techniques are imported
// from the DP literature (KRSU, De, BUV), and any accurate sketch yields
// a private one at an O(s/n) accuracy cost. This module implements the
// simplest member of that family: the Laplace mechanism over the
// RELEASE-ANSWERS table. Each k-itemset frequency has sensitivity 1/n
// (changing one row moves every frequency by at most 1/n), so adding
// Laplace(C(d,k) / (n * eps_dp)) noise to the full table is eps_dp-DP by
// basic composition, with per-answer error ~ C(d,k)/(n * eps_dp) -- the
// t/n-shaped accuracy loss the footnote's reduction speaks about.
#ifndef IFSKETCH_DP_PRIVATE_ANSWERS_H_
#define IFSKETCH_DP_PRIVATE_ANSWERS_H_

#include <vector>

#include "core/database.h"
#include "core/sketch.h"
#include "util/random.h"

namespace ifsketch::dp {

/// An eps_dp-differentially-private For-All estimator over k-itemsets.
class PrivateAnswers : public core::FrequencyEstimator {
 public:
  /// Materializes all C(d,k) answers with calibrated Laplace noise.
  /// Requires C(d,k) small enough to enumerate.
  PrivateAnswers(const core::Database& db, std::size_t k, double eps_dp,
                 util::Rng& rng);

  /// Noisy frequency (clamped to [0,1]).
  double EstimateFrequency(const core::Itemset& t) const override;

  /// The per-answer Laplace scale b = C(d,k)/(n * eps_dp).
  double NoiseScale() const { return noise_scale_; }

  /// Expected absolute error per answer (= b for Laplace).
  double ExpectedAbsError() const { return noise_scale_; }

 private:
  std::size_t d_;
  std::size_t k_;
  double noise_scale_;
  std::vector<double> answers_;
};

/// One draw from Laplace(scale) (helper, exposed for tests).
double SampleLaplace(double scale, util::Rng& rng);

}  // namespace ifsketch::dp

#endif  // IFSKETCH_DP_PRIVATE_ANSWERS_H_
