#include "util/bitvector.h"

#include <array>
#include <bit>
#include <cstring>

#include "util/check.h"
#include "util/kernels.h"

namespace ifsketch::util {

BitVector BitVector::View(const std::uint64_t* words, std::size_t bits) {
  IFSKETCH_CHECK(words != nullptr || bits == 0);
  BitVector v;
  v.size_ = bits;
  v.data_ = words;
  v.view_ = true;
  return v;
}

BitVector::BitVector(const BitVector& other) : size_(other.size_) {
  // Copies always own: a view's copy deep-copies the borrowed words so it
  // stays valid after the mapping behind the original goes away.
  const std::size_t words = other.num_words();
  words_.resize(words);
  if (words != 0) {
    std::memcpy(words_.data(), other.data_, words * sizeof(std::uint64_t));
  }
  data_ = words_.data();
}

BitVector& BitVector::operator=(const BitVector& other) {
  if (this == &other) return *this;
  size_ = other.size_;
  const std::size_t words = other.num_words();
  words_.resize(words);
  if (words != 0) {
    std::memcpy(words_.data(), other.data_, words * sizeof(std::uint64_t));
  }
  data_ = words_.data();
  view_ = false;
  return *this;
}

BitVector::BitVector(BitVector&& other) noexcept
    : size_(other.size_),
      words_(std::move(other.words_)),
      data_(other.view_ ? other.data_ : words_.data()),
      view_(other.view_) {
  other.size_ = 0;
  other.words_.clear();
  other.data_ = nullptr;
  other.view_ = false;
}

BitVector& BitVector::operator=(BitVector&& other) noexcept {
  if (this == &other) return *this;
  size_ = other.size_;
  words_ = std::move(other.words_);
  data_ = other.view_ ? other.data_ : words_.data();
  view_ = other.view_;
  other.size_ = 0;
  other.words_.clear();
  other.data_ = nullptr;
  other.view_ = false;
  return *this;
}

BitVector BitVector::AdoptWords(std::vector<std::uint64_t>&& words,
                                std::size_t bits) {
  IFSKETCH_CHECK_EQ(words.size(), (bits + 63) / 64);
  BitVector v;
  v.size_ = bits;
  v.words_ = std::move(words);
  v.data_ = v.words_.data();
  const std::size_t tail = bits & 63;
  if (tail != 0) {
    v.words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  return v;
}

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    IFSKETCH_CHECK(bits[i] == '0' || bits[i] == '1');
    v.Set(i, bits[i] == '1');
  }
  return v;
}

void BitVector::Clear() {
  std::uint64_t* words = MutableWords();
  for (std::size_t i = 0; i < words_.size(); ++i) words[i] = 0;
}

std::size_t BitVector::Count() const {
  return ActiveKernels().popcount_words(data_, num_words());
}

bool BitVector::Contains(const BitVector& other) const {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < num_words(); ++i) {
    if ((data_[i] & other.data_[i]) != other.data_[i]) return false;
  }
  return true;
}

std::size_t BitVector::HammingDistance(const BitVector& other) const {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < num_words(); ++i) {
    c += std::popcount(data_[i] ^ other.data_[i]);
  }
  return c;
}

std::size_t BitVector::AndCount(const BitVector& other) const {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  return ActiveKernels().and_count(data_, other.data_, num_words());
}

std::size_t BitVector::AndCountMany(const BitVector* const* operands,
                                    std::size_t count) {
  // An empty operand list has no well-defined AND width, so it stays a
  // contract violation; zero-*word* operands are fine (the kernels never
  // touch a pointer when the word count is 0).
  IFSKETCH_CHECK_GE(count, 1u);
  const BitVector& first = *operands[0];
  for (std::size_t j = 1; j < count; ++j) {
    IFSKETCH_CHECK_EQ(first.size_, operands[j]->size_);
  }
  // The kernels take raw word streams; gather them on the stack for the
  // operand counts the query paths actually produce (|T| columns).
  std::array<const std::uint64_t*, 16> stack_ptrs;
  std::vector<const std::uint64_t*> heap_ptrs;
  const std::uint64_t** ptrs = stack_ptrs.data();
  if (count > stack_ptrs.size()) {
    heap_ptrs.resize(count);
    ptrs = heap_ptrs.data();
  }
  for (std::size_t j = 0; j < count; ++j) {
    ptrs[j] = operands[j]->data_;
  }
  return ActiveKernels().and_count_many(ptrs, count, first.num_words());
}

BitVector& BitVector::operator&=(const BitVector& other) {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  ActiveKernels().and_into(MutableWords(), other.data_, num_words());
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  std::uint64_t* words = MutableWords();
  for (std::size_t i = 0; i < num_words(); ++i) words[i] |= other.data_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  std::uint64_t* words = MutableWords();
  for (std::size_t i = 0; i < num_words(); ++i) words[i] ^= other.data_[i];
  return *this;
}

bool operator==(const BitVector& a, const BitVector& b) {
  if (a.size_ != b.size_) return false;
  const std::size_t words = a.num_words();
  // Trailing bits beyond size() are zero on both sides (an owning-vector
  // invariant that View() requires of its storage), so whole-word
  // comparison is exact.
  return words == 0 ||
         std::memcmp(a.data_, b.data_, words * sizeof(std::uint64_t)) == 0;
}

BitVector BitVector::Concat(const BitVector& other) const {
  BitVector out(size_ + other.size_);
  for (std::size_t i = 0; i < size_; ++i) out.Set(i, Get(i));
  for (std::size_t i = 0; i < other.size_; ++i) {
    out.Set(size_ + i, other.Get(i));
  }
  return out;
}

BitVector BitVector::Slice(std::size_t begin, std::size_t len) const {
  IFSKETCH_CHECK_LE(begin + len, size_);
  BitVector out(len);
  for (std::size_t i = 0; i < len; ++i) out.Set(i, Get(begin + i));
  return out;
}

std::vector<std::size_t> BitVector::SetBits() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  for (std::size_t wi = 0; wi < num_words(); ++wi) {
    std::uint64_t w = data_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

std::string BitVector::ToString() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

}  // namespace ifsketch::util
