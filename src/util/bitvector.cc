#include "util/bitvector.h"

#include <array>
#include <bit>

#include "util/check.h"
#include "util/kernels.h"

namespace ifsketch::util {

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    IFSKETCH_CHECK(bits[i] == '0' || bits[i] == '1');
    v.Set(i, bits[i] == '1');
  }
  return v;
}

void BitVector::Clear() {
  for (auto& w : words_) w = 0;
}

std::size_t BitVector::Count() const {
  return ActiveKernels().popcount_words(words_.data(), words_.size());
}

bool BitVector::Contains(const BitVector& other) const {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != other.words_[i]) return false;
  }
  return true;
}

std::size_t BitVector::HammingDistance(const BitVector& other) const {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    c += std::popcount(words_[i] ^ other.words_[i]);
  }
  return c;
}

std::size_t BitVector::AndCount(const BitVector& other) const {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  return ActiveKernels().and_count(words_.data(), other.words_.data(),
                                   words_.size());
}

std::size_t BitVector::AndCountMany(const BitVector* const* operands,
                                    std::size_t count) {
  // An empty operand list has no well-defined AND width, so it stays a
  // contract violation; zero-*word* operands are fine (the kernels never
  // touch a pointer when the word count is 0).
  IFSKETCH_CHECK_GE(count, 1u);
  const BitVector& first = *operands[0];
  for (std::size_t j = 1; j < count; ++j) {
    IFSKETCH_CHECK_EQ(first.size_, operands[j]->size_);
  }
  // The kernels take raw word streams; gather them on the stack for the
  // operand counts the query paths actually produce (|T| columns).
  std::array<const std::uint64_t*, 16> stack_ptrs;
  std::vector<const std::uint64_t*> heap_ptrs;
  const std::uint64_t** ptrs = stack_ptrs.data();
  if (count > stack_ptrs.size()) {
    heap_ptrs.resize(count);
    ptrs = heap_ptrs.data();
  }
  for (std::size_t j = 0; j < count; ++j) {
    ptrs[j] = operands[j]->words_.data();
  }
  return ActiveKernels().and_count_many(ptrs, count, first.words_.size());
}

BitVector& BitVector::operator&=(const BitVector& other) {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  ActiveKernels().and_into(words_.data(), other.words_.data(),
                           words_.size());
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  IFSKETCH_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVector BitVector::Concat(const BitVector& other) const {
  BitVector out(size_ + other.size_);
  for (std::size_t i = 0; i < size_; ++i) out.Set(i, Get(i));
  for (std::size_t i = 0; i < other.size_; ++i) {
    out.Set(size_ + i, other.Get(i));
  }
  return out;
}

BitVector BitVector::Slice(std::size_t begin, std::size_t len) const {
  IFSKETCH_CHECK_LE(begin + len, size_);
  BitVector out(len);
  for (std::size_t i = 0; i < len; ++i) out.Set(i, Get(begin + i));
  return out;
}

std::vector<std::size_t> BitVector::SetBits() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

std::string BitVector::ToString() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

void BitVector::MaskTail() {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

}  // namespace ifsketch::util
