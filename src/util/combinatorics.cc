#include "util/combinatorics.h"

#include <cmath>

#include "util/check.h"

namespace ifsketch::util {

std::uint64_t Binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result = result * (n - k + i) / i, with overflow saturation.
    const std::uint64_t num = n - k + i;
    if (result > kBinomialInf / num) return kBinomialInf;
    result = result * num / i;  // exact: C(n-k+i, i) is integral
    if (result >= kBinomialInf) return kBinomialInf;
  }
  return result;
}

double LogBinomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -1e300;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

std::vector<std::size_t> UnrankSubset(std::uint64_t rank, std::size_t n,
                                      std::size_t k) {
  IFSKETCH_CHECK_LT(rank, Binomial(n, k));
  // Colex unranking: choose the largest element c with C(c, k) <= rank,
  // recurse on rank - C(c, k) with k-1.
  std::vector<std::size_t> out(k);
  std::size_t kk = k;
  while (kk > 0) {
    std::size_t c = kk - 1;
    while (Binomial(c + 1, kk) <= rank) ++c;
    out[kk - 1] = c;
    rank -= Binomial(c, kk);
    --kk;
  }
  (void)n;
  return out;
}

std::uint64_t RankSubset(const std::vector<std::size_t>& subset,
                         std::size_t n) {
  std::uint64_t rank = 0;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    IFSKETCH_CHECK_LT(subset[i], n);
    if (i > 0) IFSKETCH_CHECK_GT(subset[i], subset[i - 1]);
    rank += Binomial(subset[i], i + 1);
  }
  return rank;
}

bool NextSubset(std::vector<std::size_t>& subset, std::size_t n) {
  const std::size_t k = subset.size();
  // Find the lowest position that can advance without colliding with the
  // next element; reset everything below it. This is colex order.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t limit = (i + 1 < k) ? subset[i + 1] : n;
    if (subset[i] + 1 < limit) {
      ++subset[i];
      for (std::size_t j = 0; j < i; ++j) subset[j] = j;
      return true;
    }
  }
  for (std::size_t j = 0; j < k; ++j) subset[j] = j;
  return false;
}

std::vector<std::vector<std::size_t>> AllSubsets(std::size_t n,
                                                 std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> cur(k);
  for (std::size_t i = 0; i < k; ++i) cur[i] = i;
  do {
    out.push_back(cur);
  } while (NextSubset(cur, n));
  return out;
}

int FloorLog2(std::uint64_t x) {
  IFSKETCH_CHECK_GT(x, 0u);
  int l = -1;
  while (x != 0) {
    x >>= 1;
    ++l;
  }
  return l;
}

int CeilLog2(std::uint64_t x) {
  IFSKETCH_CHECK_GT(x, 0u);
  const int fl = FloorLog2(x);
  return ((std::uint64_t{1} << fl) == x) ? fl : fl + 1;
}

double IteratedLog2(double x, int q) {
  double v = x;
  for (int i = 0; i < q; ++i) {
    if (v <= 2.0) return 1.0;
    v = std::log2(v);
  }
  return v < 1.0 ? 1.0 : v;
}

}  // namespace ifsketch::util
