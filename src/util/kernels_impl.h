// Internal seam between the dispatcher (kernels.cc) and the per-ISA
// translation units (kernels_avx2.cc, kernels_avx512.cc).
//
// Each variant TU is compiled with its ISA flags (see CMakeLists.txt) and
// self-gates on the predefined macros those flags imply (__AVX2__,
// __AVX512VPOPCNTDQ__): when the flags are absent -- non-x86 target, or a
// compiler that rejected them at configure time -- the getter still links
// but returns nullptr, so kernels.cc needs no build-system defines to
// know what it got.
#ifndef IFSKETCH_UTIL_KERNELS_IMPL_H_
#define IFSKETCH_UTIL_KERNELS_IMPL_H_

#include "util/kernels.h"

namespace ifsketch::util::internal {

/// The AVX2 vtable, or nullptr when the TU was compiled without -mavx2.
/// Callers must still check CPU support before dispatching through it.
const BitKernels* Avx2KernelsOrNull();

/// The AVX-512 (F + VPOPCNTDQ) vtable, or nullptr when compiled without
/// the avx512 flags. Same CPU-support caveat as above.
const BitKernels* Avx512KernelsOrNull();

}  // namespace ifsketch::util::internal

#endif  // IFSKETCH_UTIL_KERNELS_IMPL_H_
