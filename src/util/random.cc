#include "util/random.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace ifsketch::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // A zero state would lock the generator at zero; splitmix64 of any seed
  // cannot produce four zero outputs, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  IFSKETCH_CHECK_GT(bound, 0u);
  // Lemire-style rejection: accept when the 128-bit product's low half is
  // outside the biased zone.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  while (true) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

BitVector Rng::RandomBits(std::size_t size) {
  BitVector v(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (Next() & 1u) v.Set(i, true);
  }
  return v;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t count) {
  IFSKETCH_CHECK_LE(count, n);
  // Floyd's algorithm: O(count) expected insertions, then sort.
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t j = n - count; j < n; ++j) {
    const std::size_t t = UniformInt(j + 1);
    bool present = false;
    for (std::size_t x : out) {
      if (x == t) {
        present = true;
        break;
      }
    }
    out.push_back(present ? j : t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1342543de82ef95ULL); }

}  // namespace ifsketch::util
