#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace ifsketch::util {

void Table::AddRow(std::vector<std::string> row) {
  IFSKETCH_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      for (std::size_t p = row[c].size(); p < widths[c]; ++p) os << ' ';
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-");
      for (std::size_t p = 0; p < widths[c]; ++p) os << '-';
    }
    os << "-+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::Fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::Fmt(std::int64_t v) { return std::to_string(v); }

}  // namespace ifsketch::util
