#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::util {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double Quantile(std::vector<double> values, double q) {
  IFSKETCH_CHECK(!values.empty());
  IFSKETCH_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::size_t IndicatorSampleCount(double eps, double delta) {
  IFSKETCH_CHECK(eps > 0.0 && eps <= 1.0);
  IFSKETCH_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<std::size_t>(
      std::ceil(16.0 * std::log(2.0 / delta) / eps));
}

std::size_t EstimatorSampleCount(double eps, double delta) {
  IFSKETCH_CHECK(eps > 0.0 && eps <= 1.0);
  IFSKETCH_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

namespace {

// ln(C(d,k)/delta), computed in log space so huge C(d,k) is fine.
double LnUnionDelta(double delta, std::uint64_t d, std::uint64_t k) {
  const double ln_binom = LogBinomial(d, k);  // natural log
  return ln_binom - std::log(delta);
}

}  // namespace

std::size_t ForAllIndicatorSampleCount(double eps, double delta,
                                       std::uint64_t d, std::uint64_t k) {
  IFSKETCH_CHECK(eps > 0.0 && eps <= 1.0);
  const double ln_term = std::log(2.0) + LnUnionDelta(delta, d, k);
  return static_cast<std::size_t>(std::ceil(16.0 * ln_term / eps));
}

std::size_t ForAllEstimatorSampleCount(double eps, double delta,
                                       std::uint64_t d, std::uint64_t k) {
  IFSKETCH_CHECK(eps > 0.0 && eps <= 1.0);
  const double ln_term = std::log(2.0) + LnUnionDelta(delta, d, k);
  return static_cast<std::size_t>(std::ceil(ln_term / (2.0 * eps * eps)));
}

}  // namespace ifsketch::util
