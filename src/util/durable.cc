#include "util/durable.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ifsketch::util {
namespace {

std::string ErrnoDetail(const char* op, const std::string& path) {
  const int saved = errno;
  return std::string(op) + " " + path + ": " + std::strerror(saved);
}

}  // namespace

// ------------------------------------------------------- PosixFileSink

PosixFileSink::PosixFileSink(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) FailErrno("open");
}

PosixFileSink::~PosixFileSink() { Close(); }

void PosixFileSink::FailErrno(const char* op) {
  if (error_.empty()) error_ = ErrnoDetail(op, path_);
}

bool PosixFileSink::Write(const void* data, std::size_t size) {
  if (!ok()) return false;
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailErrno("write");
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
    bytes_written_ += static_cast<std::uint64_t>(n);
  }
  return true;
}

bool PosixFileSink::Sync() {
  if (!ok()) return false;
  if (::fdatasync(fd_) != 0) {
    FailErrno("fdatasync");
    return false;
  }
  return true;
}

bool PosixFileSink::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) FailErrno("close");
    fd_ = -1;
  }
  return ok();
}

// ------------------------------------------------------ FaultyFileSink

FaultyFileSink::FaultyFileSink(std::unique_ptr<FileSink> inner,
                               std::shared_ptr<CrashPlan> plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {}

bool FaultyFileSink::ok() const {
  return !plan_->dead.load(std::memory_order_relaxed) && !hit_ &&
         inner_->ok();
}

bool FaultyFileSink::Write(const void* data, std::size_t size) {
  if (plan_->dead.load(std::memory_order_relaxed) || hit_) {
    hit_ = true;
    return false;
  }
  const std::int64_t want = static_cast<std::int64_t>(size);
  const std::int64_t before =
      plan_->remaining.fetch_sub(want, std::memory_order_relaxed);
  if (before >= want) return inner_->Write(data, size);
  // The budget runs out inside this write: the prefix that "made it to
  // the kernel" lands in the real file, then the plan latches dead.
  const std::int64_t allowed = before > 0 ? before : 0;
  if (allowed > 0) inner_->Write(data, static_cast<std::size_t>(allowed));
  plan_->dead.store(true, std::memory_order_relaxed);
  hit_ = true;
  return false;
}

bool FaultyFileSink::Sync() {
  if (plan_->dead.load(std::memory_order_relaxed) || hit_) {
    hit_ = true;
    return false;
  }
  return inner_->Sync();
}

bool FaultyFileSink::Close() {
  // Close the inner handle even after the crash so tests can inspect
  // whatever prefix reached the file.
  const bool inner_ok = inner_->Close();
  return ok() && inner_ok;
}

std::uint64_t FaultyFileSink::bytes_written() const {
  return inner_->bytes_written();
}

std::string FaultyFileSink::error() const {
  if (plan_->dead.load(std::memory_order_relaxed) || hit_) {
    return "injected crash: file sink is dead";
  }
  return inner_->error();
}

FileSinkFactory MakeFaultyFileSinkFactory(std::shared_ptr<CrashPlan> plan,
                                          FileSinkFactory base) {
  return [plan = std::move(plan),
          base = std::move(base)](const std::string& path) {
    std::unique_ptr<FileSink> inner =
        base ? base(path) : std::make_unique<PosixFileSink>(path);
    return std::make_unique<FaultyFileSink>(std::move(inner), plan);
  };
}

// ------------------------------------------------------- atomic replace

bool SyncDir(const std::string& dir, std::string* error) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoDetail("open", dir);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok && error != nullptr) *error = ErrnoDetail("fsync", dir);
  ::close(fd);
  return ok;
}

bool SyncParentDir(const std::string& path, std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash),
                 error);
}

bool WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size, std::string* error,
                     const FileSinkFactory& factory) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<FileSink> sink =
      factory ? factory(tmp) : std::make_unique<PosixFileSink>(tmp);
  if (!sink->Write(data, size) || !sink->Sync() || !sink->Close()) {
    if (error != nullptr) *error = sink->error();
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = ErrnoDetail("rename", tmp);
    return false;
  }
  return SyncParentDir(path, error);
}

}  // namespace ifsketch::util
