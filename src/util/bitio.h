// Bit-level serialization.
//
// The paper measures sketches in *bits* (Definition 5). Every sketch in
// this library serializes itself through BitWriter so the reported space
// complexity |S| is an exact bit count of the encoded summary rather than
// an in-memory sizeof estimate.
#ifndef IFSKETCH_UTIL_BITIO_H_
#define IFSKETCH_UTIL_BITIO_H_

#include <cstdint>

#include "util/bitvector.h"
#include "util/check.h"

namespace ifsketch::util {

/// Appends fields to a growing bit string.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends a single bit.
  void WriteBit(bool b) {
    bits_.push_back(b);
  }

  /// Appends the low `width` bits of `value`, LSB first. width <= 64.
  void WriteUint(std::uint64_t value, int width);

  /// Appends an entire bit vector.
  void WriteBits(const BitVector& v);

  /// Appends a frequency in [0,1] quantized to `width` bits
  /// (resolution 2^-width, matching the log(1/eps) cost in Theorem 12).
  void WriteQuantized(double value, int width);

  /// Number of bits written so far.
  std::size_t BitCount() const { return bits_.size(); }

  /// The accumulated bit string.
  BitVector Finish() const;

 private:
  std::vector<bool> bits_;
};

/// Sequentially consumes fields from a bit string written by BitWriter.
class BitReader {
 public:
  explicit BitReader(const BitVector& bits) : bits_(&bits) {}

  bool ReadBit() {
    IFSKETCH_CHECK_LT(pos_, bits_->size());
    return bits_->Get(pos_++);
  }

  std::uint64_t ReadUint(int width);

  BitVector ReadBits(std::size_t count);

  double ReadQuantized(int width);

  /// Bits consumed so far.
  std::size_t Position() const { return pos_; }

  /// Bits remaining.
  std::size_t Remaining() const { return bits_->size() - pos_; }

 private:
  const BitVector* bits_;
  std::size_t pos_ = 0;
};

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_BITIO_H_
