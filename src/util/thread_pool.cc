#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"

namespace ifsketch::util {
namespace {

// Resolved once; every queue mutation then costs one relaxed store.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* const gauge =
      obs::MetricsRegistry::Default().GetGauge("threadpool_queue_depth");
  return *gauge;
}

// One ParallelFor invocation. Lives on the heap via shared_ptr so that a
// worker dequeuing the job after all chunks were claimed (and the caller
// already returned) still finds valid memory to inspect.
struct LoopJob {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
  // Owned by the caller's stack frame; valid until `done == num_chunks`,
  // which the caller waits for before returning.
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

// Claims and runs chunks until the job is exhausted.
void DrainLoop(const std::shared_ptr<LoopJob>& job) {
  for (;;) {
    const std::size_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) return;
    const std::size_t first = job->begin + c * job->chunk;
    const std::size_t last = std::min(job->end, first + job->chunk);
    (*job->body)(first, last);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_chunks) {
      std::lock_guard<std::mutex> lock(job->mu);
      job->cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads < 2 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<std::int64_t>(queue_.size()));
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t range = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t threads = thread_count();
  // Cap chunks at a small multiple of the thread count: enough slack for
  // load balancing, few enough that claim overhead stays negligible.
  std::size_t num_chunks =
      std::min((range + grain - 1) / grain, threads * 4);
  if (threads == 1 || num_chunks <= 1) {
    body(begin, end);
    return;
  }
  auto job = std::make_shared<LoopJob>();
  job->begin = begin;
  job->end = end;
  // Never split below the grain: only the final chunk may be short.
  job->chunk = std::max(grain, (range + num_chunks - 1) / num_chunks);
  job->num_chunks = (range + job->chunk - 1) / job->chunk;
  job->body = &body;

  const std::size_t helpers = std::min(threads - 1, job->num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([job] { DrainLoop(job); });
    }
    QueueDepthGauge().Set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_all();
  DrainLoop(job);  // the caller is one of the loop's threads

  std::unique_lock<std::mutex> lock(job->mu);
  job->cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) >= job->num_chunks;
  });
}

namespace {

std::mutex g_default_mu;
std::size_t g_default_threads = 0;  // 0 = auto-size
std::unique_ptr<ThreadPool> g_default_pool;

std::size_t AutoThreadCount() {
  if (const char* env = std::getenv("IFSKETCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool& ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default_pool == nullptr) {
    const std::size_t t =
        g_default_threads == 0 ? AutoThreadCount() : g_default_threads;
    g_default_pool = std::make_unique<ThreadPool>(t);
  }
  return *g_default_pool;
}

void ThreadPool::SetDefaultThreadCount(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  g_default_threads = threads;
  g_default_pool.reset();  // rebuilt lazily at the next Default() call
}

std::size_t ThreadPool::DefaultThreadCount() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default_pool != nullptr) return g_default_pool->thread_count();
  return g_default_threads == 0 ? AutoThreadCount() : g_default_threads;
}

}  // namespace ifsketch::util
