// A packed, fixed-size bit vector.
//
// Database rows, itemset indicator vectors, code words and sketch payloads
// are all bit strings; this is the shared representation. The layout is
// little-endian within each 64-bit word: bit i lives in word i/64 at
// position i%64.
//
// The word-stream operations (Count, AndCount, AndCountMany, operator&=)
// dispatch through util::BitKernels (util/kernels.h): scalar, AVX2 or
// AVX-512 implementations selected once at startup by CPUID, overridable
// via IFSKETCH_KERNEL. Every tier is bit-identical to the scalar
// reference, so callers never observe the dispatch.
//
// A BitVector either OWNS its words (the default: every constructor and
// every copy allocates) or is a VIEW borrowing caller-managed words
// (BitVector::View) -- the zero-copy hand-off used by the mmap-backed
// sketch loading path to run kernels straight out of the page cache.
// Views answer every const query exactly like an owning vector of the
// same bits; copying a view materializes an owning deep copy (so value
// semantics never dangle); mutating a view aborts.
#ifndef IFSKETCH_UTIL_BITVECTOR_H_
#define IFSKETCH_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace ifsketch::util {

/// Fixed-size packed vector of bits with word-level bulk operations.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all zero.
  explicit BitVector(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0), data_(words_.data()) {}

  /// A read-only view of `bits` bits borrowing `words` (same layout as an
  /// owning vector: bit i in word i/64 at position i%64). The storage
  /// must outlive the view, hold (bits+63)/64 readable words, and keep
  /// any bits past `bits` in the last word zero -- word-level kernels
  /// (Count, AndCount, operator==) trust that invariant. `words` may be
  /// null only when bits == 0.
  static BitVector View(const std::uint64_t* words, std::size_t bits);

  // Value semantics with one asymmetry: copying always produces an
  // OWNING vector (a copy of a view deep-copies the viewed words, so the
  // copy's lifetime is independent of the mapping it came from). Moves
  // preserve view-ness.
  BitVector(const BitVector& other);
  BitVector& operator=(const BitVector& other);
  BitVector(BitVector&& other) noexcept;
  BitVector& operator=(BitVector&& other) noexcept;
  ~BitVector() = default;

  /// Creates a vector from a string of '0'/'1' characters (test helper).
  static BitVector FromString(const std::string& bits);

  /// Adopts an already-packed word vector as an owning BitVector of
  /// `bits` bits without copying. words.size() must be (bits+63)/64;
  /// bits beyond `bits` in the last word are zeroed to restore the
  /// trailing-zero invariant.
  static BitVector AdoptWords(std::vector<std::uint64_t>&& words,
                              std::size_t bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Whether this vector borrows its words (see View).
  bool is_view() const { return view_; }

  /// Raw word storage, (size()+63)/64 words; trailing bits beyond size()
  /// are zero. Null only when size() == 0.
  const std::uint64_t* data() const { return data_; }
  std::size_t num_words() const { return (size_ + 63) / 64; }

  /// Returns bit `i`. Precondition: i < size().
  bool Get(std::size_t i) const {
    return (data_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` to `value`. Precondition: i < size() and not a view.
  void Set(std::size_t i, bool value) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      MutableWords()[i >> 6] |= mask;
    } else {
      MutableWords()[i >> 6] &= ~mask;
    }
  }

  /// Flips bit `i`. Precondition: i < size() and not a view.
  void Flip(std::size_t i) {
    MutableWords()[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  /// Sets all bits to zero. Precondition: not a view.
  void Clear();

  /// Number of set bits.
  std::size_t Count() const;

  /// True iff every bit set in `other` is also set in *this
  /// (i.e. other ⊆ this, reading both as attribute sets).
  /// Precondition: same size.
  bool Contains(const BitVector& other) const;

  /// Number of positions where *this and `other` differ.
  /// Precondition: same size.
  std::size_t HammingDistance(const BitVector& other) const;

  /// Popcount of the AND of the two vectors (inner product over {0,1}).
  /// Precondition: same size.
  std::size_t AndCount(const BitVector& other) const;

  /// Popcount of the AND of all `count` operands, fused into a single
  /// pass over the words: each word is ANDed across the operands in a
  /// register and popcounted immediately, with no materialized
  /// accumulator vector. Equivalent to folding operator&= over the
  /// operands and calling Count(), at one memory pass instead of
  /// count-1. Preconditions: count >= 1 (an empty operand list has no
  /// defined AND width and aborts), all operands non-null and the same
  /// size. Zero-bit operands are valid and count as 0.
  static std::size_t AndCountMany(const BitVector* const* operands,
                                  std::size_t count);

  /// Convenience overload over a vector of operand pointers.
  static std::size_t AndCountMany(
      const std::vector<const BitVector*>& operands) {
    return AndCountMany(operands.data(), operands.size());
  }

  /// In-place bitwise operations. Precondition: same size; *this is not
  /// a view (the right-hand side may be).
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);

  friend BitVector operator&(BitVector a, const BitVector& b) {
    a &= b;
    return a;
  }
  friend BitVector operator|(BitVector a, const BitVector& b) {
    a |= b;
    return a;
  }
  friend BitVector operator^(BitVector a, const BitVector& b) {
    a ^= b;
    return a;
  }

  friend bool operator==(const BitVector& a, const BitVector& b);

  /// Concatenation: the bits of `other` appended after the bits of *this.
  BitVector Concat(const BitVector& other) const;

  /// The sub-vector [begin, begin+len).
  BitVector Slice(std::size_t begin, std::size_t len) const;

  /// Indices of set bits, ascending.
  std::vector<std::size_t> SetBits() const;

  /// '0'/'1' rendering (test/debug helper).
  std::string ToString() const;

 private:
  // The single mutation gate: every writing path goes through here, so a
  // view (whose words_ is empty and whose bytes may be a shared, literally
  // read-only mapping) can never be written through. Inline, because
  // per-bit writers (Set/Flip) sit in O(n*d) transpose and decode loops
  // where an out-of-line call per bit would dominate.
  std::uint64_t* MutableWords() {
    IFSKETCH_CHECK(!view_);
    return words_.data();
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;  // empty for views
  const std::uint64_t* data_ = nullptr;  // words_.data() or borrowed
  bool view_ = false;
};

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_BITVECTOR_H_
