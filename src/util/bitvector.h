// A packed, fixed-size bit vector.
//
// Database rows, itemset indicator vectors, code words and sketch payloads
// are all bit strings; this is the shared representation. The layout is
// little-endian within each 64-bit word: bit i lives in word i/64 at
// position i%64.
//
// The word-stream operations (Count, AndCount, AndCountMany, operator&=)
// dispatch through util::BitKernels (util/kernels.h): scalar, AVX2 or
// AVX-512 implementations selected once at startup by CPUID, overridable
// via IFSKETCH_KERNEL. Every tier is bit-identical to the scalar
// reference, so callers never observe the dispatch.
#ifndef IFSKETCH_UTIL_BITVECTOR_H_
#define IFSKETCH_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ifsketch::util {

/// Fixed-size packed vector of bits with word-level bulk operations.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all zero.
  explicit BitVector(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Creates a vector from a string of '0'/'1' characters (test helper).
  static BitVector FromString(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns bit `i`. Precondition: i < size().
  bool Get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` to `value`. Precondition: i < size().
  void Set(std::size_t i, bool value) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Flips bit `i`. Precondition: i < size().
  void Flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// Sets all bits to zero.
  void Clear();

  /// Number of set bits.
  std::size_t Count() const;

  /// True iff every bit set in `other` is also set in *this
  /// (i.e. other ⊆ this, reading both as attribute sets).
  /// Precondition: same size.
  bool Contains(const BitVector& other) const;

  /// Number of positions where *this and `other` differ.
  /// Precondition: same size.
  std::size_t HammingDistance(const BitVector& other) const;

  /// Popcount of the AND of the two vectors (inner product over {0,1}).
  /// Precondition: same size.
  std::size_t AndCount(const BitVector& other) const;

  /// Popcount of the AND of all `count` operands, fused into a single
  /// pass over the words: each word is ANDed across the operands in a
  /// register and popcounted immediately, with no materialized
  /// accumulator vector. Equivalent to folding operator&= over the
  /// operands and calling Count(), at one memory pass instead of
  /// count-1. Preconditions: count >= 1 (an empty operand list has no
  /// defined AND width and aborts), all operands non-null and the same
  /// size. Zero-bit operands are valid and count as 0.
  static std::size_t AndCountMany(const BitVector* const* operands,
                                  std::size_t count);

  /// Convenience overload over a vector of operand pointers.
  static std::size_t AndCountMany(
      const std::vector<const BitVector*>& operands) {
    return AndCountMany(operands.data(), operands.size());
  }

  /// In-place bitwise operations. Precondition: same size.
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);

  friend BitVector operator&(BitVector a, const BitVector& b) {
    a &= b;
    return a;
  }
  friend BitVector operator|(BitVector a, const BitVector& b) {
    a |= b;
    return a;
  }
  friend BitVector operator^(BitVector a, const BitVector& b) {
    a ^= b;
    return a;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Concatenation: the bits of `other` appended after the bits of *this.
  BitVector Concat(const BitVector& other) const;

  /// The sub-vector [begin, begin+len).
  BitVector Slice(std::size_t begin, std::size_t len) const;

  /// Indices of set bits, ascending.
  std::vector<std::size_t> SetBits() const;

  /// '0'/'1' rendering (test/debug helper).
  std::string ToString() const;

  /// Raw word storage (read-only); trailing bits beyond size() are zero.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  // Zeroes the unused high bits of the last word so that word-level
  // comparisons and popcounts are exact.
  void MaskTail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_BITVECTOR_H_
