// Deterministic pseudo-random generation.
//
// All randomized components (sketching algorithms, hard-instance samplers,
// workload generators) draw from Rng so experiments are reproducible from
// a single seed. The engine is xoshiro256**, seeded via splitmix64.
#ifndef IFSKETCH_UTIL_RANDOM_H_
#define IFSKETCH_UTIL_RANDOM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitvector.h"

namespace ifsketch::util {

/// xoshiro256** PRNG with convenience sampling methods.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses rejection sampling so the result is exactly uniform.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Uniform random bit vector of `size` bits.
  BitVector RandomBits(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[UniformInt(i)]);
    }
  }

  /// `count` indices sampled uniformly WITHOUT replacement from [0, n).
  /// Precondition: count <= n. Result is sorted ascending.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t count);

  /// Standard normal via Box-Muller (used by linalg test harnesses).
  double Gaussian();

  /// A fresh, independently-seeded child generator (for per-trial streams).
  Rng Fork();

  /// Complete generator state, for checkpoint/recovery (ingest WAL): a
  /// restored Rng continues the exact sequence the saved one would have
  /// produced, including a pending cached Gaussian.
  struct State {
    std::uint64_t s[4];
    bool have_cached_gaussian;
    double cached_gaussian;
  };

  State SaveState() const {
    return State{{s_[0], s_[1], s_[2], s_[3]},
                 have_cached_gaussian_,
                 cached_gaussian_};
  }

  void RestoreState(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    have_cached_gaussian_ = state.have_cached_gaussian;
    cached_gaussian_ = state.cached_gaussian;
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_RANDOM_H_
