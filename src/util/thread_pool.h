// A small fixed-size thread pool driving chunked parallel-for loops.
//
// The batched query kernels (ColumnStore::SupportCounts, the estimator
// EstimateMany overrides, Engine::estimate_many) fan a batch of
// independent queries out across threads. The contract that makes this
// safe to expose at the library surface:
//
//   * Determinism. ParallelFor partitions [begin, end) into contiguous
//     chunks and each index writes only its own result slot, so answers
//     are bit-identical to the serial loop regardless of thread count or
//     scheduling. No reductions cross chunk boundaries.
//   * Caller participation. The calling thread executes chunks alongside
//     the workers, so ParallelFor never deadlocks even when every worker
//     is busy with someone else's job (including nested or concurrent
//     ParallelFor calls from many user threads).
//   * Sizing. Default() lazily builds one process-wide pool sized from
//     the IFSKETCH_THREADS environment variable if set, otherwise
//     std::thread::hardware_concurrency(). SetDefaultThreadCount(t)
//     re-sizes it; call it from configuration code (CLI flags, bench
//     sweeps) before issuing queries -- it must not race with in-flight
//     ParallelFor calls on the default pool.
//
// A pool of size 1 (or a range smaller than one grain) degenerates to
// running the body inline on the caller, so single-threaded builds pay
// nothing but a branch.
#ifndef IFSKETCH_UTIL_THREAD_POOL_H_
#define IFSKETCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ifsketch::util {

/// Fixed-size worker pool with a chunked, deterministic ParallelFor.
class ThreadPool {
 public:
  /// Creates a pool that runs loops on `threads` threads total (the
  /// caller counts as one; `threads - 1` workers are spawned). `threads`
  /// is clamped to at least 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a loop may use, caller included.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Invokes body(first, last) over contiguous sub-ranges that exactly
  /// cover [begin, end), each at least `grain` indices (except possibly
  /// the final chunk). Blocks until every chunk has run. The body must
  /// only write state owned by its own indices.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// The process-wide pool used by the batched query kernels.
  static ThreadPool& Default();

  /// Re-sizes the default pool to `threads` (0 = auto: IFSKETCH_THREADS
  /// env var, else hardware concurrency). Configuration-time only: must
  /// not race with queries using the default pool.
  static void SetDefaultThreadCount(std::size_t threads);

  /// The thread count Default() currently runs with.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_THREAD_POOL_H_
