#include "util/mapped_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define IFSKETCH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ifsketch::util {
namespace {

constexpr std::size_t kAlignment = 64;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

MappedFile::~MappedFile() {
#if IFSKETCH_HAVE_MMAP
  if (map_base_ != nullptr) munmap(map_base_, size_);
#endif
  ::operator delete[](buffer_, std::align_val_t{kAlignment});
}

std::shared_ptr<const MappedFile> MappedFile::Open(const std::string& path,
                                                  std::string* error) {
#if IFSKETCH_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, path + ": " + std::strerror(errno));
    return nullptr;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    SetError(error, path + ": fstat: " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty file is still a valid
    // (if never valid-IFSK) image.
    ::close(fd);
    auto file = std::shared_ptr<MappedFile>(new MappedFile());
    file->mapped_ = true;
    return file;
  }
  void* base = mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (base == MAP_FAILED) {
    // Some filesystems refuse mmap; the caller still gets the bytes.
    return OpenBuffered(path, error);
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->data_ = static_cast<const unsigned char*>(base);
  file->size_ = size;
  file->mapped_ = true;
  file->map_base_ = base;
  return file;
#else
  return OpenBuffered(path, error);
#endif
}

std::shared_ptr<const MappedFile> MappedFile::OpenBuffered(
    const std::string& path, std::string* error) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    SetError(error, path + ": " + std::strerror(errno));
    return nullptr;
  }
  // Chunked read into a growing staging buffer, then one copy into the
  // final aligned allocation: no fseek/ftell pre-sizing, which would cap
  // files at what a `long` can count on LLP64 platforms -- the very
  // platforms that always take this fallback.
  std::vector<unsigned char> staging;
  unsigned char chunk[64 * 1024];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    staging.insert(staging.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    SetError(error, path + ": read error");
    return nullptr;
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  if (!staging.empty()) {
    file->buffer_ = static_cast<unsigned char*>(
        ::operator new[](staging.size(), std::align_val_t{kAlignment}));
    std::memcpy(file->buffer_, staging.data(), staging.size());
    file->data_ = file->buffer_;
    file->size_ = staging.size();
  }
  return file;
}

}  // namespace ifsketch::util
