#include "util/bitio.h"

#include <cmath>

namespace ifsketch::util {

void BitWriter::WriteUint(std::uint64_t value, int width) {
  IFSKETCH_CHECK(width >= 0 && width <= 64);
  for (int i = 0; i < width; ++i) {
    bits_.push_back((value >> i) & 1u);
  }
}

void BitWriter::WriteBits(const BitVector& v) {
  for (std::size_t i = 0; i < v.size(); ++i) bits_.push_back(v.Get(i));
}

void BitWriter::WriteQuantized(double value, int width) {
  IFSKETCH_CHECK(value >= 0.0 && value <= 1.0);
  const std::uint64_t scale = (width >= 64) ? ~std::uint64_t{0}
                                            : ((std::uint64_t{1} << width) - 1);
  const auto q =
      static_cast<std::uint64_t>(std::llround(value * static_cast<double>(scale)));
  WriteUint(q > scale ? scale : q, width);
}

BitVector BitWriter::Finish() const {
  BitVector out(bits_.size());
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out.Set(i, true);
  }
  return out;
}

std::uint64_t BitReader::ReadUint(int width) {
  IFSKETCH_CHECK(width >= 0 && width <= 64);
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    if (ReadBit()) value |= std::uint64_t{1} << i;
  }
  return value;
}

BitVector BitReader::ReadBits(std::size_t count) {
  BitVector out(count);
  for (std::size_t i = 0; i < count; ++i) out.Set(i, ReadBit());
  return out;
}

double BitReader::ReadQuantized(int width) {
  const std::uint64_t scale = (width >= 64) ? ~std::uint64_t{0}
                                            : ((std::uint64_t{1} << width) - 1);
  return static_cast<double>(ReadUint(width)) / static_cast<double>(scale);
}

}  // namespace ifsketch::util
