// Read-only whole-file memory mapping with a portable fallback.
//
// The zero-copy sketch load path (sketch/sketch_view.h) wants a file's
// bytes addressable in place so validated views -- not copies -- can be
// handed to the query kernels, and so the same physical pages are shared
// by every process serving the file. MappedFile is that primitive: an
// RAII mmap(PROT_READ, MAP_SHARED) of the whole file on POSIX, released
// by munmap when the last shared_ptr owner goes away. Where mmap is
// unavailable (non-POSIX builds, or a filesystem that refuses to map) it
// falls back to reading the whole file into one 64-byte-aligned heap
// buffer -- callers see identical bytes and alignment either way, only
// is_mapped() differs.
//
// Alignment guarantee: data() is at least 64-byte aligned on both paths
// (mmap returns page-aligned addresses; the fallback allocates aligned
// storage), so any file region whose offset is a multiple of 64 can be
// reinterpreted as aligned std::uint64_t words.
//
// The mapping is immutable and the object carries no hidden state, so
// one MappedFile may be shared freely across threads.
#ifndef IFSKETCH_UTIL_MAPPED_FILE_H_
#define IFSKETCH_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

namespace ifsketch::util {

/// An immutable byte image of a file, mmap-backed when possible.
class MappedFile {
 public:
  /// Maps (or, failing that, reads) the file at `path`. Returns nullptr
  /// on any I/O failure, with a one-line description in *error when
  /// provided. Empty files yield a valid object with size() == 0.
  static std::shared_ptr<const MappedFile> Open(const std::string& path,
                                                std::string* error = nullptr);

  /// Reads the file into an owned aligned buffer, never mmap -- the
  /// fallback path, callable directly for tests and diagnostics.
  static std::shared_ptr<const MappedFile> OpenBuffered(
      const std::string& path, std::string* error = nullptr);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// First byte of the image; 64-byte aligned; null iff size() == 0.
  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// True when the bytes live in an mmap (page cache), false when they
  /// were copied into a private heap buffer by the fallback.
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;        // munmap handle (mmap path)
  unsigned char* buffer_ = nullptr; // owned storage (fallback path)
};

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_MAPPED_FILE_H_
