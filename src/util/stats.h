// Descriptive statistics and Chernoff-bound sample-size calculators.
//
// The calculators implement Lemma 9's sample counts exactly as stated:
//   For-Each indicator:  s = O(eps^-1 log(1/delta))     (Lemma 10 route)
//   For-Each estimator:  s = O(eps^-2 log(1/delta))     (Lemma 11 route)
//   For-All  variants:   union bound over C(d,k) itemsets.
#ifndef IFSKETCH_UTIL_STATS_H_
#define IFSKETCH_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace ifsketch::util {

/// Streaming mean / variance / min / max accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;  ///< Sample variance (n-1 denominator).
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// The q-th quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and sorts; intended for reporting, not hot paths.
double Quantile(std::vector<double> values, double q);

/// Lemma 10 route: samples sufficient for the For-Each indicator guarantee
/// at threshold eps with failure probability delta: ceil(16 ln(2/delta)/eps).
std::size_t IndicatorSampleCount(double eps, double delta);

/// Lemma 11 route: samples sufficient for the For-Each estimator guarantee:
/// ceil(ln(2/delta) / (2 eps^2)).
std::size_t EstimatorSampleCount(double eps, double delta);

/// For-All indicator samples: union bound over C(d,k) itemsets, i.e.
/// IndicatorSampleCount with delta' = delta / C(d,k) (log-space safe).
std::size_t ForAllIndicatorSampleCount(double eps, double delta,
                                       std::uint64_t d, std::uint64_t k);

/// For-All estimator samples: EstimatorSampleCount with
/// delta' = delta / C(d,k).
std::size_t ForAllEstimatorSampleCount(double eps, double delta,
                                       std::uint64_t d, std::uint64_t k);

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_STATS_H_
