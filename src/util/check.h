// Lightweight assertion macros used across the library.
//
// IFSKETCH_CHECK is active in all build types (unlike assert) because the
// lower-bound constructions rely on invariants whose violation would
// silently invalidate an experiment's conclusion.
#ifndef IFSKETCH_UTIL_CHECK_H_
#define IFSKETCH_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ifsketch::util {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "IFSKETCH_CHECK failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace ifsketch::util

/// Aborts the process with a diagnostic if `cond` is false.
#define IFSKETCH_CHECK(cond)                                    \
  do {                                                          \
    if (!(cond)) {                                              \
      ::ifsketch::util::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                           \
  } while (0)

/// Convenience comparisons with no message formatting (keeps call sites
/// terse; the failing expression text carries enough context).
#define IFSKETCH_CHECK_EQ(a, b) IFSKETCH_CHECK((a) == (b))
#define IFSKETCH_CHECK_NE(a, b) IFSKETCH_CHECK((a) != (b))
#define IFSKETCH_CHECK_LT(a, b) IFSKETCH_CHECK((a) < (b))
#define IFSKETCH_CHECK_LE(a, b) IFSKETCH_CHECK((a) <= (b))
#define IFSKETCH_CHECK_GT(a, b) IFSKETCH_CHECK((a) > (b))
#define IFSKETCH_CHECK_GE(a, b) IFSKETCH_CHECK((a) >= (b))

#endif  // IFSKETCH_UTIL_CHECK_H_
