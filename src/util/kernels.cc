#include "util/kernels.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/check.h"
#include "util/kernels_impl.h"

namespace ifsketch::util {
namespace {

// ------------------------------------------------------ scalar reference
//
// These are the semantics every vectorized tier must reproduce exactly;
// the differential harness in tests/util_kernels_test.cc compares each
// tier against them word for word.

std::size_t ScalarPopcountWords(const std::uint64_t* words, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += std::popcount(words[i]);
  return c;
}

std::size_t ScalarAndCount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

std::size_t ScalarAndCountMany(const std::uint64_t* const* ops,
                               std::size_t count, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w = ops[0][i];
    for (std::size_t j = 1; j < count; ++j) w &= ops[j][i];
    c += std::popcount(w);
  }
  return c;
}

void ScalarAndInto(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

constexpr BitKernels kScalarKernels = {
    "scalar",
    &ScalarPopcountWords,
    &ScalarAndCount,
    &ScalarAndCountMany,
    &ScalarAndInto,
};

// --------------------------------------------------- CPU feature checks

bool CpuSupports(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // __builtin_cpu_supports also verifies the OS saves the YMM/ZMM
      // state (XGETBV), so a positive answer means the instructions are
      // actually executable, not just advertised.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelTier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
      return false;
#endif
  }
  return false;
}

// The tier's vtable when both compiled in and CPU-supported, else null.
const BitKernels* UsableKernels(KernelTier tier) {
  if (!CpuSupports(tier)) return nullptr;
  switch (tier) {
    case KernelTier::kScalar:
      return &kScalarKernels;
    case KernelTier::kAvx2:
      return internal::Avx2KernelsOrNull();
    case KernelTier::kAvx512:
      return internal::Avx512KernelsOrNull();
  }
  return nullptr;
}

// ------------------------------------------------------------- dispatch

struct Dispatch {
  const BitKernels* kernels;
  KernelTier tier;
};

std::atomic<const BitKernels*> g_active{nullptr};
std::atomic<KernelTier> g_active_tier{KernelTier::kScalar};
std::once_flag g_init_once;

Dispatch BestSupported() {
  for (KernelTier tier : {KernelTier::kAvx512, KernelTier::kAvx2}) {
    if (const BitKernels* k = UsableKernels(tier)) return {k, tier};
  }
  return {&kScalarKernels, KernelTier::kScalar};
}

bool ParseTierName(std::string_view name, KernelTier* tier) {
  if (name == "scalar") {
    *tier = KernelTier::kScalar;
  } else if (name == "avx2") {
    *tier = KernelTier::kAvx2;
  } else if (name == "avx512") {
    *tier = KernelTier::kAvx512;
  } else {
    return false;
  }
  return true;
}

void InitDispatch() {
  Dispatch chosen = BestSupported();
  if (const char* env = std::getenv("IFSKETCH_KERNEL")) {
    KernelTier tier;
    if (!ParseTierName(env, &tier)) {
      std::fprintf(stderr,
                   "ifsketch: IFSKETCH_KERNEL=%s is not a kernel tier "
                   "(scalar|avx2|avx512); using %s\n",
                   env, KernelTierName(chosen.tier));
    } else if (const BitKernels* k = UsableKernels(tier)) {
      chosen = {k, tier};
    } else {
      std::fprintf(stderr,
                   "ifsketch: IFSKETCH_KERNEL=%s is not usable on this "
                   "build/CPU; using %s\n",
                   env, KernelTierName(chosen.tier));
    }
  }
  g_active_tier.store(chosen.tier, std::memory_order_relaxed);
  g_active.store(chosen.kernels, std::memory_order_release);
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const BitKernels& ScalarKernels() { return kScalarKernels; }

const BitKernels* KernelsForTier(KernelTier tier) {
  return UsableKernels(tier);
}

std::vector<KernelTier> SupportedKernelTiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (UsableKernels(tier) != nullptr) tiers.push_back(tier);
  }
  return tiers;
}

const BitKernels& ActiveKernels() {
  const BitKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    std::call_once(g_init_once, InitDispatch);
    k = g_active.load(std::memory_order_acquire);
  }
  return *k;
}

KernelTier ActiveKernelTier() {
  ActiveKernels();  // force initialization
  return g_active_tier.load(std::memory_order_relaxed);
}

bool SetKernelTier(KernelTier tier) {
  const BitKernels* k = UsableKernels(tier);
  if (k == nullptr) return false;
  std::call_once(g_init_once, InitDispatch);  // claim init for overrides
  g_active_tier.store(tier, std::memory_order_relaxed);
  g_active.store(k, std::memory_order_release);
  return true;
}

bool SetKernelTier(std::string_view name) {
  KernelTier tier;
  if (!ParseTierName(name, &tier)) return false;
  return SetKernelTier(tier);
}

}  // namespace ifsketch::util
