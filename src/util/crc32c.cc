#include "util/crc32c.h"

namespace ifsketch::util {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = (prev >> 8) ^ tables.t[0][prev & 0xFF];
    }
  }
  return tables;
}

constexpr Tables kTables = MakeTables();

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = kTables.t;
  crc = ~crc;
  // Slice-by-8: fold the current CRC into the first four bytes, look all
  // eight up in per-lane tables (byte loads, so byte order of the host
  // never matters).
  while (size >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               static_cast<std::uint32_t>(p[1]) << 8 |
               static_cast<std::uint32_t>(p[2]) << 16 |
               static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace ifsketch::util
