// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The integrity checksum for everything durable: WAL record frames and
// segment headers (ingest/wal.h), builder checkpoints, and the optional
// IFSK v2 trailer (sketch/sketch_file.h). CRC32C detects every burst
// error up to 32 bits -- in particular every single-byte corruption a
// torn write or bit rot can introduce -- which is exactly the failure
// model the recovery path truncates on.
//
// Software slice-by-8 (~1 byte/cycle), endian-neutral, no dependencies.
// The running-state convention composes: Crc32cExtend(Crc32cExtend(0, a),
// b) equals Crc32c(a concatenated with b), so stream parsers can
// accumulate while reading.

#ifndef IFSKETCH_UTIL_CRC32C_H_
#define IFSKETCH_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ifsketch::util {

/// Extends a running CRC32C over `size` more bytes. Pass the previous
/// return value as `crc` (0 to start).
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size);

/// CRC32C of one contiguous buffer.
inline std::uint32_t Crc32c(const void* data, std::size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_CRC32C_H_
