// Runtime-dispatched SIMD kernels for the word-stream bit operations.
//
// Every hot query path in this repo bottoms out in the same four loops
// over 64-bit words: popcount a stream, popcount the AND of two streams,
// popcount the AND of many streams, and AND one stream into another.
// BitKernels packages those four entry points as a vtable with one
// implementation per ISA tier:
//
//   scalar   portable C++ (std::popcount); always compiled, always the
//            conformance reference.
//   avx2     256-bit Mula/Harley-Seal popcount (vpshufb nibble lookup +
//            carry-save adder tree); compiled only when the compiler
//            accepts -mavx2.
//   avx512   512-bit VPOPCNTDQ; compiled only when the compiler accepts
//            -mavx512f -mavx512vpopcntdq.
//
// The active tier is selected once, at first use, from CPUID feature
// detection -- the best compiled tier the running CPU supports -- and
// can be overridden for testing and benching:
//
//   IFSKETCH_KERNEL=scalar|avx2|avx512   environment variable
//   SetKernelTier(...)                   programmatic (tests, --kernel
//                                        flags in ifsketch_cli and
//                                        bench/micro_engine)
//
// Bit-identity guarantee: every tier returns exactly the same counts and
// stores exactly the same words as the scalar reference on every input,
// including n == 0 (no pointer is dereferenced when a stream is empty).
// tests/util_kernels_test.cc enforces this differentially for every tier
// the build compiled in and the CPU supports.
//
// Threading: ActiveKernels() is safe to call from any thread. Overriding
// the tier (env var aside) must happen from configuration code before
// queries are in flight, same contract as
// util::ThreadPool::SetDefaultThreadCount.
#ifndef IFSKETCH_UTIL_KERNELS_H_
#define IFSKETCH_UTIL_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ifsketch::util {

/// One ISA tier's implementations of the four word-stream entry points.
/// All functions tolerate n == 0 (and then never touch the pointers).
struct BitKernels {
  /// Tier name: "scalar", "avx2" or "avx512".
  const char* name;

  /// Total set bits in words[0..n).
  std::size_t (*popcount_words)(const std::uint64_t* words, std::size_t n);

  /// Popcount of a[i] & b[i] over i in [0, n).
  std::size_t (*and_count)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n);

  /// Popcount of ops[0][i] & ... & ops[count-1][i] over i in [0, n).
  /// Precondition: count >= 1.
  std::size_t (*and_count_many)(const std::uint64_t* const* ops,
                                std::size_t count, std::size_t n);

  /// dst[i] &= src[i] over i in [0, n).
  void (*and_into)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
};

/// Dispatch tiers, ascending by capability.
enum class KernelTier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar", "avx2" or "avx512".
const char* KernelTierName(KernelTier tier);

/// The portable reference implementation (always available).
const BitKernels& ScalarKernels();

/// The named tier's vtable, or nullptr when that tier was not compiled
/// into this binary or the running CPU lacks the ISA.
const BitKernels* KernelsForTier(KernelTier tier);

/// Tiers usable in this process (compiled in and CPU-supported),
/// ascending; always contains kScalar.
std::vector<KernelTier> SupportedKernelTiers();

/// The vtable queries dispatch through. First call resolves the tier:
/// IFSKETCH_KERNEL if set and usable (otherwise a one-line stderr warning
/// and fall through), else the best supported tier.
const BitKernels& ActiveKernels();

/// The tier ActiveKernels() currently resolves to.
KernelTier ActiveKernelTier();

/// Forces dispatch onto `tier`. Returns false (active tier unchanged)
/// when the tier is not usable in this process. Must not race with
/// in-flight queries.
bool SetKernelTier(KernelTier tier);

/// Name-keyed override ("scalar"/"avx2"/"avx512"), for flag parsing.
bool SetKernelTier(std::string_view name);

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_KERNELS_H_
