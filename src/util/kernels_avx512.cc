// AVX-512 tier of the BitKernels vtable (see util/kernels.h).
//
// With VPOPCNTDQ the whole Mula/Harley-Seal machinery collapses: one
// vpopcntq per 512-bit vector (8 words) accumulated lane-wise, reduced
// once at the end. The fused entry points AND the operand streams in
// registers before the popcount, same single-pass shape as the other
// tiers.
//
// This TU is the only one compiled with -mavx512f -mavx512vpopcntdq
// (CMake sets the flags per file) and self-gates on the macros those
// flags define; dispatch reaches it only after a CPUID check for both
// features.

#include "util/kernels_impl.h"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace ifsketch::util::internal {
namespace {

inline __m512i LoadVec(const std::uint64_t* words, std::size_t vec) {
  return _mm512_loadu_si512(words + 8 * vec);
}

// Lane sum via a stack spill: _mm512_reduce_add_epi64 would be the
// obvious spelling, but GCC's implementation goes through
// _mm256_undefined_si256 and trips -Wuninitialized under -Werror.
inline std::size_t HorizontalSum(__m512i acc) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  std::uint64_t c = 0;
  for (std::uint64_t lane : lanes) c += lane;
  return static_cast<std::size_t>(c);
}

std::size_t Avx512PopcountWords(const std::uint64_t* words, std::size_t n) {
  const std::size_t vectors = n / 8;
  __m512i acc = _mm512_setzero_si512();
  for (std::size_t i = 0; i < vectors; ++i) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(LoadVec(words, i)));
  }
  std::size_t c = HorizontalSum(acc);
  for (std::size_t i = 8 * vectors; i < n; ++i) {
    c += std::popcount(words[i]);
  }
  return c;
}

std::size_t Avx512AndCount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  const std::size_t vectors = n / 8;
  __m512i acc = _mm512_setzero_si512();
  for (std::size_t i = 0; i < vectors; ++i) {
    const __m512i v = _mm512_and_si512(LoadVec(a, i), LoadVec(b, i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t c = HorizontalSum(acc);
  for (std::size_t i = 8 * vectors; i < n; ++i) {
    c += std::popcount(a[i] & b[i]);
  }
  return c;
}

std::size_t Avx512AndCountMany(const std::uint64_t* const* ops,
                               std::size_t count, std::size_t n) {
  const std::size_t vectors = n / 8;
  __m512i acc = _mm512_setzero_si512();
  for (std::size_t i = 0; i < vectors; ++i) {
    __m512i v = LoadVec(ops[0], i);
    for (std::size_t j = 1; j < count; ++j) {
      v = _mm512_and_si512(v, LoadVec(ops[j], i));
    }
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t c = HorizontalSum(acc);
  for (std::size_t i = 8 * vectors; i < n; ++i) {
    std::uint64_t w = ops[0][i];
    for (std::size_t j = 1; j < count; ++j) w &= ops[j][i];
    c += std::popcount(w);
  }
  return c;
}

void Avx512AndInto(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(dst + i),
                                       _mm512_loadu_si512(src + i));
    _mm512_storeu_si512(dst + i, v);
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

constexpr BitKernels kAvx512Kernels = {
    "avx512",
    &Avx512PopcountWords,
    &Avx512AndCount,
    &Avx512AndCountMany,
    &Avx512AndInto,
};

}  // namespace

const BitKernels* Avx512KernelsOrNull() { return &kAvx512Kernels; }

}  // namespace ifsketch::util::internal

#else  // !(__AVX512F__ && __AVX512VPOPCNTDQ__)

namespace ifsketch::util::internal {

const BitKernels* Avx512KernelsOrNull() { return nullptr; }

}  // namespace ifsketch::util::internal

#endif  // defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)
