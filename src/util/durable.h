// Crash-safe file primitives shared by the WAL, checkpoints, and sketch
// persistence (PR 10).
//
// FileSink is the narrow write-only seam the durability layer funnels
// every byte through: PosixFileSink is the real thing (fd writes,
// fdatasync, errno capture), FaultyFileSink is the file-side analogue of
// serve::FaultyTransport -- a shared byte budget after which every
// attached sink is dead, simulating a process killed after exactly N
// file bytes. Threading a FileSinkFactory through the WAL and
// WriteFileAtomic lets the recovery test matrix crash a run at any byte
// without forking processes.
//
// WriteFileAtomic is the one blessed way to replace a durable file:
// write "<path>.tmp" -> fdatasync -> rename over the target -> fsync the
// directory. A crash at any point leaves the old file or the new file,
// never a hybrid (a stale "<path>.tmp" may survive a crash; the next
// attempt overwrites it).

#ifndef IFSKETCH_UTIL_DURABLE_H_
#define IFSKETCH_UTIL_DURABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace ifsketch::util {

/// Write-only file handle with sticky failure: once any operation
/// (including the open) fails, ok() is false, error() explains why with
/// errno detail, and further operations fail fast.
class FileSink {
 public:
  virtual ~FileSink() = default;
  virtual bool ok() const = 0;
  virtual bool Write(const void* data, std::size_t size) = 0;
  /// Flushes written bytes to stable storage (fdatasync).
  virtual bool Sync() = 0;
  /// Closes the handle (idempotent); returns overall ok().
  virtual bool Close() = 0;
  virtual std::uint64_t bytes_written() const = 0;
  virtual std::string error() const = 0;
};

/// Creates/truncates `path` for writing via open(2). Construction never
/// throws; a failed open yields a sink with ok() == false.
class PosixFileSink : public FileSink {
 public:
  explicit PosixFileSink(const std::string& path);
  ~PosixFileSink() override;

  bool ok() const override { return error_.empty(); }
  bool Write(const void* data, std::size_t size) override;
  bool Sync() override;
  bool Close() override;
  std::uint64_t bytes_written() const override { return bytes_written_; }
  std::string error() const override { return error_; }

 private:
  void FailErrno(const char* op);

  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_written_ = 0;
  std::string error_;
};

/// Opens a FileSink for a path. The default factory (an empty
/// std::function wherever one is accepted) is PosixFileSink.
using FileSinkFactory =
    std::function<std::unique_ptr<FileSink>(const std::string& path)>;

/// One simulated crash shared by every FaultyFileSink attached to it: a
/// single budget of bytes allowed through to the inner sinks, process
/// wide. The write that would cross the budget is cut at the boundary
/// (the prefix reaches the real file, like bytes that made the kernel
/// before the kill) and the plan latches dead -- all attached sinks fail
/// every subsequent Write/Sync, exactly as serve::FaultyTransport
/// latches a killed connection.
struct CrashPlan {
  explicit CrashPlan(std::uint64_t budget) : remaining(budget) {}
  std::atomic<std::int64_t> remaining;
  std::atomic<bool> dead{false};
};

class FaultyFileSink : public FileSink {
 public:
  FaultyFileSink(std::unique_ptr<FileSink> inner,
                 std::shared_ptr<CrashPlan> plan);

  bool ok() const override;
  bool Write(const void* data, std::size_t size) override;
  bool Sync() override;
  bool Close() override;
  std::uint64_t bytes_written() const override;
  std::string error() const override;

 private:
  std::unique_ptr<FileSink> inner_;
  std::shared_ptr<CrashPlan> plan_;
  bool hit_ = false;  // this sink observed the crash
};

/// Factory whose sinks all draw bytes from `plan` (wrapping `base`, or
/// PosixFileSink when `base` is empty).
FileSinkFactory MakeFaultyFileSinkFactory(std::shared_ptr<CrashPlan> plan,
                                          FileSinkFactory base = {});

/// Atomically replaces `path` with `size` bytes of `data`: write
/// "<path>.tmp" -> Sync -> rename(2) -> fsync the parent directory. On
/// failure returns false with an errno-detailed reason in *error (when
/// non-null) and the target path untouched.
bool WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size, std::string* error = nullptr,
                     const FileSinkFactory& factory = {});

/// fsyncs directory `dir` so entry creation/rename/unlink inside it is
/// durable.
bool SyncDir(const std::string& dir, std::string* error = nullptr);

/// SyncDir on the directory containing `path` ("." when `path` has no
/// separator).
bool SyncParentDir(const std::string& path, std::string* error = nullptr);

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_DURABLE_H_
