// AVX2 tier of the BitKernels vtable (see util/kernels.h).
//
// Popcount is the Mula/Harley-Seal scheme: per-vector popcounts come from
// a vpshufb nibble lookup summed with vpsadbw, and streams >= 16 vectors
// run through a carry-save adder tree that popcounts only every 16th
// accumulated vector, amortizing the lookup to ~1/16 of the words. The
// AND-fused entry points reuse the same tree with a loader that ANDs the
// operand streams register-wise, so a fused and_count_many is one pass at
// the same per-word cost as a plain popcount.
//
// This TU is the only one compiled with -mavx2 (CMake sets the flag per
// file); when the flag is absent (non-x86, or a compiler without AVX2
// support) the whole implementation compiles away and the getter returns
// nullptr. Callers dispatch through it only after a CPUID check, so no
// AVX2 instruction can execute on a CPU that lacks it.

#include "util/kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace ifsketch::util::internal {
namespace {

// Per-byte popcounts of v (each byte 0..8), via the 4-bit lookup table.
inline __m256i CountBytes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

// Popcount of v as four lane-wise u64 partial sums.
inline __m256i PopcountSad(__m256i v) {
  return _mm256_sad_epu8(CountBytes(v), _mm256_setzero_si256());
}

// Carry-save adder: (h, l) = full sum of a + b + c, bitwise.
inline void CSA(__m256i* h, __m256i* l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

inline std::uint64_t HorizontalSum(__m256i v) {
  return static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3));
}

// Harley-Seal popcount over `vectors` 256-bit values, where load(i)
// produces the i-th vector (a plain load, or the AND of several streams'
// loads -- the tree is identical either way).
template <typename Load>
std::uint64_t HarleySeal(std::size_t vectors, Load load) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;

  std::size_t i = 0;
  for (; i + 16 <= vectors; i += 16) {
    CSA(&twos_a, &ones, ones, load(i + 0), load(i + 1));
    CSA(&twos_b, &ones, ones, load(i + 2), load(i + 3));
    CSA(&fours_a, &twos, twos, twos_a, twos_b);
    CSA(&twos_a, &ones, ones, load(i + 4), load(i + 5));
    CSA(&twos_b, &ones, ones, load(i + 6), load(i + 7));
    CSA(&fours_b, &twos, twos, twos_a, twos_b);
    CSA(&eights_a, &fours, fours, fours_a, fours_b);
    CSA(&twos_a, &ones, ones, load(i + 8), load(i + 9));
    CSA(&twos_b, &ones, ones, load(i + 10), load(i + 11));
    CSA(&fours_a, &twos, twos, twos_a, twos_b);
    CSA(&twos_a, &ones, ones, load(i + 12), load(i + 13));
    CSA(&twos_b, &ones, ones, load(i + 14), load(i + 15));
    CSA(&fours_b, &twos, twos, twos_a, twos_b);
    CSA(&eights_b, &fours, fours, fours_a, fours_b);
    CSA(&sixteens, &eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, PopcountSad(sixteens));
  }
  // Each counter vector holds bits worth 16/8/4/2/1 x their popcount.
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(
      total, _mm256_slli_epi64(PopcountSad(eights), 3));
  total = _mm256_add_epi64(
      total, _mm256_slli_epi64(PopcountSad(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(PopcountSad(twos), 1));
  total = _mm256_add_epi64(total, PopcountSad(ones));
  for (; i < vectors; ++i) {
    total = _mm256_add_epi64(total, PopcountSad(load(i)));
  }
  return HorizontalSum(total);
}

inline __m256i LoadVec(const std::uint64_t* words, std::size_t vec) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(words + 4 * vec));
}

std::size_t Avx2PopcountWords(const std::uint64_t* words, std::size_t n) {
  const std::size_t vectors = n / 4;
  std::size_t c = static_cast<std::size_t>(
      HarleySeal(vectors, [&](std::size_t i) { return LoadVec(words, i); }));
  for (std::size_t i = 4 * vectors; i < n; ++i) {
    c += std::popcount(words[i]);
  }
  return c;
}

std::size_t Avx2AndCount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  const std::size_t vectors = n / 4;
  std::size_t c = static_cast<std::size_t>(
      HarleySeal(vectors, [&](std::size_t i) {
        return _mm256_and_si256(LoadVec(a, i), LoadVec(b, i));
      }));
  for (std::size_t i = 4 * vectors; i < n; ++i) {
    c += std::popcount(a[i] & b[i]);
  }
  return c;
}

std::size_t Avx2AndCountMany(const std::uint64_t* const* ops,
                             std::size_t count, std::size_t n) {
  const std::size_t vectors = n / 4;
  std::size_t c = static_cast<std::size_t>(
      HarleySeal(vectors, [&](std::size_t i) {
        __m256i v = LoadVec(ops[0], i);
        for (std::size_t j = 1; j < count; ++j) {
          v = _mm256_and_si256(v, LoadVec(ops[j], i));
        }
        return v;
      }));
  for (std::size_t i = 4 * vectors; i < n; ++i) {
    std::uint64_t w = ops[0][i];
    for (std::size_t j = 1; j < count; ++j) w &= ops[j][i];
    c += std::popcount(w);
  }
  return c;
}

void Avx2AndInto(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(d),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(d, v);
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

constexpr BitKernels kAvx2Kernels = {
    "avx2",
    &Avx2PopcountWords,
    &Avx2AndCount,
    &Avx2AndCountMany,
    &Avx2AndInto,
};

}  // namespace

const BitKernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace ifsketch::util::internal

#else  // !defined(__AVX2__)

namespace ifsketch::util::internal {

const BitKernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace ifsketch::util::internal

#endif  // defined(__AVX2__)
