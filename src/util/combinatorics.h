// Combinatorial primitives used by the constructions.
//
// The Theorem 13 hard instance assigns "a unique set of exactly k-1
// attributes" to each of the 1/eps rows; we realize that assignment with
// the colexicographic ranking/unranking bijection between {0,...,C(n,k)-1}
// and k-subsets of [n]. Binomials are computed with saturation so that
// parameter-regime checks like 1/eps <= C(d/2, k-1) are safe for large d.
#ifndef IFSKETCH_UTIL_COMBINATORICS_H_
#define IFSKETCH_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace ifsketch::util {

/// Saturating binomial coefficient C(n, k); returns kBinomialInf if the
/// exact value exceeds ~2^62 (sufficient for all regime checks here).
inline constexpr std::uint64_t kBinomialInf = std::uint64_t{1} << 62;
std::uint64_t Binomial(std::uint64_t n, std::uint64_t k);

/// Natural log of C(n, k) via lgamma (usable far beyond the saturation
/// point of Binomial; used for sketch-size formulas log C(d,k)).
double LogBinomial(std::uint64_t n, std::uint64_t k);

/// The `rank`-th k-subset of [n] in colexicographic order, as ascending
/// element indices. Precondition: rank < Binomial(n, k).
std::vector<std::size_t> UnrankSubset(std::uint64_t rank, std::size_t n,
                                      std::size_t k);

/// Inverse of UnrankSubset. `subset` must be ascending and within [0, n).
std::uint64_t RankSubset(const std::vector<std::size_t>& subset,
                         std::size_t n);

/// Advances `subset` (ascending k-subset of [0, n)) to its colex successor.
/// Returns false when `subset` was the last subset (and leaves it first).
bool NextSubset(std::vector<std::size_t>& subset, std::size_t n);

/// Enumerates all k-subsets of [0, n). Intended for small C(n,k) only
/// (RELEASE-ANSWERS, exhaustive validity checks in tests).
std::vector<std::vector<std::size_t>> AllSubsets(std::size_t n,
                                                 std::size_t k);

/// Floor of log2(x). Precondition: x > 0.
int FloorLog2(std::uint64_t x);

/// Ceiling of log2(x). Precondition: x > 0.
int CeilLog2(std::uint64_t x);

/// The q-times iterated logarithm log^{(q)}(x) base 2, clamped below at 1.
/// Appears in the Theorem 16 bound kd log(d/k) / (eps^2 log^{(q)}(1/eps)).
double IteratedLog2(double x, int q);

}  // namespace ifsketch::util

#endif  // IFSKETCH_UTIL_COMBINATORICS_H_
