#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace ifsketch::obs {

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (other.buckets.size() > buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q >= 1.0) return max;
  if (q < 0.0) q = 0.0;
  // Nearest rank: the ceil(q * count)-th sample, 1-based, minimum 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Never report past the true maximum (the top bucket's bound can
      // overstate it by up to 25%).
      return std::min(BucketUpperBound(i), max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kHistogramBuckets, 0);
  std::size_t last_nonzero = 0;
  bool any = false;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    snap.count += c;
    if (c != 0) {
      last_nonzero = i;
      any = true;
    }
  }
  snap.buckets.resize(any ? last_nonzero + 1 : 0);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

namespace {

// Metric names carry their labels (`name{key="value"}`); the
// exposition's # TYPE line wants the bare family name.
std::string BaseName(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Splice a suffix onto the family name but in front of any label
// block: ("h{op=\"x\"}", "_bucket") -> "h_bucket{op=\"x\"}".
std::string WithSuffix(const std::string& name, const char* suffix) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Insert `le="bound"` into an existing (possibly absent) label block.
std::string WithLe(const std::string& bucket_name, const std::string& le) {
  const std::size_t brace = bucket_name.find('{');
  if (brace == std::string::npos) {
    return bucket_name + "{le=\"" + le + "\"}";
  }
  return bucket_name.substr(0, bucket_name.size() - 1) + ",le=\"" + le +
         "\"}";
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

}  // namespace

std::string MetricsSnapshot::RenderText() const {
  std::string out;
  std::string prev_family;
  for (const auto& [name, value] : counters) {
    const std::string family = BaseName(name);
    if (family != prev_family) {
      out += "# TYPE " + family + " counter\n";
      prev_family = family;
    }
    AppendF(&out, "%s %llu\n", name.c_str(),
            static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    const std::string family = BaseName(name);
    if (family != prev_family) {
      out += "# TYPE " + family + " gauge\n";
      prev_family = family;
    }
    AppendF(&out, "%s %lld\n", name.c_str(),
            static_cast<long long>(value));
  }
  for (const auto& [name, h] : histograms) {
    const std::string family = BaseName(name);
    if (family != prev_family) {
      out += "# TYPE " + family + " histogram\n";
      prev_family = family;
    }
    const std::string bucket_name = WithSuffix(name, "_bucket");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      AppendF(&out, "%s %llu\n",
              WithLe(bucket_name,
                     std::to_string(BucketUpperBound(i)))
                  .c_str(),
              static_cast<unsigned long long>(cumulative));
    }
    AppendF(&out, "%s %llu\n", WithLe(bucket_name, "+Inf").c_str(),
            static_cast<unsigned long long>(h.count));
    AppendF(&out, "%s %llu\n", WithSuffix(name, "_sum").c_str(),
            static_cast<unsigned long long>(h.sum));
    AppendF(&out, "%s %llu\n", WithSuffix(name, "_count").c_str(),
            static_cast<unsigned long long>(h.count));
    AppendF(&out, "# %s p50=%llu p90=%llu p99=%llu max=%llu\n",
            name.c_str(),
            static_cast<unsigned long long>(h.Quantile(0.50)),
            static_cast<unsigned long long>(h.Quantile(0.90)),
            static_cast<unsigned long long>(h.Quantile(0.99)),
            static_cast<unsigned long long>(h.max));
  }
  return out;
}

std::string MetricsSnapshot::RenderLines() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    AppendF(&out, "%s %llu\n", name.c_str(),
            static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    AppendF(&out, "%s %lld\n", name.c_str(),
            static_cast<long long>(value));
  }
  for (const auto& [name, h] : histograms) {
    AppendF(&out, "%s count=%llu mean=%.1f p50=%llu p90=%llu p99=%llu "
                  "max=%llu\n",
            name.c_str(), static_cast<unsigned long long>(h.count),
            h.Mean(),
            static_cast<unsigned long long>(h.Quantile(0.50)),
            static_cast<unsigned long long>(h.Quantile(0.90)),
            static_cast<unsigned long long>(h.Quantile(0.99)),
            static_cast<unsigned long long>(h.max));
  }
  return out;
}

MetricsRegistry::MetricsRegistry()
    : generation_([] {
        static std::atomic<std::uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()) {}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

std::string LabeledName2(const std::string& base, const std::string& k1,
                         const std::string& v1, const std::string& k2,
                         const std::string& v2) {
  return base + "{" + k1 + "=\"" + v1 + "\"," + k2 + "=\"" + v2 + "\"}";
}

}  // namespace ifsketch::obs
