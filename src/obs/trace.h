// Per-request trace context: stamps stage timings as one request
// crosses ServeConnection -> Router -> SketchPod -> Engine (PR 8).
//
// A RequestTrace is a stack-allocated span covering one request frame.
// It installs itself as the calling thread's current trace; any code
// below it on the same thread can stamp a stage without plumbing a
// context parameter through Router/SketchPod signatures -- StageTimer
// measures a scope and calls RequestTrace::Stamp, which is a no-op
// when no trace is active (direct Engine use, benches without
// instrumentation). On destruction the trace records each stamped
// stage into the registry's per-stage histograms
// (serve_stage_<stage>_ns) and the whole span into
// serve_request_ns{op=...}.
//
// The stages, in request order:
//
//   kDecode   frame body decode + validation   (ServeConnection)
//   kRoute    Route() span: placement, health  (Router; includes the
//             selection, coalesce wait/lead    kernel for the leader
//                                              of a fused batch)
//   kAcquire  sketch open/mmap/evict           (SketchPod::Acquire)
//   kKernel   the fused Engine call itself     (Router::RunFused)
//   kEncode   reply encode + write             (ServeConnection)
//
// Coalescing caveat: a fused batch executes on the leader's thread, so
// kKernel (and the Stamp inside RunFused) lands on the leader's trace;
// followers observe the wait inside kRoute but no kernel stage. The
// per-stage histograms therefore count kernel executions, not requests
// -- matching serve_coalesce_batches_total by construction.
//
// Threading: a trace belongs to the thread that created it. Stamps
// from other threads land on whatever trace *that* thread carries (or
// nowhere), never racing on this one, so the stage array needs no
// atomics.
#ifndef IFSKETCH_OBS_TRACE_H_
#define IFSKETCH_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ifsketch::obs {

enum class Stage : std::uint8_t {
  kDecode = 0,
  kRoute = 1,
  kAcquire = 2,
  kKernel = 3,
  kEncode = 4,
};
inline constexpr std::size_t kStageCount = 5;

/// "decode", "route", ... -- stable names used in metric keys.
const char* StageName(Stage stage);

/// Monotonic nanosecond clock shared by all obs timing.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class RequestTrace {
 public:
  /// Starts the span and installs this trace as the thread's current
  /// one. `op` names the request kind for serve_request_ns{op=...};
  /// it must outlive the trace (string literals in practice).
  /// `registry` may be null to time stages without recording (the
  /// stamped values are still readable via stage_ns, which tests use).
  RequestTrace(MetricsRegistry* registry, const char* op);
  /// Records stamped stages + the total span, and restores the
  /// previously installed trace (traces nest like stack frames).
  ~RequestTrace();

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// The calling thread's innermost live trace, or null.
  static RequestTrace* Current();
  /// Adds `ns` to `stage` on the calling thread's current trace; no-op
  /// when none is installed.
  static void Stamp(Stage stage, std::uint64_t ns);

  std::uint64_t stage_ns(Stage stage) const {
    return stages_[static_cast<std::size_t>(stage)];
  }

 private:
  MetricsRegistry* registry_;
  const char* op_;
  std::uint64_t start_ns_;
  RequestTrace* previous_;
  std::array<std::uint64_t, kStageCount> stages_{};
};

/// RAII stopwatch: measures its own lifetime and stamps it onto the
/// calling thread's current trace. Free to construct when no trace is
/// active (one clock read per end).
class StageTimer {
 public:
  explicit StageTimer(Stage stage) : stage_(stage), start_ns_(NowNs()) {}
  ~StageTimer() { RequestTrace::Stamp(stage_, NowNs() - start_ns_); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  std::uint64_t start_ns_;
};

}  // namespace ifsketch::obs

#endif  // IFSKETCH_OBS_TRACE_H_
