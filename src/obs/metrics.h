// Process-wide metrics: sharded counters, gauges, log-bucketed
// histograms, and the registry that names them (PR 8).
//
// Design constraints, in order:
//
//   1. Recording must never block and must cost single-digit
//      nanoseconds: every hot-path mutation is one or two relaxed
//      atomic RMWs on pre-resolved pointers. Counters shard across
//      cache-line-padded cells indexed by a per-thread shard id so
//      concurrent writers do not bounce one line; histograms bucket by
//      a branch-free log-linear index (exact below 8, ~12.5% relative
//      error above) so Record is an add on one of 252 slots.
//   2. Snapshots are mergeable: a HistogramSnapshot is the full bucket
//      vector plus count/sum/max, Merge is element-wise addition, and
//      p50/p90/p99 are derived from bucket bounds by the one shared
//      Quantile routine -- the server, the STATS client, and the
//      benches all report percentiles through this same function, so
//      they can never disagree on the math.
//   3. Registration is cold-path only: GetCounter/GetGauge/GetHistogram
//      take a mutex and return stable pointers (node-based map, never
//      invalidated); callers resolve once at setup and hold the
//      pointer. Reads (Snapshot/RenderText) take the same mutex only to
//      walk the name index; the values themselves are racy-relaxed by
//      design and each metric is monotone, so a snapshot taken during
//      recording is a valid "some point in the recent past" view.
//
// Naming convention (see ROADMAP "Observability"): snake_case metric
// name, `_total` suffix for counters, `_ns`/`_bytes` unit suffix where
// applicable, Prometheus-style `{key="value"}` labels baked into the
// name string (labels are part of the registry key; there is no
// separate label index).
//
// Metrics reference (what the serving stack registers; the table is the
// contract the CI e2e smoke greps against):
//
//   name                                          kind      meaning
//   ----------------------------------------------------------------------
//   serve_requests_total{op=...}                  counter   decoded request
//                                                           frames by opcode
//   serve_request_ns{op=...}                      histogram wall time per
//                                                           request, decode
//                                                           to encode
//   serve_stage_decode_ns | _route_ns | _acquire_ns
//     | _kernel_ns | _encode_ns                   histogram per-stage spans
//                                                           from the request
//                                                           trace
//   serve_coalesce_batches_total                  counter   fused leader
//                                                           executions
//   serve_coalesce_requests_total                 counter   requests that
//                                                           entered coalescing
//   serve_coalesce_fused_total                    counter   follower requests
//                                                           answered by a
//                                                           leader's batch
//   serve_coalesce_depth                          histogram requests fused
//                                                           per batch
//   serve_loop_connections{loop=...}              gauge     open connections
//                                                           on an event loop
//   serve_loop_outbound_bytes{loop=...}           gauge     queued reply bytes
//                                                           across a loop's
//                                                           connections
//   serve_loop_wakeups_total{loop=...}            counter   epoll_wait returns
//   serve_conns_rejected_total                    counter   accepts refused at
//                                                           the connection cap
//   serve_backpressure_hangups_total              counter   connections closed
//                                                           at the outbound
//                                                           byte cap
//   serve_pod_inflight{pod=...}                   gauge     requests in flight
//   serve_pod_health_transitions_total{pod=...}   counter   health state edges
//   serve_pod_probes_total{pod=...}               counter   probe dispatches
//   serve_pod_failovers_total{pod=...}            counter   reroutes away
//   serve_sketch_queries_total{pod=,sketch=}      counter   point queries
//   serve_sketch_hits_total / _loads_total
//     / _evictions_total{pod=,sketch=}            counter   pod cache traffic
//   serve_sketch_publishes_total{pod=,sketch=}    counter   snapshot installs
//   serve_sketch_epoch{pod=,sketch=}              gauge     published epoch
//                                                           (cross-pod max -
//                                                           value = lag)
//   ingest_rows_total                             counter   rows drained from
//                                                           the ring
//   ingest_ring_occupancy                         gauge     rows waiting
//   ingest_publish_ns                             histogram snapshot publish
//                                                           latency
//   ingest_snapshots_total                        counter   publishes
//   wal_records_total                             counter   rows appended to
//                                                           the write-ahead log
//   wal_fsync_ns                                  histogram fdatasync latency
//                                                           at sync points
//   wal_segment_bytes                             gauge     bytes in the
//                                                           active segment
//   recovery_replayed_rows_total                  counter   rows replayed from
//                                                           segment tails at
//                                                           startup recovery
//   threadpool_queue_depth                        gauge     queued tasks
//   client_retries_total                          counter   client-side
//                                                           reconnect attempts
//
#ifndef IFSKETCH_OBS_METRICS_H_
#define IFSKETCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ifsketch::obs {

/// Stable per-thread shard index in [0, kCounterShards). Assigned
/// round-robin on first use per thread; exposed for tests.
std::size_t ThisThreadShard();

/// Monotone counter. Add is one relaxed fetch_add on a
/// cache-line-padded cell chosen by the calling thread's shard, so
/// concurrent writers on different cores do not contend. Value sums the
/// cells (racy-relaxed: exact once writers quiesce, a valid recent
/// lower bound while they run).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::uint64_t n = 1) {
    cells_[ThisThreadShard() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Last-write-wins signed gauge (occupancy, queue depth, epoch).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::int64_t> v_{0};
};

/// Log-linear bucket layout shared by Histogram, HistogramSnapshot and
/// the STATS wire codec. Values 0..7 get exact buckets; above that each
/// power of two splits into 4 sub-buckets, so the bucket upper bound
/// overstates a recorded value by at most 25% (quantiles inherit that
/// bound). 252 buckets cover the full uint64 range.
inline constexpr std::size_t kHistogramBuckets = 252;

/// Bucket index for a recorded value (branch-free above the exact
/// region).
constexpr std::size_t BucketIndex(std::uint64_t v) {
  if (v < 8) return static_cast<std::size_t>(v);
  // Exponent e >= 3: 2^e <= v < 2^(e+1); 2 mantissa bits pick the
  // sub-bucket.
  const int e = std::bit_width(v) - 1;
  const std::size_t sub =
      static_cast<std::size_t>(v >> (e - 2) & 0x3);
  return (static_cast<std::size_t>(e) - 2) * 4 + sub + 4;
}

/// Inclusive upper bound of bucket `idx` -- the value quantiles report
/// for samples landing there.
constexpr std::uint64_t BucketUpperBound(std::size_t idx) {
  if (idx < 8) return static_cast<std::uint64_t>(idx);
  const std::size_t e = (idx - 4) / 4 + 2;
  const std::uint64_t sub = (idx - 4) % 4;
  // Lower bound of the next bucket, minus one.
  const std::uint64_t lo =
      (std::uint64_t{4} + sub + 1) << (e - 2);
  return lo - 1;
}

/// Mergeable point-in-time view of a histogram. Element-wise additive:
/// merging shards then taking a quantile gives exactly the quantile of
/// the pooled recording, because the bucket layout is fixed.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // size <= kHistogramBuckets,
                                       // trimmed at last nonzero

  void Merge(const HistogramSnapshot& other);
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Nearest-rank quantile over bucket upper bounds: the smallest
  /// bucket bound b such that at least ceil(q * count) samples are <=
  /// b. q in [0,1]; returns 0 for an empty histogram, and `max` for
  /// q >= 1.
  std::uint64_t Quantile(double q) const;
};

/// Lock-free log-bucketed histogram. Record is two relaxed fetch_adds
/// (bucket + sum) and a rarely-taken max CAS.
class Histogram {
 public:
  void Record(std::uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  alignas(64) std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Full registry snapshot: every metric by name, values frozen at read
/// time. This is what the STATS opcode ships and what RenderText
/// formats, so wire consumers and local dumps see the same data.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Prometheus-style text exposition: `# TYPE` comments, cumulative
  /// `_bucket{le=...}` lines for histograms plus `_sum`/`_count`, and a
  /// derived-quantile comment line per histogram.
  std::string RenderText() const;
  /// One line per metric: `name value` for counters/gauges,
  /// `name count=.. mean=.. p50=.. p90=.. p99=.. max=..` for
  /// histograms. The --stats-every / SIGUSR1 dump format.
  std::string RenderLines() const;
};

/// Name -> metric index. Get* registers on first use and returns a
/// stable pointer; resolving is mutex-guarded (cold path), the returned
/// metrics are lock-free (hot path). Instantiable for tests; the
/// serving stack defaults to the process-wide Default() instance.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string RenderText() const { return Snapshot().RenderText(); }
  std::string RenderLines() const { return Snapshot().RenderLines(); }

  /// Process-unique id, never reused across instances. Thread-local
  /// caches of Get* pointers key on (this, generation()) so a registry
  /// reallocated at a freed predecessor's address cannot satisfy the
  /// predecessor's cache entries (see RequestTrace).
  std::uint64_t generation() const { return generation_; }

 private:
  const std::uint64_t generation_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// `base{key="value"}` -- the convention for baking one label into a
/// registry name. Compose nested calls for multiple labels in
/// alphabetical key order.
std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value);
/// `base{k1="v1",k2="v2"}` two-label convenience (pod + sketch).
std::string LabeledName2(const std::string& base, const std::string& k1,
                         const std::string& v1, const std::string& k2,
                         const std::string& v2);

}  // namespace ifsketch::obs

#endif  // IFSKETCH_OBS_METRICS_H_
