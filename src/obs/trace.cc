#include "obs/trace.h"

#include <vector>

namespace ifsketch::obs {

namespace {

thread_local RequestTrace* g_current_trace = nullptr;

// Resolving "serve_stage_*_ns" / "serve_request_ns{op=...}" through the
// registry costs string builds plus a mutex'd map walk -- fine once,
// too fat for every request (micro_obs pins instrumentation at <= 2% of
// the query path). Each thread caches the resolved pointers per
// (registry, generation, op); `generation` makes an entry from a
// destroyed registry unmatchable even when a successor reuses its
// address. `op` is compared by pointer: callers pass string literals,
// and a duplicate literal at another address merely costs one extra
// entry resolving to the same histograms.
struct TraceSinks {
  const MetricsRegistry* registry;
  std::uint64_t generation;
  const char* op;
  Histogram* stages[kStageCount];
  Histogram* total;
};

const TraceSinks& ResolveSinks(MetricsRegistry* registry, const char* op) {
  thread_local std::vector<TraceSinks> cache;
  const std::uint64_t generation = registry->generation();
  for (const TraceSinks& entry : cache) {
    if (entry.registry == registry && entry.generation == generation &&
        entry.op == op) {
      return entry;
    }
  }
  TraceSinks sinks{registry, generation, op, {}, nullptr};
  for (std::size_t i = 0; i < kStageCount; ++i) {
    sinks.stages[i] = registry->GetHistogram(
        std::string("serve_stage_") + StageName(static_cast<Stage>(i)) +
        "_ns");
  }
  sinks.total = registry->GetHistogram(LabeledName("serve_request_ns", "op", op));
  cache.push_back(sinks);
  return cache.back();
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kDecode:
      return "decode";
    case Stage::kRoute:
      return "route";
    case Stage::kAcquire:
      return "acquire";
    case Stage::kKernel:
      return "kernel";
    case Stage::kEncode:
      return "encode";
  }
  return "?";
}

RequestTrace::RequestTrace(MetricsRegistry* registry, const char* op)
    : registry_(registry),
      op_(op),
      start_ns_(NowNs()),
      previous_(g_current_trace) {
  g_current_trace = this;
}

RequestTrace::~RequestTrace() {
  g_current_trace = previous_;
  if (registry_ == nullptr) return;
  const std::uint64_t total = NowNs() - start_ns_;
  const TraceSinks& sinks = ResolveSinks(registry_, op_);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (stages_[i] == 0) continue;
    sinks.stages[i]->Record(stages_[i]);
  }
  sinks.total->Record(total);
}

RequestTrace* RequestTrace::Current() { return g_current_trace; }

void RequestTrace::Stamp(Stage stage, std::uint64_t ns) {
  if (g_current_trace == nullptr) return;
  g_current_trace->stages_[static_cast<std::size_t>(stage)] += ns;
}

}  // namespace ifsketch::obs
