// Constant-rate binary code uniquely decodable from a constant fraction
// of adversarial bit errors -- the library's substitute for the Justesen
// code [Jus72] invoked by Theorems 15 and 16.
//
// Construction: outer RS(n_out, k_out) over GF(2^8) (corrects
// (n_out-k_out)/2 symbol errors) concatenated with the [24, 8, >=6]
// InnerCode (mis-decodes a block only when >= 3 of its 24 bits flip). Per
// RS block the codeword is 24*n_out bits carrying 8*k_out data bits. A
// fraction p of flipped bits spoils at most p*24*n_out/3 symbols, which
// the outer code absorbs while p <= (n_out-k_out)/(16*n_out); with the
// default rate-1/3 outer code that is p <= 4.16%, clearing the 4% the
// paper's arguments need. Long messages use multiple RS blocks with
// symbol-level round-robin interleaving so bursts (the whole-column
// failures arising in the Theorem 15 reconstruction) spread evenly.
#ifndef IFSKETCH_ECC_CONCATENATED_H_
#define IFSKETCH_ECC_CONCATENATED_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/reed_solomon.h"
#include "util/bitvector.h"

namespace ifsketch::ecc {

/// The concatenated code, operating on arbitrary-length bit messages.
class ConcatenatedCode {
 public:
  /// Requires 1 <= outer_k <= outer_n <= 255.
  ConcatenatedCode(std::size_t outer_n, std::size_t outer_k);

  /// The paper-scale default: RS(255, 85), block = 6120 bits.
  static ConcatenatedCode Default() { return ConcatenatedCode(255, 85); }

  /// A short-block variant for small instances: RS(60, 20), block = 1440
  /// bits, same rate 1/9 and same 4.16% radius.
  static ConcatenatedCode Small() { return ConcatenatedCode(60, 20); }

  std::size_t outer_n() const { return outer_.n(); }
  std::size_t outer_k() const { return outer_.k(); }

  std::size_t DataBitsPerBlock() const { return outer_.k() * 8; }
  std::size_t CodeBitsPerBlock() const { return outer_.n() * 24; }

  /// Worst-case decodable error fraction for one block:
  /// 3 * max_errors / code bits.
  double DecodingRadius() const {
    return 3.0 * static_cast<double>(outer_.max_errors()) /
           static_cast<double>(CodeBitsPerBlock());
  }

  /// Rate = data bits / code bits.
  double Rate() const {
    return static_cast<double>(DataBitsPerBlock()) /
           static_cast<double>(CodeBitsPerBlock());
  }

  /// Codeword length for a message of `message_bits` bits.
  std::size_t EncodedBits(std::size_t message_bits) const;

  /// Largest message length whose codeword fits in `budget_bits`.
  std::size_t CapacityForBudget(std::size_t budget_bits) const;

  /// Encodes an arbitrary bit string. The message length must be conveyed
  /// out of band (the constructions always know it).
  util::BitVector Encode(const util::BitVector& message) const;

  /// Decodes a (possibly corrupted) codeword back to `message_bits` bits.
  /// Returns nullopt if any RS block fails unique decoding.
  std::optional<util::BitVector> Decode(const util::BitVector& received,
                                        std::size_t message_bits) const;

 private:
  std::size_t NumBlocks(std::size_t message_bits) const;

  ReedSolomon outer_;
};

}  // namespace ifsketch::ecc

#endif  // IFSKETCH_ECC_CONCATENATED_H_
