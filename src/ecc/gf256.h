// Arithmetic in GF(2^8).
//
// Field elements are bytes; multiplication uses exp/log tables over the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d). This is the
// symbol field of the outer Reed-Solomon code.
#ifndef IFSKETCH_ECC_GF256_H_
#define IFSKETCH_ECC_GF256_H_

#include <cstdint>
#include <vector>

namespace ifsketch::ecc {

/// GF(2^8) operations (all static; tables built once at first use).
class GF256 {
 public:
  static std::uint8_t Add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // characteristic 2: addition == subtraction == XOR
  }

  static std::uint8_t Mul(std::uint8_t a, std::uint8_t b);

  /// Multiplicative inverse. Precondition: a != 0.
  static std::uint8_t Inv(std::uint8_t a);

  /// a / b. Precondition: b != 0.
  static std::uint8_t Div(std::uint8_t a, std::uint8_t b);

  /// a^e (e >= 0; 0^0 == 1).
  static std::uint8_t Pow(std::uint8_t a, unsigned e);

  /// Evaluates the polynomial sum coeffs[i] x^i at x (Horner).
  static std::uint8_t PolyEval(const std::vector<std::uint8_t>& coeffs,
                               std::uint8_t x);

  /// Product of polynomials (coefficient vectors, low degree first).
  static std::vector<std::uint8_t> PolyMul(
      const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b);

  /// Divides `num` by `den`, returning {quotient, remainder}.
  /// Precondition: den is not the zero polynomial.
  struct DivRem {
    std::vector<std::uint8_t> quotient;
    std::vector<std::uint8_t> remainder;
  };
  static DivRem PolyDivRem(std::vector<std::uint8_t> num,
                           const std::vector<std::uint8_t>& den);
};

}  // namespace ifsketch::ecc

#endif  // IFSKETCH_ECC_GF256_H_
