// Reed-Solomon codes over GF(2^8) with Berlekamp-Welch decoding.
//
// RS(n, k): a message of k symbols is the coefficient vector of a degree
// <k polynomial m(x); the codeword is (m(a_0), ..., m(a_{n-1})) at fixed
// distinct evaluation points a_i = i. Minimum distance n-k+1; unique
// decoding up to t = floor((n-k)/2) symbol errors via the Berlekamp-Welch
// linear system. This is the outer code of the concatenated (Justesen
// substitute) construction used by the Theorem 15/16 encoders.
#ifndef IFSKETCH_ECC_REED_SOLOMON_H_
#define IFSKETCH_ECC_REED_SOLOMON_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace ifsketch::ecc {

/// An RS(n, k) code instance over GF(2^8). Requires k >= 1, k <= n <= 255.
class ReedSolomon {
 public:
  ReedSolomon(std::size_t n, std::size_t k);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }

  /// Correctable symbol errors: floor((n-k)/2).
  std::size_t max_errors() const { return (n_ - k_) / 2; }

  /// Encodes k message symbols into n codeword symbols.
  std::vector<std::uint8_t> Encode(
      const std::vector<std::uint8_t>& message) const;

  /// Decodes a received word with at most max_errors() symbol errors.
  /// Returns nullopt when the error pattern is not uniquely decodable.
  std::optional<std::vector<std::uint8_t>> Decode(
      const std::vector<std::uint8_t>& received) const;

 private:
  std::size_t n_;
  std::size_t k_;
};

}  // namespace ifsketch::ecc

#endif  // IFSKETCH_ECC_REED_SOLOMON_H_
