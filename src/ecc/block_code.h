// A small binary inner code for the concatenated construction.
//
// A [24, 8] linear code with minimum distance >= 6, found by a
// deterministic seeded search over random parity matrices and verified
// exhaustively (255 nonzero codewords). Encoding is G = [I_8 | A];
// decoding is nearest-codeword over the 256 codewords, which corrects any
// <= 2 bit errors and mis-decodes only when >= 3 errors hit a block --
// the per-block accounting behind the concatenated code's constant
// decoding radius.
#ifndef IFSKETCH_ECC_BLOCK_CODE_H_
#define IFSKETCH_ECC_BLOCK_CODE_H_

#include <array>
#include <cstdint>

namespace ifsketch::ecc {

/// The [24, 8, >=6] inner code (singleton; construction is deterministic).
class InnerCode {
 public:
  static constexpr std::size_t kDataBits = 8;
  static constexpr std::size_t kCodeBits = 24;
  static constexpr std::size_t kMinDistance = 6;

  /// The shared instance.
  static const InnerCode& Instance();

  /// Encodes a byte into a 24-bit codeword (low kCodeBits bits used).
  std::uint32_t Encode(std::uint8_t data) const { return codewords_[data]; }

  /// Decodes 24 received bits to the nearest codeword's data byte.
  /// Correct whenever at most 2 bits were flipped.
  std::uint8_t Decode(std::uint32_t received) const;

  /// Verified minimum distance of the constructed code.
  std::size_t MeasuredMinDistance() const { return measured_min_distance_; }

 private:
  InnerCode();  // runs the seeded search

  std::array<std::uint32_t, 256> codewords_;
  std::size_t measured_min_distance_ = 0;
};

}  // namespace ifsketch::ecc

#endif  // IFSKETCH_ECC_BLOCK_CODE_H_
