#include "ecc/block_code.h"

#include <bit>

#include "util/check.h"
#include "util/random.h"

namespace ifsketch::ecc {
namespace {

// Encodes with generator [I_8 | A] where A is given by 8 rows of 16
// parity bits. Returns the 24-bit codeword: data byte in the low 8 bits,
// parity in bits 8..23.
std::uint32_t EncodeWith(const std::array<std::uint16_t, 8>& parity_rows,
                         std::uint8_t data) {
  std::uint16_t parity = 0;
  for (int b = 0; b < 8; ++b) {
    if ((data >> b) & 1u) parity ^= parity_rows[b];
  }
  return static_cast<std::uint32_t>(data) |
         (static_cast<std::uint32_t>(parity) << 8);
}

// Minimum weight over nonzero codewords == minimum distance (linear code).
std::size_t MinDistance(const std::array<std::uint16_t, 8>& parity_rows) {
  std::size_t best = 24;
  for (unsigned m = 1; m < 256; ++m) {
    const std::uint32_t w = EncodeWith(parity_rows, static_cast<std::uint8_t>(m));
    best = std::min<std::size_t>(best, std::popcount(w));
  }
  return best;
}

}  // namespace

const InnerCode& InnerCode::Instance() {
  static const InnerCode* code = new InnerCode();  // leaked intentionally
  return *code;
}

InnerCode::InnerCode() {
  // Deterministic search: try seeds 1, 2, ... until the random parity
  // matrix yields minimum distance >= 6. The first success is fixed for
  // all time by determinism of the PRNG.
  std::array<std::uint16_t, 8> parity_rows{};
  for (std::uint64_t seed = 1;; ++seed) {
    util::Rng rng(seed);
    for (auto& row : parity_rows) {
      row = static_cast<std::uint16_t>(rng.Next() & 0xffff);
    }
    const std::size_t dist = MinDistance(parity_rows);
    if (dist >= kMinDistance) {
      measured_min_distance_ = dist;
      break;
    }
    IFSKETCH_CHECK_LT(seed, 100000u);  // the search succeeds within a few tries
  }
  for (unsigned m = 0; m < 256; ++m) {
    codewords_[m] = EncodeWith(parity_rows, static_cast<std::uint8_t>(m));
  }
}

std::uint8_t InnerCode::Decode(std::uint32_t received) const {
  received &= 0xffffffu;
  unsigned best_m = 0;
  int best_dist = 25;
  for (unsigned m = 0; m < 256; ++m) {
    const int dist = std::popcount(codewords_[m] ^ received);
    if (dist < best_dist) {
      best_dist = dist;
      best_m = m;
    }
  }
  return static_cast<std::uint8_t>(best_m);
}

}  // namespace ifsketch::ecc
