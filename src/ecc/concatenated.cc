#include "ecc/concatenated.h"

#include "ecc/block_code.h"
#include "util/check.h"

namespace ifsketch::ecc {
namespace {

// Bit position of inner-coded symbol `sym` of block `blk` in the
// interleaved layout: symbols are striped round-robin across blocks so
// that a burst of consecutive codeword bits touches each block equally.
std::size_t SymbolBase(std::size_t blk, std::size_t sym,
                       std::size_t num_blocks) {
  return (sym * num_blocks + blk) * InnerCode::kCodeBits;
}

}  // namespace

ConcatenatedCode::ConcatenatedCode(std::size_t outer_n, std::size_t outer_k)
    : outer_(outer_n, outer_k) {}

std::size_t ConcatenatedCode::NumBlocks(std::size_t message_bits) const {
  const std::size_t per = DataBitsPerBlock();
  return message_bits == 0 ? 1 : (message_bits + per - 1) / per;
}

std::size_t ConcatenatedCode::EncodedBits(std::size_t message_bits) const {
  return NumBlocks(message_bits) * CodeBitsPerBlock();
}

std::size_t ConcatenatedCode::CapacityForBudget(
    std::size_t budget_bits) const {
  const std::size_t blocks = budget_bits / CodeBitsPerBlock();
  return blocks * DataBitsPerBlock();
}

util::BitVector ConcatenatedCode::Encode(
    const util::BitVector& message) const {
  const std::size_t blocks = NumBlocks(message.size());
  const std::size_t outer_n = outer_.n();
  const std::size_t outer_k = outer_.k();
  util::BitVector out(blocks * CodeBitsPerBlock());
  const InnerCode& inner = InnerCode::Instance();
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    // Gather this block's data bytes (zero-padded past message end).
    std::vector<std::uint8_t> data(outer_k, 0);
    for (std::size_t byte = 0; byte < outer_k; ++byte) {
      for (std::size_t bit = 0; bit < 8; ++bit) {
        const std::size_t pos = blk * DataBitsPerBlock() + byte * 8 + bit;
        if (pos < message.size() && message.Get(pos)) {
          data[byte] |= static_cast<std::uint8_t>(1u << bit);
        }
      }
    }
    const std::vector<std::uint8_t> rs_codeword = outer_.Encode(data);
    for (std::size_t sym = 0; sym < outer_n; ++sym) {
      const std::uint32_t cw = inner.Encode(rs_codeword[sym]);
      const std::size_t base = SymbolBase(blk, sym, blocks);
      for (std::size_t bit = 0; bit < InnerCode::kCodeBits; ++bit) {
        if ((cw >> bit) & 1u) out.Set(base + bit, true);
      }
    }
  }
  return out;
}

std::optional<util::BitVector> ConcatenatedCode::Decode(
    const util::BitVector& received, std::size_t message_bits) const {
  const std::size_t blocks = NumBlocks(message_bits);
  const std::size_t outer_n = outer_.n();
  const std::size_t outer_k = outer_.k();
  IFSKETCH_CHECK_EQ(received.size(), blocks * CodeBitsPerBlock());
  const InnerCode& inner = InnerCode::Instance();
  util::BitVector message(message_bits);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    std::vector<std::uint8_t> rs_received(outer_n);
    for (std::size_t sym = 0; sym < outer_n; ++sym) {
      const std::size_t base = SymbolBase(blk, sym, blocks);
      std::uint32_t cw = 0;
      for (std::size_t bit = 0; bit < InnerCode::kCodeBits; ++bit) {
        if (received.Get(base + bit)) cw |= std::uint32_t{1} << bit;
      }
      rs_received[sym] = inner.Decode(cw);
    }
    const auto decoded = outer_.Decode(rs_received);
    if (!decoded.has_value()) return std::nullopt;
    for (std::size_t byte = 0; byte < outer_k; ++byte) {
      for (std::size_t bit = 0; bit < 8; ++bit) {
        const std::size_t pos = blk * DataBitsPerBlock() + byte * 8 + bit;
        if (pos < message_bits) {
          message.Set(pos, ((*decoded)[byte] >> bit) & 1u);
        }
      }
    }
  }
  return message;
}

}  // namespace ifsketch::ecc
