#include "ecc/reed_solomon.h"

#include "ecc/gf256.h"
#include "util/check.h"

namespace ifsketch::ecc {
namespace {

// Solves the square-ish linear system M x = rhs over GF(256) by Gaussian
// elimination with partial pivoting; free variables are set to zero.
// Returns false when the system is inconsistent.
bool SolveLinear(std::vector<std::vector<std::uint8_t>> m,
                 std::vector<std::uint8_t> rhs,
                 std::vector<std::uint8_t>& solution) {
  const std::size_t rows = m.size();
  const std::size_t cols = rows == 0 ? 0 : m[0].size();
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t row = 0;
  for (std::size_t col = 0; col < cols && row < rows; ++col) {
    std::size_t piv = row;
    while (piv < rows && m[piv][col] == 0) ++piv;
    if (piv == rows) continue;
    std::swap(m[piv], m[row]);
    std::swap(rhs[piv], rhs[row]);
    const std::uint8_t inv = GF256::Inv(m[row][col]);
    for (std::size_t c = col; c < cols; ++c) {
      m[row][c] = GF256::Mul(m[row][c], inv);
    }
    rhs[row] = GF256::Mul(rhs[row], inv);
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == row || m[r][col] == 0) continue;
      const std::uint8_t factor = m[r][col];
      for (std::size_t c = col; c < cols; ++c) {
        m[r][c] = GF256::Add(m[r][c], GF256::Mul(factor, m[row][c]));
      }
      rhs[r] = GF256::Add(rhs[r], GF256::Mul(factor, rhs[row]));
    }
    pivot_col_of_row.push_back(col);
    ++row;
  }
  // Inconsistency: a zero row with nonzero rhs.
  for (std::size_t r = row; r < rows; ++r) {
    if (rhs[r] != 0) return false;
  }
  solution.assign(cols, 0);
  for (std::size_t r = 0; r < row; ++r) {
    solution[pivot_col_of_row[r]] = rhs[r];
  }
  return true;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k) {
  IFSKETCH_CHECK_GE(k, 1u);
  IFSKETCH_CHECK_LE(k, n);
  IFSKETCH_CHECK_LE(n, 255u);
}

std::vector<std::uint8_t> ReedSolomon::Encode(
    const std::vector<std::uint8_t>& message) const {
  IFSKETCH_CHECK_EQ(message.size(), k_);
  std::vector<std::uint8_t> codeword(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    codeword[i] = GF256::PolyEval(message, static_cast<std::uint8_t>(i));
  }
  return codeword;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::Decode(
    const std::vector<std::uint8_t>& received) const {
  IFSKETCH_CHECK_EQ(received.size(), n_);
  const std::size_t e = max_errors();
  if (e == 0) {
    // No redundancy: interpolate directly (accept as-is when n == k).
    // Build message by solving the k x k Vandermonde system.
    std::vector<std::vector<std::uint8_t>> m(k_,
                                             std::vector<std::uint8_t>(k_));
    std::vector<std::uint8_t> rhs(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      for (std::size_t j = 0; j < k_; ++j) {
        m[i][j] = GF256::Pow(static_cast<std::uint8_t>(i),
                             static_cast<unsigned>(j));
      }
      rhs[i] = received[i];
    }
    std::vector<std::uint8_t> sol;
    if (!SolveLinear(std::move(m), std::move(rhs), sol)) return std::nullopt;
    sol.resize(k_);
    return sol;
  }

  // Berlekamp-Welch: find Q (deg < k+e) and monic E (deg == e) with
  //   Q(a_i) = y_i * E(a_i)  for all i.
  // Unknowns: q_0..q_{k+e-1}, e_0..e_{e-1}  (E(x) = x^e + sum e_j x^j).
  // Row i: sum_j q_j a_i^j  +  y_i * sum_j e_j a_i^j  =  y_i * a_i^e
  // (addition is XOR, so signs are immaterial).
  const std::size_t num_q = k_ + e;
  const std::size_t num_unknowns = num_q + e;
  std::vector<std::vector<std::uint8_t>> m(
      n_, std::vector<std::uint8_t>(num_unknowns, 0));
  std::vector<std::uint8_t> rhs(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto a = static_cast<std::uint8_t>(i);
    const std::uint8_t y = received[i];
    for (std::size_t j = 0; j < num_q; ++j) {
      m[i][j] = GF256::Pow(a, static_cast<unsigned>(j));
    }
    for (std::size_t j = 0; j < e; ++j) {
      m[i][num_q + j] =
          GF256::Mul(y, GF256::Pow(a, static_cast<unsigned>(j)));
    }
    rhs[i] = GF256::Mul(y, GF256::Pow(a, static_cast<unsigned>(e)));
  }
  std::vector<std::uint8_t> sol;
  if (!SolveLinear(std::move(m), std::move(rhs), sol)) return std::nullopt;

  std::vector<std::uint8_t> q(sol.begin(), sol.begin() + num_q);
  std::vector<std::uint8_t> err(sol.begin() + num_q, sol.end());
  err.push_back(1);  // monic leading coefficient

  GF256::DivRem dr = GF256::PolyDivRem(q, err);
  for (std::uint8_t r : dr.remainder) {
    if (r != 0) return std::nullopt;  // more than e errors
  }
  dr.quotient.resize(k_, 0);

  // Verify the decoded message is within distance e of the received word
  // (guards against pathological underdetermined solutions).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (GF256::PolyEval(dr.quotient, static_cast<std::uint8_t>(i)) !=
        received[i]) {
      ++mismatches;
    }
  }
  if (mismatches > e) return std::nullopt;
  return dr.quotient;
}

}  // namespace ifsketch::ecc
