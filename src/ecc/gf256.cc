#include "ecc/gf256.h"

#include "util/check.h"

namespace ifsketch::ecc {
namespace {

struct Tables {
  std::uint8_t exp[512];
  std::uint8_t log[256];

  Tables() {
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // sentinel; callers must not take log of 0
  }
};

const Tables& T() {
  static const Tables* t = new Tables();  // leaked intentionally (trivial)
  return *t;
}

}  // namespace

std::uint8_t GF256::Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return T().exp[T().log[a] + T().log[b]];
}

std::uint8_t GF256::Inv(std::uint8_t a) {
  IFSKETCH_CHECK_NE(a, 0);
  return T().exp[255 - T().log[a]];
}

std::uint8_t GF256::Div(std::uint8_t a, std::uint8_t b) {
  IFSKETCH_CHECK_NE(b, 0);
  if (a == 0) return 0;
  return T().exp[(T().log[a] + 255 - T().log[b]) % 255];
}

std::uint8_t GF256::Pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned l = (static_cast<unsigned>(T().log[a]) * (e % 255)) % 255;
  return T().exp[l];
}

std::uint8_t GF256::PolyEval(const std::vector<std::uint8_t>& coeffs,
                             std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = coeffs.size(); i > 0; --i) {
    acc = Add(Mul(acc, x), coeffs[i - 1]);
  }
  return acc;
}

std::vector<std::uint8_t> GF256::PolyMul(const std::vector<std::uint8_t>& a,
                                         const std::vector<std::uint8_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = Add(out[i + j], Mul(a[i], b[j]));
    }
  }
  return out;
}

GF256::DivRem GF256::PolyDivRem(std::vector<std::uint8_t> num,
                                const std::vector<std::uint8_t>& den) {
  // Trim the divisor's leading zeros to find its true degree.
  std::size_t dlen = den.size();
  while (dlen > 0 && den[dlen - 1] == 0) --dlen;
  IFSKETCH_CHECK_GT(dlen, 0u);
  const std::uint8_t lead_inv = Inv(den[dlen - 1]);

  std::vector<std::uint8_t> quotient(
      num.size() >= dlen ? num.size() - dlen + 1 : 0, 0);
  for (std::size_t i = num.size(); i >= dlen; --i) {
    const std::uint8_t coef = Mul(num[i - 1], lead_inv);
    if (coef != 0) {
      quotient[i - dlen] = coef;
      for (std::size_t j = 0; j < dlen; ++j) {
        num[i - dlen + j] = Add(num[i - dlen + j], Mul(coef, den[j]));
      }
    }
    if (i == dlen) break;
  }
  num.resize(dlen > 1 ? dlen - 1 : 0);
  return {std::move(quotient), std::move(num)};
}

}  // namespace ifsketch::ecc
