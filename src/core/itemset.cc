#include "core/itemset.h"

#include <sstream>

#include "util/check.h"

namespace ifsketch::core {

Itemset::Itemset(std::size_t d, const std::vector<std::size_t>& attributes)
    : indicator_(d) {
  for (std::size_t a : attributes) {
    IFSKETCH_CHECK_LT(a, d);
    indicator_.Set(a, true);
  }
}

Itemset Itemset::FromIndicator(util::BitVector indicator) {
  Itemset t;
  t.indicator_ = std::move(indicator);
  return t;
}

Itemset Itemset::Union(const Itemset& other) const {
  IFSKETCH_CHECK_EQ(universe(), other.universe());
  return FromIndicator(indicator_ | other.indicator_);
}

Itemset Itemset::ShiftInto(std::size_t new_d, std::size_t offset) const {
  Itemset out(new_d);
  for (std::size_t a : indicator_.SetBits()) {
    IFSKETCH_CHECK_LT(a + offset, new_d);
    out.Add(a + offset);
  }
  return out;
}

std::string Itemset::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (std::size_t a : indicator_.SetBits()) {
    if (!first) os << ',';
    os << a;
    first = false;
  }
  os << "}/d=" << universe();
  return os.str();
}

}  // namespace ifsketch::core
