#include "core/column_store.h"

#include <bit>
#include <cstdint>

#include "util/check.h"
#include "util/thread_pool.h"

namespace ifsketch::core {
namespace {

// Minimum queries per ParallelFor chunk. A query is a handful of passes
// over n/64 words; batches below this are cheaper answered inline than
// scheduled.
constexpr std::size_t kSupportGrain = 32;

}  // namespace

ColumnStore::ColumnStore(const Database& db) : n_(db.num_rows()) {
  columns_.assign(db.num_columns(), util::BitVector(n_));
  // One pass over the row words; each set bit scatters into its column.
  for (std::size_t i = 0; i < n_; ++i) {
    const util::BitVector& row = db.Row(i);
    const std::uint64_t* words = row.data();
    for (std::size_t wi = 0; wi < row.num_words(); ++wi) {
      std::uint64_t w = words[wi];
      while (w != 0) {
        const std::size_t j =
            wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
        columns_[j].Set(i, true);
        w &= w - 1;
      }
    }
  }
}

ColumnStore::ColumnStore(std::size_t n, std::vector<util::BitVector> columns)
    : n_(n), columns_(std::move(columns)) {
  for (const auto& c : columns_) {
    IFSKETCH_CHECK_EQ(c.size(), n_);
  }
}

ColumnStore ColumnStore::FromColumnWords(const std::uint64_t* base,
                                         std::size_t rows, std::size_t d,
                                         std::size_t stride_words) {
  IFSKETCH_CHECK_GE(stride_words, (rows + 63) / 64);
  std::vector<util::BitVector> columns;
  columns.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    columns.push_back(util::BitVector::View(base + j * stride_words, rows));
  }
  return ColumnStore(rows, std::move(columns));
}

ColumnStore ColumnStore::FromRowMajorBits(const util::BitVector& bits,
                                          std::size_t d) {
  IFSKETCH_CHECK_GT(d, 0u);
  IFSKETCH_CHECK_EQ(bits.size() % d, 0u);
  const std::size_t n = bits.size() / d;
  std::vector<util::BitVector> columns(d, util::BitVector(n));
  const std::uint64_t* words = bits.data();
  for (std::size_t wi = 0; wi < bits.num_words(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t bit =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      columns[bit % d].Set(bit / d, true);
      w &= w - 1;
    }
  }
  return ColumnStore(n, std::move(columns));
}

std::size_t ColumnStore::SupportCount(const Itemset& t) const {
  IFSKETCH_CHECK_EQ(t.universe(), columns_.size());
  const auto attrs = t.Attributes();
  if (attrs.empty()) return n_;
  if (attrs.size() == 1) return columns_[attrs[0]].Count();
  std::vector<const util::BitVector*> operands;
  operands.reserve(attrs.size());
  for (std::size_t a : attrs) operands.push_back(&columns_[a]);
  return util::BitVector::AndCountMany(operands);
}

void ColumnStore::SupportCounts(const std::vector<Itemset>& ts,
                                std::vector<std::size_t>* counts) const {
  counts->resize(ts.size());
  // Universe checks hoisted out of the counting kernel: one cheap
  // pre-pass keeps the hot loop free of per-query validation.
  for (const Itemset& t : ts) {
    IFSKETCH_CHECK_EQ(t.universe(), columns_.size());
  }
  std::size_t* out = counts->data();
  util::ThreadPool::Default().ParallelFor(
      0, ts.size(), kSupportGrain,
      [this, &ts, out](std::size_t first, std::size_t last) {
        CountRange(ts, first, last, out);
      });
}

void ColumnStore::CountRange(const std::vector<Itemset>& ts,
                             std::size_t first, std::size_t last,
                             std::size_t* counts) const {
  // Chunk-local prefix accumulator: `prefix` is the AND of all but the
  // last attribute of the query in `prefix_attrs` (empty = no cached
  // prefix). Chunk boundaries only forgo a reuse opportunity; every
  // path computes the exact same popcount.
  util::BitVector prefix;
  std::vector<std::size_t> prefix_attrs;
  std::vector<const util::BitVector*> operands;
  std::vector<std::size_t> attrs;
  std::vector<std::size_t> next_attrs;
  if (first < last) attrs = ts[first].Attributes();
  for (std::size_t q = first; q < last; ++q) {
    const bool has_next = q + 1 < last;
    if (has_next) next_attrs = ts[q + 1].Attributes();
    if (attrs.empty()) {
      counts[q] = n_;
    } else if (attrs.size() == 1) {
      counts[q] = columns_[attrs[0]].Count();
    } else if (attrs.size() == 2) {
      counts[q] = columns_[attrs[0]].AndCount(columns_[attrs[1]]);
    } else if (SharesAprioriPrefix(prefix_attrs, attrs)) {
      // Sibling of the query that built `prefix`: one fused AND-popcount.
      counts[q] = prefix.AndCount(columns_[attrs.back()]);
    } else if (has_next && SharesAprioriPrefix(attrs, next_attrs)) {
      // Head of a sibling run: materialize the prefix once, then this
      // query and each sibling cost one column AND each.
      prefix = columns_[attrs[0]];
      for (std::size_t i = 1; i + 1 < attrs.size(); ++i) {
        prefix &= columns_[attrs[i]];
      }
      prefix_attrs = attrs;
      counts[q] = prefix.AndCount(columns_[attrs.back()]);
    } else {
      // Isolated query: fused multi-operand kernel, single pass, no
      // accumulator materialized.
      operands.clear();
      for (std::size_t a : attrs) operands.push_back(&columns_[a]);
      counts[q] = util::BitVector::AndCountMany(operands);
      prefix_attrs.clear();
    }
    attrs.swap(next_attrs);
  }
}

double ColumnStore::Frequency(const Itemset& t) const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(SupportCount(t)) / static_cast<double>(n_);
}

}  // namespace ifsketch::core
