#include "core/column_store.h"

#include "util/check.h"

namespace ifsketch::core {

ColumnStore::ColumnStore(const Database& db) : n_(db.num_rows()) {
  columns_.reserve(db.num_columns());
  for (std::size_t j = 0; j < db.num_columns(); ++j) {
    columns_.push_back(db.Column(j));
  }
}

std::size_t ColumnStore::SupportCount(const Itemset& t) const {
  IFSKETCH_CHECK_EQ(t.universe(), columns_.size());
  const auto attrs = t.Attributes();
  if (attrs.empty()) return n_;
  util::BitVector acc = columns_[attrs[0]];
  for (std::size_t i = 1; i < attrs.size(); ++i) {
    acc &= columns_[attrs[i]];
  }
  return acc.Count();
}

void ColumnStore::SupportCounts(const std::vector<Itemset>& ts,
                                std::vector<std::size_t>* counts) const {
  counts->resize(ts.size());
  util::BitVector acc;
  for (std::size_t q = 0; q < ts.size(); ++q) {
    const Itemset& t = ts[q];
    IFSKETCH_CHECK_EQ(t.universe(), columns_.size());
    const auto attrs = t.Attributes();
    if (attrs.empty()) {
      (*counts)[q] = n_;
    } else if (attrs.size() == 1) {
      (*counts)[q] = columns_[attrs[0]].Count();
    } else if (attrs.size() == 2) {
      (*counts)[q] = columns_[attrs[0]].AndCount(columns_[attrs[1]]);
    } else {
      acc = columns_[attrs[0]];
      for (std::size_t i = 1; i < attrs.size(); ++i) {
        acc &= columns_[attrs[i]];
      }
      (*counts)[q] = acc.Count();
    }
  }
}

double ColumnStore::Frequency(const Itemset& t) const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(SupportCount(t)) / static_cast<double>(n_);
}

}  // namespace ifsketch::core
