#include "core/registry.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ifsketch::core {

void SketchRegistry::Register(const std::string& name, Factory factory) {
  IFSKETCH_CHECK(!name.empty());
  IFSKETCH_CHECK(factory != nullptr);
  factories_[name] = std::move(factory);
}

void SketchRegistry::RegisterCombinator(const std::string& name,
                                        Combinator combinator) {
  IFSKETCH_CHECK(!name.empty());
  IFSKETCH_CHECK(combinator != nullptr);
  combinators_[name] = std::move(combinator);
}

bool SketchRegistry::Contains(const std::string& name) const {
  // Cheapest correct answer: attempt the resolution. Composite names need
  // their inner name validated recursively anyway.
  return Create(name) != nullptr;
}

std::unique_ptr<SketchAlgorithm> SketchRegistry::Create(
    const std::string& name) const {
  const auto plain = factories_.find(name);
  if (plain != factories_.end()) return plain->second();

  // Composite "OUTER(INNER)": the outer name is everything before the
  // first '(', the inner name everything up to the matching final ')'.
  const std::size_t open = name.find('(');
  if (open == std::string::npos || name.back() != ')') return nullptr;
  const auto combinator = combinators_.find(name.substr(0, open));
  if (combinator == combinators_.end()) return nullptr;
  auto inner = Create(name.substr(open + 1, name.size() - open - 2));
  if (inner == nullptr) return nullptr;
  return combinator->second(std::move(inner));
}

std::vector<std::string> SketchRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size() + combinators_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  for (const auto& [name, combinator] : combinators_) {
    names.push_back(name + "(...)");
  }
  std::sort(names.begin(), names.end());
  return names;
}

SketchRegistry& SketchRegistry::Default() {
  static SketchRegistry* registry = new SketchRegistry;
  return *registry;
}

}  // namespace ifsketch::core
