// Marginal contingency tables (§1.1.2 and footnote 2).
//
// For an attribute set A with |A| = k, the marginal table has 2^k cells;
// cell b in {0,1}^k counts the rows whose A-attributes equal b exactly.
// Footnote 2's equivalence: cells are general (non-monotone) conjunction
// counts, and every cell is an inclusion-exclusion sum of monotone
// conjunction frequencies -- i.e. of itemset frequencies:
//   P(x_A = b) = sum over T subset of Zeros(b) of (-1)^{|T|} f_{Ones(b)+T}.
// So an itemset sketch answers arbitrary marginal cells; that is exactly
// the data-release use case the paper describes.
#ifndef IFSKETCH_CORE_MARGINAL_H_
#define IFSKETCH_CORE_MARGINAL_H_

#include <functional>
#include <vector>

#include "core/database.h"

namespace ifsketch::core {

/// A k-attribute marginal table with 2^k cells.
struct MarginalTable {
  /// The attribute set A, ascending.
  std::vector<std::size_t> attributes;
  /// cells[b]: the fraction of rows whose A-pattern is b, where bit i of
  /// b corresponds to attributes[i].
  std::vector<double> cells;

  std::size_t NumCells() const { return cells.size(); }

  /// Sum of all cells (1.0 for exact tables; may drift for estimated).
  double Total() const;

  /// Largest absolute cell difference to another table over the same
  /// attribute set.
  double MaxCellDiff(const MarginalTable& other) const;
};

/// Exact marginal by direct row scanning.
MarginalTable ComputeMarginal(const Database& db,
                              const std::vector<std::size_t>& attributes);

/// Oracle for (monotone) itemset frequencies over universe d.
using FrequencyOracle = std::function<double(const Itemset&)>;

/// Marginal reconstructed purely from itemset frequencies via
/// inclusion-exclusion (footnote 2's reduction). With an exact oracle the
/// result equals ComputeMarginal; with an eps-accurate oracle each cell
/// carries error at most 2^k * eps.
MarginalTable MarginalFromFrequencies(
    std::size_t d, const std::vector<std::size_t>& attributes,
    const FrequencyOracle& oracle);

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_MARGINAL_H_
