#include "core/database.h"

#include "util/check.h"

namespace ifsketch::core {

Database::Database(std::size_t n, std::size_t d)
    : d_(d), rows_(n, util::BitVector(d)) {}

Database Database::FromRows(std::vector<util::BitVector> rows) {
  Database db;
  if (!rows.empty()) {
    db.d_ = rows[0].size();
    for (const auto& r : rows) IFSKETCH_CHECK_EQ(r.size(), db.d_);
  }
  db.rows_ = std::move(rows);
  return db;
}

void Database::AppendRow(util::BitVector row) {
  if (rows_.empty() && d_ == 0) d_ = row.size();
  IFSKETCH_CHECK_EQ(row.size(), d_);
  rows_.push_back(std::move(row));
}

util::BitVector Database::Column(std::size_t j) const {
  IFSKETCH_CHECK_LT(j, d_);
  util::BitVector col(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].Get(j)) col.Set(i, true);
  }
  return col;
}

void Database::SetColumn(std::size_t j, const util::BitVector& column) {
  IFSKETCH_CHECK_LT(j, d_);
  IFSKETCH_CHECK_EQ(column.size(), rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i].Set(j, column.Get(i));
  }
}

double Database::Frequency(const Itemset& t) const {
  if (rows_.empty()) return 0.0;
  return static_cast<double>(SupportCount(t)) /
         static_cast<double>(rows_.size());
}

std::size_t Database::SupportCount(const Itemset& t) const {
  IFSKETCH_CHECK_EQ(t.universe(), d_);
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (t.ContainedIn(row)) ++count;
  }
  return count;
}

Database Database::HStack(const Database& left, const Database& right) {
  IFSKETCH_CHECK_EQ(left.num_rows(), right.num_rows());
  std::vector<util::BitVector> rows;
  rows.reserve(left.num_rows());
  for (std::size_t i = 0; i < left.num_rows(); ++i) {
    rows.push_back(left.Row(i).Concat(right.Row(i)));
  }
  return FromRows(std::move(rows));
}

Database Database::VStack(const Database& top, const Database& bottom) {
  IFSKETCH_CHECK_EQ(top.num_columns(), bottom.num_columns());
  std::vector<util::BitVector> rows;
  rows.reserve(top.num_rows() + bottom.num_rows());
  for (std::size_t i = 0; i < top.num_rows(); ++i) rows.push_back(top.Row(i));
  for (std::size_t i = 0; i < bottom.num_rows(); ++i) {
    rows.push_back(bottom.Row(i));
  }
  return FromRows(std::move(rows));
}

Database Database::DuplicateRows(std::size_t times) const {
  IFSKETCH_CHECK_GT(times, 0u);
  std::vector<util::BitVector> rows;
  rows.reserve(rows_.size() * times);
  for (const auto& row : rows_) {
    for (std::size_t t = 0; t < times; ++t) rows.push_back(row);
  }
  return FromRows(std::move(rows));
}

Database Database::SliceColumns(std::size_t begin, std::size_t len) const {
  std::vector<util::BitVector> rows;
  rows.reserve(rows_.size());
  for (const auto& row : rows_) rows.push_back(row.Slice(begin, len));
  Database db = FromRows(std::move(rows));
  if (rows_.empty()) db.d_ = len;
  return db;
}

}  // namespace ifsketch::core
