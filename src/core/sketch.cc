#include "core/sketch.h"

namespace ifsketch::core {

const char* ToString(Scope scope) {
  switch (scope) {
    case Scope::kForAll:
      return "for-all";
    case Scope::kForEach:
      return "for-each";
  }
  return "?";
}

const char* ToString(Answer answer) {
  switch (answer) {
    case Answer::kIndicator:
      return "indicator";
    case Answer::kEstimator:
      return "estimator";
  }
  return "?";
}

std::unique_ptr<FrequencyIndicator> SketchAlgorithm::LoadIndicator(
    const util::BitVector& summary, const SketchParams& params, std::size_t d,
    std::size_t n) const {
  return std::make_unique<ThresholdIndicator>(
      LoadEstimator(summary, params, d, n), 0.75 * params.eps);
}

}  // namespace ifsketch::core
