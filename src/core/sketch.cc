#include "core/sketch.h"

#include <cmath>

namespace ifsketch::core {

bool ValidSketchParams(const SketchParams& params) {
  return params.k >= 1 && std::isfinite(params.eps) && params.eps > 0.0 &&
         params.eps <= 1.0 && std::isfinite(params.delta) &&
         params.delta > 0.0 && params.delta < 1.0;
}

const char* ToString(Scope scope) {
  switch (scope) {
    case Scope::kForAll:
      return "for-all";
    case Scope::kForEach:
      return "for-each";
  }
  return "?";
}

const char* ToString(Answer answer) {
  switch (answer) {
    case Answer::kIndicator:
      return "indicator";
    case Answer::kEstimator:
      return "estimator";
  }
  return "?";
}

void FrequencyEstimator::EstimateMany(const std::vector<Itemset>& ts,
                                      std::vector<double>* answers) const {
  answers->resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    (*answers)[i] = EstimateFrequency(ts[i]);
  }
}

void FrequencyIndicator::AreFrequent(const std::vector<Itemset>& ts,
                                     std::vector<bool>* answers) const {
  answers->resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    (*answers)[i] = IsFrequent(ts[i]);
  }
}

void ThresholdIndicator::AreFrequent(const std::vector<Itemset>& ts,
                                     std::vector<bool>* answers) const {
  std::vector<double> estimates;
  estimator_->EstimateMany(ts, &estimates);
  answers->resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    (*answers)[i] = estimates[i] >= threshold_;
  }
}

std::unique_ptr<FrequencyIndicator> SketchAlgorithm::LoadIndicator(
    const util::BitVector& summary, const SketchParams& params, std::size_t d,
    std::size_t n) const {
  return std::make_unique<ThresholdIndicator>(
      LoadEstimator(summary, params, d, n), 0.75 * params.eps);
}

}  // namespace ifsketch::core
