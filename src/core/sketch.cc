#include "core/sketch.h"

#include <cmath>

#include "util/thread_pool.h"

namespace ifsketch::core {
namespace {

// Minimum queries per chunk for the default batched paths. Scalar
// EstimateFrequency/IsFrequent calls scan whole summaries, so even small
// chunks amortize the scheduling cost.
constexpr std::size_t kBatchGrain = 8;

}  // namespace

bool ValidSketchParams(const SketchParams& params) {
  return params.k >= 1 && std::isfinite(params.eps) && params.eps > 0.0 &&
         params.eps <= 1.0 && std::isfinite(params.delta) &&
         params.delta > 0.0 && params.delta < 1.0;
}

const char* ToString(Scope scope) {
  switch (scope) {
    case Scope::kForAll:
      return "for-all";
    case Scope::kForEach:
      return "for-each";
  }
  return "?";
}

const char* ToString(Answer answer) {
  switch (answer) {
    case Answer::kIndicator:
      return "indicator";
    case Answer::kEstimator:
      return "estimator";
  }
  return "?";
}

void FrequencyEstimator::EstimateMany(const std::vector<Itemset>& ts,
                                      std::vector<double>* answers) const {
  answers->resize(ts.size());
  double* out = answers->data();
  util::ThreadPool::Default().ParallelFor(
      0, ts.size(), kBatchGrain,
      [this, &ts, out](std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          out[i] = EstimateFrequency(ts[i]);
        }
      });
}

void FrequencyIndicator::AreFrequent(const std::vector<Itemset>& ts,
                                     std::vector<bool>* answers) const {
  // std::vector<bool> packs bits, so concurrent writes to distinct
  // indices race; collect into bytes and copy once at the end.
  std::vector<char> bits(ts.size());
  char* out = bits.data();
  util::ThreadPool::Default().ParallelFor(
      0, ts.size(), kBatchGrain,
      [this, &ts, out](std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          out[i] = IsFrequent(ts[i]) ? 1 : 0;
        }
      });
  answers->assign(bits.begin(), bits.end());
}

void ThresholdIndicator::AreFrequent(const std::vector<Itemset>& ts,
                                     std::vector<bool>* answers) const {
  std::vector<double> estimates;
  estimator_->EstimateMany(ts, &estimates);
  answers->resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    (*answers)[i] = estimates[i] >= threshold_;
  }
}

std::unique_ptr<FrequencyIndicator> SketchAlgorithm::LoadIndicator(
    const util::BitVector& summary, const SketchParams& params, std::size_t d,
    std::size_t n) const {
  return std::make_unique<ThresholdIndicator>(
      LoadEstimator(summary, params, d, n), 0.75 * params.eps);
}

}  // namespace ifsketch::core
