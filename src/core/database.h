// Binary databases D in ({0,1}^d)^n.
//
// Rows are packed bit vectors of width d. Itemset frequency f_T(D) is the
// fraction of rows containing T (§1.3). The structural operations
// (horizontal / vertical stacking, row duplication, column extraction) are
// exactly the moves the lower-bound constructions perform on databases.
#ifndef IFSKETCH_CORE_DATABASE_H_
#define IFSKETCH_CORE_DATABASE_H_

#include <cstddef>
#include <vector>

#include "core/itemset.h"
#include "util/bitvector.h"

namespace ifsketch::core {

/// An n-row, d-column binary database.
class Database {
 public:
  Database() = default;

  /// All-zero database with n rows and d columns.
  Database(std::size_t n, std::size_t d);

  /// Takes ownership of `rows`; all rows must share one width.
  static Database FromRows(std::vector<util::BitVector> rows);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return d_; }

  /// Row i (the paper's D(i)).
  const util::BitVector& Row(std::size_t i) const { return rows_[i]; }

  /// Entry D(i, j).
  bool Get(std::size_t i, std::size_t j) const { return rows_[i].Get(j); }
  void Set(std::size_t i, std::size_t j, bool v) { rows_[i].Set(j, v); }

  /// Appends a row of width d.
  void AppendRow(util::BitVector row);

  /// Column j as an n-bit vector.
  util::BitVector Column(std::size_t j) const;

  /// Overwrites column j from an n-bit vector.
  void SetColumn(std::size_t j, const util::BitVector& column);

  /// f_T(D): the fraction of rows containing T. T's universe must equal d.
  /// Returns 0 for an empty database.
  double Frequency(const Itemset& t) const;

  /// The number of rows containing T (the unnormalized count).
  std::size_t SupportCount(const Itemset& t) const;

  /// Horizontal concatenation: rows of `left` and `right` glued side by
  /// side. Preconditions: same n.
  static Database HStack(const Database& left, const Database& right);

  /// Vertical concatenation: all rows of `top` then all rows of `bottom`.
  /// Preconditions: same d.
  static Database VStack(const Database& top, const Database& bottom);

  /// Each row repeated `times` consecutively (the duplication move that
  /// extends Theorem 13 from n = 1/eps to larger n).
  Database DuplicateRows(std::size_t times) const;

  /// The database restricted to columns [begin, begin+len).
  Database SliceColumns(std::size_t begin, std::size_t len) const;

  /// Exact equality of contents.
  friend bool operator==(const Database& a, const Database& b) {
    return a.d_ == b.d_ && a.rows_ == b.rows_;
  }

  /// Total payload size n*d in bits (what RELEASE-DB costs).
  std::size_t PayloadBits() const { return rows_.size() * d_; }

 private:
  std::size_t d_ = 0;
  std::vector<util::BitVector> rows_;
};

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_DATABASE_H_
