// The four itemset sketching problems (Definitions 1-4) as interfaces,
// and the registry that makes every algorithm a first-class citizen.
//
// A sketch is a pair (S, Q): a randomized sketching algorithm S producing
// a bit-string summary, and a deterministic query procedure Q. We model S
// as SketchAlgorithm::Build (which serializes through util::BitWriter so
// Definition 5's |S| is an exact bit count) and Q as the Load +
// IsFrequent / EstimateFrequency pair. The "for all" vs "for each"
// distinction is a property of the *guarantee*, carried in SketchParams,
// because algorithms like SUBSAMPLE pick their size from it (Lemma 9).
//
// Public API layering (outermost first):
//   ifsketch::Engine (engine.h)     -- one object that builds, saves,
//                                      reopens and queries any sketch.
//   core::SketchRegistry (registry.h) -- algorithm name -> factory; lets a
//                                      serialized summary be resolved back
//                                      to its (S, Q) pair by name alone.
//   core::SketchAlgorithm (below)   -- the per-algorithm (S, Q) contract.
//
// Most callers should go through Engine:
//   auto eng = ifsketch::Engine::Build(db, "SUBSAMPLE", params, rng);
//   eng.Save("out.sk");
//   auto again = ifsketch::Engine::Open("out.sk");  // algorithm resolved
//   double f = again->estimate(itemset);            // from the file itself
//
// Query-side views answer one itemset at a time (EstimateFrequency /
// IsFrequent) or in bulk (EstimateMany / AreFrequent). The batched entry
// points are semantically identical to a loop of scalar calls -- answers
// are bit-for-bit the same -- but concrete estimators override them to
// amortize shared work (e.g. transposing a sample into a column store
// once at load time and answering each query as a popcount of ANDed
// columns).
//
// Threading contract: loaded views must be immutable -- every query
// method is const and safe to call concurrently, with no lazily-built
// mutable caches. The default EstimateMany/AreFrequent (and the
// column-store overrides) fan batches out across
// util::ThreadPool::Default(); each query writes only its own answer
// slot, so batched answers stay bit-identical to the scalar loop at any
// thread count. Implementations of EstimateFrequency/IsFrequent
// therefore must be safe to call from multiple threads at once.
#ifndef IFSKETCH_CORE_SKETCH_H_
#define IFSKETCH_CORE_SKETCH_H_

#include <memory>
#include <string>
#include <vector>

#include "core/column_store.h"
#include "core/database.h"
#include "core/itemset.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace ifsketch::core {

/// Which quantifier the accuracy guarantee uses (§1.3).
enum class Scope {
  kForAll,   ///< With prob. 1-delta, correct for ALL k-itemsets at once.
  kForEach,  ///< For each single k-itemset, correct with prob. 1-delta.
};

/// Whether the query returns a threshold bit or an approximate frequency.
enum class Answer {
  kIndicator,  ///< Definition 1/3: 1 if f_T > eps, 0 if f_T < eps/2.
  kEstimator,  ///< Definition 2/4: |answer - f_T| <= eps.
};

const char* ToString(Scope scope);
const char* ToString(Answer answer);

/// The (k, eps, delta) triple plus the guarantee flavor.
struct SketchParams {
  std::size_t k = 1;      ///< Query itemset cardinality.
  double eps = 0.1;       ///< Precision / threshold parameter.
  double delta = 0.05;    ///< Failure probability.
  Scope scope = Scope::kForAll;
  Answer answer = Answer::kEstimator;
};

/// Whether the parameters are usable: k >= 1, eps in (0, 1], delta in
/// (0, 1), all finite. Shared by the writers and readers of the sketch
/// file format so nothing serializable is unloadable and vice versa.
bool ValidSketchParams(const SketchParams& params);

/// Query-side view of an estimator summary (Definitions 2 and 4).
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Q(S, T): an approximation of f_T(D) in [0, 1].
  virtual double EstimateFrequency(const Itemset& t) const = 0;

  /// Batched Q: answers every query in `ts`, writing answers[i] for ts[i].
  /// Must return exactly the values EstimateFrequency would, query by
  /// query; overrides only share work, never change answers. The default
  /// is the scalar loop.
  virtual void EstimateMany(const std::vector<Itemset>& ts,
                            std::vector<double>* answers) const;
};

/// Query-side view of an indicator summary (Definitions 1 and 3).
class FrequencyIndicator {
 public:
  virtual ~FrequencyIndicator() = default;

  /// Q(S, T): true asserts f_T > eps/2; false asserts f_T <= eps.
  virtual bool IsFrequent(const Itemset& t) const = 0;

  /// Batched Q: answers[i] = IsFrequent(ts[i]), with the same
  /// answers-identical contract as FrequencyEstimator::EstimateMany.
  virtual void AreFrequent(const std::vector<Itemset>& ts,
                           std::vector<bool>* answers) const;
};

/// Adapts an estimator into an indicator by thresholding at 3eps/4
/// (an estimator with error eps/4 yields a valid indicator at eps).
class ThresholdIndicator : public FrequencyIndicator {
 public:
  ThresholdIndicator(std::unique_ptr<FrequencyEstimator> estimator,
                     double threshold)
      : estimator_(std::move(estimator)), threshold_(threshold) {}

  bool IsFrequent(const Itemset& t) const override {
    return estimator_->EstimateFrequency(t) >= threshold_;
  }

  /// Forwards to the wrapped estimator's batched path, then thresholds.
  void AreFrequent(const std::vector<Itemset>& ts,
                   std::vector<bool>* answers) const override;

 private:
  std::unique_ptr<FrequencyEstimator> estimator_;
  double threshold_;
};

/// A sketching algorithm: the pair (S, Q) of §1.3.
///
/// Build() is the randomized S; LoadEstimator()/LoadIndicator() are the
/// deterministic Q, reconstructing a queryable view purely from the
/// summary bits plus the public parameters (params, d, n).
class SketchAlgorithm {
 public:
  virtual ~SketchAlgorithm() = default;

  /// Human-readable algorithm name ("RELEASE-DB", "SUBSAMPLE", ...).
  /// Also the registry key: SketchRegistry::Create(name()) must rebuild
  /// an equivalent algorithm for every registered implementation.
  virtual std::string name() const = 0;

  /// S(D, k, eps, delta): serializes a summary of `db`.
  virtual util::BitVector Build(const Database& db, const SketchParams& params,
                                util::Rng& rng) const = 0;

  /// Deserializes an estimator view. `d`/`n` are the public database shape
  /// (not secret; Definition 5 fixes them when defining |S|).
  virtual std::unique_ptr<FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const SketchParams& params,
      std::size_t d, std::size_t n) const = 0;

  /// Deserializes an indicator view (by default thresholds the estimator).
  virtual std::unique_ptr<FrequencyIndicator> LoadIndicator(
      const util::BitVector& summary, const SketchParams& params,
      std::size_t d, std::size_t n) const;

  /// Predicted summary size in bits for a database of shape (n, d),
  /// i.e. the algorithm's side of the Theorem 12 envelope. Implementations
  /// must match what Build() actually emits.
  virtual std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                        const SketchParams& params) const = 0;

  /// True when Build()'s payload is one row-major sample of width d --
  /// summary.size()/d rows of d bits, nothing else -- so that transposing
  /// the summary at width d yields exactly the columns the loaders query.
  /// The sketch-file layer uses this to frame a 64-byte-aligned
  /// column-major arena section next to the payload, and the mapped load
  /// path to hand those columns to LoadEstimatorFromColumns without
  /// copying. Algorithms whose payload carries anything besides the raw
  /// sample rows (header fields, concatenated inner summaries, answer
  /// tables) must leave this false.
  virtual bool HasRowMajorPayload(const SketchParams& params) const {
    (void)params;
    return false;
  }

  /// LoadEstimator's zero-copy sibling: builds the estimator view from
  /// an already-transposed column store over the summary (borrowed from
  /// an mmap'd arena section, or owned). Called only when
  /// HasRowMajorPayload(params) is true; `columns` holds exactly the
  /// transpose of `summary` at width d, and answers must be
  /// bit-identical to LoadEstimator(summary, ...). The default ignores
  /// the columns and defers to LoadEstimator, which is always correct --
  /// override alongside HasRowMajorPayload to actually skip the
  /// transpose.
  virtual std::unique_ptr<FrequencyEstimator> LoadEstimatorFromColumns(
      ColumnStore columns, const util::BitVector& summary,
      const SketchParams& params, std::size_t d, std::size_t n) const {
    (void)columns;
    return LoadEstimator(summary, params, d, n);
  }

  /// LoadIndicator's zero-copy sibling, same contract as
  /// LoadEstimatorFromColumns.
  virtual std::unique_ptr<FrequencyIndicator> LoadIndicatorFromColumns(
      ColumnStore columns, const util::BitVector& summary,
      const SketchParams& params, std::size_t d, std::size_t n) const {
    (void)columns;
    return LoadIndicator(summary, params, d, n);
  }

  /// Whether the query views can answer itemsets of cardinality `size`.
  /// The definitions only promise answers for k-itemsets; sample-based
  /// summaries answer any size (the sample is a database), but
  /// RELEASE-ANSWERS stores exactly the C(d,k) size-k answers and cannot
  /// answer anything else. Callers that query off-k sizes (e.g. Apriori
  /// levels 1..k) must check this first.
  virtual bool SupportsQuerySize(std::size_t size,
                                 const SketchParams& params) const {
    (void)size;
    (void)params;
    return true;
  }
};

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_SKETCH_H_
