// Algorithm name -> factory registry.
//
// A serialized summary (sketch/sketch_file.h) carries its producer's
// name() string; this registry is the inverse map, turning that string
// back into a live SketchAlgorithm so any valid IFSK file can be reopened
// and queried without the caller hardcoding a concrete class. Two kinds
// of entries exist:
//   - plain algorithms, keyed by exact name ("SUBSAMPLE", "RELEASE-DB");
//   - combinators, keyed by the prefix of a "NAME(INNER)" composite
//     ("MEDIAN-BOOST(SUBSAMPLE)"): the inner name is resolved recursively
//     and handed to the combinator's factory.
//
// The process-wide instance is SketchRegistry::Default(). The sketch
// layer populates it with the built-in algorithms via
// sketch::RegisterBuiltinAlgorithms() (see sketch/builtin_algorithms.h);
// callers can add their own entries next to the built-ins.
#ifndef IFSKETCH_CORE_REGISTRY_H_
#define IFSKETCH_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sketch.h"

namespace ifsketch::core {

/// Maps algorithm names to factories; resolves "NAME(INNER)" composites.
class SketchRegistry {
 public:
  /// Builds a fresh instance of a plain algorithm.
  using Factory = std::function<std::unique_ptr<SketchAlgorithm>()>;

  /// Wraps an already-resolved inner algorithm (e.g. MEDIAN-BOOST).
  using Combinator = std::function<std::unique_ptr<SketchAlgorithm>(
      std::unique_ptr<SketchAlgorithm> inner)>;

  /// Registers a plain algorithm. `factory().name()` must equal `name`
  /// so files written by the instance resolve back to this entry.
  /// Re-registering a name replaces the previous entry.
  void Register(const std::string& name, Factory factory);

  /// Registers a combinator answering for every "name(INNER)" composite.
  void RegisterCombinator(const std::string& name, Combinator combinator);

  /// Whether Create(name) would succeed.
  bool Contains(const std::string& name) const;

  /// Instantiates the algorithm registered under `name`, resolving
  /// "NAME(INNER)" recursively. Returns nullptr for unknown or malformed
  /// names -- callers own the error report (see Engine::Open).
  std::unique_ptr<SketchAlgorithm> Create(const std::string& name) const;

  /// Registered names, sorted; combinators are listed as "NAME(...)".
  std::vector<std::string> Names() const;

  /// The process-wide registry.
  static SketchRegistry& Default();

 private:
  std::map<std::string, Factory> factories_;
  std::map<std::string, Combinator> combinators_;
};

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_REGISTRY_H_
