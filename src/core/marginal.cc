#include "core/marginal.h"

#include <bit>
#include <cmath>

#include "util/check.h"

namespace ifsketch::core {

double MarginalTable::Total() const {
  double acc = 0.0;
  for (double c : cells) acc += c;
  return acc;
}

double MarginalTable::MaxCellDiff(const MarginalTable& other) const {
  IFSKETCH_CHECK_EQ(cells.size(), other.cells.size());
  double m = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    m = std::max(m, std::fabs(cells[i] - other.cells[i]));
  }
  return m;
}

MarginalTable ComputeMarginal(const Database& db,
                              const std::vector<std::size_t>& attributes) {
  const std::size_t k = attributes.size();
  IFSKETCH_CHECK_LE(k, 24u);
  MarginalTable table;
  table.attributes = attributes;
  table.cells.assign(std::size_t{1} << k, 0.0);
  if (db.num_rows() == 0) return table;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    std::size_t pattern = 0;
    for (std::size_t bit = 0; bit < k; ++bit) {
      if (db.Get(i, attributes[bit])) pattern |= std::size_t{1} << bit;
    }
    table.cells[pattern] += 1.0;
  }
  for (double& c : table.cells) {
    c /= static_cast<double>(db.num_rows());
  }
  return table;
}

MarginalTable MarginalFromFrequencies(
    std::size_t d, const std::vector<std::size_t>& attributes,
    const FrequencyOracle& oracle) {
  const std::size_t k = attributes.size();
  IFSKETCH_CHECK_LE(k, 20u);
  MarginalTable table;
  table.attributes = attributes;
  table.cells.assign(std::size_t{1} << k, 0.0);

  // Precompute f_S for every subset S of A (indexed by subset mask).
  std::vector<double> f(std::size_t{1} << k);
  for (std::size_t mask = 0; mask < f.size(); ++mask) {
    Itemset t(d);
    for (std::size_t bit = 0; bit < k; ++bit) {
      if ((mask >> bit) & 1u) t.Add(attributes[bit]);
    }
    f[mask] = mask == 0 ? 1.0 : oracle(t);  // empty itemset: frequency 1
  }

  // Cell b = sum over T subset of Zeros(b): (-1)^{|T|} f[Ones(b) | T].
  const std::size_t full = f.size() - 1;
  for (std::size_t b = 0; b <= full; ++b) {
    const std::size_t zeros = full & ~b;
    double cell = 0.0;
    // Iterate submasks of `zeros` (standard submask enumeration).
    std::size_t t = zeros;
    while (true) {
      const int parity = std::popcount(t) & 1;
      cell += (parity ? -1.0 : 1.0) * f[b | t];
      if (t == 0) break;
      t = (t - 1) & zeros;
    }
    table.cells[b] = cell;
  }
  return table;
}

}  // namespace ifsketch::core
