// Validity checking for sketches against Definitions 1-4.
//
// Given the original database (ground truth) and a loaded query view,
// these helpers verify the accuracy contract over either every k-itemset
// (exhaustive; for small C(d,k)) or a random sample of k-itemsets. The
// experiment harnesses use them to measure empirical failure rates.
#ifndef IFSKETCH_CORE_VALIDATE_H_
#define IFSKETCH_CORE_VALIDATE_H_

#include <cstddef>
#include <vector>

#include "core/database.h"
#include "core/sketch.h"
#include "util/random.h"

namespace ifsketch::core {

/// Outcome of checking one query view against ground truth.
struct ValidationReport {
  std::size_t itemsets_checked = 0;
  std::size_t violations = 0;       ///< Queries breaking the contract.
  double max_abs_error = 0.0;       ///< Estimator only.
  double mean_abs_error = 0.0;      ///< Estimator only.
  bool valid() const { return violations == 0; }
};

/// Checks Definition 1/3 semantics: every k-itemset with f_T > eps must
/// answer 1 and every one with f_T < eps/2 must answer 0 (the gap region
/// is unconstrained). Exhaustive over all C(d,k) itemsets.
ValidationReport ValidateIndicatorExhaustive(const Database& db,
                                             const FrequencyIndicator& q,
                                             std::size_t k, double eps);

/// Same contract checked on `count` uniformly random k-itemsets.
ValidationReport ValidateIndicatorSampled(const Database& db,
                                          const FrequencyIndicator& q,
                                          std::size_t k, double eps,
                                          std::size_t count, util::Rng& rng);

/// Checks Definition 2/4 semantics: |answer - f_T| <= eps for every
/// k-itemset. Exhaustive over all C(d,k) itemsets.
ValidationReport ValidateEstimatorExhaustive(const Database& db,
                                             const FrequencyEstimator& q,
                                             std::size_t k, double eps);

/// Same contract checked on `count` uniformly random k-itemsets.
ValidationReport ValidateEstimatorSampled(const Database& db,
                                          const FrequencyEstimator& q,
                                          std::size_t k, double eps,
                                          std::size_t count, util::Rng& rng);

/// A uniformly random k-itemset over universe d.
Itemset RandomItemset(std::size_t d, std::size_t k, util::Rng& rng);

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_VALIDATE_H_
