// Column-oriented query acceleration.
//
// Database stores rows; answering f_T scans all n rows and tests
// containment. For query-heavy workloads (validators, miners, the
// reconstruction decoders) the transposed layout is much faster: keep
// one n-bit column per attribute and compute support as the popcount of
// the word-parallel AND of T's columns -- O(n/64 * |T|) instead of
// O(n * d/64).
//
// SupportCounts is the hot path behind every batched sketch query
// (EstimateMany / AreFrequent / Apriori levels). It layers three
// optimizations on the naive per-query loop, none of which changes a
// single count:
//   1. Fan-out: the batch is split into contiguous chunks run on
//      util::ThreadPool::Default(); each query writes only its own
//      result slot, so answers are deterministic at any thread count.
//   2. Fused kernels: an isolated q-attribute query is answered by
//      util::BitVector::AndCountMany -- one pass over the column words,
//      popcounting while ANDing, no materialized accumulator. All the
//      word-level work (Count / AndCount / AndCountMany / the prefix
//      &=) runs on the runtime-dispatched SIMD tier in util/kernels.h,
//      so SupportCounts inherits AVX2/AVX-512 popcount for free, with
//      counts bit-identical at every tier.
//   3. Prefix sharing: consecutive queries that agree on all but their
//      last attribute (exactly how the Apriori driver emits candidate
//      levels) reuse one materialized (q-1)-prefix accumulator, so a
//      run of siblings costs ~one column AND each instead of q-1.
//
// All methods are const and safe to call concurrently once the store is
// constructed.
#ifndef IFSKETCH_CORE_COLUMN_STORE_H_
#define IFSKETCH_CORE_COLUMN_STORE_H_

#include <vector>

#include "core/database.h"

namespace ifsketch::core {

/// The Apriori sibling relation: true when `a` and `b` have the same
/// cardinality and agree on every attribute but their last, so they can
/// share one (|a|-1)-prefix AND accumulator. Both vectors must be
/// ascending attribute lists (Itemset::Attributes() order).
inline bool SharesAprioriPrefix(const std::vector<std::size_t>& a,
                                const std::vector<std::size_t>& b) {
  if (a.size() != b.size() || a.empty()) return false;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Immutable column-major view of a database, for fast frequency queries.
class ColumnStore {
 public:
  /// Transposes `db` in one pass over its row words (O(n*d) bit work,
  /// unavoidable when starting from rows).
  explicit ColumnStore(const Database& db);

  /// Adopts already-transposed columns without copying: O(d) moves.
  /// Every column must be `n` bits.
  ColumnStore(std::size_t n, std::vector<util::BitVector> columns);

  /// Decodes a row-major bit string (bits.size() / d rows of d bits --
  /// the payload layout of RELEASE-DB and the sample summaries)
  /// straight into columns, skipping the intermediate row Database a
  /// decode-then-transpose would materialize. Preconditions: d > 0,
  /// bits.size() divisible by d.
  static ColumnStore FromRowMajorBits(const util::BitVector& bits,
                                      std::size_t d);

  /// View mode: borrows `d` already-transposed columns laid out at
  /// `stride_words`-word intervals starting at `base` (column j's words
  /// are base[j*stride .. j*stride + ceil(rows/64))), copying nothing --
  /// the zero-copy path over an mmap'd arena sketch image
  /// (sketch/sketch_view.h). The storage must outlive the store, and
  /// each column's bits beyond `rows` (tail bits and padding words up to
  /// the stride) must be zero. Queries are bit-identical to an owning
  /// store of the same columns; the caller keeps the mapping alive.
  static ColumnStore FromColumnWords(const std::uint64_t* base,
                                     std::size_t rows, std::size_t d,
                                     std::size_t stride_words);

  std::size_t num_rows() const { return n_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Rows containing T, by ANDing T's columns.
  std::size_t SupportCount(const Itemset& t) const;

  /// Batched SupportCount: counts[i] = SupportCount(ts[i]), bit-identical
  /// to the scalar loop. Runs on the default thread pool and shares
  /// prefix accumulators across adjacent queries (see file comment).
  void SupportCounts(const std::vector<Itemset>& ts,
                     std::vector<std::size_t>* counts) const;

  /// f_T(D), identical to Database::Frequency on the source data.
  double Frequency(const Itemset& t) const;

  /// The n-bit column of attribute j.
  const util::BitVector& Column(std::size_t j) const {
    return columns_[j];
  }

 private:
  // Serial kernel behind SupportCounts: answers queries [first, last)
  // into counts[first..last). Chunk-local state only, so chunks can run
  // concurrently.
  void CountRange(const std::vector<Itemset>& ts, std::size_t first,
                  std::size_t last, std::size_t* counts) const;

  std::size_t n_;
  std::vector<util::BitVector> columns_;
};

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_COLUMN_STORE_H_
