// Column-oriented query acceleration.
//
// Database stores rows; answering f_T scans all n rows and tests
// containment. For query-heavy workloads (validators, miners, the
// reconstruction decoders) the transposed layout is much faster: keep
// one n-bit column per attribute and compute support as the popcount of
// the word-parallel AND of T's columns -- O(n/64 * |T|) instead of
// O(n * d/64).
#ifndef IFSKETCH_CORE_COLUMN_STORE_H_
#define IFSKETCH_CORE_COLUMN_STORE_H_

#include <vector>

#include "core/database.h"

namespace ifsketch::core {

/// Immutable column-major copy of a database, for fast frequency queries.
class ColumnStore {
 public:
  /// Transposes `db` (O(n*d)).
  explicit ColumnStore(const Database& db);

  std::size_t num_rows() const { return n_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Rows containing T, by ANDing T's columns.
  std::size_t SupportCount(const Itemset& t) const;

  /// Batched SupportCount: counts[i] = SupportCount(ts[i]). One AND
  /// accumulator is reused across the whole batch, so per-query
  /// allocations vanish and 1- and 2-attribute queries reduce to plain
  /// popcounts of the stored columns.
  void SupportCounts(const std::vector<Itemset>& ts,
                     std::vector<std::size_t>* counts) const;

  /// f_T(D), identical to Database::Frequency on the source data.
  double Frequency(const Itemset& t) const;

  /// The n-bit column of attribute j.
  const util::BitVector& Column(std::size_t j) const {
    return columns_[j];
  }

 private:
  std::size_t n_;
  std::vector<util::BitVector> columns_;
};

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_COLUMN_STORE_H_
