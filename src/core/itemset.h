// Itemsets (subsets of the attribute universe [d]).
//
// Following the paper's notation (§1.3), an itemset T ⊆ [d] is used
// interchangeably with its indicator vector in {0,1}^d. A row "contains" T
// when it has a 1 in every column of T.
#ifndef IFSKETCH_CORE_ITEMSET_H_
#define IFSKETCH_CORE_ITEMSET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/bitvector.h"

namespace ifsketch::core {

/// A subset of attributes over a universe of `d` columns.
class Itemset {
 public:
  Itemset() = default;

  /// The empty itemset over universe size d (contained in every row).
  explicit Itemset(std::size_t d) : indicator_(d) {}

  /// Itemset with the given attribute indices set. Indices must be < d.
  Itemset(std::size_t d, const std::vector<std::size_t>& attributes);

  /// Wraps an existing indicator vector.
  static Itemset FromIndicator(util::BitVector indicator);

  /// Universe size d.
  std::size_t universe() const { return indicator_.size(); }

  /// Cardinality |T|.
  std::size_t size() const { return indicator_.Count(); }

  /// Whether attribute i is in the set.
  bool Has(std::size_t i) const { return indicator_.Get(i); }

  /// Adds attribute i.
  void Add(std::size_t i) { indicator_.Set(i, true); }

  /// Ascending attribute indices.
  std::vector<std::size_t> Attributes() const { return indicator_.SetBits(); }

  /// The indicator vector in {0,1}^d.
  const util::BitVector& indicator() const { return indicator_; }

  /// Set union. Preconditions: same universe.
  Itemset Union(const Itemset& other) const;

  /// This itemset re-embedded into a universe of `new_d` attributes with
  /// every index shifted by `offset` (used by the amplification
  /// constructions, e.g. T'_i = {j + 2d : j in T_i} in Theorem 15).
  Itemset ShiftInto(std::size_t new_d, std::size_t offset) const;

  /// True if the row (a d-bit vector) contains this itemset.
  bool ContainedIn(const util::BitVector& row) const {
    return row.Contains(indicator_);
  }

  friend bool operator==(const Itemset& a, const Itemset& b) {
    return a.indicator_ == b.indicator_;
  }

  /// Rendering like "{2,5,9}/d=16" (debug/test helper).
  std::string ToString() const;

 private:
  util::BitVector indicator_;
};

}  // namespace ifsketch::core

#endif  // IFSKETCH_CORE_ITEMSET_H_
