#include "core/validate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::core {
namespace {

void CheckIndicatorOne(const Database& db, const FrequencyIndicator& q,
                       double eps, const Itemset& t, ValidationReport& r) {
  const double f = db.Frequency(t);
  ++r.itemsets_checked;
  const bool answer = q.IsFrequent(t);
  if (f > eps && !answer) ++r.violations;
  if (f < eps / 2 && answer) ++r.violations;
}

void CheckEstimatorOne(const Database& db, const FrequencyEstimator& q,
                       double eps, const Itemset& t, ValidationReport& r) {
  const double f = db.Frequency(t);
  const double err = std::fabs(q.EstimateFrequency(t) - f);
  ++r.itemsets_checked;
  r.max_abs_error = std::max(r.max_abs_error, err);
  r.mean_abs_error += err;
  if (err > eps) ++r.violations;
}

void FinishMean(ValidationReport& r) {
  if (r.itemsets_checked > 0) {
    r.mean_abs_error /= static_cast<double>(r.itemsets_checked);
  }
}

}  // namespace

ValidationReport ValidateIndicatorExhaustive(const Database& db,
                                             const FrequencyIndicator& q,
                                             std::size_t k, double eps) {
  ValidationReport r;
  const std::size_t d = db.num_columns();
  for (const auto& attrs : util::AllSubsets(d, k)) {
    CheckIndicatorOne(db, q, eps, Itemset(d, attrs), r);
  }
  return r;
}

ValidationReport ValidateIndicatorSampled(const Database& db,
                                          const FrequencyIndicator& q,
                                          std::size_t k, double eps,
                                          std::size_t count, util::Rng& rng) {
  ValidationReport r;
  for (std::size_t i = 0; i < count; ++i) {
    CheckIndicatorOne(db, q, eps, RandomItemset(db.num_columns(), k, rng), r);
  }
  return r;
}

ValidationReport ValidateEstimatorExhaustive(const Database& db,
                                             const FrequencyEstimator& q,
                                             std::size_t k, double eps) {
  ValidationReport r;
  const std::size_t d = db.num_columns();
  for (const auto& attrs : util::AllSubsets(d, k)) {
    CheckEstimatorOne(db, q, eps, Itemset(d, attrs), r);
  }
  FinishMean(r);
  return r;
}

ValidationReport ValidateEstimatorSampled(const Database& db,
                                          const FrequencyEstimator& q,
                                          std::size_t k, double eps,
                                          std::size_t count, util::Rng& rng) {
  ValidationReport r;
  for (std::size_t i = 0; i < count; ++i) {
    CheckEstimatorOne(db, q, eps, RandomItemset(db.num_columns(), k, rng), r);
  }
  FinishMean(r);
  return r;
}

Itemset RandomItemset(std::size_t d, std::size_t k, util::Rng& rng) {
  IFSKETCH_CHECK_LE(k, d);
  return Itemset(d, rng.SampleWithoutReplacement(d, k));
}

}  // namespace ifsketch::core
