// The Theorem 15 construction: tight Omega(kd log(d/k)/eps) information
// content of For-All indicator sketches.
//
// Constant-eps stage (eps = 1/50): rows D(i) = (x_i, y_i) pair the Fact 18
// shattered strings x_i with arbitrary payload strings y_i. For a pattern
// s and payload column j, the itemset T_s + {d+j} has frequency <s,t>/v
// where t is column j of the payload, so indicator answers are threshold
// queries on inner products and Lemma 19 lets a consistency decoder
// recover >= 96% of each column. The payload is wrapped in the
// ConcatenatedCode so those 96% become exact recovery of Omega(kd
// log(d/k)) bits.
//
// Sub-constant-eps stage: m = 1/(50 eps) constant-eps databases are
// tagged with distinct ((k-1)/2)-itemsets and stacked (3d columns); each
// outer k-itemset query T* + shifted-tag_i satisfies
// f(D) = f_inner(D_i)/m, so one For-All sketch at eps answers all m inner
// instances at 1/50 -- multiplying the information content by m.
#ifndef IFSKETCH_LOWERBOUND_THM15_H_
#define IFSKETCH_LOWERBOUND_THM15_H_

#include <cstddef>
#include <functional>

#include "core/database.h"
#include "core/sketch.h"
#include "lowerbound/shattered_set.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace ifsketch::lowerbound {

/// Tuning for the Lemma 19 consistency decoder.
struct ConsistencyDecoderOptions {
  /// Random probe patterns per column in addition to the singletons.
  std::size_t random_probes = 96;
  /// Density (set size) of random probes as a multiple of v/50;
  /// sizes near the threshold band are the informative ones.
  double probe_density_scale = 4.0;
};

/// The constant-eps (eps = 1/50) instance over 2d columns and v rows.
class Thm15Instance {
 public:
  /// Requires k >= 2 and d >= 2*(k-1). Uses ShatteredSet(d, k-1).
  Thm15Instance(std::size_t d, std::size_t k);

  static constexpr double kEps = 1.0 / 50.0;

  std::size_t d() const { return d_; }
  std::size_t k() const { return k_; }

  /// Number of rows v = (k-1) * log2(block) (Fact 18).
  std::size_t v() const { return shattered_.v(); }

  /// Payload capacity: v rows of d bits each = Omega(kd log(d/k)).
  std::size_t PayloadBits() const { return v() * d_; }

  /// Builds the v x 2d database with row i = (x_i, payload row i).
  core::Database BuildDatabase(const util::BitVector& payload) const;

  /// The k-itemset T_{s,j} = T_s + {d + j} over the 2d columns.
  core::Itemset ProbeItemset(const util::BitVector& s, std::size_t j) const;

  /// Ground truth: f_{T_{s,j}}(D) = <s, column j of payload> / v.
  double TrueFrequency(const util::BitVector& payload,
                       const util::BitVector& s, std::size_t j) const;

  /// Recovers the payload from a For-All indicator view built at kEps.
  /// Per column runs the Lemma 19 consistency decoder (exact singleton
  /// reads when 1/v > eps; paired-probe voting otherwise -- see
  /// DecodeColumnByConsistency). The Theorem's claim is that >= 96% of
  /// bits come back correct.
  util::BitVector ReconstructPayload(const core::FrequencyIndicator& q,
                                     const ConsistencyDecoderOptions& options,
                                     util::Rng& rng) const;

  const ShatteredSet& shattered() const { return shattered_; }

 private:
  std::size_t d_;
  std::size_t k_;
  ShatteredSet shattered_;
};

/// The amplified instance: m stacked, tagged copies over 3d columns.
class Thm15Amplified {
 public:
  /// Requires k odd, k >= 3, d >= 2*((k+1)/2 - 1), and
  /// m <= C(d, (k-1)/2) distinct tags. The inner instances use itemset
  /// size (k+1)/2 so the outer queries have size exactly k.
  Thm15Amplified(std::size_t d, std::size_t k, std::size_t m);

  std::size_t d() const { return d_; }
  std::size_t k() const { return k_; }
  std::size_t m() const { return m_; }

  /// The sub-constant threshold eps = 1/(50 m).
  double OuterEps() const {
    return Thm15Instance::kEps / static_cast<double>(m_);
  }

  /// Total payload: m * inner payload.
  std::size_t PayloadBits() const { return m_ * inner_.PayloadBits(); }

  /// Rows: m * v; columns: 3d.
  core::Database BuildDatabase(const util::BitVector& payload) const;

  /// Outer probe for inner probe (s, j) of copy i:
  /// T_{s,j} + shifted tag_i, a k-itemset over 3d columns.
  core::Itemset OuterProbe(std::size_t copy, const util::BitVector& s,
                           std::size_t j) const;

  /// Recovers all m inner payloads from one outer For-All indicator view
  /// built at OuterEps().
  util::BitVector ReconstructPayload(const core::FrequencyIndicator& q,
                                     const ConsistencyDecoderOptions& options,
                                     util::Rng& rng) const;

  const Thm15Instance& inner() const { return inner_; }

 private:
  /// The i-th tag: a ((k-1)/2)-itemset over [d], colex rank i.
  core::Itemset Tag(std::size_t copy) const;

  std::size_t d_;
  std::size_t k_;
  std::size_t m_;
  Thm15Instance inner_;
};

/// Shared internals, exposed for tests: the Lemma 19 consistency decoder
/// run on externally supplied indicator answers.
///
/// `answer` is a callback mapping a probe pattern s (width v) to the
/// indicator bit b_s. Returns the decoded column t' (width v).
util::BitVector DecodeColumnByConsistency(
    std::size_t v, const std::function<bool(const util::BitVector&)>& answer,
    const ConsistencyDecoderOptions& options, util::Rng& rng);

}  // namespace ifsketch::lowerbound

#endif  // IFSKETCH_LOWERBOUND_THM15_H_
