#include "lowerbound/estimator_lb.h"

#include <cmath>

#include "linalg/products.h"
#include "linalg/svd.h"
#include "lp/l1fit.h"
#include "util/check.h"

namespace ifsketch::lowerbound {
namespace {

util::BitVector RoundToBits(const linalg::Vector& x) {
  util::BitVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out.Set(i, x[i] >= 0.5);
  return out;
}

}  // namespace

KrsuInstance::KrsuInstance(std::size_t d0, std::size_t k_prime,
                           std::size_t n, util::Rng& rng)
    : d0_(d0), k_prime_(k_prime), n_(n) {
  IFSKETCH_CHECK_GE(k_prime, 2u);
  IFSKETCH_CHECK_GE(d0, 1u);
  IFSKETCH_CHECK_GE(n, 1u);
  factors_.reserve(k_prime - 1);
  for (std::size_t f = 0; f + 1 < k_prime; ++f) {
    factors_.push_back(linalg::RandomBinaryMatrix(d0, n, rng));
  }
  a_ = linalg::HadamardProduct(factors_);

  // D0: row j concatenates column j of every factor.
  base_ = core::Database(n, (k_prime - 1) * d0);
  for (std::size_t f = 0; f < factors_.size(); ++f) {
    for (std::size_t a = 0; a < d0; ++a) {
      for (std::size_t j = 0; j < n; ++j) {
        if (factors_[f](a, j) != 0.0) base_.Set(j, f * d0 + a, true);
      }
    }
  }
}

std::size_t KrsuInstance::NumQueries() const { return a_.rows(); }

core::Database KrsuInstance::BuildDatabase(const util::BitVector& y) const {
  IFSKETCH_CHECK_EQ(y.size(), n_);
  std::vector<util::BitVector> rows;
  rows.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    util::BitVector suffix(1);
    suffix.Set(0, y.Get(j));
    rows.push_back(base_.Row(j).Concat(suffix));
  }
  return core::Database::FromRows(std::move(rows));
}

core::Itemset KrsuInstance::QueryItemset(std::size_t r) const {
  IFSKETCH_CHECK_LT(r, NumQueries());
  // Decompose r lexicographically (matching HadamardProduct's row order:
  // the first factor is the most significant digit).
  std::vector<std::size_t> attrs;
  attrs.reserve(k_prime_);
  std::size_t rem = r;
  std::vector<std::size_t> idx(factors_.size());
  for (std::size_t f = factors_.size(); f > 0; --f) {
    idx[f - 1] = rem % d0_;
    rem /= d0_;
  }
  for (std::size_t f = 0; f < factors_.size(); ++f) {
    attrs.push_back(f * d0_ + idx[f]);
  }
  attrs.push_back(d1() - 1);  // the secret column
  return core::Itemset(d1(), attrs);
}

util::BitVector KrsuInstance::ReconstructL1(
    const linalg::Vector& answers) const {
  IFSKETCH_CHECK_EQ(answers.size(), NumQueries());
  linalg::Vector target(answers.size());
  for (std::size_t r = 0; r < answers.size(); ++r) {
    target[r] = answers[r] * static_cast<double>(n_);
  }
  const auto fit = lp::L1RegressionBox(a_, target, 0.0, 1.0);
  IFSKETCH_CHECK(fit.has_value());  // box-constrained L1 is always feasible
  return RoundToBits(fit->x);
}

util::BitVector KrsuInstance::ReconstructL2(
    const linalg::Vector& answers) const {
  IFSKETCH_CHECK_EQ(answers.size(), NumQueries());
  linalg::Vector target(answers.size());
  for (std::size_t r = 0; r < answers.size(); ++r) {
    target[r] = answers[r] * static_cast<double>(n_);
  }
  return RoundToBits(linalg::LeastSquares(a_, target));
}

linalg::Vector Lemma21Decode(
    std::size_t v,
    const std::function<double(const util::BitVector&)>& estimate,
    std::size_t random_probes, util::Rng& rng) {
  // Probe family: all singletons plus random patterns of every density.
  std::vector<util::BitVector> probes;
  probes.reserve(v + random_probes);
  for (std::size_t i = 0; i < v; ++i) {
    util::BitVector s(v);
    s.Set(i, true);
    probes.push_back(std::move(s));
  }
  for (std::size_t p = 0; p < random_probes; ++p) {
    probes.push_back(rng.RandomBits(v));
  }
  // L1 fit: min || S z - v*fhat ||_1  over z in [0,1]^v, where row p of
  // S is the probe pattern. (Lemma 21 phrases this as finding any z
  // whose probe inner products all sit within eps of the estimates; the
  // L1 minimizer is such a vector whenever one exists and degrades
  // gracefully when a few estimates are bad.)
  linalg::Matrix s_mat(probes.size(), v);
  linalg::Vector target(probes.size());
  for (std::size_t p = 0; p < probes.size(); ++p) {
    for (std::size_t i = 0; i < v; ++i) {
      if (probes[p].Get(i)) s_mat(p, i) = 1.0;
    }
    target[p] = estimate(probes[p]) * static_cast<double>(v);
  }
  const auto fit = lp::L1RegressionBox(s_mat, target, 0.0, 1.0);
  IFSKETCH_CHECK(fit.has_value());
  return fit->x;
}

Thm16Amplified::Thm16Amplified(std::size_t d_shatter, std::size_t k,
                               std::size_t c, std::size_t d0, std::size_t n,
                               util::Rng& rng)
    : k_(k), c_(c), shattered_(d_shatter, k - c), krsu_(d0, c, n, rng) {
  IFSKETCH_CHECK_GE(c, 2u);
  IFSKETCH_CHECK_GT(k, c);
}

core::Database Thm16Amplified::BuildDatabase(
    const util::BitVector& payload) const {
  IFSKETCH_CHECK_EQ(payload.size(), PayloadBits());
  const std::size_t n = krsu_.n();
  std::vector<util::BitVector> rows;
  rows.reserve(v() * n);
  for (std::size_t i = 0; i < v(); ++i) {
    const core::Database di =
        krsu_.BuildDatabase(payload.Slice(i * n, n));
    for (std::size_t j = 0; j < n; ++j) {
      rows.push_back(shattered_.Row(i).Concat(di.Row(j)));
    }
  }
  return core::Database::FromRows(std::move(rows));
}

core::Itemset Thm16Amplified::OuterProbe(const util::BitVector& s,
                                         std::size_t r) const {
  const std::size_t total = shattered_.d() + krsu_.d1();
  core::Itemset t = shattered_.QueryFor(s).ShiftInto(total, 0);
  return t.Union(krsu_.QueryItemset(r).ShiftInto(total, shattered_.d()));
}

util::BitVector Thm16Amplified::ReconstructPayload(
    const core::FrequencyEstimator& q, std::size_t random_probes,
    util::Rng& rng) const {
  const std::size_t n = krsu_.n();
  const std::size_t queries = krsu_.NumQueries();
  // Per KRSU query r, recover z_r = (f_{T_r}(D_1), ..., f_{T_r}(D_v)).
  std::vector<linalg::Vector> z(queries);
  for (std::size_t r = 0; r < queries; ++r) {
    z[r] = Lemma21Decode(
        v(),
        [&](const util::BitVector& s) {
          return q.EstimateFrequency(OuterProbe(s, r));
        },
        random_probes, rng);
  }
  // Per copy i, decode the secret from its recovered answer vector.
  util::BitVector out(PayloadBits());
  for (std::size_t i = 0; i < v(); ++i) {
    linalg::Vector answers(queries);
    for (std::size_t r = 0; r < queries; ++r) answers[r] = z[r][i];
    const util::BitVector yi = krsu_.ReconstructL1(answers);
    for (std::size_t j = 0; j < n; ++j) out.Set(i * n + j, yi.Get(j));
  }
  return out;
}

}  // namespace ifsketch::lowerbound
