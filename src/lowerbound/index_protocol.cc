#include "lowerbound/index_protocol.h"

#include "util/check.h"

namespace ifsketch::lowerbound {

SketchIndexProtocol::SketchIndexProtocol(
    std::shared_ptr<const core::SketchAlgorithm> algorithm, std::size_t d,
    std::size_t k, std::size_t num_rows, std::size_t duplication)
    : algorithm_(std::move(algorithm)),
      instance_(d, k, num_rows),
      duplication_(duplication) {
  IFSKETCH_CHECK(algorithm_ != nullptr);
  params_.k = k;
  params_.eps = instance_.SketchEps();
  params_.delta = 0.05;
  params_.scope = core::Scope::kForEach;
  params_.answer = core::Answer::kIndicator;
}

std::size_t SketchIndexProtocol::universe() const {
  return instance_.PayloadBits();
}

util::BitVector SketchIndexProtocol::AliceMessage(
    const util::BitVector& x, std::uint64_t shared_seed) const {
  const core::Database db = instance_.BuildDatabase(x, duplication_);
  util::Rng rng(shared_seed);
  return algorithm_->Build(db, params_, rng);
}

bool SketchIndexProtocol::BobOutput(const util::BitVector& message,
                                    std::size_t y,
                                    std::uint64_t /*shared_seed*/) const {
  const std::size_t half = instance_.d() / 2;
  const std::size_t i = y / half;
  const std::size_t j = y % half;
  const auto indicator = algorithm_->LoadIndicator(
      message, params_, instance_.d(),
      instance_.num_rows() * duplication_);
  return indicator->IsFrequent(instance_.ProbeItemset(i, j));
}

}  // namespace ifsketch::lowerbound
