#include "lowerbound/thm15.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "lp/inequality.h"
#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::lowerbound {

util::BitVector DecodeColumnByConsistency(
    std::size_t v, const std::function<bool(const util::BitVector&)>& answer,
    const ConsistencyDecoderOptions& options, util::Rng& rng) {
  const double eps = Thm15Instance::kEps;
  const double vd = static_cast<double>(v);

  // Regime 1: 1/v > eps. A singleton probe's frequency is either 0
  // (forcing answer 0) or 1/v > eps (forcing answer 1), so the indicator
  // bit *is* the payload bit.
  if (1.0 / vd > eps) {
    util::BitVector out(v);
    for (std::size_t i = 0; i < v; ++i) {
      util::BitVector s(v);
      s.Set(i, true);
      out.Set(i, answer(s));
    }
    return out;
  }

  // Regime 2: v >= 50. Paired-probe consistency decoding. Lemma 19 says
  // any vector consistent with all 2^v threshold answers is within v/25
  // of the truth; querying all 2^v patterns is out of the question, so we
  // decode coordinate-by-coordinate with paired probes instead: for a
  // pad R not containing i, the answers b(R + {i}) and b(R) can differ
  // only if t_i = 1 (for any monotone threshold rule consistent with the
  // sketch's contract, adding a zero coordinate never moves <s, t>).
  // Pads are sized so that <R, t> straddles the decision threshold with
  // constant probability, and a majority vote absorbs the noise of
  // sampled (non-threshold but still valid) sketches.
  const std::size_t band = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::lround(options.probe_density_scale * eps * vd)));
  const std::size_t trials_per_bit =
      std::max<std::size_t>(16, options.random_probes);
  util::BitVector out(v);
  std::vector<std::size_t> others;
  others.reserve(v - 1);
  for (std::size_t i = 0; i < v; ++i) {
    others.clear();
    for (std::size_t j = 0; j < v; ++j) {
      if (j != i) others.push_back(j);
    }
    long score = 0;
    for (std::size_t trial = 0; trial < trials_per_bit; ++trial) {
      const std::size_t pad = 1 + rng.UniformInt(band);
      rng.Shuffle(others);
      util::BitVector without(v);
      for (std::size_t p = 0; p < pad && p < others.size(); ++p) {
        without.Set(others[p], true);
      }
      util::BitVector with = without;
      with.Set(i, true);
      const bool b_with = answer(with);
      const bool b_without = answer(without);
      if (b_with && !b_without) ++score;
      if (!b_with && b_without) --score;
    }
    out.Set(i, score >= static_cast<long>(trials_per_bit) / 10 + 1);
  }
  return out;
}

Thm15Instance::Thm15Instance(std::size_t d, std::size_t k)
    : d_(d), k_(k), shattered_(d, k - 1) {
  IFSKETCH_CHECK_GE(k, 2u);
}

core::Database Thm15Instance::BuildDatabase(
    const util::BitVector& payload) const {
  IFSKETCH_CHECK_EQ(payload.size(), PayloadBits());
  std::vector<util::BitVector> rows;
  rows.reserve(v());
  for (std::size_t i = 0; i < v(); ++i) {
    rows.push_back(
        shattered_.Row(i).Concat(payload.Slice(i * d_, d_)));
  }
  return core::Database::FromRows(std::move(rows));
}

core::Itemset Thm15Instance::ProbeItemset(const util::BitVector& s,
                                          std::size_t j) const {
  IFSKETCH_CHECK_LT(j, d_);
  core::Itemset t = shattered_.QueryFor(s).ShiftInto(2 * d_, 0);
  t.Add(d_ + j);
  return t;
}

double Thm15Instance::TrueFrequency(const util::BitVector& payload,
                                    const util::BitVector& s,
                                    std::size_t j) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < v(); ++i) {
    if (s.Get(i) && payload.Get(i * d_ + j)) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(v());
}

util::BitVector Thm15Instance::ReconstructPayload(
    const core::FrequencyIndicator& q,
    const ConsistencyDecoderOptions& options, util::Rng& rng) const {
  util::BitVector out(PayloadBits());
  for (std::size_t j = 0; j < d_; ++j) {
    const util::BitVector column = DecodeColumnByConsistency(
        v(),
        [&](const util::BitVector& s) {
          return q.IsFrequent(ProbeItemset(s, j));
        },
        options, rng);
    for (std::size_t i = 0; i < v(); ++i) {
      out.Set(i * d_ + j, column.Get(i));
    }
  }
  return out;
}

Thm15Amplified::Thm15Amplified(std::size_t d, std::size_t k, std::size_t m)
    : d_(d), k_(k), m_(m), inner_(d, (k + 1) / 2) {
  IFSKETCH_CHECK_GE(k, 3u);
  IFSKETCH_CHECK_EQ(k % 2, 1u);
  IFSKETCH_CHECK_GE(m, 1u);
  // Distinct tags require m <= C(d, (k-1)/2).
  IFSKETCH_CHECK_LE(m, util::Binomial(d, (k - 1) / 2));
}

core::Itemset Thm15Amplified::Tag(std::size_t copy) const {
  return core::Itemset(d_, util::UnrankSubset(copy, d_, (k_ - 1) / 2));
}

core::Database Thm15Amplified::BuildDatabase(
    const util::BitVector& payload) const {
  IFSKETCH_CHECK_EQ(payload.size(), PayloadBits());
  const std::size_t inner_bits = inner_.PayloadBits();
  std::vector<util::BitVector> rows;
  rows.reserve(m_ * inner_.v());
  for (std::size_t i = 0; i < m_; ++i) {
    const core::Database di =
        inner_.BuildDatabase(payload.Slice(i * inner_bits, inner_bits));
    const util::BitVector tag = Tag(i).indicator();
    for (std::size_t r = 0; r < di.num_rows(); ++r) {
      rows.push_back(di.Row(r).Concat(tag));
    }
  }
  return core::Database::FromRows(std::move(rows));
}

core::Itemset Thm15Amplified::OuterProbe(std::size_t copy,
                                         const util::BitVector& s,
                                         std::size_t j) const {
  IFSKETCH_CHECK_LT(copy, m_);
  const core::Itemset inner_probe = inner_.ProbeItemset(s, j);
  core::Itemset t = inner_probe.ShiftInto(3 * d_, 0);
  return t.Union(Tag(copy).ShiftInto(3 * d_, 2 * d_));
}

util::BitVector Thm15Amplified::ReconstructPayload(
    const core::FrequencyIndicator& q,
    const ConsistencyDecoderOptions& options, util::Rng& rng) const {
  const std::size_t inner_bits = inner_.PayloadBits();
  util::BitVector out(PayloadBits());
  for (std::size_t copy = 0; copy < m_; ++copy) {
    for (std::size_t j = 0; j < d_; ++j) {
      const util::BitVector column = DecodeColumnByConsistency(
          inner_.v(),
          [&](const util::BitVector& s) {
            return q.IsFrequent(OuterProbe(copy, s, j));
          },
          options, rng);
      for (std::size_t i = 0; i < inner_.v(); ++i) {
        out.Set(copy * inner_bits + i * d_ + j, column.Get(i));
      }
    }
  }
  return out;
}

}  // namespace ifsketch::lowerbound
