#include "lowerbound/thm13.h"

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::lowerbound {

Thm13Instance::Thm13Instance(std::size_t d, std::size_t k,
                             std::size_t num_rows)
    : d_(d), k_(k), num_rows_(num_rows) {
  IFSKETCH_CHECK_EQ(d % 2, 0u);
  IFSKETCH_CHECK_GE(k, 2u);
  IFSKETCH_CHECK_GE(num_rows, 1u);
  // The paper's regime condition 1/eps <= C(d/2, k-1): every row gets a
  // unique (k-1)-subset of the first half.
  IFSKETCH_CHECK_LE(num_rows, util::Binomial(d / 2, k - 1));
}

core::Database Thm13Instance::BuildDatabase(const util::BitVector& payload,
                                            std::size_t duplication) const {
  IFSKETCH_CHECK_EQ(payload.size(), PayloadBits());
  const std::size_t half = d_ / 2;
  core::Database db(num_rows_, d_);
  std::vector<std::size_t> subset(k_ - 1);
  for (std::size_t j = 0; j < k_ - 1; ++j) subset[j] = j;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    for (std::size_t a : subset) db.Set(i, a, true);
    for (std::size_t j = 0; j < half; ++j) {
      db.Set(i, half + j, payload.Get(PayloadIndex(i, j)));
    }
    util::NextSubset(subset, half);  // colex successor; unique per row
  }
  return duplication > 1 ? db.DuplicateRows(duplication) : db;
}

core::Itemset Thm13Instance::ProbeItemset(std::size_t i,
                                          std::size_t j) const {
  IFSKETCH_CHECK_LT(i, num_rows_);
  IFSKETCH_CHECK_LT(j, d_ / 2);
  std::vector<std::size_t> attrs =
      util::UnrankSubset(i, d_ / 2, k_ - 1);
  attrs.push_back(d_ / 2 + j);
  return core::Itemset(d_, attrs);
}

util::BitVector Thm13Instance::ReconstructPayload(
    const core::FrequencyIndicator& indicator) const {
  util::BitVector out(PayloadBits());
  for (std::size_t i = 0; i < num_rows_; ++i) {
    for (std::size_t j = 0; j < d_ / 2; ++j) {
      if (indicator.IsFrequent(ProbeItemset(i, j))) {
        out.Set(PayloadIndex(i, j), true);
      }
    }
  }
  return out;
}

}  // namespace ifsketch::lowerbound
