// The Theorem 13 / 14 hard instance.
//
// Databases with R = 1/eps distinct rows over d columns: the first d/2
// columns of row i hold the indicator of the i-th (k-1)-subset of [d/2]
// (colex order), the last d/2 columns are free payload bits. Each probe
// itemset T_{i,j} = subset_i + {d/2 + j} has frequency q*payload(i,j)
// where q = 1/R, so any valid indicator sketch built with threshold
// eps_q in (0, q) reveals payload(i,j) exactly: the construction encodes
// (d/2)*R arbitrary bits, forcing |S| = Omega(d/eps).
//
// (The paper states the bound with f_T >= eps exactly at the threshold;
// since Definition 1 leaves f_T == eps unconstrained, we query the sketch
// at eps_q = 3q/4 so that frequency q is strictly above eps_q and 0 is
// strictly below eps_q/2 -- same bound up to the constant.)
#ifndef IFSKETCH_LOWERBOUND_THM13_H_
#define IFSKETCH_LOWERBOUND_THM13_H_

#include "core/database.h"
#include "core/sketch.h"
#include "util/bitvector.h"

namespace ifsketch::lowerbound {

/// Builder/decoder for the Theorem 13 hard family.
class Thm13Instance {
 public:
  /// Requires: d even, k >= 2, num_rows <= C(d/2, k-1) (the paper's
  /// 1/eps <= C(d/2, k-1) condition), num_rows >= 1.
  Thm13Instance(std::size_t d, std::size_t k, std::size_t num_rows);

  std::size_t d() const { return d_; }
  std::size_t k() const { return k_; }

  /// Number of distinct rows R = 1/eps.
  std::size_t num_rows() const { return num_rows_; }

  /// Payload capacity in bits: (d/2) * R. This is the Omega(d/eps)
  /// information content.
  std::size_t PayloadBits() const { return (d_ / 2) * num_rows_; }

  /// The frequency of each present probe itemset: q = 1/R.
  double RowFrequency() const {
    return 1.0 / static_cast<double>(num_rows_);
  }

  /// The sketch threshold to query at: 3q/4 (see file comment).
  double SketchEps() const { return 0.75 * RowFrequency(); }

  /// Builds the database embedding `payload` (PayloadBits() bits), with
  /// each distinct row duplicated `duplication` times (n = R*duplication).
  core::Database BuildDatabase(const util::BitVector& payload,
                               std::size_t duplication = 1) const;

  /// The probe itemset T_{i,j} for payload bit (row i, free column j).
  /// |T_{i,j}| == k.
  core::Itemset ProbeItemset(std::size_t i, std::size_t j) const;

  /// Linear payload position of (i, j).
  std::size_t PayloadIndex(std::size_t i, std::size_t j) const {
    return i * (d_ / 2) + j;
  }

  /// Reads every payload bit back out of an indicator view.
  util::BitVector ReconstructPayload(
      const core::FrequencyIndicator& indicator) const;

 private:
  std::size_t d_;
  std::size_t k_;
  std::size_t num_rows_;
};

}  // namespace ifsketch::lowerbound

#endif  // IFSKETCH_LOWERBOUND_THM13_H_
