// The Theorem 14 reduction: a sketch yields a one-way INDEX protocol.
//
// Alice interprets her N = (d/2)*R bit input as the payload of a Theorem
// 13 database D_x, sketches it, and sends the summary. Bob maps his index
// y to the probe itemset T_y and outputs the indicator answer. Protocol
// success probability equals the sketch's per-query success probability,
// so Omega(N) communication for INDEX forces |S| = Omega(d/eps) even for
// For-Each sketches.
#ifndef IFSKETCH_LOWERBOUND_INDEX_PROTOCOL_H_
#define IFSKETCH_LOWERBOUND_INDEX_PROTOCOL_H_

#include <memory>

#include "comm/one_way.h"
#include "core/sketch.h"
#include "lowerbound/thm13.h"

namespace ifsketch::lowerbound {

/// INDEX protocol backed by a sketching algorithm on the Theorem 13
/// hard family.
class SketchIndexProtocol : public comm::OneWayIndexProtocol {
 public:
  /// The game universe is N = (d/2) * num_rows. `algorithm` is queried
  /// with For-Each indicator semantics at the instance's SketchEps().
  SketchIndexProtocol(std::shared_ptr<const core::SketchAlgorithm> algorithm,
                      std::size_t d, std::size_t k, std::size_t num_rows,
                      std::size_t duplication = 1);

  std::size_t universe() const override;

  util::BitVector AliceMessage(const util::BitVector& x,
                               std::uint64_t shared_seed) const override;

  bool BobOutput(const util::BitVector& message, std::size_t y,
                 std::uint64_t shared_seed) const override;

  const Thm13Instance& instance() const { return instance_; }
  const core::SketchParams& params() const { return params_; }

 private:
  std::shared_ptr<const core::SketchAlgorithm> algorithm_;
  Thm13Instance instance_;
  std::size_t duplication_;
  core::SketchParams params_;
};

}  // namespace ifsketch::lowerbound

#endif  // IFSKETCH_LOWERBOUND_INDEX_PROTOCOL_H_
