// The Fact 18 shattered set: v = k' * log2(B) strings x_1..x_v in {0,1}^d
// such that for every s in {0,1}^v some k'-itemset T_s has
// f_{T_s}(x_i) = s_i for all i.
//
// Construction (Appendix A): view the first k'*B attributes as a k' x B
// grid of blocks, B = 2^floor(log2(d/k')). Row (r, t) of X holds row t of
// the "binary counter" matrix Y in block r and all-ones elsewhere; T_s
// picks one attribute per block, namely element int(s^(r)) of block r
// where s^(r) is the r-th log2(B)-bit chunk of s. Any attributes beyond
// k'*B are set to 1 and never queried.
#ifndef IFSKETCH_LOWERBOUND_SHATTERED_SET_H_
#define IFSKETCH_LOWERBOUND_SHATTERED_SET_H_

#include <vector>

#include "core/itemset.h"
#include "util/bitvector.h"

namespace ifsketch::lowerbound {

/// The VC-dimension witness behind Theorems 15 and 16.
class ShatteredSet {
 public:
  /// Requires d >= 2*k_prime (so each block has B >= 2 elements).
  ShatteredSet(std::size_t d, std::size_t k_prime);

  std::size_t d() const { return d_; }
  std::size_t k_prime() const { return k_prime_; }

  /// Block size B (a power of two).
  std::size_t block_size() const { return block_size_; }

  /// Number of shattered strings v = k' * log2(B).
  std::size_t v() const { return rows_.size(); }

  /// x_i (width d).
  const util::BitVector& Row(std::size_t i) const { return rows_[i]; }

  /// T_s for the pattern s (|s| == v()): a k'-itemset with
  /// f_{T_s}(x_i) == s_i for every i.
  core::Itemset QueryFor(const util::BitVector& s) const;

 private:
  std::size_t d_;
  std::size_t k_prime_;
  std::size_t block_size_;
  std::size_t log_block_;
  std::vector<util::BitVector> rows_;
};

}  // namespace ifsketch::lowerbound

#endif  // IFSKETCH_LOWERBOUND_SHATTERED_SET_H_
