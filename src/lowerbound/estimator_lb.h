// The Theorem 16 pipeline: estimator sketches encode Omega~(d/eps^2) bits.
//
// KRSU/De construction (Lemmas 20, 24-27): fix random binary matrices
// A_1..A_{k'-1} (d0 x n each) and let D0's row j concatenate column j of
// every factor. Appending a secret column y gives D1(y). The k'-itemsets
// choosing one attribute per factor block plus the secret column have
// frequencies (A y)_r / n where A is the Hadamard (row) product of the
// factors -- so +/-eps answers are a noisy linear sketch of y, and
// Rudelson's bound on sigma_min(A) (Lemma 26) makes y recoverable while
// n <~ 1/eps^2. Recovery is by L1 minimization (De; robust to answers
// accurate only on average) with L2/pseudo-inverse as the KRSU baseline.
//
// Amplification (proof of Theorem 16): v = (k-c) log(d/(k-c)) payloads
// y_1..y_v are embedded as D'_i = (x_i, D(y_i)) with the Fact 18 strings
// x_i; the k-itemset T'(T, s) = T_s + shifted-T has frequency
// <s, z_T>/v with z_T = (f_T(D_1), ..., f_T(D_v)), so Lemma 21 recovers
// every z_T from the big sketch and each y_i is decoded as above.
#ifndef IFSKETCH_LOWERBOUND_ESTIMATOR_LB_H_
#define IFSKETCH_LOWERBOUND_ESTIMATOR_LB_H_

#include <functional>

#include "core/database.h"
#include "core/sketch.h"
#include "linalg/matrix.h"
#include "lowerbound/shattered_set.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace ifsketch::lowerbound {

/// One KRSU/De database: secret column y behind k'-way marginals.
class KrsuInstance {
 public:
  /// k_prime >= 2 factor-blocks-plus-secret query arity; d0 columns per
  /// factor; n rows. The k'-1 factor matrices are drawn from `rng`
  /// (Lemma 26's distribution nu).
  KrsuInstance(std::size_t d0, std::size_t k_prime, std::size_t n,
               util::Rng& rng);

  std::size_t d0() const { return d0_; }
  std::size_t k_prime() const { return k_prime_; }
  std::size_t n() const { return n_; }

  /// Total columns d1 = (k'-1)*d0 + 1 (secret column last).
  std::size_t d1() const { return (k_prime_ - 1) * d0_ + 1; }

  /// Number of reconstruction queries: d0^(k'-1) (all factor choices).
  std::size_t NumQueries() const;

  /// D1(y): the n x d1 database with secret column y (|y| == n).
  core::Database BuildDatabase(const util::BitVector& y) const;

  /// The query itemset for Hadamard-product row r: one attribute per
  /// factor block plus the secret column. |T| == k'.
  core::Itemset QueryItemset(std::size_t r) const;

  /// The d0^(k'-1) x n Hadamard product matrix A (Definition 22);
  /// n * f_{T_r}(D1(y)) == (A y)_r.
  const linalg::Matrix& QueryMatrix() const { return a_; }

  /// L1 decoding (De): min ||A x - n*answers||_1 over x in [0,1]^n,
  /// rounded at 1/2. `answers[r]` approximates f_{T_r}.
  util::BitVector ReconstructL1(const linalg::Vector& answers) const;

  /// L2 decoding (KRSU baseline): round(pinv(A) * n*answers).
  util::BitVector ReconstructL2(const linalg::Vector& answers) const;

 private:
  std::size_t d0_;
  std::size_t k_prime_;
  std::size_t n_;
  std::vector<linalg::Matrix> factors_;
  linalg::Matrix a_;
  core::Database base_;  // D0 (without the secret column)
};

/// Lemma 21: recover z in [0,1]^v from estimates of <s, z>/v over a
/// probe family (singletons + `random_probes` random patterns), by L1
/// regression. `estimate` maps a pattern s to the sketch's estimate of
/// <s, z>/v.
linalg::Vector Lemma21Decode(
    std::size_t v,
    const std::function<double(const util::BitVector&)>& estimate,
    std::size_t random_probes, util::Rng& rng);

/// The amplified Theorem 16 instance: v tagged KRSU copies.
class Thm16Amplified {
 public:
  /// d_shatter: attribute budget for the Fact 18 strings (>= 2*(k-c));
  /// k: outer query arity; c = k_prime of the inner KRSU instances
  /// (c >= 2, k > c). All copies share one KRSU instance shape/factors.
  Thm16Amplified(std::size_t d_shatter, std::size_t k, std::size_t c,
                 std::size_t d0, std::size_t n, util::Rng& rng);

  std::size_t v() const { return shattered_.v(); }
  std::size_t k() const { return k_; }

  /// Payload: v secrets of n bits each.
  std::size_t PayloadBits() const { return v() * krsu_.n(); }

  /// Rows: v * n; columns: d_shatter + d1.
  core::Database BuildDatabase(const util::BitVector& payload) const;

  /// The outer k-itemset T'(T_r, s) for KRSU query r and pattern s.
  core::Itemset OuterProbe(const util::BitVector& s, std::size_t r) const;

  /// Full reconstruction from a For-All estimator view: Lemma 21 per
  /// query, then per-copy L1 decoding. Returns the recovered payload.
  util::BitVector ReconstructPayload(const core::FrequencyEstimator& q,
                                     std::size_t random_probes,
                                     util::Rng& rng) const;

  const KrsuInstance& krsu() const { return krsu_; }
  const ShatteredSet& shattered() const { return shattered_; }

 private:
  std::size_t k_;
  std::size_t c_;
  ShatteredSet shattered_;
  KrsuInstance krsu_;
};

}  // namespace ifsketch::lowerbound

#endif  // IFSKETCH_LOWERBOUND_ESTIMATOR_LB_H_
