#include "lowerbound/shattered_set.h"

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::lowerbound {

ShatteredSet::ShatteredSet(std::size_t d, std::size_t k_prime)
    : d_(d), k_prime_(k_prime) {
  IFSKETCH_CHECK_GE(k_prime, 1u);
  IFSKETCH_CHECK_GE(d, 2 * k_prime);
  log_block_ = static_cast<std::size_t>(util::FloorLog2(d / k_prime));
  block_size_ = std::size_t{1} << log_block_;

  const std::size_t v = k_prime_ * log_block_;
  rows_.reserve(v);
  for (std::size_t r = 0; r < k_prime_; ++r) {
    for (std::size_t t = 0; t < log_block_; ++t) {
      // Row (r, t): all ones, except block r carries the binary-counter
      // row Y(t, c) = bit t of c.
      util::BitVector row(d_);
      for (std::size_t a = 0; a < d_; ++a) row.Set(a, true);
      for (std::size_t c = 0; c < block_size_; ++c) {
        const bool bit = (c >> t) & 1u;
        row.Set(r * block_size_ + c, bit);
      }
      rows_.push_back(std::move(row));
    }
  }
}

core::Itemset ShatteredSet::QueryFor(const util::BitVector& s) const {
  IFSKETCH_CHECK_EQ(s.size(), v());
  std::vector<std::size_t> attrs;
  attrs.reserve(k_prime_);
  for (std::size_t r = 0; r < k_prime_; ++r) {
    // int(s^(r)): the r-th chunk read as a block-local element index.
    std::size_t ell = 0;
    for (std::size_t t = 0; t < log_block_; ++t) {
      if (s.Get(r * log_block_ + t)) ell |= std::size_t{1} << t;
    }
    attrs.push_back(r * block_size_ + ell);
  }
  return core::Itemset(d_, attrs);
}

}  // namespace ifsketch::lowerbound
