#include "engine.h"

#include <cstdio>
#include <fstream>

#include "sketch/builtin_algorithms.h"
#include "util/check.h"

namespace ifsketch {
namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// The file's IFSK version from its first 6 bytes: a tiny read that
/// decides mapped-vs-copied without paying for a mapping (or, on the
/// no-mmap fallback, a whole-file read) that a v1 file would
/// immediately discard. Returns -1 when the file cannot be opened at
/// all (distinct from 0 = readable but not IFSK, so kMapped errors can
/// say which).
int PeekFileVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return -1;
  unsigned char head[6];
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  if (in.gcount() <= 0) return 0;
  return sketch::PeekSketchVersion(head,
                                   static_cast<std::size_t>(in.gcount()));
}

std::string FormatSketchError(const std::string& path,
                              const sketch::SketchError& error) {
  return path + ": byte " + std::to_string(error.offset) + ": " +
         error.message;
}

}  // namespace

std::optional<Engine> Engine::Build(const core::Database& db,
                                    const std::string& algorithm,
                                    const core::SketchParams& params,
                                    util::Rng& rng) {
  if (!core::ValidSketchParams(params)) return std::nullopt;
  auto algo = sketch::BuiltinRegistry().Create(algorithm);
  if (algo == nullptr) return std::nullopt;

  sketch::SketchFile file;
  file.algorithm = algo->name();
  file.params = params;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo->Build(db, params, rng);
  return Engine(std::move(file),
                std::shared_ptr<const core::SketchAlgorithm>(std::move(algo)));
}

std::optional<Engine> Engine::FromParts(sketch::SketchFile file,
                                        LoadPath load_path,
                                        std::string* error) {
  auto algo = sketch::ResolveAlgorithm(file);
  if (algo == nullptr) {
    SetError(error, "unknown algorithm \"" + file.algorithm + "\"");
    return std::nullopt;
  }
  // A header can be well-formed while its payload is not the algorithm's:
  // Build() contractually emits exactly PredictedSizeBits, so anything
  // else would only abort later inside a loader CHECK. Reject it here.
  const std::size_t predicted =
      algo->PredictedSizeBits(file.n, file.d, file.params);
  if (file.summary.size() != predicted) {
    SetError(error, "summary payload is " +
                        std::to_string(file.summary.size()) + " bits but " +
                        file.algorithm + " would emit " +
                        std::to_string(predicted) +
                        " for this shape (corrupt or tampered file)");
    return std::nullopt;
  }
  Engine engine(std::move(file), std::shared_ptr<const core::SketchAlgorithm>(
                                     std::move(algo)));
  engine.load_path_ = load_path;
  return engine;
}

std::optional<Engine> Engine::Open(const std::string& path, LoadMode mode,
                                   std::string* error) {
  if (mode != LoadMode::kCopied) {
    int version = PeekFileVersion(path);
    std::shared_ptr<const util::MappedFile> mapping;
    if (version < 0) {
      // Unreadable via the tiny peek. Attempt the mapping anyway: if it
      // also fails we have the real I/O error to report; if a concurrent
      // writer raced the peek and the file is mappable now, keep the
      // mapping and classify it from its own bytes.
      std::string map_error;
      mapping = util::MappedFile::Open(path, &map_error);
      if (mapping == nullptr) {
        if (mode == LoadMode::kMapped) {
          SetError(error, map_error);
          return std::nullopt;
        }
        // kAuto: fall through to the copying parser's error report.
      } else {
        version =
            sketch::PeekSketchVersion(mapping->data(), mapping->size());
      }
    }
    if (version == sketch::arena::kVersionArena) {
      if (mapping == nullptr) {
        std::string map_error;
        mapping = util::MappedFile::Open(path, &map_error);
        if (mapping == nullptr) {
          SetError(error, map_error);
          return std::nullopt;
        }
      }
      sketch::SketchError view_error;
      auto view = sketch::ViewSketchImage(mapping->data(), mapping->size(),
                                          &view_error);
      if (!view.has_value()) {
        SetError(error, FormatSketchError(path, view_error));
        return std::nullopt;
      }
      auto engine =
          FromParts(std::move(view->file), LoadPath::kMapped, error);
      if (!engine.has_value()) {
        if (error != nullptr) *error = path + ": " + *error;
        return std::nullopt;
      }
      engine->mapping_ = std::move(mapping);
      engine->columns_ = view->columns;
      return engine;
    }
    if (mode == LoadMode::kMapped) {
      SetError(error,
               version == sketch::arena::kVersionLegacy
                   ? path + ": legacy v1 file has no arena sections; " +
                         "mapped load needs v2 (re-save to upgrade)"
                   : path + ": not a well-formed IFSK file");
      return std::nullopt;
    }
    // v1 (or not IFSK at all, or unreadable): fall through to the
    // copying parser, which reports precise offsets (or the open error)
    // for whatever is wrong.
  }

  sketch::SketchError read_error;
  auto file = sketch::LoadSketchFile(path, &read_error);
  if (!file.has_value()) {
    SetError(error, FormatSketchError(path, read_error));
    return std::nullopt;
  }
  auto engine = FromParts(*std::move(file), LoadPath::kCopied, error);
  if (!engine.has_value()) {
    if (error != nullptr) *error = path + ": " + *error;
    return std::nullopt;
  }
  return engine;
}

std::optional<Engine> Engine::FromFile(sketch::SketchFile file) {
  // In-memory adoption: never touched disk, so it reports kBuilt unless
  // the caller's file says it was deserialized (version != 0).
  const LoadPath path =
      file.version == 0 ? LoadPath::kBuilt : LoadPath::kCopied;
  return FromParts(std::move(file), path, nullptr);
}

bool Engine::Save(const std::string& path) const {
  return sketch::SaveSketchFile(path, file_);
}

bool Engine::Save(const std::string& path, std::string* error,
                  sketch::SketchChecksum checksum) const {
  sketch::SketchError detail;
  if (sketch::SaveSketchFile(path, file_, sketch::arena::kVersionArena,
                             checksum, &detail)) {
    return true;
  }
  if (error != nullptr) *error = detail.message;
  return false;
}

std::vector<std::string> Engine::KnownAlgorithms() {
  return sketch::BuiltinRegistry().Names();
}

std::size_t Engine::resident_bytes() const {
  if (mapping_ != nullptr) return mapping_->size();
  return (file_.summary.size() + 7) / 8;
}

core::ColumnStore Engine::BorrowedColumns() const {
  IFSKETCH_CHECK(columns_.has_value());
  return core::ColumnStore::FromColumnWords(columns_->words, columns_->rows,
                                            columns_->d,
                                            columns_->stride_words);
}

const core::FrequencyEstimator& Engine::estimator() const {
  std::call_once(views_->estimator_once, [this] {
    // The estimator view only exists for estimator-flavored summaries
    // (e.g. RELEASE-ANSWERS stores single decision bits otherwise).
    IFSKETCH_CHECK(file_.params.answer == core::Answer::kEstimator);
    if (columns_.has_value() && algo_->HasRowMajorPayload(file_.params)) {
      // Zero-copy: adopt the mapped column section, no decode pass.
      views_->estimator = algo_->LoadEstimatorFromColumns(
          BorrowedColumns(), file_.summary, file_.params, file_.d, file_.n);
    } else {
      views_->estimator = algo_->LoadEstimator(file_.summary, file_.params,
                                               file_.d, file_.n);
    }
  });
  return *views_->estimator;
}

const core::FrequencyIndicator& Engine::indicator() const {
  std::call_once(views_->indicator_once, [this] {
    if (columns_.has_value() && algo_->HasRowMajorPayload(file_.params)) {
      views_->indicator = algo_->LoadIndicatorFromColumns(
          BorrowedColumns(), file_.summary, file_.params, file_.d, file_.n);
    } else {
      views_->indicator = algo_->LoadIndicator(file_.summary, file_.params,
                                               file_.d, file_.n);
    }
  });
  return *views_->indicator;
}

bool Engine::supports_query_size(std::size_t size) const {
  return algo_->SupportsQuerySize(size, file_.params);
}

double Engine::estimate(const core::Itemset& t) const {
  return estimator().EstimateFrequency(t);
}

void Engine::estimate_many(const std::vector<core::Itemset>& ts,
                           std::vector<double>* answers) const {
  estimator().EstimateMany(ts, answers);
}

bool Engine::is_frequent(const core::Itemset& t) const {
  return indicator().IsFrequent(t);
}

void Engine::are_frequent(const std::vector<core::Itemset>& ts,
                          std::vector<bool>* answers) const {
  indicator().AreFrequent(ts, answers);
}

std::vector<mining::FrequentItemset> Engine::mine(
    const mining::AprioriOptions& options) const {
  // Apriori queries every level 1..max_size; an algorithm that only
  // answers size-k queries (RELEASE-ANSWERS) cannot drive it.
  for (std::size_t size = 1; size <= options.max_size; ++size) {
    IFSKETCH_CHECK(supports_query_size(size));
  }
  return mining::MineWithEstimatorBatched(estimator(), file_.d, options);
}

sketch::EnvelopeReport Engine::envelope() const {
  return sketch::NaiveEnvelope(file_.n, file_.d, file_.params);
}

std::string Engine::info() const {
  const sketch::EnvelopeReport env = envelope();
  const char* format =
      file_.version == sketch::arena::kVersionArena
          ? "IFSK v2 (arena sections)"
          : (file_.version == sketch::arena::kVersionLegacy
                 ? "IFSK v1 (byte-packed)"
                 : "in-memory (not loaded from a file)");
  // Distinguish a true mmap from MappedFile's read-whole-file fallback:
  // both serve zero-copy views over one aligned image, but only the
  // former shares page-cache residency -- operators confirming zero-copy
  // should see which they got.
  const char* path =
      load_path_ == LoadPath::kMapped
          ? (mapping_ != nullptr && mapping_->is_mapped()
                 ? "mapped (zero-copy views over the mmap'd file image)"
                 : "mapped (zero-copy views over a buffered file image; "
                   "mmap unavailable)")
          : (load_path_ == LoadPath::kCopied
                 ? "copied (stream-parsed into owned memory)"
                 : "built (never loaded)");
  char buffer[896];
  std::snprintf(
      buffer, sizeof(buffer),
      "algorithm:  %s\n"
      "guarantee:  %s %s  (k=%zu, eps=%g, delta=%g)\n"
      "database:   n=%zu rows, d=%zu attributes (%zu bits)\n"
      "summary:    %zu bits (%.4f%% of the database)\n"
      "file:       %s\n"
      "load path:  %s, %zu resident bytes\n"
      "envelope:   RELEASE-DB=%zu  RELEASE-ANSWERS=%zu  SUBSAMPLE=%zu\n"
      "            Theorem-12 winner for this shape: %s (%zu bits)\n",
      file_.algorithm.c_str(), core::ToString(file_.params.scope),
      core::ToString(file_.params.answer), file_.params.k, file_.params.eps,
      file_.params.delta, file_.n, file_.d, file_.n * file_.d,
      file_.summary.size(),
      file_.n * file_.d == 0
          ? 0.0
          : 100.0 * static_cast<double>(file_.summary.size()) /
                static_cast<double>(file_.n * file_.d),
      format, path, resident_bytes(), env.release_db_bits,
      env.release_answers_bits, env.subsample_bits, env.winner.c_str(),
      env.winner_bits);
  return buffer;
}

}  // namespace ifsketch
